//! Quickstart: create a partition, store a file, read a block back through
//! the full simulated wetlab, and update it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dna_storage::block_store::{BlockStore, PartitionConfig, BLOCK_SIZE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A store seeded deterministically: same seed → same primers, same
    // synthesis skew, same reads.
    let store = BlockStore::new(42);

    // One primer pair = one partition with 1024 independently addressable
    // 256-byte blocks (the paper's wetlab geometry).
    let pid = store.create_partition(PartitionConfig::paper_default(7))?;

    // Store a small "file" across 4 blocks.
    let data: Vec<u8> = (0..4 * BLOCK_SIZE).map(|i| (i % 251) as u8).collect();
    let blocks = store.write_file(pid, &data)?;
    println!(
        "wrote {blocks} blocks ({} bytes) into partition {pid:?}",
        data.len()
    );

    // Random block access: one PCR with a 31-base elongated primer,
    // sequencing, clustering, trace reconstruction, RS decoding.
    let out = store.read_block(pid, 2)?;
    assert_eq!(out.block.data, &data[2 * BLOCK_SIZE..3 * BLOCK_SIZE]);
    println!(
        "read block 2: {} reads sequenced, {} matched the target prefix, {} PCR round(s)",
        out.stats.reads_sequenced, out.stats.reads_matched, out.stats.pcr_rounds
    );

    // Update the block: a small DNA patch is synthesized and mixed in —
    // nothing is chemically edited.
    let mut edited = data[2 * BLOCK_SIZE..3 * BLOCK_SIZE].to_vec();
    edited[..7].copy_from_slice(b"UPDATED");
    store.update_block(pid, 2, &edited)?;

    // The same elongated primer now retrieves the block AND its update in
    // one reaction; the patch applies in software.
    let updated = store.read_block(pid, 2)?;
    assert_eq!(updated.block.data, edited);
    println!(
        "after update: {} patch(es) applied during decode; first bytes now {:?}",
        updated.patches_applied,
        std::str::from_utf8(&updated.block.data[..7])?
    );

    // Sequential access: one multiplexed PCR covering blocks 1..=3.
    let range = store.read_range(pid, 1, 3)?;
    println!("range read returned {} blocks", range.len());
    assert_eq!(range[0].data, &data[BLOCK_SIZE..2 * BLOCK_SIZE]);

    Ok(())
}
