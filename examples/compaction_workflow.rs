//! The consolidation lifecycle of a long-lived store, end to end:
//! sustained updates → predicted exhaustion (`update_headroom`) →
//! compaction (fold patch chains, retire stale molecules, re-synthesize
//! fresh base units) → restored headroom and a cheaper hot-block read.
//!
//! ```text
//! cargo run --release --example compaction_workflow
//! ```

use dna_storage::block_store::{
    BlockStore, CompactionPolicy, Compactor, PartitionConfig, UpdateLayout, BLOCK_SIZE,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately small partition (64 leaves, 20 data blocks) so update
    // pressure is visible within a demo's budget.
    let mut store = BlockStore::new(2025);
    store.set_coverage(24);
    let pid =
        store.create_partition(PartitionConfig::small(7, 3, UpdateLayout::paper_default()))?;
    let data = dna_storage::block_store::workload::deterministic_text(20 * BLOCK_SIZE, 99);
    store.write_file(pid, &data)?;

    // Hammer block 0: 12 updates fill the 2 direct version slots and grow
    // a 4-leaf overflow chain. `update_headroom` predicts the eventual
    // refusal without ever probing with a write.
    let mut current = data[..BLOCK_SIZE].to_vec();
    let initial_headroom = store.update_headroom(pid, 0)?;
    println!("headroom before any update: {initial_headroom}");
    for round in 0..12u32 {
        current[(round % 8) as usize] = b'a' + (round % 26) as u8;
        store.update_block(pid, 0, &current)?;
    }
    println!(
        "after 12 updates: headroom {}, retrieval scope {} units, chain {:?}",
        store.update_headroom(pid, 0)?,
        store.retrieval_scope_units(pid, 0)?,
        store.partition(pid)?.chain_of(0),
    );
    println!(
        "at this rate the partition goes read-only after {} more updates — compact instead",
        store.update_headroom(pid, 0)?
    );
    let before = store.read_block(pid, 0)?;
    assert_eq!(before.block.data, current);
    println!(
        "pre-compaction read: {} patches applied, {} PCR rounds, {} reads sequenced",
        before.patches_applied, before.stats.pcr_rounds, before.stats.reads_sequenced
    );

    // Consolidate: fold every patch chain into its current logical image,
    // retire the stale molecules, re-synthesize fresh base units.
    let compactor = Compactor::new(CompactionPolicy::paper_default());
    assert!(compactor.should_compact_partition(&store, pid));
    let report = compactor.run(&store)?;
    println!(
        "compaction: {} blocks rebased, {} stale units reclaimed, \
         {} species retired, {} rewrites (${:.2} synthesis)",
        report.blocks_rebased,
        report.units_reclaimed,
        report.species_retired,
        report.rewrites_synthesized,
        report.synthesis_cost
    );
    assert_eq!(store.update_headroom(pid, 0)?, initial_headroom);
    println!(
        "headroom after compaction: {} (fully restored); scope of block 0: {} unit(s)",
        store.update_headroom(pid, 0)?,
        store.retrieval_scope_units(pid, 0)?
    );

    // The rebased block reads byte-identically — cheaper, with no patches.
    let after = store.read_block(pid, 0)?;
    assert_eq!(after.block.data, current);
    assert_eq!(after.patches_applied, 0);
    assert!(after.stats.reads_sequenced < before.stats.reads_sequenced);
    println!(
        "post-compaction read: {} patches applied, {} PCR rounds, {} reads sequenced",
        after.patches_applied, after.stats.pcr_rounds, after.stats.reads_sequenced
    );

    // And the write path flows again.
    current[9] = b'!';
    store.update_block(pid, 0, &current)?;
    let again = store.read_block(pid, 0)?;
    assert_eq!(again.block.data, current);
    println!("update after compaction applied cleanly; store lives on");
    Ok(())
}
