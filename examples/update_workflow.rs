//! The git-style update lifecycle of §5, end to end:
//! diff → patch synthesis → concentration-matched mixing → one-PCR
//! retrieval of block + updates → software patch application — including
//! the overflow pointer chain when a block outgrows its provisioned slots.
//!
//! ```text
//! cargo run --release --example update_workflow
//! ```

use dna_storage::block_store::Block;
use dna_storage::block_store::{BlockStore, PartitionConfig, UpdatePatch, BLOCK_SIZE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = BlockStore::new(2024);
    let pid = store.create_partition(PartitionConfig::paper_default(99))?;

    let original = b"the cat sat on the mat and looked at the stars above the garden wall";
    store.write_file(pid, original)?;
    println!("original: {:?}", std::str::from_utf8(&original[..])?);

    // The patch format of §6.4: delete-then-insert. The store derives it
    // automatically by diffing, but it can be built by hand too:
    let old_block = Block::from_bytes(original)?;
    let patch = UpdatePatch::new(4, 3, 4, b"dog".to_vec())?;
    let preview = patch.apply(&old_block)?;
    println!(
        "patch preview: {:?}",
        std::str::from_utf8(&preview.data[..32])?
    );

    // Five successive updates: the first two land in the direct version
    // slots (version bases C and G); the third triggers the §5.3 overflow
    // pointer into the shared update region; the rest fill the chain leaf.
    let mut current = original.to_vec();
    current.resize(BLOCK_SIZE, 0);
    let edits: [&[u8]; 5] = [b"dog", b"fox", b"owl", b"bee", b"elk"];
    for (i, animal) in edits.iter().enumerate() {
        current[4..7].copy_from_slice(animal);
        current[8 + i] = b'!';
        store.update_block(pid, 0, &current)?;
        let writes = store.partition(pid)?.writes_of(0);
        let chain = store.partition(pid)?.chain_of(0).to_vec();
        println!(
            "update {}: writes={} overflow chain leaves={:?}",
            i + 1,
            writes,
            chain
        );
    }

    // One logical read: the store follows the in-DNA pointer chain with
    // extra PCR round-trips only because the block overflowed.
    let out = store.read_block(pid, 0)?;
    assert_eq!(out.block.data, current);
    println!(
        "final content after {} patches ({} PCR rounds): {:?}",
        out.patches_applied,
        out.stats.pcr_rounds,
        std::str::from_utf8(&out.block.data[..32])?
    );
    Ok(())
}
