//! Primer design: build a compatible library, validate elongations at every
//! length (§4.2), and see why dense indexes fail.
//!
//! ```text
//! cargo run --release --example primer_design
//! ```

use dna_storage::index::{IndexTree, LeafId};
use dna_storage::primers::{ElongatedPrimer, PrimerConstraints, PrimerLibrary};
use dna_storage::seq::{Base, DnaSeq};

fn main() {
    // A mutually compatible main-primer library: balanced GC, no long
    // homopolymers, Tm in the PCR window, pairwise Hamming ≥ 10.
    let constraints = PrimerConstraints::paper_default(20);
    let library = PrimerLibrary::generate_with_distance(&constraints, 10, 12, 100_000, 1);
    println!(
        "library of {} primers (min pairwise Hamming {}):",
        library.len(),
        library.min_distance()
    );
    for p in library.primers().iter().take(6) {
        println!(
            "  {p}  gc={:.0}% tm={:.1}C",
            p.gc_fraction() * 100.0,
            dna_storage::seq::tm::melting_temperature(p)
        );
    }

    // Elongate the first primer with a sparse index: every elongation point
    // stays PCR-compatible (§4.2) — that is the whole point of the tree.
    let main = library.primer(0).clone();
    let tree = IndexTree::new(0xFEED, 5);
    let leaf = LeafId(531);
    let mut tail = DnaSeq::new();
    tail.push(Base::A); // sync base
    tail.extend(tree.leaf_index(leaf).iter());
    let ep = ElongatedPrimer::new(main.clone(), tail);
    println!(
        "\nelongated primer for {leaf}: {} ({} bases, tm {:.1}C)",
        ep.full(),
        ep.len(),
        ep.tm()
    );
    match ep.validate(&constraints) {
        Ok(()) => println!("  every elongation point is PCR-compatible"),
        Err(v) => println!("  UNEXPECTED violation: {v}"),
    }

    // The dense baseline fails: its leaf 0 is AAAAA... — a homopolymer run.
    let dense = IndexTree::dense(5);
    let mut dense_tail = DnaSeq::new();
    dense_tail.push(Base::A);
    dense_tail.extend(dense.leaf_index(LeafId(0)).iter());
    let bad = ElongatedPrimer::new(main, dense_tail);
    match bad.validate(&constraints) {
        Ok(()) => println!("dense index unexpectedly validated"),
        Err(v) => println!("\ndense-index elongation rejected as expected: {v}"),
    }
}
