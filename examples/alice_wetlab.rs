//! The paper's §6/§7 wetlab experiment, end to end in the simulator:
//! 13 files in one pool, the 150 kB "book" as file 13 (587 × 256 B blocks,
//! 8805 strands), co-synthesized and separately-synthesized updates,
//! precise block access with a 31-base elongated primer, multiplex access,
//! and the §8 decode from a few hundred reads.
//!
//! ```text
//! cargo run --release --example alice_wetlab
//! ```

use dna_bench::alice::{build, AliceConfig, IDT_UPDATED_BLOCKS, TWIST_UPDATED_BLOCKS};
use dna_bench::experiments::{costs, decode, fig9};

fn main() {
    println!("building the §6 pool (13 files, 8850 + 45 designed strands)...");
    let setup = build(AliceConfig::default());
    println!(
        "pool ready: {} distinct species, {:.2e} molecules",
        setup.pool.distinct(),
        setup.pool.total_copies()
    );
    println!("co-synthesized updates: blocks {TWIST_UPDATED_BLOCKS:?}");
    println!("IDT-mixed updates:      blocks {IDT_UPDATED_BLOCKS:?}");

    // Fig. 9a: the baseline — whole-partition random access.
    let a = fig9::whole_partition(&setup, 50_000, 1);
    println!(
        "\n[9a] whole partition: block 531 is {:.2}% of reads; updated blocks at {:.2}x",
        a.fraction_block_531 * 100.0,
        a.updated_over_plain
    );

    // Fig. 9b: precise access for block 531 with the elongated primer.
    let b = fig9::precise_access(&setup, 531, 50_000, 0.20, 2);
    println!(
        "[9b] precise access: {:.1}% carryover, {:.1}% correct prefix, {:.1}% on-target",
        b.carryover_fraction * 100.0,
        b.correct_prefix_fraction * 100.0,
        b.on_target_fraction * 100.0
    );
    println!(
        "     misprime sources (edit-close indexes): {:?}",
        b.misprime_sources
    );

    // §7.3: the headline cost reduction, from measured fractions.
    let table = costs::sequencing_costs(a.fraction_block_531, b.on_target_fraction)
        .expect("measured fractions must be in (0, 1]");
    println!(
        "[§7.3] sequencing cost reduction: {:.0}x (paper: 141x)",
        table.reduction
    );

    // §8: decode the block + its update from a few hundred reads.
    let (_, stats) =
        decode::minimal_reads(&setup, &b, &[225, 300, 400, 550, 800], a.fraction_block_531);
    println!(
        "[§8] from {} reads: {} strands over {} versions, original ok = {}, update ok = {}",
        stats.reads_used,
        stats.strands_recovered,
        stats.versions_decoded,
        stats.original_ok,
        stats.updated_ok
    );
    println!(
        "     baseline would need ~{} reads for the same recovery",
        stats.baseline_reads_needed
    );

    // §6.5 multiplex: three blocks in one reaction.
    let m = fig9::multiplex_access(&setup, &[144, 307, 531], 30_000, 3);
    println!("[§6.5] multiplex fractions: {m:?}");
}
