//! Sequential access via prefix covers and partially elongated primers
//! (§3.1, §4).
//!
//! ```text
//! cargo run --release --example sequential_access
//! ```

use dna_storage::block_store::{planner, workload, BlockStore, PartitionConfig, BLOCK_SIZE};
use dna_storage::index::LeafId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = BlockStore::new(7);
    let pid = store.create_partition(PartitionConfig::paper_default(55))?;
    let data = workload::deterministic_text(16 * BLOCK_SIZE, 5);
    store.write_file(pid, &data)?;

    // The §3.1 example, on our tree: a contiguous block range maps to a
    // small set of aligned subtree prefixes.
    let partition = store.partition(pid)?;
    println!("covers for blocks 0..=11:");
    for node in partition.tree().cover_range(LeafId(0), LeafId(11)) {
        println!(
            "  prefix {:<12} covers {} leaf/leaves starting at {}",
            node.prefix(partition.tree()).to_string(),
            node.leaf_count,
            node.first_leaf
        );
    }

    // Precise plan (one primer per cover node) vs one-primer common-prefix
    // plan (over-amplifies).
    let precise = planner::plan_precise(&partition, 0, 11);
    let lcp = planner::plan_common_prefix(&partition, 0, 11);
    println!(
        "precise plan: {} primers, over-amplification {:.2}x",
        precise.primers.len(),
        precise.over_amplification()
    );
    println!(
        "common-prefix plan: 1 primer of {} bases, over-amplification {:.2}x",
        lcp.primers[0].len(),
        lcp.over_amplification()
    );

    // Execute the multiplexed precise read through the wetlab.
    let blocks = store.read_range(pid, 4, 9)?;
    for (i, b) in blocks.iter().enumerate() {
        let off = (4 + i) * BLOCK_SIZE;
        assert_eq!(b.data, &data[off..off + BLOCK_SIZE], "block {}", 4 + i);
    }
    println!("read blocks 4..=9 sequentially: contents verified");
    Ok(())
}
