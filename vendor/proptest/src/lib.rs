//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of proptest's surface its test suites actually use: the
//! [`proptest!`] macro, range/collection/`any` strategies, `prop_map`, and
//! the `prop_assert*`/`prop_assume!` macros. Cases are generated from a
//! deterministic PRNG; failing inputs are reported but **not shrunk**.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::Strategy;

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run(stringify!($name), |__proptest_rng| {
                    $( let $pat = $crate::strategy::Strategy::generate(
                        &($strat), __proptest_rng); )+
                    let __proptest_body = ||
                        -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __proptest_body()
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test, failing the case (with the
/// generated inputs reported) instead of panicking mid-closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

/// Discards the current case (without counting it as a success) when the
/// precondition does not hold; the runner draws a replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        $crate::prop_assume!($cond)
    };
}
