//! Case driver: deterministic RNG, config, and the pass/fail/reject loop.

/// Deterministic per-test random source (SplitMix64).
///
/// Proptest proper threads a `TestRng` through strategies; this subset only
/// needs uniform integers and unit-interval floats.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub(crate) fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling; bias is negligible for test data.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Mirror of `proptest::test_runner::Config` (only `cases` is honored).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected (assumed-away) cases before the test errors out.
    pub max_global_rejects: u32,
}

impl Config {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single generated case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// Precondition unmet (`prop_assume!`); draw another case.
    Reject,
    /// Assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runs one property over `config.cases` generated inputs.
pub struct TestRunner {
    config: Config,
}

impl TestRunner {
    /// Runner with the given config.
    pub fn new(config: Config) -> Self {
        TestRunner { config }
    }

    /// Drives `case` until enough successes accumulate; panics on the first
    /// failure (no shrinking) or when rejects exhaust the budget.
    pub fn run<F>(&mut self, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        // Stable seed per test name so failures reproduce across runs.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case_index = 0u64;
        while passed < self.config.cases {
            let mut rng = TestRng::new(seed ^ case_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            case_index += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "proptest '{name}': too many rejected cases \
                             ({rejected} rejects for {passed} passes)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed at case #{passed} \
                         (seed {seed:#x}, draw {})\n{msg}",
                        case_index - 1
                    );
                }
            }
        }
    }
}
