//! `any::<T>()` and the [`Arbitrary`] trait for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (mirror of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
