//! The [`Strategy`] trait and the built-in range strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike proptest proper there is no shrink tree: a strategy is just a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (mirror of `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategies are generated through shared references inside `proptest!`.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                // Full-domain 64-bit ranges have span 2^64, which does not
                // fit in u64 — draw a raw word instead of truncating to 0.
                let span = (hi - lo) as u128 + 1;
                let draw = if span > u64::MAX as u128 {
                    rng.next_u64()
                } else {
                    rng.below(span as u64)
                };
                (lo + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Rounding in the affine map can land exactly on the exclusive
        // upper bound; pull such draws back inside the half-open range.
        v.min(self.end.next_down())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() as f32 * (self.end - self.start);
        v.min(self.end.next_down())
    }
}

macro_rules! tuple_strategy {
    ($($S:ident),*) => {
        impl<$($S: Strategy),*> Strategy for ($($S,)*) {
            type Value = ($($S::Value,)*);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($S,)*) = self;
                ($($S.generate(rng),)*)
            }
        }
    };
}

tuple_strategy!(S0, S1);
tuple_strategy!(S0, S1, S2);
tuple_strategy!(S0, S1, S2, S3);
tuple_strategy!(S0, S1, S2, S3, S4);

/// Always produces a clone of the same value (mirror of `proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
