//! The vendored proptest subset must genuinely generate cases, vary them,
//! honor rejects, and fail loudly on a false property — otherwise every
//! suite built on it would be vacuously green.

use proptest::prelude::*;
use std::cell::Cell;

proptest! {
    #[test]
    fn ranges_respect_bounds(a in 0u64..1024, b in 3usize..=7, x in 0.0f64..2.0) {
        prop_assert!(a < 1024);
        prop_assert!((3..=7).contains(&b));
        prop_assert!((0.0..2.0).contains(&x));
    }

    #[test]
    fn full_domain_inclusive_ranges_do_not_degenerate(
        a in 0u64..=u64::MAX,
        b in i64::MIN..=i64::MAX,
        c in 0u8..=u8::MAX,
    ) {
        // Regression: span 2^64 used to truncate to 0, either tripping a
        // debug assert or pinning every draw to the range minimum.
        let _ = (a, b, c);
    }

    #[test]
    fn float_ranges_stay_below_exclusive_bound(x in 0.0f64..1.0, y in 0f32..1f32) {
        prop_assert!((0.0..1.0).contains(&x));
        prop_assert!(y < 1.0, "f32 draw rounded up to the exclusive bound");
    }

    #[test]
    fn vec_strategy_respects_size_and_elements(v in prop::collection::vec(0u8..4, 5..20)) {
        prop_assert!((5..20).contains(&v.len()));
        prop_assert!(v.iter().all(|&e| e < 4));
    }

    #[test]
    fn prop_map_applies(n in (0u32..100).prop_map(|n| n * 2)) {
        prop_assert_eq!(n % 2, 0);
        prop_assert!(n < 200);
    }

    #[test]
    fn tuple_strategies_draw_componentwise(
        (a, b) in (0u64..8, 10i32..20),
        triples in prop::collection::vec((0u8..4, 0usize..16, any::<u8>()), 1..6),
    ) {
        prop_assert!(a < 8);
        prop_assert!((10..20).contains(&b));
        prop_assert!((1..6).contains(&triples.len()));
        for &(x, y, _) in &triples {
            prop_assert!(x < 4);
            prop_assert!(y < 16);
        }
    }

    #[test]
    fn assume_filters_cases(n in any::<u64>()) {
        prop_assume!(n % 2 == 0);
        prop_assert_eq!(n % 2, 0);
    }

    #[test]
    #[should_panic]
    fn false_property_fails(n in 0u32..1000) {
        // Must eventually draw a value ≥ 10 and fail; a runner that never
        // generates (or never checks) would wrongly pass.
        prop_assert!(n < 10);
    }
}

#[test]
fn runner_executes_configured_case_count() {
    let calls = Cell::new(0u32);
    let mut runner = TestRunner::new(ProptestConfig::with_cases(64));
    runner.run("counting", |_rng| {
        calls.set(calls.get() + 1);
        Ok(())
    });
    assert_eq!(calls.get(), 64);
}

#[test]
fn cases_actually_vary() {
    let mut seen = std::collections::HashSet::new();
    let mut runner = TestRunner::new(ProptestConfig::with_cases(32));
    runner.run("variety", |rng| {
        seen.insert(rng.next_u64());
        Ok(())
    });
    assert!(seen.len() > 16, "RNG produced near-constant draws");
}

#[test]
fn rejects_do_not_count_as_passes() {
    let passes = Cell::new(0u32);
    let attempts = Cell::new(0u32);
    let mut runner = TestRunner::new(ProptestConfig::with_cases(10));
    runner.run("rejecting", |_rng| {
        attempts.set(attempts.get() + 1);
        if attempts.get().is_multiple_of(2) {
            return Err(TestCaseError::Reject);
        }
        passes.set(passes.get() + 1);
        Ok(())
    });
    assert_eq!(passes.get(), 10);
    assert!(attempts.get() > 10);
}
