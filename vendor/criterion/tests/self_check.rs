//! The vendored criterion subset must run benchmark closures and time them.

use criterion::{criterion_group, Criterion};
use std::cell::Cell;

#[test]
fn bench_function_runs_the_routine() {
    let runs = Cell::new(0u64);
    let mut c = Criterion::default();
    c.bench_function("smoke", |b| {
        b.iter(|| runs.set(runs.get() + 1));
    });
    // One warmup call plus at least one timed batch.
    assert!(runs.get() > 1, "bencher never invoked the routine");
}

#[test]
fn groups_compose() {
    let runs = Cell::new(0u64);
    let mut c = Criterion::default();
    let mut group = c.benchmark_group("g");
    group.sample_size(10);
    group.bench_function("a", |b| b.iter(|| runs.set(runs.get() + 1)));
    group.bench_function("b", |b| b.iter(|| runs.set(runs.get() + 1)));
    group.finish();
    assert!(runs.get() > 2);
}

fn target_a(c: &mut Criterion) {
    c.bench_function("target_a", |b| b.iter(|| 1 + 1));
}

criterion_group!(self_check_group, target_a);

#[test]
fn criterion_group_macro_produces_runnable_fn() {
    self_check_group();
}
