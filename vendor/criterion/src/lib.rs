//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of criterion's surface its benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::bench_function`], benchmark groups, and
//! `Bencher::iter`. Each benchmark is timed with `std::time::Instant` over a
//! fixed wall-clock budget and reported as a mean per-iteration time — no
//! statistics, plotting, or baseline comparison.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
pub struct Criterion {
    /// Wall-clock measurement budget per benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Times `f` and prints a `name ... mean time/iter` line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            budget: self.measurement_time,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Starts a named group; group benchmarks print as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named set of related benchmarks (mirror of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times `f` under `group/name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Accepted for API compatibility; this subset sizes runs by wall-clock
    /// budget, not sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Ends the group (no-op beyond releasing the borrow).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: one untimed warmup call, then batches of timed calls.
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.budget {
            for _ in 0..16 {
                black_box(routine());
            }
            iters += 16;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<40} (no measurement)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let (value, unit) = if per_iter >= 1e9 {
            (per_iter / 1e9, "s")
        } else if per_iter >= 1e6 {
            (per_iter / 1e6, "ms")
        } else if per_iter >= 1e3 {
            (per_iter / 1e3, "µs")
        } else {
            (per_iter, "ns")
        };
        println!(
            "{name:<40} {value:>10.3} {unit}/iter ({} iters)",
            self.iters
        );
    }
}

/// Bundles benchmark functions into one runnable group
/// (mirror of `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group (mirror of `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
