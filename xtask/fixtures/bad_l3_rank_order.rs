// lint-fixture: treat-as crates/core/src/fixture_rank_order.rs
//! Fixture: L3 `lock-rank` must fire exactly once — the fields are
//! declared in descending rank order (`sched` before `front`).

use std::sync::Mutex;

pub struct Fixture {
    // lock-rank: sched
    pub sched: Mutex<u32>,
    // lock-rank: front
    pub front: Mutex<u32>,
}
