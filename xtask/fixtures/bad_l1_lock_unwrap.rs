//! Fixture: L1 `lock-unwrap` must fire exactly once — a bare
//! `.lock().unwrap()` discards the poison state.

fn main() {
    let m = std::sync::Mutex::new(0u32);
    let g = m.lock().unwrap();
    drop(g);
}
