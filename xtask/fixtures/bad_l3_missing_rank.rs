// lint-fixture: treat-as crates/core/src/fixture_missing_rank.rs
//! Fixture: L3 `lock-rank` must fire exactly once — the second lock
//! field has no `// lock-rank:` annotation.

use std::sync::{Mutex, RwLock};

pub struct Fixture {
    // lock-rank: 0
    pub directory: RwLock<u32>,
    pub alloc: Mutex<u32>,
}
