//! Fixture: an allow directive with an empty reason does not exempt the
//! site — L1 must still fire (exactly once), demanding a justification.

fn main() {
    let m = std::sync::Mutex::new(0u32);
    // lint: allow(lock-unwrap)
    let g = m.lock().unwrap();
    drop(g);
}
