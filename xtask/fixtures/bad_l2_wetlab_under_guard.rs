//! Fixture: L2 `wetlab-under-lock` must fire exactly once — a wetlab
//! entry point called while a lock guard binding is still live.

fn main() {
    let shard = std::sync::Mutex::new(Vec::<u8>::new());
    let vendor = Vendor;
    let guard = shard
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let _pool = vendor.synthesize(&guard);
}

struct Vendor;
impl Vendor {
    fn synthesize(&self, _blocks: &[u8]) -> usize {
        0
    }
}
