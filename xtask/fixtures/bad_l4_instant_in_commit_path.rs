// lint-fixture: treat-as crates/core/src/fixture_commit_clock.rs
//! Fixture: L4 `determinism` must fire exactly once — wall-clock time
//! sampled inside the deterministic commit/epoch scope.

pub fn commit_epoch() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
