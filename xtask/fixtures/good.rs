// lint-fixture: treat-as crates/core/src/fixture_good.rs
//! Fixture: a lint-clean file — every rule's *correct* idiom in one
//! place. Linting this file must produce zero diagnostics.

use std::sync::{Mutex, PoisonError, RwLock};

pub struct GoodStore {
    // lock-rank: 0
    pub directory: RwLock<u32>,
    // lock-rank: 1
    pub alloc: Mutex<u32>,
    // lock-rank: 2+pid
    pub shard: Mutex<Vec<u8>>,
    // lock-rank: log
    pub log_shard: Mutex<Vec<u8>>,
}

pub fn snapshot_then_wetlab(store: &GoodStore, vendor: &Vendor) -> usize {
    // The snapshot is taken inside a block expression: the guard dies at
    // the block's closing brace, so the wetlab call below runs lock-free.
    let snapshot = {
        let shard = store.shard.lock().expect("data shard");
        shard.clone()
    };
    vendor.synthesize(&snapshot)
}

pub fn drop_then_wetlab(store: &GoodStore, vendor: &Vendor) -> usize {
    let shard = store
        .shard
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let snapshot = shard.clone();
    drop(shard);
    vendor.synthesize(&snapshot)
}

pub struct Vendor;
impl Vendor {
    pub fn synthesize(&self, blocks: &[u8]) -> usize {
        blocks.len()
    }
}
