//! `cargo run -p xtask -- <command>` — workspace automation.
//!
//! Commands:
//!
//! - `lint [--json[=PATH]] [FILE...]` — run the lock-discipline lint
//!   pass over the workspace tree (or over the explicitly listed files).
//!   Exit code 0 = clean, 1 = violations found, 2 = usage or I/O error.
//!   `--json` additionally writes the machine-readable report (default
//!   `LINT_report.json` at the workspace root).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--json[=PATH]] [FILE...]");
            ExitCode::from(2)
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let root = xtask::workspace_root();
    let mut json: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    for arg in args {
        if arg == "--json" {
            json = Some(root.join("LINT_report.json"));
        } else if let Some(path) = arg.strip_prefix("--json=") {
            json = Some(PathBuf::from(path));
        } else if arg.starts_with("--") {
            eprintln!("unknown flag: {arg}");
            return ExitCode::from(2);
        } else {
            files.push(PathBuf::from(arg));
        }
    }
    let report = if files.is_empty() {
        xtask::lint_tree(&root)
    } else {
        xtask::lint_paths(&root, &files)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render_text());
    println!(
        "xtask lint: {} file(s), {} violation(s), {} justified exemption(s)",
        report.files_scanned,
        report.total_violations(),
        report.allowed.len()
    );
    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("xtask lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("xtask lint: report written to {}", path.display());
    }
    if report.total_violations() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
