//! Workspace automation: the lock-discipline static lint pass.
//!
//! `cargo run -p xtask -- lint` tokenizes every workspace source file (no
//! crates.io dependencies — see [`lexer`]) and enforces the repo-specific
//! lock-discipline rules ([`rules::Rule`]):
//!
//! - **L1 `lock-unwrap`** — no `.lock().unwrap()` / `.read().unwrap()` /
//!   `.write().unwrap()`: the poison state must be handled explicitly.
//! - **L2 `wetlab-under-lock`** — no wetlab/decode entry point invoked in
//!   a scope where a lock guard binding is still live.
//! - **L3 `lock-rank`** — every `Mutex`/`RwLock` field in `dna-core`
//!   carries a `// lock-rank:` annotation consistent with the documented
//!   hierarchy.
//! - **L4 `determinism`** — no wall clock or ambient RNG in the
//!   deterministic commit/epoch scope (core store + wetlab simulator).
//!
//! A site may be exempted with a justified directive on the same line or
//! up to two lines above it:
//!
//! ```text
//! // lint: allow(<rule-key>): <non-empty reason>
//! ```
//!
//! A directive with an empty reason does **not** exempt the site — the
//! original rule still fires, with a note demanding the justification.
//! Exempted sites are first-class output: they appear (with their
//! reasons) in the JSON report, so the lint *surface* — violations plus
//! exemptions — is diffable across PRs the way `BENCH_throughput.json`
//! tracks performance.
//!
//! Fixture files under `xtask/fixtures/` are excluded from the tree scan
//! but can be linted explicitly (`cargo run -p xtask -- lint <path>`); a
//! `// lint-fixture: treat-as <path>` directive in the file's head makes
//! path-scoped rules (L3/L4) apply as if the file lived at that path.

pub mod lexer;
pub mod rules;

use rules::{Finding, Rule};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A violation site.
#[derive(Debug, Clone)]
pub struct Site {
    /// Effective repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Explanation of the violation.
    pub message: String,
}

/// An exempted site: a rule matched but a justified
/// `// lint: allow(...)` directive covers it.
#[derive(Debug, Clone)]
pub struct AllowedSite {
    /// Effective repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The non-empty reason given in the directive.
    pub reason: String,
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of files linted.
    pub files_scanned: usize,
    /// Violations per rule.
    pub violations: Vec<(Rule, Site)>,
    /// Justified exemptions per rule.
    pub allowed: Vec<(Rule, AllowedSite)>,
}

impl Report {
    /// Total violations across all rules.
    pub fn total_violations(&self) -> usize {
        self.violations.len()
    }

    /// Violations of one rule.
    pub fn violations_of(&self, rule: Rule) -> impl Iterator<Item = &Site> {
        self.violations
            .iter()
            .filter(move |(r, _)| *r == rule)
            .map(|(_, s)| s)
    }

    /// Human-readable diagnostics, one per line, `file:line` first.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (rule, site) in &self.violations {
            let _ = writeln!(
                out,
                "{}:{}: [{} {}] {}",
                site.file,
                site.line,
                rule.code(),
                rule.key(),
                site.message
            );
        }
        out
    }

    /// Machine-readable report: rule → counts → sites (violations and
    /// justified exemptions with their reasons).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"tool\": \"xtask lint\",");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"total_violations\": {},", self.total_violations());
        out.push_str("  \"rules\": [\n");
        let rules = Rule::all();
        for (ri, rule) in rules.iter().enumerate() {
            let sites: Vec<&Site> = self.violations_of(*rule).collect();
            let allowed: Vec<&AllowedSite> = self
                .allowed
                .iter()
                .filter(|(r, _)| r == rule)
                .map(|(_, s)| s)
                .collect();
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"rule\": \"{}\",", rule.key());
            let _ = writeln!(out, "      \"code\": \"{}\",", rule.code());
            let _ = writeln!(out, "      \"violations\": {},", sites.len());
            let _ = writeln!(out, "      \"allowed\": {},", allowed.len());
            out.push_str("      \"sites\": [\n");
            for (i, s) in sites.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "        {{ \"file\": {}, \"line\": {}, \"message\": {} }}{}",
                    json_str(&s.file),
                    s.line,
                    json_str(&s.message),
                    if i + 1 < sites.len() { "," } else { "" }
                );
            }
            out.push_str("      ],\n");
            out.push_str("      \"allowed_sites\": [\n");
            for (i, s) in allowed.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "        {{ \"file\": {}, \"line\": {}, \"reason\": {} }}{}",
                    json_str(&s.file),
                    s.line,
                    json_str(&s.reason),
                    if i + 1 < allowed.len() { "," } else { "" }
                );
            }
            out.push_str("      ]\n");
            let _ = writeln!(out, "    }}{}", if ri + 1 < rules.len() { "," } else { "" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse a `lint: allow(<rule>): <reason>` directive from comment text.
/// Returns `(rule_key, reason)`; the reason is empty when missing.
pub(crate) fn parse_allow(text: &str) -> Option<(String, String)> {
    let rest = text.trim().strip_prefix("lint:")?.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let after = rest[close + 1..].trim_start();
    let reason = after
        .strip_prefix(':')
        .map(|r| r.trim().to_string())
        .unwrap_or_default();
    Some((rule, reason))
}

/// Lint one file's source under its effective repo-relative path.
pub fn lint_source(effective_path: &str, source: &str, report: &mut Report) {
    let lexed = lexer::lex(source);
    let mut findings: Vec<Finding> = Vec::new();
    findings.extend(rules::check_lock_unwrap(&lexed));
    findings.extend(rules::check_wetlab_under_lock(&lexed));
    if rules::in_core(effective_path) {
        findings.extend(rules::check_lock_rank(&lexed));
    }
    if rules::in_deterministic_scope(effective_path) {
        findings.extend(rules::check_determinism(&lexed));
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    for f in findings {
        // An allow directive may sit on the site's line or up to two
        // lines above it.
        let lo = f.line.saturating_sub(2);
        let directive = lexed
            .comments_in(lo, f.line)
            .filter_map(|c| parse_allow(&c.text))
            .find(|(rule, _)| rule == f.rule.key());
        match directive {
            Some((_, reason)) if !reason.is_empty() => {
                report.allowed.push((
                    f.rule,
                    AllowedSite {
                        file: effective_path.to_string(),
                        line: f.line,
                        reason,
                    },
                ));
            }
            Some(_) => {
                report.violations.push((
                    f.rule,
                    Site {
                        file: effective_path.to_string(),
                        line: f.line,
                        message: format!(
                            "{} — a `lint: allow({})` directive is present but its reason \
                             is empty; justify the exemption",
                            f.message,
                            f.rule.key()
                        ),
                    },
                ));
            }
            None => {
                report.violations.push((
                    f.rule,
                    Site {
                        file: effective_path.to_string(),
                        line: f.line,
                        message: f.message,
                    },
                ));
            }
        }
    }
    report.files_scanned += 1;
}

/// The effective repo-relative path of a file: its path relative to
/// `root`, unless a `// lint-fixture: treat-as <path>` directive in the
/// file overrides it (fixtures exercising path-scoped rules).
fn effective_path(root: &Path, file: &Path, source: &str) -> String {
    for line in source.lines().take(5) {
        if let Some(rest) = line.trim().strip_prefix("// lint-fixture: treat-as ") {
            return rest.trim().to_string();
        }
    }
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.to_string_lossy().replace('\\', "/")
}

/// Lint an explicit set of files (fixture self-tests, spot checks).
///
/// # Errors
///
/// Propagates I/O errors reading any of the files.
pub fn lint_paths(root: &Path, files: &[PathBuf]) -> io::Result<Report> {
    let mut report = Report::default();
    for file in files {
        let source = fs::read_to_string(file)?;
        let path = effective_path(root, file, &source);
        lint_source(&path, &source, &mut report);
    }
    report
        .violations
        .sort_by(|a, b| (&a.1.file, a.1.line, a.0).cmp(&(&b.1.file, b.1.line, b.0)));
    report
        .allowed
        .sort_by(|a, b| (&a.1.file, a.1.line, a.0).cmp(&(&b.1.file, b.1.line, b.0)));
    Ok(report)
}

/// Lint the whole workspace tree: `src`, `tests`, `crates/*/{src,tests}`
/// and `xtask/{src,tests}`. `vendor/` (third-party subsets) and
/// `xtask/fixtures/` (deliberately bad snippets) are excluded.
///
/// # Errors
///
/// Propagates I/O errors walking the tree or reading files.
pub fn lint_tree(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    let mut roots: Vec<PathBuf> = vec![
        root.join("src"),
        root.join("tests"),
        root.join("xtask/src"),
        root.join("xtask/tests"),
    ];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if dir.is_dir() {
                roots.push(dir.join("src"));
                roots.push(dir.join("tests"));
            }
        }
    }
    for r in roots {
        if r.is_dir() {
            collect_rs(&r, &mut files)?;
        }
    }
    files.sort();
    lint_paths(root, &files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace root: the parent of this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives directly under the workspace root")
        .to_path_buf()
}
