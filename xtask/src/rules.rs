//! The four lock-discipline lint rules, evaluated over a lexed file.
//!
//! Each checker emits *candidate* findings; the caller (`lib.rs`) then
//! resolves `// lint: allow(<rule>): <reason>` directives, turning
//! justified findings into recorded exemptions and unjustified ones into
//! violations.

use crate::lexer::{Lexed, Tok, TokKind};

/// The lint rule catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// L1 — `.lock().unwrap()` / `.read().unwrap()` / `.write().unwrap()`:
    /// use the poison-recovery idiom (`unwrap_or_else(PoisonError::
    /// into_inner)`) or the fail-fast `.expect("...")` with a message.
    LockUnwrap,
    /// L2 — a wetlab/decode entry point invoked while a lock guard binding
    /// is still live in the enclosing scope.
    WetlabUnderLock,
    /// L3 — a `Mutex`/`RwLock` field in `dna-core` without a
    /// `// lock-rank:` annotation consistent with the documented hierarchy.
    LockRank,
    /// L4 — wall-clock (`Instant::now`/`SystemTime`) or ambient RNG
    /// construction in the deterministic commit/epoch paths.
    Determinism,
}

impl Rule {
    /// Short code used in diagnostics (`L1`…`L4`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::LockUnwrap => "L1",
            Rule::WetlabUnderLock => "L2",
            Rule::LockRank => "L3",
            Rule::Determinism => "L4",
        }
    }

    /// Key used in `// lint: allow(<key>)` directives and JSON reports.
    pub fn key(self) -> &'static str {
        match self {
            Rule::LockUnwrap => "lock-unwrap",
            Rule::WetlabUnderLock => "wetlab-under-lock",
            Rule::LockRank => "lock-rank",
            Rule::Determinism => "determinism",
        }
    }

    /// All rules, in catalog order.
    pub fn all() -> [Rule; 4] {
        [
            Rule::LockUnwrap,
            Rule::WetlabUnderLock,
            Rule::LockRank,
            Rule::Determinism,
        ]
    }
}

/// One candidate finding: a rule fired at a file line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// Whether rule `L3` applies to this (effective) file path.
pub fn in_core(path: &str) -> bool {
    path.starts_with("crates/core/src")
}

/// Whether rule `L4` applies to this (effective) file path: the
/// commit/epoch paths live in the core store and the wetlab simulator,
/// both of which must replay deterministically from a seed.
pub fn in_deterministic_scope(path: &str) -> bool {
    path.starts_with("crates/core/src") || path.starts_with("crates/sim/src")
}

// ----- L1: lock().unwrap() ------------------------------------------------

/// Find `.lock().unwrap()` / `.read().unwrap()` / `.write().unwrap()`.
pub fn check_lock_unwrap(lexed: &Lexed) -> Vec<Finding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_punct('.') {
            continue;
        }
        let Some(m) = toks.get(i + 1) else { continue };
        if !(m.is_ident("lock") || m.is_ident("read") || m.is_ident("write")) {
            continue;
        }
        let pat = [
            toks.get(i + 2).map(|t| t.is_punct('(')).unwrap_or(false),
            toks.get(i + 3).map(|t| t.is_punct(')')).unwrap_or(false),
            toks.get(i + 4).map(|t| t.is_punct('.')).unwrap_or(false),
            toks.get(i + 5)
                .map(|t| t.is_ident("unwrap"))
                .unwrap_or(false),
            toks.get(i + 6).map(|t| t.is_punct('(')).unwrap_or(false),
            toks.get(i + 7).map(|t| t.is_punct(')')).unwrap_or(false),
        ];
        if pat.iter().all(|&p| p) {
            out.push(Finding {
                rule: Rule::LockUnwrap,
                line: m.line,
                message: format!(
                    ".{}().unwrap() discards the poison state: recover with \
                     `.unwrap_or_else(PoisonError::into_inner)` or fail fast with \
                     `.expect(\"<which lock>\")`",
                    m.text
                ),
            });
        }
    }
    out
}

// ----- L2: wetlab entry point under a live guard --------------------------

/// Wetlab/decode entry points that must never run inside a critical
/// section (the snapshot → wetlab → validate-and-commit protocol).
const WETLAB: &[&str] = &[
    "amplify",
    "sequence",
    "run",
    "mix_in",
    "synthesize",
    "synthesize_rewrites",
    "run_retrieval",
];

fn is_wetlab_name(name: &str) -> bool {
    WETLAB.contains(&name) || name.starts_with("decode_jobs_parallel")
}

/// Tokens that acquire a lock guard when they appear (at top brace level)
/// in a `let` initializer: std lock methods plus the repo's own locking
/// helpers. Helpers that merely *clone a cell handle* (`shard_cell`,
/// `log_cell`) are deliberately absent.
const ACQUIRERS: &[&str] = &["lock_shard", "lock_front", "lock_sched", "dir_read"];

/// Closure that flags a wetlab call at a token index against live guards.
type WetlabCheck<'a> = dyn Fn(&[Tok], usize, &[GuardBinding], &mut Vec<Finding>) + 'a;

#[derive(Debug)]
struct GuardBinding {
    names: Vec<String>,
    depth: usize,
    line: u32,
}

/// Find wetlab/decode calls made while a lock-guard `let` binding is live.
///
/// Guard detection is a heuristic over the token stream:
/// - a `let` whose type annotation names a `*MutexGuard` / `*RwLock*Guard`
///   type, or whose initializer (at top brace level — nested `{…}` block
///   expressions are treated as self-contained scopes) calls `.lock(` /
///   `.read(` / `.write(` or one of the repo's locking helpers, binds a
///   guard;
/// - the guard dies at `drop(name)` or when its enclosing brace scope
///   closes.
///
/// Known blind spot (documented): a guard bound *inside* a `let`'s
/// block-expression initializer is scoped to that block and not tracked —
/// in this codebase those blocks only take snapshots.
pub fn check_wetlab_under_lock(lexed: &Lexed) -> Vec<Finding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    let mut depth: usize = 0;
    let mut guards: Vec<GuardBinding> = Vec::new();
    let mut i = 0usize;

    // Flag `toks[j]` if it is a wetlab call site and a guard is live.
    let wetlab_at = |toks: &[Tok], j: usize, guards: &[GuardBinding], out: &mut Vec<Finding>| {
        let t = &toks[j];
        if t.kind != TokKind::Ident || !is_wetlab_name(&t.text) {
            return;
        }
        if !toks.get(j + 1).map(|n| n.is_punct('(')).unwrap_or(false) {
            return;
        }
        if j > 0 && toks[j - 1].is_ident("fn") {
            return; // definition, not a call
        }
        if let Some(g) = guards.last() {
            out.push(Finding {
                rule: Rule::WetlabUnderLock,
                line: t.line,
                message: format!(
                    "wetlab/decode entry point `{}` invoked while the lock guard bound at \
                     line {} is still live — run it against a snapshot outside the critical \
                     section (snapshot → wetlab → validate-and-commit)",
                    t.text, g.line
                ),
            });
        }
    };

    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            // `drop(name)` releases that binding early.
            TokKind::Ident
                if t.text == "drop"
                    && toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
                    && toks.get(i + 3).map(|n| n.is_punct(')')).unwrap_or(false) =>
            {
                if let Some(name) = toks.get(i + 2).filter(|n| n.kind == TokKind::Ident) {
                    for g in &mut guards {
                        g.names.retain(|n| n != &name.text);
                    }
                    guards.retain(|g| !g.names.is_empty());
                }
            }
            TokKind::Ident if t.text == "let" => {
                // `if let` / `while let` initializers end at the block `{`
                // and their bindings live inside that block.
                let conditional =
                    i > 0 && (toks[i - 1].is_ident("if") || toks[i - 1].is_ident("while"));
                let (next_i, binding) =
                    parse_let(toks, i, depth, conditional, &wetlab_at, &guards, &mut out);
                if let Some(b) = binding {
                    guards.push(b);
                }
                i = next_i;
                continue;
            }
            _ => {}
        }
        wetlab_at(toks, i, &guards, &mut out);
        i += 1;
    }
    out
}

/// Parse a `let` statement starting at `toks[let_idx]`; returns the index
/// to resume the main walk at (just past the terminating `;`, or at the
/// block `{` for a conditional `if let`/`while let`) and the guard
/// binding, if this `let` binds one. Wetlab calls inside the initializer
/// are checked against the already-live guards as we go.
fn parse_let(
    toks: &[Tok],
    let_idx: usize,
    depth: usize,
    conditional: bool,
    wetlab_at: &WetlabCheck<'_>,
    live: &[GuardBinding],
    out: &mut Vec<Finding>,
) -> (usize, Option<GuardBinding>) {
    let line = toks[let_idx].line;
    let mut i = let_idx + 1;
    // Pattern: idents until `:` (type) or `=` (init) at paren depth 0.
    let mut names = Vec::new();
    let mut paren = 0usize;
    let mut has_type = false;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren = paren.saturating_sub(1),
            TokKind::Punct(':') if paren == 0 => {
                has_type = true;
                i += 1;
                break;
            }
            TokKind::Punct('=') if paren == 0 => {
                i += 1;
                break;
            }
            TokKind::Punct(';') if paren == 0 => {
                // `let x;` — no initializer, no guard.
                return (i + 1, None);
            }
            TokKind::Ident if t.text != "mut" && t.text != "ref" && t.text != "_" => {
                names.push(t.text.clone());
            }
            _ => {}
        }
        i += 1;
    }
    // Optional type annotation: until `=` at angle/paren depth 0.
    let mut guard_type = false;
    if has_type {
        let mut angle = 0usize;
        let mut paren = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            match t.kind {
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => angle = angle.saturating_sub(1),
                TokKind::Punct('(') => paren += 1,
                TokKind::Punct(')') => paren = paren.saturating_sub(1),
                TokKind::Punct('=') if angle == 0 && paren == 0 => {
                    i += 1;
                    break;
                }
                TokKind::Punct(';') if angle == 0 && paren == 0 => {
                    return (i + 1, None);
                }
                TokKind::Ident
                    if t.text.contains("MutexGuard")
                        || t.text.contains("RwLockReadGuard")
                        || t.text.contains("RwLockWriteGuard") =>
                {
                    guard_type = true;
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Initializer: until `;` with all delimiters balanced. Acquisition
    // tokens count only at top brace level (nested block expressions keep
    // their guards to themselves); wetlab calls are checked at any depth.
    let mut brace = 0usize;
    let mut paren = 0usize;
    let mut bracket = 0usize;
    let mut acquires = false;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct('{') if conditional && brace == 0 && paren == 0 && bracket == 0 => {
                // The conditional's block: stop here and let the main
                // walker count it, so the binding scopes to the block.
                break;
            }
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => brace = brace.saturating_sub(1),
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren = paren.saturating_sub(1),
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket = bracket.saturating_sub(1),
            TokKind::Punct(';') if brace == 0 && paren == 0 && bracket == 0 => {
                i += 1;
                break;
            }
            TokKind::Ident if brace == 0 => {
                let called = toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false);
                if called {
                    let dotted = i > 0 && toks[i - 1].is_punct('.');
                    if (dotted && (t.text == "lock" || t.text == "read" || t.text == "write"))
                        || ACQUIRERS.contains(&t.text.as_str())
                    {
                        acquires = true;
                    }
                }
            }
            _ => {}
        }
        wetlab_at(toks, i, live, out);
        i += 1;
    }
    let binding = if guard_type || acquires {
        Some(GuardBinding {
            names,
            // A conditional binding lives inside the block that follows.
            depth: if conditional { depth + 1 } else { depth },
            line,
        })
    } else {
        None
    };
    (i, binding)
}

// ----- L3: lock-rank annotations on dna-core lock fields ------------------

/// The documented hierarchy, as an ordinal for declaration-order checks.
/// `None` means the expression is not part of the hierarchy.
fn rank_ordinal(expr: &str) -> Option<u64> {
    match expr {
        "2+pid" | "2 + pid" => Some(2),
        "log" => Some(1_000_000),
        "front" => Some(1_000_001),
        "sched" => Some(1_000_002),
        "journal" => Some(1_000_003),
        n => n.parse::<u64>().ok().filter(|&v| v < 1_000_000),
    }
}

/// Find `Mutex`/`RwLock` struct fields in core without a consistent
/// `// lock-rank:` annotation. The annotation must sit on the field's own
/// line or a comment line between it and the previous field; accepted
/// expressions are an integer, `2+pid`, `log`, `front`, `sched`,
/// `journal` — and the ordinals must be non-decreasing in declaration
/// order (fields are acquired top-down in the documented hierarchy).
///
/// A `// lint: allow(lock-rank): <reason>` directive in the same window
/// exempts a field whose rank genuinely is a runtime parameter (the
/// ranked wrappers themselves).
pub fn check_lock_rank(lexed: &Lexed) -> Vec<Finding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("struct") {
            i += 1;
            continue;
        }
        // Find the struct body `{` (angle-balanced scan); `;` or `(` first
        // means a unit/tuple struct — no named fields to annotate.
        let mut j = i + 1;
        let mut angle = 0usize;
        let body_start = loop {
            match toks.get(j) {
                None => break None,
                Some(t) if t.is_punct('<') => angle += 1,
                Some(t) if t.is_punct('>') => angle = angle.saturating_sub(1),
                Some(t) if t.is_punct('{') && angle == 0 => break Some(j + 1),
                Some(t) if (t.is_punct(';') || t.is_punct('(')) && angle == 0 => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(mut k) = body_start else {
            i = j.max(i + 1);
            continue;
        };
        // Walk the fields. `prev_line` bounds the comment window a field's
        // annotation may occupy (everything after the previous field).
        let mut prev_line = toks[i].line;
        let mut prev_ordinal: Option<u64> = None;
        let mut field_depth = 0usize; // nesting inside a field's type/default
        while k < toks.len() {
            let t = &toks[k];
            if field_depth == 0 && t.is_punct('}') {
                break; // end of struct body
            }
            // Skip attributes: `#[ … ]`.
            if t.is_punct('#') && toks.get(k + 1).map(|n| n.is_punct('[')).unwrap_or(false) {
                let mut b = 0usize;
                k += 1;
                while k < toks.len() {
                    if toks[k].is_punct('[') {
                        b += 1;
                    } else if toks[k].is_punct(']') {
                        b -= 1;
                        if b == 0 {
                            k += 1;
                            break;
                        }
                    }
                    k += 1;
                }
                continue;
            }
            // Field: `[pub [(…)]] name : type ,`
            if t.kind == TokKind::Ident && t.text != "pub" {
                let name_line = t.line;
                let name = t.text.clone();
                // Require `name :` (skip visibility parens which were
                // consumed as idents/puncts before this).
                let colon = toks.get(k + 1).map(|n| n.is_punct(':')).unwrap_or(false);
                if colon {
                    // Type span: to `,` or the body `}` at all-zero depth.
                    let mut m = k + 2;
                    let mut angle = 0usize;
                    let mut paren = 0usize;
                    let mut bracket = 0usize;
                    let mut is_lock = false;
                    while m < toks.len() {
                        let tt = &toks[m];
                        match tt.kind {
                            TokKind::Punct('<') => angle += 1,
                            TokKind::Punct('>') => angle = angle.saturating_sub(1),
                            TokKind::Punct('(') => paren += 1,
                            TokKind::Punct(')') => paren = paren.saturating_sub(1),
                            TokKind::Punct('[') => bracket += 1,
                            TokKind::Punct(']') => bracket = bracket.saturating_sub(1),
                            TokKind::Punct(',') if angle == 0 && paren == 0 && bracket == 0 => {
                                break;
                            }
                            TokKind::Punct('}') if angle == 0 && paren == 0 && bracket == 0 => {
                                break;
                            }
                            TokKind::Ident
                                if (tt.text == "Mutex"
                                    || tt.text == "RwLock"
                                    || tt.text == "RankedMutex"
                                    || tt.text == "RankedRwLock")
                                    && toks
                                        .get(m + 1)
                                        .map(|n| n.is_punct('<'))
                                        .unwrap_or(false) =>
                            {
                                is_lock = true;
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    if is_lock {
                        // Look for the annotation in (prev_line, name_line].
                        // (`lint: allow(lock-rank)` directives are resolved
                        // by the generic pass, like every other rule.)
                        let window_lo = prev_line.saturating_add(1).min(name_line);
                        let mut rank_expr: Option<String> = None;
                        for c in lexed.comments_in(window_lo, name_line) {
                            if let Some(expr) = c.text.strip_prefix("lock-rank:") {
                                rank_expr = Some(expr.trim().to_string());
                            }
                        }
                        {
                            match rank_expr.as_deref().map(rank_ordinal) {
                                None => out.push(Finding {
                                    rule: Rule::LockRank,
                                    line: name_line,
                                    message: format!(
                                        "lock field `{name}` has no `// lock-rank:` annotation \
                                         (hierarchy: directory=0, alloc=1, shard=2+pid, log, \
                                         front, sched)"
                                    ),
                                }),
                                Some(None) => out.push(Finding {
                                    rule: Rule::LockRank,
                                    line: name_line,
                                    message: format!(
                                        "lock field `{name}` has an unrecognized lock-rank \
                                         expression `{}` (expected an integer, `2+pid`, `log`, \
                                         `front` or `sched`)",
                                        rank_expr.unwrap_or_default()
                                    ),
                                }),
                                Some(Some(ord)) => {
                                    if let Some(prev) = prev_ordinal {
                                        if ord < prev {
                                            out.push(Finding {
                                                rule: Rule::LockRank,
                                                line: name_line,
                                                message: format!(
                                                    "lock field `{name}` is ranked below the \
                                                     preceding lock field — declaration order \
                                                     must follow the documented hierarchy \
                                                     (directory=0, alloc=1, shard=2+pid, log, \
                                                     front, sched)"
                                                ),
                                            });
                                        }
                                    }
                                    prev_ordinal = Some(ord);
                                }
                            }
                        }
                    }
                    prev_line = toks.get(m).map(|tt| tt.line).unwrap_or(name_line);
                    k = m + 1;
                    continue;
                }
            }
            if t.is_punct('{') {
                field_depth += 1;
            } else if t.is_punct('}') {
                field_depth = field_depth.saturating_sub(1);
            }
            k += 1;
        }
        i = k + 1;
    }
    out
}

// ----- L4: determinism guard ----------------------------------------------

/// Find wall-clock and ambient-RNG construction in the deterministic
/// scope (`crates/core/src`, `crates/sim/src`): `Instant::now`,
/// `SystemTime`, `thread_rng`, `from_entropy`. The replay tests depend on
/// the commit/epoch paths being a pure function of the seed.
pub fn check_determinism(lexed: &Lexed) -> Vec<Finding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "Instant" => {
                toks.get(i + 1).map(|n| n.is_punct(':')).unwrap_or(false)
                    && toks.get(i + 2).map(|n| n.is_punct(':')).unwrap_or(false)
                    && toks.get(i + 3).map(|n| n.is_ident("now")).unwrap_or(false)
            }
            "SystemTime" | "thread_rng" | "from_entropy" => true,
            _ => false,
        };
        if hit {
            out.push(Finding {
                rule: Rule::Determinism,
                line: t.line,
                message: format!(
                    "`{}` in the deterministic commit/epoch scope — derive all randomness \
                     and ordering from the store seed (DetRng) so replay tests stay exact",
                    if t.text == "Instant" {
                        "Instant::now"
                    } else {
                        &t.text
                    }
                ),
            });
        }
    }
    out
}
