//! A minimal hand-rolled Rust lexer — just enough structure for the
//! lock-discipline lints.
//!
//! The lexer separates *code tokens* (identifiers, numbers, single-char
//! punctuation, opaque literals) from *comments* (kept per-line, because
//! the lint directives `// lint: allow(...)` and `// lock-rank: ...` live
//! in comments). String/char literals are consumed as opaque [`TokKind::Literal`]
//! tokens so their contents can never confuse brace tracking or pattern
//! matches; nested block comments, raw strings (`r#"…"#`, any hash depth),
//! byte strings and lifetimes are all handled.

/// What kind of code token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// A single punctuation character (multi-char operators arrive as
    /// consecutive tokens: `::` is two `:`).
    Punct(char),
    /// An opaque string/char/byte literal or a number.
    Literal,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Identifier text (empty for punct/literal tokens — not needed).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// One comment (line or block) with the 1-based line it starts on. Block
/// comments spanning multiple lines are recorded once, at their first line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// All comments whose starting line is in `lo..=hi`.
    pub fn comments_in(&self, lo: u32, hi: u32) -> impl Iterator<Item = &Comment> {
        self.comments
            .iter()
            .filter(move |c| c.line >= lo && c.line <= hi)
    }
}

/// Lex `source` into tokens + comments. Never fails: unterminated
/// constructs simply consume to end of input (the real compiler is the
/// authority on well-formedness; the linter only needs a best-effort
/// stream over code that already compiles).
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advance over `chars[i..]` by `n`, counting newlines.
    macro_rules! bump {
        ($n:expr) => {{
            for _ in 0..$n {
                if i < chars.len() {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            bump!(1);
            continue;
        }
        // Line comment (also doc comments).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start_line = line;
            let mut text = String::new();
            bump!(2);
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                bump!(1);
            }
            let text = text.trim_start_matches(['/', '!']).trim().to_string();
            out.comments.push(Comment {
                line: start_line,
                text,
            });
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start_line = line;
            let mut text = String::new();
            let mut depth = 1usize;
            bump!(2);
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump!(2);
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump!(2);
                } else {
                    text.push(chars[i]);
                    bump!(1);
                }
            }
            out.comments.push(Comment {
                line: start_line,
                text: text.trim_start_matches(['*', '!']).trim().to_string(),
            });
            continue;
        }
        // Raw (byte) strings: r"…", r#"…"#, br#"…"#, any hash depth.
        if c == 'r' || c == 'b' {
            let mut j = i;
            if chars[j] == 'b' {
                j += 1;
            }
            if chars.get(j) == Some(&'r') {
                j += 1;
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    let start_line = line;
                    bump!(j - i + 1); // through the opening quote
                    'raw: while i < chars.len() {
                        if chars[i] == '"' {
                            let mut k = i + 1;
                            let mut seen = 0usize;
                            while seen < hashes && chars.get(k) == Some(&'#') {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                bump!(k - i);
                                break 'raw;
                            }
                        }
                        bump!(1);
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line: start_line,
                    });
                    continue;
                }
            }
        }
        // Plain (byte) string: "…" / b"…" with escapes.
        if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"')) {
            let start_line = line;
            bump!(if c == 'b' { 2 } else { 1 });
            while i < chars.len() {
                if chars[i] == '\\' {
                    bump!(2);
                } else if chars[i] == '"' {
                    bump!(1);
                    break;
                } else {
                    bump!(1);
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text: String::new(),
                line: start_line,
            });
            continue;
        }
        // Char literal vs lifetime. `'a` where the ident is not closed by
        // `'` is a lifetime; `'x'`, `'\n'`, `'\''` are char literals.
        if c == '\'' {
            let start_line = line;
            if chars.get(i + 1) == Some(&'\\') {
                // Escaped char literal: '\n', '\'', '\u{…}'. The escaped
                // character itself is consumed unconditionally so '\'' does
                // not mistake it for the terminator.
                bump!(3);
                while i < chars.len() && chars[i] != '\'' {
                    bump!(1);
                }
                bump!(1);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: start_line,
                });
                continue;
            }
            let mut j = i + 1;
            while chars
                .get(j)
                .is_some_and(|&ch| ch.is_alphanumeric() || ch == '_')
            {
                j += 1;
            }
            if j > i + 1 && chars.get(j) != Some(&'\'') {
                // Lifetime: skip the quote; the ident lexes next.
                bump!(1);
                continue;
            }
            // Char literal (possibly 'x').
            bump!(1);
            while i < chars.len() && chars[i] != '\'' {
                bump!(1);
            }
            bump!(1);
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text: String::new(),
                line: start_line,
            });
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start_line = line;
            let mut text = String::new();
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                text.push(chars[i]);
                bump!(1);
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line: start_line,
            });
            continue;
        }
        // Number (loose: suffix chars and `_` consumed; `.` is left to
        // punct so ranges like `0..10` stay unambiguous).
        if c.is_ascii_digit() {
            let start_line = line;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                bump!(1);
            }
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text: String::new(),
                line: start_line,
            });
            continue;
        }
        // Everything else: single-char punctuation.
        out.toks.push(Tok {
            kind: TokKind::Punct(c),
            text: String::new(),
            line,
        });
        bump!(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_separated_from_code() {
        let lexed = lex("let s = \".lock().unwrap()\"; // lock-rank: 0\nfoo();");
        assert!(!lexed.toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(lexed.toks.iter().any(|t| t.is_ident("foo")));
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].text, "lock-rank: 0");
        assert_eq!(lexed.comments[0].line, 1);
    }

    #[test]
    fn raw_strings_and_lifetimes_lex_opaquely() {
        let lexed = lex("fn f<'a>(x: &'a str) { let r = r#\"} {\"#; }");
        // The raw string's braces must not appear as puncts.
        let opens = lexed.toks.iter().filter(|t| t.is_punct('{')).count();
        let closes = lexed.toks.iter().filter(|t| t.is_punct('}')).count();
        assert_eq!(opens, 1);
        assert_eq!(closes, 1);
        assert!(lexed.toks.iter().any(|t| t.is_ident("a")));
    }

    #[test]
    fn nested_block_comments_terminate() {
        let lexed = lex("/* a /* b */ c */ fn f() {}");
        assert!(lexed.toks.iter().any(|t| t.is_ident("fn")));
        assert_eq!(lexed.comments.len(), 1);
    }

    #[test]
    fn char_literals_do_not_eat_code() {
        let lexed = lex("let c = '{'; let d = '\\''; done();");
        assert!(lexed.toks.iter().any(|t| t.is_ident("done")));
        assert_eq!(lexed.toks.iter().filter(|t| t.is_punct('{')).count(), 0);
    }
}
