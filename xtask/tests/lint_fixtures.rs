//! Linter self-tests: every known-bad fixture fires its rule exactly
//! once, the known-good fixture is silent, and the real workspace tree is
//! clean — so `cargo test` itself gates the lint surface.

use std::path::PathBuf;
use xtask::rules::Rule;
use xtask::{lint_paths, lint_tree, workspace_root, Report};

fn lint_fixture(name: &str) -> Report {
    let root = workspace_root();
    let path: PathBuf = root.join("xtask/fixtures").join(name);
    lint_paths(&root, &[path]).expect("fixture must be readable")
}

/// Assert the fixture produces exactly one diagnostic, of `rule`.
fn assert_fires_once(name: &str, rule: Rule) {
    let report = lint_fixture(name);
    assert_eq!(
        report.total_violations(),
        1,
        "{name}: expected exactly one diagnostic, got:\n{}",
        report.render_text()
    );
    assert_eq!(
        report.violations[0].0,
        rule,
        "{name}: wrong rule fired:\n{}",
        report.render_text()
    );
}

#[test]
fn bad_l1_lock_unwrap_fires_once() {
    assert_fires_once("bad_l1_lock_unwrap.rs", Rule::LockUnwrap);
}

#[test]
fn bad_l1_empty_allow_reason_still_fires() {
    let report = lint_fixture("bad_l1_empty_allow_reason.rs");
    assert_eq!(report.total_violations(), 1, "{}", report.render_text());
    assert_eq!(report.violations[0].0, Rule::LockUnwrap);
    assert!(
        report.violations[0].1.message.contains("reason"),
        "the diagnostic must demand a justification: {}",
        report.violations[0].1.message
    );
    assert!(
        report.allowed.is_empty(),
        "an empty reason must not count as an exemption"
    );
}

#[test]
fn bad_l2_wetlab_under_guard_fires_once() {
    assert_fires_once("bad_l2_wetlab_under_guard.rs", Rule::WetlabUnderLock);
}

#[test]
fn bad_l3_missing_rank_fires_once() {
    assert_fires_once("bad_l3_missing_rank.rs", Rule::LockRank);
}

#[test]
fn bad_l3_rank_order_fires_once() {
    assert_fires_once("bad_l3_rank_order.rs", Rule::LockRank);
}

#[test]
fn bad_l4_instant_in_commit_path_fires_once() {
    assert_fires_once("bad_l4_instant_in_commit_path.rs", Rule::Determinism);
}

#[test]
fn good_fixture_is_silent() {
    let report = lint_fixture("good.rs");
    assert_eq!(
        report.total_violations(),
        0,
        "good.rs must be lint-clean:\n{}",
        report.render_text()
    );
}

#[test]
fn fixture_effective_paths_are_honored() {
    // The treat-as directive must scope L3/L4 onto fixture files that
    // physically live under xtask/fixtures/.
    let report = lint_fixture("bad_l4_instant_in_commit_path.rs");
    assert!(
        report.violations[0].1.file.starts_with("crates/core/src/"),
        "treat-as path not applied: {}",
        report.violations[0].1.file
    );
}

#[test]
fn workspace_tree_is_lint_clean() {
    let report = lint_tree(&workspace_root()).expect("tree walk");
    assert_eq!(
        report.total_violations(),
        0,
        "the workspace must stay lint-clean:\n{}",
        report.render_text()
    );
    // The justified-exemption surface is part of the contract: an exact
    // count means a new exemption (or a silently dropped one) fails here
    // and must be added deliberately, with this pin updated in the same
    // change.
    assert_eq!(
        report.allowed.len(),
        13,
        "justified-exemption surface changed — review the new/removed \
         exemption and update this pin:\n{}",
        report.render_text()
    );
}
