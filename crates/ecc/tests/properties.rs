//! Property-based tests for the Reed-Solomon codec and encoding units.

use dna_ecc::{EncodingUnit, GfTables, ReedSolomon, UnitConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RS(15,11) corrects every pattern with 2·errors + erasures ≤ 4.
    #[test]
    fn rs_corrects_within_capacity(
        data in prop::collection::vec(0u8..16, 11),
        seed in any::<u64>(),
        errors in 0usize..=2,
    ) {
        let rs = ReedSolomon::new(GfTables::gf16(), 4);
        let clean = rs.encode(&data);
        let mut rng = dna_seq::rng::DetRng::seed_from_u64(seed);
        let erasures_allowed = 4 - 2 * errors;
        let erasures = rng.gen_range(erasures_allowed + 1);
        let mut pos: Vec<usize> = (0..15).collect();
        rng.shuffle(&mut pos);
        let mut cw = clean.clone();
        for &p in &pos[..errors] {
            cw[p] ^= (rng.gen_range(15) + 1) as u8;
        }
        let era: Vec<usize> = pos[errors..errors + erasures].to_vec();
        for &p in &era {
            cw[p] = rng.gen_range(16) as u8;
        }
        rs.decode(&mut cw, &era).unwrap();
        prop_assert_eq!(cw, clean);
    }

    /// Encoding is systematic and always produces valid codewords.
    #[test]
    fn rs_encode_valid(data in prop::collection::vec(0u8..16, 1..=11)) {
        let rs = ReedSolomon::new(GfTables::gf16(), 4);
        let cw = rs.encode(&data);
        prop_assert!(rs.is_valid(&cw));
        prop_assert_eq!(&cw[..data.len()], &data[..]);
    }

    /// GF(256) codec with random payload lengths.
    #[test]
    fn rs256_round_trip(
        data in prop::collection::vec(any::<u8>(), 1..=200),
        err_seed in any::<u64>(),
    ) {
        let rs = ReedSolomon::new(GfTables::gf256(), 8);
        prop_assume!(data.len() + 8 <= 255);
        let clean = rs.encode(&data);
        let mut rng = dna_seq::rng::DetRng::seed_from_u64(err_seed);
        let mut cw = clean.clone();
        // up to 4 random errors (capacity = 8/2)
        let nerr = rng.gen_range(5);
        let mut pos: Vec<usize> = (0..cw.len()).collect();
        rng.shuffle(&mut pos);
        for &p in &pos[..nerr] {
            cw[p] ^= (rng.gen_range(255) + 1) as u8;
        }
        rs.decode(&mut cw, &[]).unwrap();
        prop_assert_eq!(cw, clean);
    }

    /// The encoding unit survives losing any ecc_cols-sized subset of columns.
    #[test]
    fn unit_survives_max_column_loss(
        seed in any::<u64>(),
        loss_seed in any::<u64>(),
    ) {
        let unit = EncodingUnit::new(UnitConfig::paper_default());
        let mut rng = dna_seq::rng::DetRng::seed_from_u64(seed);
        let data: Vec<u8> = (0..264).map(|_| rng.gen_range(256) as u8).collect();
        let cols = unit.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = cols.into_iter().map(Some).collect();
        let mut loss_rng = dna_seq::rng::DetRng::seed_from_u64(loss_seed);
        let mut pos: Vec<usize> = (0..15).collect();
        loss_rng.shuffle(&mut pos);
        for &p in &pos[..4] {
            received[p] = None;
        }
        let (decoded, _) = unit.decode(&received).unwrap();
        prop_assert_eq!(decoded, data);
    }
}
