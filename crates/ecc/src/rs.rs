//! Systematic Reed-Solomon codec with mixed error + erasure decoding.
//!
//! Encoder: generator polynomial `g(x) = Π_{i=0}^{nsym-1} (x − α^i)`;
//! codewords are `[data | parity]`. Decoder: syndromes → Forney syndromes
//! (folding in known erasures) → Berlekamp–Massey error locator → Chien
//! search → Forney magnitudes. Corrects any pattern with
//! `2·errors + erasures ≤ nsym`.
//!
//! In the storage stack, an entire lost molecule becomes one erasure in every
//! codeword row of its encoding unit (§2.1.3), and residual consensus errors
//! become symbol errors.

use crate::{EccError, GfTables};

/// A Reed-Solomon code over a [`GfTables`] field with `nsym` parity symbols.
///
/// # Examples
///
/// ```
/// use dna_ecc::{GfTables, ReedSolomon};
///
/// // The paper's RS(15,11) over GF(16): corrects 2 errors or 4 erasures.
/// let rs = ReedSolomon::new(GfTables::gf16(), 4);
/// let mut cw = rs.encode(&[9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 15]);
/// assert_eq!(cw.len(), 15);
/// cw[0] = 0; // erase first symbol (value unknown)
/// cw[5] = 0;
/// rs.decode(&mut cw, &[0, 5]).unwrap();
/// assert_eq!(cw[0], 9);
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    gf: GfTables,
    nsym: usize,
    gen: Vec<u8>,
}

impl ReedSolomon {
    /// Creates a code with `nsym` parity symbols over `gf`.
    ///
    /// # Panics
    ///
    /// Panics if `nsym` is zero or leaves no room for data
    /// (`nsym >= 2^m − 1`).
    pub fn new(gf: GfTables, nsym: usize) -> ReedSolomon {
        assert!(nsym > 0, "nsym must be positive");
        assert!(
            nsym < gf.max_codeword_len(),
            "nsym {nsym} leaves no data room in GF({})",
            gf.size()
        );
        let mut gen = vec![1u8];
        for i in 0..nsym {
            gen = gf.poly_mul(&gen, &[1, gf.alpha_pow(i)]);
        }
        ReedSolomon { gf, nsym, gen }
    }

    /// Number of parity symbols.
    pub fn nsym(&self) -> usize {
        self.nsym
    }

    /// The field tables.
    pub fn field(&self) -> &GfTables {
        &self.gf
    }

    /// Maximum number of data symbols per codeword.
    pub fn max_data_len(&self) -> usize {
        self.gf.max_codeword_len() - self.nsym
    }

    /// Encodes `data`, returning `data.len() + nsym` symbols.
    ///
    /// # Panics
    ///
    /// Panics if the codeword would exceed `2^m − 1` symbols, if `data` is
    /// empty, or if any symbol is out of field.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert!(!data.is_empty(), "cannot encode empty data");
        assert!(
            data.len() + self.nsym <= self.gf.max_codeword_len(),
            "codeword length {} exceeds field limit {}",
            data.len() + self.nsym,
            self.gf.max_codeword_len()
        );
        for &s in data {
            self.gf.check(s).expect("data symbol out of field");
        }
        // Polynomial long division of data·x^nsym by the (monic) generator.
        let mut out = vec![0u8; data.len() + self.nsym];
        out[..data.len()].copy_from_slice(data);
        for i in 0..data.len() {
            let coef = out[i];
            if coef != 0 {
                for j in 1..self.gen.len() {
                    out[i + j] ^= self.gf.mul(self.gen[j], coef);
                }
            }
        }
        out[..data.len()].copy_from_slice(data);
        out
    }

    /// Decodes `codeword` in place, correcting up to
    /// `(nsym − erasures)/2` unknown errors plus the given erasures.
    /// Returns the number of corrected symbols.
    ///
    /// Erasure positions index into `codeword`; their current contents are
    /// ignored.
    ///
    /// # Errors
    ///
    /// [`EccError::TooManyErrors`] if the pattern is uncorrectable,
    /// [`EccError::ErasureOutOfRange`] / [`EccError::LengthMismatch`] on
    /// malformed input.
    pub fn decode(&self, codeword: &mut [u8], erasures: &[usize]) -> Result<usize, EccError> {
        let n = codeword.len();
        if n > self.gf.max_codeword_len() || n <= self.nsym {
            return Err(EccError::LengthMismatch {
                what: "codeword",
                expected: self.gf.max_codeword_len(),
                got: n,
            });
        }
        for &p in erasures {
            if p >= n {
                return Err(EccError::ErasureOutOfRange {
                    position: p,
                    len: n,
                });
            }
        }
        if erasures.len() > self.nsym {
            return Err(EccError::TooManyErrors);
        }
        for &s in codeword.iter() {
            self.gf.check(s)?;
        }
        for &p in erasures {
            codeword[p] = 0;
        }
        let synd = self.syndromes(codeword);
        if synd.iter().all(|&s| s == 0) {
            return Ok(0);
        }
        let fsynd = self.forney_syndromes(&synd, erasures, n);
        let err_loc = self.error_locator(&fsynd, erasures.len())?;
        let mut err_loc_rev = err_loc.clone();
        err_loc_rev.reverse();
        let err_pos = self.chien_search(&err_loc_rev, n)?;
        let mut all_pos: Vec<usize> = erasures.to_vec();
        all_pos.extend_from_slice(&err_pos);
        all_pos.sort_unstable();
        all_pos.dedup();
        self.correct_errata(codeword, &synd, &all_pos)?;
        let check = self.syndromes(codeword);
        if check.iter().any(|&s| s != 0) {
            return Err(EccError::TooManyErrors);
        }
        Ok(all_pos.len())
    }

    /// Returns `true` if `codeword` is a valid codeword (all syndromes zero).
    pub fn is_valid(&self, codeword: &[u8]) -> bool {
        self.syndromes(codeword).iter().all(|&s| s == 0)
    }

    fn syndromes(&self, cw: &[u8]) -> Vec<u8> {
        (0..self.nsym)
            .map(|i| self.gf.poly_eval(cw, self.gf.alpha_pow(i)))
            .collect()
    }

    /// Folds known erasure locations into the syndromes so BM only has to
    /// find the *unknown* error locations.
    fn forney_syndromes(&self, synd: &[u8], erasures: &[usize], n: usize) -> Vec<u8> {
        let mut fsynd = synd.to_vec();
        for &p in erasures {
            let x = self.gf.alpha_pow(n - 1 - p);
            for j in 0..fsynd.len().saturating_sub(1) {
                fsynd[j] = self.gf.mul(fsynd[j], x) ^ fsynd[j + 1];
            }
            fsynd.pop();
        }
        fsynd
    }

    /// Berlekamp–Massey over the (Forney) syndromes.
    ///
    /// Returns the error locator polynomial, highest-degree first.
    fn error_locator(&self, fsynd: &[u8], erase_count: usize) -> Result<Vec<u8>, EccError> {
        let mut err_loc = vec![1u8];
        let mut old_loc = vec![1u8];
        for i in 0..fsynd.len() {
            old_loc.push(0);
            let mut delta = fsynd[i];
            for j in 1..err_loc.len() {
                let coef = err_loc[err_loc.len() - 1 - j];
                delta ^= self.gf.mul(coef, fsynd[i - j]);
            }
            if delta != 0 {
                if old_loc.len() > err_loc.len() {
                    let new_loc = self.poly_scale(&old_loc, delta);
                    old_loc = self.poly_scale(&err_loc, self.gf.inv(delta).expect("delta nonzero"));
                    err_loc = new_loc;
                }
                let scaled = self.poly_scale(&old_loc, delta);
                err_loc = self.poly_add(&err_loc, &scaled);
            }
        }
        while err_loc.first() == Some(&0) {
            err_loc.remove(0);
        }
        let errs = err_loc.len().saturating_sub(1);
        if errs * 2 + erase_count > self.nsym {
            return Err(EccError::TooManyErrors);
        }
        Ok(err_loc)
    }

    /// Chien search: roots of the (reversed) locator give error positions.
    fn chien_search(&self, err_loc_rev: &[u8], n: usize) -> Result<Vec<usize>, EccError> {
        let errs = err_loc_rev.len().saturating_sub(1);
        let mut pos = Vec::new();
        for i in 0..n {
            if self.gf.poly_eval(err_loc_rev, self.gf.alpha_pow(i)) == 0 {
                pos.push(n - 1 - i);
            }
        }
        if pos.len() != errs {
            return Err(EccError::TooManyErrors);
        }
        Ok(pos)
    }

    /// Forney algorithm: computes magnitudes at the errata positions and
    /// corrects the codeword in place.
    fn correct_errata(
        &self,
        cw: &mut [u8],
        synd: &[u8],
        err_pos: &[usize],
    ) -> Result<(), EccError> {
        let n = cw.len();
        let coef_pos: Vec<usize> = err_pos.iter().map(|&p| n - 1 - p).collect();
        let err_loc = self.errata_locator(&coef_pos);
        // Evaluator: Ω(x) = (x·S(x) · Λ(x)) mod x^(len(Λ)), with S reversed to
        // highest-first and shifted one degree (the extra x makes the Xi
        // factor below produce fcr=0 magnitudes).
        let mut synd_shifted = synd.to_vec();
        synd_shifted.reverse();
        synd_shifted.push(0);
        let err_eval = self.poly_mod_xk(&self.gf.poly_mul(&synd_shifted, &err_loc), err_loc.len());
        let x: Vec<u8> = coef_pos.iter().map(|&c| self.gf.alpha_pow(c)).collect();
        for (i, &xi) in x.iter().enumerate() {
            let xi_inv = self.gf.inv(xi).expect("nonzero locator root");
            // Formal derivative of the locator evaluated via the product rule.
            let mut err_loc_prime = 1u8;
            for (j, &xj) in x.iter().enumerate() {
                if j != i {
                    err_loc_prime = self.gf.mul(err_loc_prime, 1 ^ self.gf.mul(xi_inv, xj));
                }
            }
            if err_loc_prime == 0 {
                return Err(EccError::TooManyErrors);
            }
            let y = self.gf.mul(xi, self.gf.poly_eval(&err_eval, xi_inv));
            let magnitude = self.gf.div(y, err_loc_prime);
            cw[err_pos[i]] ^= magnitude;
        }
        Ok(())
    }

    /// `Π (1 + α^p·x)` for the given coefficient positions, highest-first.
    fn errata_locator(&self, coef_pos: &[usize]) -> Vec<u8> {
        let mut loc = vec![1u8];
        for &p in coef_pos {
            loc = self.gf.poly_mul(&loc, &[self.gf.alpha_pow(p), 1]);
        }
        loc
    }

    fn poly_scale(&self, p: &[u8], s: u8) -> Vec<u8> {
        p.iter().map(|&c| self.gf.mul(c, s)).collect()
    }

    /// Adds two polynomials aligned at the constant term (highest-first).
    fn poly_add(&self, p: &[u8], q: &[u8]) -> Vec<u8> {
        let len = p.len().max(q.len());
        let mut out = vec![0u8; len];
        out[len - p.len()..].copy_from_slice(p);
        for (i, &c) in q.iter().enumerate() {
            out[len - q.len() + i] ^= c;
        }
        out
    }

    /// Remainder of `p` modulo `x^k` (keeps the k lowest-degree terms of a
    /// highest-first polynomial).
    fn poly_mod_xk(&self, p: &[u8], k: usize) -> Vec<u8> {
        if p.len() <= k {
            p.to_vec()
        } else {
            p[p.len() - k..].to_vec()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_seq::rng::DetRng;

    fn rs15_11() -> ReedSolomon {
        ReedSolomon::new(GfTables::gf16(), 4)
    }

    #[test]
    fn encode_is_systematic_and_valid() {
        let rs = rs15_11();
        let data: Vec<u8> = (0..11).collect();
        let cw = rs.encode(&data);
        assert_eq!(cw.len(), 15);
        assert_eq!(&cw[..11], &data[..]);
        assert!(rs.is_valid(&cw));
    }

    #[test]
    fn corrects_up_to_two_errors() {
        let rs = rs15_11();
        let data: Vec<u8> = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
        for (p1, p2) in [(0usize, 14usize), (3, 7), (10, 11), (0, 1)] {
            let mut cw = rs.encode(&data);
            cw[p1] ^= 0x9;
            cw[p2] ^= 0x3;
            let fixed = rs.decode(&mut cw, &[]).unwrap();
            assert_eq!(fixed, 2);
            assert_eq!(&cw[..11], &data[..]);
        }
    }

    #[test]
    fn three_errors_fail_cleanly() {
        let rs = rs15_11();
        let data: Vec<u8> = vec![5; 11];
        let mut failures = 0;
        let mut rng = DetRng::seed_from_u64(77);
        for _ in 0..50 {
            let mut cw = rs.encode(&data);
            // three random distinct positions with random nonzero error values
            let mut pos: Vec<usize> = (0..15).collect();
            rng.shuffle(&mut pos);
            for &p in &pos[..3] {
                cw[p] ^= (rng.gen_range(15) + 1) as u8;
            }
            match rs.decode(&mut cw, &[]) {
                Err(_) => failures += 1,
                Ok(_) => {
                    // Miscorrection to a *different* codeword is possible with
                    // 3 errors (beyond the code's guarantee); decoded result
                    // must at least be a valid codeword.
                    assert!(rs.is_valid(&cw));
                }
            }
        }
        assert!(failures > 20, "most 3-error patterns should be detected");
    }

    #[test]
    fn corrects_four_erasures() {
        let rs = rs15_11();
        let data: Vec<u8> = vec![0xF, 0, 1, 2, 0xA, 9, 9, 9, 3, 4, 5];
        let mut cw = rs.encode(&data);
        let erasures = [1usize, 6, 12, 14];
        for &p in &erasures {
            cw[p] = 0xF; // garbage — contents at erasure positions are ignored
        }
        let fixed = rs.decode(&mut cw, &erasures).unwrap();
        assert_eq!(fixed, 4);
        assert_eq!(&cw[..11], &data[..]);
    }

    #[test]
    fn corrects_one_error_plus_two_erasures() {
        let rs = rs15_11();
        let data: Vec<u8> = vec![7; 11];
        let mut cw = rs.encode(&data);
        cw[2] = 0; // erasure
        cw[9] = 0; // erasure
        cw[13] ^= 0x6; // unknown error
        rs.decode(&mut cw, &[2, 9]).unwrap();
        assert_eq!(&cw[..11], &data[..]);
    }

    #[test]
    fn five_erasures_rejected() {
        let rs = rs15_11();
        let mut cw = rs.encode(&[1; 11]);
        assert_eq!(
            rs.decode(&mut cw, &[0, 1, 2, 3, 4]),
            Err(EccError::TooManyErrors)
        );
    }

    #[test]
    fn erasure_position_validated() {
        let rs = rs15_11();
        let mut cw = rs.encode(&[1; 11]);
        assert!(matches!(
            rs.decode(&mut cw, &[15]),
            Err(EccError::ErasureOutOfRange {
                position: 15,
                len: 15
            })
        ));
    }

    #[test]
    fn clean_codeword_decodes_with_zero_corrections() {
        let rs = rs15_11();
        let mut cw = rs.encode(&[3; 11]);
        assert_eq!(rs.decode(&mut cw, &[]).unwrap(), 0);
    }

    #[test]
    fn shortened_codewords_work() {
        // RS(9,5): 5 data symbols, still 4 parity.
        let rs = rs15_11();
        let data = [1u8, 2, 3, 4, 5];
        let mut cw = rs.encode(&data);
        assert_eq!(cw.len(), 9);
        cw[0] ^= 1;
        cw[8] ^= 0xF;
        rs.decode(&mut cw, &[]).unwrap();
        assert_eq!(&cw[..5], &data[..]);
    }

    #[test]
    fn gf256_roundtrip_with_heavy_erasures() {
        let rs = ReedSolomon::new(GfTables::gf256(), 16);
        let data: Vec<u8> = (0..100).map(|i| (i * 7 + 1) as u8).collect();
        let mut cw = rs.encode(&data);
        assert_eq!(cw.len(), 116);
        let erasures: Vec<usize> = (0..16).map(|i| i * 7).collect();
        for &p in &erasures {
            cw[p] = 0;
        }
        rs.decode(&mut cw, &erasures).unwrap();
        assert_eq!(&cw[..100], &data[..]);
    }

    #[test]
    fn exhaustive_single_error_correction_gf16() {
        let rs = rs15_11();
        let data: Vec<u8> = vec![2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7];
        let clean = rs.encode(&data);
        for pos in 0..15 {
            for val in 1..16u8 {
                let mut cw = clean.clone();
                cw[pos] ^= val;
                let fixed = rs.decode(&mut cw, &[]).unwrap();
                assert_eq!(fixed, 1, "pos {pos} val {val}");
                assert_eq!(cw, clean);
            }
        }
    }

    #[test]
    fn random_error_erasure_mixtures_within_capacity() {
        let rs = rs15_11();
        let mut rng = DetRng::seed_from_u64(4242);
        for trial in 0..200 {
            let data: Vec<u8> = (0..11).map(|_| rng.gen_range(16) as u8).collect();
            let clean = rs.encode(&data);
            let mut cw = clean.clone();
            // pick e errors and v erasures with 2e + v <= 4
            let e = rng.gen_range(3); // 0..=2
            let v = rng.gen_range(4 - 2 * e + 1);
            let mut pos: Vec<usize> = (0..15).collect();
            rng.shuffle(&mut pos);
            let err_pos = &pos[..e];
            let era_pos = &pos[e..e + v];
            for &p in err_pos {
                cw[p] ^= (rng.gen_range(15) + 1) as u8;
            }
            for &p in era_pos {
                cw[p] = rng.gen_range(16) as u8;
            }
            let mut era = era_pos.to_vec();
            era.sort_unstable();
            rs.decode(&mut cw, &era)
                .unwrap_or_else(|e2| panic!("trial {trial}: e={e} v={v} should decode: {e2}"));
            assert_eq!(cw, clean, "trial {trial}");
        }
    }
}
