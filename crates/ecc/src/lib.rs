//! Reed-Solomon error correction and the DNA encoding-unit matrix.
//!
//! The state-of-the-art architecture the paper builds on (Organick et al.,
//! §2.1.3 / Fig. 1b-c) groups molecules into *encoding units*: all molecules
//! of a unit are treated as columns of a matrix, and each row of the matrix
//! is a Reed-Solomon codeword. Losing an entire molecule erases one symbol
//! from every row (an *erasure*, correctable at twice the rate of unknown
//! errors), and residual base errors after consensus become symbol errors.
//!
//! The paper's wetlab configuration (§6.2) uses 4-bit RS symbols →
//! RS(15, 11) over GF(16): 15 molecules per unit, 11 data + 4 ECC, 24-byte
//! molecule payloads → 48 codeword rows, 264 B per unit (256 B data + 8 B
//! padding).
//!
//! This crate provides:
//! - [`GfTables`] — log/antilog arithmetic for GF(2^m), m ≤ 8,
//! - [`ReedSolomon`] — systematic encoder and a Berlekamp-Massey + Forney
//!   decoder supporting mixed errors *and* erasures,
//! - [`EncodingUnit`]/[`UnitConfig`] — the Fig. 1c matrix layout mapping a
//!   unit's bytes to molecule payload columns and back.
//!
//! # Examples
//!
//! ```
//! use dna_ecc::{GfTables, ReedSolomon};
//!
//! let rs = ReedSolomon::new(GfTables::gf16(), 4); // RS(15,11)
//! let data: Vec<u8> = (0..11).collect();
//! let mut cw = rs.encode(&data);
//! cw[3] ^= 0x5; // corrupt one symbol
//! cw[9] ^= 0x2; // and another
//! let corrected = rs.decode(&mut cw, &[]).unwrap();
//! assert_eq!(corrected, 2);
//! assert_eq!(&cw[..11], &data[..]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod gf;
mod matrix;
mod rs;

pub use error::EccError;
pub use gf::GfTables;
pub use matrix::{EncodingUnit, UnitConfig, UnitField};
pub use rs::ReedSolomon;
