//! Finite-field arithmetic for GF(2^m), m ≤ 8, via log/antilog tables.

use crate::EccError;

/// Log/antilog tables for a GF(2^m) field defined by a primitive polynomial.
///
/// The paper's RS code uses GF(16) ("small 4-bit symbols ... to reduce the
/// cost of experiments", §6.2); GF(256) is provided for the larger encoding
/// units of production configurations.
///
/// # Examples
///
/// ```
/// use dna_ecc::GfTables;
/// let gf = GfTables::gf16();
/// assert_eq!(gf.mul(3, 7), 9);         // (x+1)(x^2+x+1) mod x^4+x+1
/// assert_eq!(gf.mul(5, gf.inv(5).unwrap()), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GfTables {
    m: u32,
    size: usize,     // 2^m
    exp: Vec<u8>,    // exp[i] = alpha^i, doubled length to skip mod
    log: Vec<usize>, // log[x] for x != 0
}

impl GfTables {
    /// Builds tables for GF(2^m) with the given primitive polynomial
    /// (including the leading term, e.g. `0b10011` for x⁴+x+1).
    ///
    /// # Panics
    ///
    /// Panics if `m` is not in `2..=8` or the polynomial does not generate
    /// the full multiplicative group (i.e. is not primitive).
    pub fn new(m: u32, prim_poly: u32) -> GfTables {
        assert!((2..=8).contains(&m), "m must be in 2..=8");
        let size = 1usize << m;
        let mut exp = vec![0u8; 2 * (size - 1)];
        let mut log = vec![0usize; size];
        let mut x = 1u32;
        for (i, e) in exp.iter_mut().take(size - 1).enumerate() {
            *e = x as u8;
            assert!(
                !(i > 0 && x == 1),
                "polynomial {prim_poly:#b} is not primitive for m={m}"
            );
            log[x as usize] = i;
            x <<= 1;
            if x & (1 << m) != 0 {
                x ^= prim_poly;
            }
        }
        assert_eq!(x, 1, "polynomial {prim_poly:#b} is not primitive for m={m}");
        exp.copy_within(0..size - 1, size - 1);
        GfTables { m, size, exp, log }
    }

    /// GF(16) with x⁴ + x + 1 — the paper's field.
    pub fn gf16() -> GfTables {
        GfTables::new(4, 0b1_0011)
    }

    /// GF(256) with x⁸ + x⁴ + x³ + x² + 1 (0x11D, the common RS polynomial).
    pub fn gf256() -> GfTables {
        GfTables::new(8, 0x11D)
    }

    /// Field size `2^m`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Symbol width in bits.
    pub fn bits(&self) -> u32 {
        self.m
    }

    /// Maximum codeword length `2^m − 1`.
    pub fn max_codeword_len(&self) -> usize {
        self.size - 1
    }

    /// Checks that `x` is a valid field element.
    pub fn check(&self, x: u8) -> Result<(), EccError> {
        if (x as usize) < self.size {
            Ok(())
        } else {
            Err(EccError::SymbolOutOfField {
                value: x,
                field: self.size,
            })
        }
    }

    /// Addition (= subtraction = XOR in characteristic 2).
    #[inline]
    pub fn add(&self, a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Multiplication via log tables.
    #[inline]
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] + self.log[b as usize]]
        }
    }

    /// Division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[inline]
    pub fn div(&self, a: u8, b: u8) -> u8 {
        assert!(b != 0, "division by zero in GF(2^m)");
        if a == 0 {
            0
        } else {
            self.exp[self.log[a as usize] + (self.size - 1) - self.log[b as usize]]
        }
    }

    /// Multiplicative inverse, or `None` for zero.
    #[inline]
    pub fn inv(&self, a: u8) -> Option<u8> {
        if a == 0 {
            None
        } else {
            Some(self.exp[(self.size - 1) - self.log[a as usize]])
        }
    }

    /// `alpha^i` for any integer power (wraps modulo `2^m − 1`).
    #[inline]
    pub fn alpha_pow(&self, i: usize) -> u8 {
        self.exp[i % (self.size - 1)]
    }

    /// Exponentiation `a^p`.
    pub fn pow(&self, a: u8, p: usize) -> u8 {
        if a == 0 {
            return if p == 0 { 1 } else { 0 };
        }
        let l = (self.log[a as usize] * p) % (self.size - 1);
        self.exp[l]
    }

    /// Evaluates a polynomial (coefficients highest-degree-first) at `x`
    /// using Horner's method.
    pub fn poly_eval(&self, poly: &[u8], x: u8) -> u8 {
        poly.iter()
            .fold(0u8, |acc, &c| self.add(self.mul(acc, x), c))
    }

    /// Multiplies two polynomials (highest-degree-first).
    pub fn poly_mul(&self, a: &[u8], b: &[u8]) -> Vec<u8> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u8; a.len() + b.len() - 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                out[i + j] ^= self.mul(x, y);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf16_multiplication_table_spot_checks() {
        let gf = GfTables::gf16();
        assert_eq!(gf.mul(0, 7), 0);
        assert_eq!(gf.mul(1, 7), 7);
        assert_eq!(gf.mul(2, 8), 3); // x * x^3 = x^4 = x + 1 = 3
        assert_eq!(gf.mul(3, 7), 9);
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for gf in [GfTables::gf16(), GfTables::gf256()] {
            assert_eq!(gf.inv(0), None);
            for a in 1..gf.size() as u16 {
                let a = a as u8;
                let inv = gf.inv(a).unwrap();
                assert_eq!(gf.mul(a, inv), 1, "a={a}");
            }
        }
    }

    #[test]
    fn multiplication_is_commutative_and_associative() {
        let gf = GfTables::gf16();
        for a in 0..16u8 {
            for b in 0..16u8 {
                assert_eq!(gf.mul(a, b), gf.mul(b, a));
                for c in 0..16u8 {
                    assert_eq!(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributivity() {
        let gf = GfTables::gf16();
        for a in 0..16u8 {
            for b in 0..16u8 {
                for c in 0..16u8 {
                    assert_eq!(gf.mul(a, gf.add(b, c)), gf.add(gf.mul(a, b), gf.mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn alpha_generates_whole_group() {
        let gf = GfTables::gf256();
        let mut seen = vec![false; 256];
        for i in 0..255 {
            seen[gf.alpha_pow(i) as usize] = true;
        }
        assert!(seen[1..].iter().all(|&s| s));
        assert!(!seen[0]);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let gf = GfTables::gf16();
        for a in 0..16u8 {
            let mut acc = 1u8;
            for p in 0..10usize {
                assert_eq!(gf.pow(a, p), acc, "a={a} p={p}");
                acc = gf.mul(acc, a);
            }
        }
    }

    #[test]
    fn poly_eval_horner() {
        let gf = GfTables::gf16();
        // p(x) = 3x^2 + 5x + 7 at x=2: 3*4 ^ 5*2 ^ 7 = 12 ^ 10 ^ 7
        let expected = gf.add(gf.add(gf.mul(3, gf.mul(2, 2)), gf.mul(5, 2)), 7);
        assert_eq!(gf.poly_eval(&[3, 5, 7], 2), expected);
    }

    #[test]
    fn poly_mul_degree_and_identity() {
        let gf = GfTables::gf16();
        let p = [1u8, 2, 3];
        assert_eq!(gf.poly_mul(&p, &[1]), p.to_vec());
        let q = gf.poly_mul(&p, &[1, 0]); // multiply by x
        assert_eq!(q, vec![1, 2, 3, 0]);
    }

    #[test]
    #[should_panic(expected = "not primitive")]
    fn non_primitive_polynomial_panics() {
        // x^4 + x^3 + x^2 + x + 1 has order 5, not 15.
        GfTables::new(4, 0b1_1111);
    }
}
