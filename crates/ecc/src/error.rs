//! ECC error types.

use std::error::Error;
use std::fmt;

/// Errors returned by the Reed-Solomon codec and the unit matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EccError {
    /// The codeword is unrecoverable: more errors/erasures than the code can
    /// correct.
    TooManyErrors,
    /// Input had an invalid length for the configured code or unit.
    LengthMismatch {
        /// What was being measured.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// A symbol value does not fit in the field (e.g. ≥16 for GF(16)).
    SymbolOutOfField {
        /// The offending value.
        value: u8,
        /// The field size.
        field: usize,
    },
    /// An erasure position was out of bounds for the codeword.
    ErasureOutOfRange {
        /// The offending position.
        position: usize,
        /// Codeword length.
        len: usize,
    },
}

impl fmt::Display for EccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EccError::TooManyErrors => write!(f, "too many errors to correct"),
            EccError::LengthMismatch {
                what,
                expected,
                got,
            } => {
                write!(f, "{what} length mismatch: expected {expected}, got {got}")
            }
            EccError::SymbolOutOfField { value, field } => {
                write!(f, "symbol {value} does not fit in GF({field})")
            }
            EccError::ErasureOutOfRange { position, len } => {
                write!(
                    f,
                    "erasure position {position} out of range for length {len}"
                )
            }
        }
    }
}

impl Error for EccError {}
