//! The encoding-unit matrix of Fig. 1b/c.
//!
//! An encoding unit packs `data_cols` molecule payloads plus `ecc_cols`
//! parity payloads so that each *row* across the unit's columns is one
//! Reed-Solomon codeword. Losing a whole molecule erases one symbol per row;
//! a consensus mistake corrupts symbols in one column.

use crate::{EccError, GfTables, ReedSolomon};

/// Field choice for a unit's Reed-Solomon code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitField {
    /// 4-bit symbols, RS over GF(16): up to 15 columns. The paper's wetlab
    /// configuration (§6.2: "small 4-bit symbols ... a codeword has 2⁴−1=15
    /// symbols").
    Gf16,
    /// 8-bit symbols, RS over GF(256): up to 255 columns, the scale of
    /// production configurations (tens of thousands of molecules per unit,
    /// §2.1.3).
    Gf256,
}

/// Geometry of an encoding unit.
///
/// # Examples
///
/// ```
/// use dna_ecc::UnitConfig;
///
/// let cfg = UnitConfig::paper_default();
/// assert_eq!(cfg.total_cols, 15);
/// assert_eq!(cfg.data_cols, 11);
/// assert_eq!(cfg.unit_bytes(), 264); // 256 B data + 8 B padding upstream
/// assert_eq!(cfg.rows(), 48);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitConfig {
    /// Total molecules per unit (data + ECC columns).
    pub total_cols: usize,
    /// Data molecules per unit.
    pub data_cols: usize,
    /// Payload bytes per molecule (paper: 24).
    pub col_bytes: usize,
    /// Symbol field.
    pub field: UnitField,
}

impl UnitConfig {
    /// The paper's §6.2 unit: 15 columns (11 data + 4 ECC), 24-byte molecule
    /// payloads, GF(16) symbols → 48 rows, 264 B per unit.
    pub fn paper_default() -> UnitConfig {
        UnitConfig {
            total_cols: 15,
            data_cols: 11,
            col_bytes: 24,
            field: UnitField::Gf16,
        }
    }

    /// Parity columns.
    pub fn ecc_cols(&self) -> usize {
        self.total_cols - self.data_cols
    }

    /// Bytes of unit content (data columns only).
    pub fn unit_bytes(&self) -> usize {
        self.data_cols * self.col_bytes
    }

    /// Codeword rows: symbols per column.
    pub fn rows(&self) -> usize {
        match self.field {
            UnitField::Gf16 => self.col_bytes * 2,
            UnitField::Gf256 => self.col_bytes,
        }
    }

    fn validate(&self) {
        assert!(self.data_cols >= 1, "need at least one data column");
        assert!(
            self.total_cols > self.data_cols,
            "need at least one ECC column"
        );
        let max = match self.field {
            UnitField::Gf16 => 15,
            UnitField::Gf256 => 255,
        };
        assert!(
            self.total_cols <= max,
            "total_cols {} exceeds field capacity {max}",
            self.total_cols
        );
        assert!(self.col_bytes >= 1, "col_bytes must be positive");
    }
}

/// Encoder/decoder for one encoding-unit geometry.
///
/// # Examples
///
/// ```
/// use dna_ecc::{EncodingUnit, UnitConfig};
///
/// let unit = EncodingUnit::new(UnitConfig::paper_default());
/// let data: Vec<u8> = (0..264u32).map(|i| (i % 251) as u8).collect();
/// let cols = unit.encode(&data).unwrap();
/// assert_eq!(cols.len(), 15);
///
/// // Lose 4 whole molecules — still decodable via erasures.
/// let mut received: Vec<Option<Vec<u8>>> = cols.into_iter().map(Some).collect();
/// received[0] = None;
/// received[5] = None;
/// received[9] = None;
/// received[14] = None;
/// let (decoded, _corrected) = unit.decode(&received).unwrap();
/// assert_eq!(decoded, data);
/// ```
#[derive(Debug, Clone)]
pub struct EncodingUnit {
    config: UnitConfig,
    rs: ReedSolomon,
}

impl EncodingUnit {
    /// Creates a codec for the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`UnitConfig`]).
    pub fn new(config: UnitConfig) -> EncodingUnit {
        config.validate();
        let gf = match config.field {
            UnitField::Gf16 => GfTables::gf16(),
            UnitField::Gf256 => GfTables::gf256(),
        };
        let rs = ReedSolomon::new(gf, config.ecc_cols());
        EncodingUnit { config, rs }
    }

    /// The unit geometry.
    pub fn config(&self) -> &UnitConfig {
        &self.config
    }

    /// Encodes `unit_bytes()` bytes into `total_cols` molecule payloads of
    /// `col_bytes` bytes each. Data fills columns in order (Fig. 1c: D\[0..k\)
    /// is column 0); parity columns follow.
    ///
    /// # Errors
    ///
    /// [`EccError::LengthMismatch`] if `data` is not exactly
    /// [`UnitConfig::unit_bytes`] long.
    pub fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, EccError> {
        if data.len() != self.config.unit_bytes() {
            return Err(EccError::LengthMismatch {
                what: "unit data",
                expected: self.config.unit_bytes(),
                got: data.len(),
            });
        }
        let rows = self.config.rows();
        let mut columns = vec![vec![0u8; self.config.col_bytes]; self.config.total_cols];
        // Data columns are direct byte copies.
        for c in 0..self.config.data_cols {
            columns[c].copy_from_slice(&data[c * self.config.col_bytes..][..self.config.col_bytes]);
        }
        // Row-wise RS encode to fill parity columns.
        for r in 0..rows {
            let mut row: Vec<u8> = (0..self.config.data_cols)
                .map(|c| self.symbol(&columns[c], r))
                .collect();
            let cw = self.rs.encode(&row);
            row.clear();
            for (c, &sym) in cw.iter().enumerate().skip(self.config.data_cols) {
                self.set_symbol(&mut columns[c], r, sym);
            }
        }
        Ok(columns)
    }

    /// Decodes molecule payloads back into unit bytes. `None` columns are
    /// treated as erasures for every row. Present columns may contain symbol
    /// errors, corrected by the row codes.
    ///
    /// Returns the decoded bytes and the total number of corrected symbols
    /// across all rows.
    ///
    /// # Errors
    ///
    /// [`EccError::LengthMismatch`] on wrong column count/length, or
    /// [`EccError::TooManyErrors`] if any row is uncorrectable
    /// (`2·errors + erasures > ecc_cols` for that row).
    pub fn decode(&self, columns: &[Option<Vec<u8>>]) -> Result<(Vec<u8>, usize), EccError> {
        if columns.len() != self.config.total_cols {
            return Err(EccError::LengthMismatch {
                what: "column count",
                expected: self.config.total_cols,
                got: columns.len(),
            });
        }
        for col in columns.iter().flatten() {
            if col.len() != self.config.col_bytes {
                return Err(EccError::LengthMismatch {
                    what: "column",
                    expected: self.config.col_bytes,
                    got: col.len(),
                });
            }
        }
        let erasures: Vec<usize> = columns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.is_none().then_some(i))
            .collect();
        let rows = self.config.rows();
        let mut restored = vec![vec![0u8; self.config.col_bytes]; self.config.data_cols];
        let mut corrected = 0usize;
        let mut cw = vec![0u8; self.config.total_cols];
        for r in 0..rows {
            for (c, col) in columns.iter().enumerate() {
                cw[c] = match col {
                    Some(bytes) => self.symbol(bytes, r),
                    None => 0,
                };
            }
            corrected += self.rs.decode(&mut cw, &erasures)?;
            for c in 0..self.config.data_cols {
                self.set_symbol(&mut restored[c], r, cw[c]);
            }
        }
        let mut out = Vec::with_capacity(self.config.unit_bytes());
        for col in restored {
            out.extend_from_slice(&col);
        }
        Ok((out, corrected))
    }

    /// Extracts row-`r` symbol from a column payload.
    fn symbol(&self, col: &[u8], r: usize) -> u8 {
        match self.config.field {
            UnitField::Gf16 => {
                let byte = col[r / 2];
                if r.is_multiple_of(2) {
                    byte >> 4
                } else {
                    byte & 0x0F
                }
            }
            UnitField::Gf256 => col[r],
        }
    }

    fn set_symbol(&self, col: &mut [u8], r: usize, sym: u8) {
        match self.config.field {
            UnitField::Gf16 => {
                let byte = &mut col[r / 2];
                if r.is_multiple_of(2) {
                    *byte = (*byte & 0x0F) | (sym << 4);
                } else {
                    *byte = (*byte & 0xF0) | (sym & 0x0F);
                }
            }
            UnitField::Gf256 => col[r] = sym,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_seq::rng::DetRng;

    fn unit() -> EncodingUnit {
        EncodingUnit::new(UnitConfig::paper_default())
    }

    fn sample_data(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = DetRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(256) as u8).collect()
    }

    #[test]
    fn paper_geometry() {
        let cfg = UnitConfig::paper_default();
        assert_eq!(cfg.ecc_cols(), 4);
        assert_eq!(cfg.unit_bytes(), 264);
        assert_eq!(cfg.rows(), 48);
    }

    #[test]
    fn clean_round_trip() {
        let u = unit();
        let data = sample_data(264, 1);
        let cols = u.encode(&data).unwrap();
        assert_eq!(cols.len(), 15);
        assert!(cols.iter().all(|c| c.len() == 24));
        let received: Vec<Option<Vec<u8>>> = cols.into_iter().map(Some).collect();
        let (decoded, corrected) = u.decode(&received).unwrap();
        assert_eq!(decoded, data);
        assert_eq!(corrected, 0);
    }

    #[test]
    fn data_columns_are_systematic() {
        let u = unit();
        let data = sample_data(264, 2);
        let cols = u.encode(&data).unwrap();
        for c in 0..11 {
            assert_eq!(&cols[c][..], &data[c * 24..(c + 1) * 24]);
        }
    }

    #[test]
    fn four_lost_molecules_recovered() {
        let u = unit();
        let data = sample_data(264, 3);
        let cols = u.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = cols.into_iter().map(Some).collect();
        for &c in &[2usize, 7, 11, 14] {
            received[c] = None;
        }
        let (decoded, corrected) = u.decode(&received).unwrap();
        assert_eq!(decoded, data);
        assert_eq!(corrected, 4 * 48); // 4 erasures in every one of 48 rows
    }

    #[test]
    fn five_lost_molecules_fail() {
        let u = unit();
        let data = sample_data(264, 4);
        let cols = u.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = cols.into_iter().map(Some).collect();
        for &c in &[0usize, 1, 2, 3, 4] {
            received[c] = None;
        }
        assert_eq!(u.decode(&received), Err(EccError::TooManyErrors));
    }

    #[test]
    fn corrupted_column_bytes_corrected() {
        let u = unit();
        let data = sample_data(264, 5);
        let cols = u.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = cols.into_iter().map(Some).collect();
        // Corrupt two whole bytes in different columns: each byte is two
        // symbols in two adjacent rows of that column -> 2 errors per row max.
        if let Some(col) = received[3].as_mut() {
            col[0] ^= 0xFF;
        }
        if let Some(col) = received[8].as_mut() {
            col[10] ^= 0x3C;
        }
        let (decoded, corrected) = u.decode(&received).unwrap();
        assert_eq!(decoded, data);
        assert!(corrected >= 3);
    }

    #[test]
    fn mixed_loss_and_corruption() {
        let u = unit();
        let data = sample_data(264, 6);
        let cols = u.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = cols.into_iter().map(Some).collect();
        received[1] = None; // erasure
        received[13] = None; // erasure
        if let Some(col) = received[6].as_mut() {
            col[5] ^= 0x11; // one error in two rows... 0x11 flips one nibble in each of rows 10,11
        }
        let (decoded, _) = u.decode(&received).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn wrong_lengths_rejected() {
        let u = unit();
        assert!(matches!(
            u.encode(&[0u8; 263]),
            Err(EccError::LengthMismatch {
                expected: 264,
                got: 263,
                ..
            })
        ));
        let cols = u.encode(&sample_data(264, 7)).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = cols.into_iter().map(Some).collect();
        received.pop();
        assert!(u.decode(&received).is_err());
    }

    #[test]
    fn gf256_unit_round_trip() {
        let cfg = UnitConfig {
            total_cols: 30,
            data_cols: 24,
            col_bytes: 24,
            field: UnitField::Gf256,
        };
        let u = EncodingUnit::new(cfg);
        let data = sample_data(cfg.unit_bytes(), 8);
        let cols = u.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = cols.into_iter().map(Some).collect();
        for &c in &[0usize, 10, 20, 29, 15, 3] {
            received[c] = None; // 6 erasures, ecc_cols = 6
        }
        let (decoded, _) = u.decode(&received).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    #[should_panic(expected = "exceeds field capacity")]
    fn gf16_caps_at_15_columns() {
        EncodingUnit::new(UnitConfig {
            total_cols: 16,
            data_cols: 11,
            col_bytes: 24,
            field: UnitField::Gf16,
        });
    }
}
