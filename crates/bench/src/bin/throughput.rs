//! Serving-layer throughput: requests/sec and wetlab rounds per request
//! for 1..=32 client threads against one shared [`StoreServer`], cold vs
//! warm cache.
//!
//! Two effects compose here:
//!
//! - **Coalescing**: concurrent cold reads arriving within the batching
//!   window share multiplex PCR rounds, so wetlab rounds per request
//!   *falls* as client concurrency rises.
//! - **Caching**: a warm re-read of a decoded block costs zero wetlab
//!   rounds and never waits behind an executing wetlab batch, so warm
//!   throughput is bounded by lock handoff, not chemistry.

use dna_bench::report;
use dna_block_store::{
    BatchWindow, BlockStore, PartitionConfig, PartitionId, ServerConfig, ServerStats, StoreServer,
    BLOCK_SIZE,
};
use dna_seq::rng::DetRng;
use std::time::{Duration, Instant};

const PARTITIONS: usize = 4;
const BLOCKS_PER: u64 = 4;
const READS_PER_THREAD: usize = 8;

fn build_server(seed: u64) -> (StoreServer, Vec<PartitionId>) {
    let config = ServerConfig {
        cache_capacity: (PARTITIONS * BLOCKS_PER as usize) * 2,
        window: BatchWindow::Window(Duration::from_micros(500)),
        ..ServerConfig::paper_default()
    };
    let server = StoreServer::new(BlockStore::new(seed), config);
    let mut pids = Vec::new();
    for p in 0..PARTITIONS {
        let pid = server
            .create_partition(PartitionConfig::paper_default(0x400 + p as u64))
            .expect("primer library has room");
        let data = dna_block_store::workload::deterministic_text(
            BLOCKS_PER as usize * BLOCK_SIZE,
            50 + p as u64,
        );
        server.write_file(pid, &data).expect("write");
        pids.push(pid);
    }
    (server, pids)
}

/// Fires `READS_PER_THREAD` seeded block reads from each of `threads`
/// client threads; returns the wall-clock time of the storm.
fn drive(server: &StoreServer, pids: &[PartitionId], threads: usize, phase: u64) -> Duration {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let mut rng = DetRng::seed_from_u64(0x7900 + phase).derive(t as u64);
                for _ in 0..READS_PER_THREAD {
                    let p = rng.gen_range(PARTITIONS);
                    let b = rng.gen_range(BLOCKS_PER as usize) as u64;
                    server.read_block(pids[p], b).expect("read");
                }
            });
        }
    });
    start.elapsed()
}

fn per_request(value: u64, requests: u64) -> f64 {
    value as f64 / requests.max(1) as f64
}

fn req_per_sec(requests: u64, wall: Duration) -> f64 {
    requests as f64 / wall.as_secs_f64().max(1e-9)
}

fn run_config(threads: usize) {
    let (server, pids) = build_server(21);
    let requests = (threads * READS_PER_THREAD) as u64;

    // Cold: empty cache, every distinct block pays wetlab work once.
    let cold_wall = drive(&server, &pids, threads, 0);
    let cold: ServerStats = server.stats();

    // Warm: the identical storm again — the working set is cached.
    let warm_wall = drive(&server, &pids, threads, 0);
    let warm = server.stats();
    let warm_rounds = warm.rounds_executed - cold.rounds_executed;
    let warm_hits = warm.cache_hits - cold.cache_hits;

    report::section(&format!(
        "{threads} client thread(s), {requests} reads per phase"
    ));
    report::row(
        "requests/sec (cold -> warm)",
        format!(
            "{:.0} -> {:.0}",
            req_per_sec(requests, cold_wall),
            req_per_sec(requests, warm_wall)
        ),
    );
    report::row(
        "wetlab rounds per request (cold -> warm)",
        format!(
            "{:.2} -> {:.2}",
            per_request(cold.rounds_executed, requests),
            per_request(warm_rounds, requests)
        ),
    );
    report::row(
        "cold misses / coalesced / rounds",
        format!(
            "{} / {} / {}",
            cold.cache_misses, cold.reads_coalesced, cold.rounds_executed
        ),
    );
    report::row(
        "warm hit rate",
        format!("{:.0}%", 100.0 * per_request(warm_hits, requests)),
    );
    report::row("stale serves", warm.stale_serves);
    assert_eq!(warm.stale_serves, 0, "coherence contract");
    assert_eq!(
        warm_rounds, 0,
        "a fully warm working set must execute 0 wetlab rounds"
    );
}

fn main() {
    report::section("serving-layer throughput: coalescing + caching");
    report::row(
        "model",
        "N client threads -> one StoreServer (500us batching window, LRU cache)",
    );
    report::row(
        "workload",
        format!(
            "{PARTITIONS} partitions x {BLOCKS_PER} blocks, {READS_PER_THREAD} seeded reads/thread"
        ),
    );
    for threads in [1usize, 2, 4, 8, 16, 32] {
        run_config(threads);
    }
}
