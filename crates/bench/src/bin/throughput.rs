//! Serving-layer throughput: the sharded concurrency architecture vs the
//! serialized global-lock baseline, plus the coalescing/caching profile.
//!
//! Three effects compose in the sharded path:
//!
//! - **Sharding**: per-partition tubes behind per-shard locks, with the
//!   wetlab/decode phase running outside all locks — reads of shard A
//!   proceed concurrently with traffic on shard B, and the multiplex
//!   rounds of one batch execute on scoped threads.
//! - **Coalescing**: concurrent cold reads arriving within the batching
//!   window share multiplex PCR rounds, so wetlab rounds per request
//!   *falls* as client concurrency rises.
//! - **Caching**: a warm re-read of a decoded block costs zero wetlab
//!   rounds and never waits behind an executing wetlab batch.
//!
//! The baseline models the pre-sharding architecture the refactor
//! removed: one global `Mutex` around the whole store, every request
//! taking it for its full wetlab round-trip — amplification, sequencing
//! and decode of *unrelated* partitions fully serialized.
//!
//! Besides the human-readable report, the scaling sweep is emitted as
//! machine-readable `BENCH_throughput.json` (threads × shards →
//! wall-clock per path, rounds/request, speedup) — CI archives it as the
//! start of the serving-layer perf trajectory.

use dna_bench::report;
use dna_block_store::{
    BatchWindow, BlockStore, PartitionConfig, PartitionId, ServerConfig, ServerStats, StoreServer,
    BLOCK_SIZE,
};
use dna_seq::rng::DetRng;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Reads each client thread fires per phase. Sized so the sweep measures
/// the architectures, not the serving path's fixed per-batch window: with
/// the wetlab fast path a multiplex round is cheap enough that a short
/// request storm is dominated by the 500us batching windows, which would
/// understate the serialized baseline's per-request wetlab cost.
const READS_PER_THREAD: usize = 16;
/// Blocks written per partition.
const BLOCKS_PER: u64 = 4;
/// Floor on `serialized / sharded-cache-off` wall clock for qualifying
/// cells. The cache-off column isolates the concurrency layer; with no
/// spare cores the wetlab rounds serialize anyway and the batching window
/// adds latency, so a bounded slowdown is tolerated — but a genuine
/// concurrency regression (lock contention, lost round parallelism)
/// produces ratios far below this. Previously this column was measured
/// but never gated, so a cache-off regression could hide behind the
/// cached headline speedup.
const NOCACHE_FLOOR: f64 = 0.7;

// ---------------------------------------------------------------------------
// workload
// ---------------------------------------------------------------------------

/// The seeded read plan of one client thread: `(shard, block)` pairs
/// spread round-robin over the shards so every cell of the sweep touches
/// all of its partitions.
fn plan(threads: usize, thread: usize, shards: usize, phase: u64) -> Vec<(usize, u64)> {
    let mut rng = DetRng::seed_from_u64(0x7900 + phase).derive(thread as u64);
    (0..READS_PER_THREAD)
        .map(|i| {
            let s = (thread + i * threads) % shards;
            let b = rng.gen_range(BLOCKS_PER as usize) as u64;
            (s, b)
        })
        .collect()
}

fn build_store(seed: u64, shards: usize) -> (BlockStore, Vec<PartitionId>) {
    let store = BlockStore::new(seed);
    let mut pids = Vec::new();
    for p in 0..shards {
        let pid = store
            .create_partition(PartitionConfig::paper_default(0x400 + p as u64))
            .expect("primer library has room");
        let data = dna_block_store::workload::deterministic_text(
            BLOCKS_PER as usize * BLOCK_SIZE,
            50 + p as u64,
        );
        store.write_file(pid, &data).expect("write");
        pids.push(pid);
    }
    (store, pids)
}

// ---------------------------------------------------------------------------
// the two architectures under test
// ---------------------------------------------------------------------------

/// Pre-sharding baseline: one global mutex, every request holds it for
/// its entire wetlab round-trip.
fn run_serialized(seed: u64, threads: usize, shards: usize) -> Duration {
    let (store, pids) = build_store(seed, shards);
    let store = Mutex::new(store);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = &store;
            let pids = &pids;
            scope.spawn(move || {
                for (s, b) in plan(threads, t, shards, 0) {
                    // The store is read-only here: a poisoned lock (a
                    // panicked sibling worker) leaves nothing half-written,
                    // so recover and keep measuring.
                    let guard = store.lock().unwrap_or_else(PoisonError::into_inner);
                    guard.read_block(pids[s], b).expect("read");
                    drop(guard);
                }
            });
        }
    });
    start.elapsed()
}

/// The sharded serving path, cold-started: per-shard tubes, coalesced
/// multiplex rounds, request dedup, and (when `cache_blocks > 0`) the
/// update-aware decoded-block cache — the full serving architecture the
/// refactor enables. `cache_blocks = 0` measures the concurrency layer
/// alone.
fn run_sharded(
    seed: u64,
    threads: usize,
    shards: usize,
    cache_blocks: usize,
) -> (Duration, ServerStats) {
    let (store, pids) = build_store(seed, shards);
    let config = ServerConfig {
        cache_capacity: cache_blocks,
        window: BatchWindow::Window(Duration::from_micros(500)),
        ..ServerConfig::paper_default()
    };
    let server = StoreServer::new(store, config);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let server = &server;
            let pids = &pids;
            scope.spawn(move || {
                for (s, b) in plan(threads, t, shards, 0) {
                    server.read_block(pids[s], b).expect("read");
                }
            });
        }
    });
    (start.elapsed(), server.stats())
}

// ---------------------------------------------------------------------------
// scaling sweep + JSON
// ---------------------------------------------------------------------------

struct Cell {
    threads: usize,
    shards: usize,
    requests: u64,
    serialized_ms: f64,
    sharded_ms: f64,
    sharded_nocache_ms: f64,
    speedup: f64,
    nocache_speedup: f64,
    rounds: u64,
    rounds_per_request: f64,
    coalesced: u64,
    cache_hits: u64,
    stale_serves: u64,
}

fn run_cell(threads: usize, shards: usize) -> Cell {
    let seed = 21;
    let serialized = run_serialized(seed, threads, shards);
    let cache = shards * BLOCKS_PER as usize * 2;
    let (sharded, stats) = run_sharded(seed, threads, shards, cache);
    let (nocache, nocache_stats) = run_sharded(seed, threads, shards, 0);
    let requests = (threads * READS_PER_THREAD) as u64;
    assert_eq!(nocache_stats.stale_serves, 0);
    Cell {
        threads,
        shards,
        requests,
        serialized_ms: serialized.as_secs_f64() * 1e3,
        sharded_ms: sharded.as_secs_f64() * 1e3,
        sharded_nocache_ms: nocache.as_secs_f64() * 1e3,
        speedup: serialized.as_secs_f64() / sharded.as_secs_f64().max(1e-9),
        nocache_speedup: serialized.as_secs_f64() / nocache.as_secs_f64().max(1e-9),
        rounds: stats.rounds_executed,
        rounds_per_request: nocache_stats.rounds_executed as f64 / requests.max(1) as f64,
        coalesced: nocache_stats.reads_coalesced,
        cache_hits: stats.cache_hits,
        stale_serves: stats.stale_serves,
    }
}

fn write_json(cells: &[Cell]) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"throughput\",\n  \"reads_per_thread\": {READS_PER_THREAD},\n  \"blocks_per_shard\": {BLOCKS_PER},\n  \"available_parallelism\": {cores},\n  \"nocache_gate\": {{\"floor\": {NOCACHE_FLOOR}, \"rationale\": \"cache-off isolates the concurrency layer; on a host without spare cores the wetlab rounds serialize anyway and the 500us batching window adds latency per round, so the floor tolerates a bounded slowdown instead of demanding parity — a real concurrency regression (contention, lost round parallelism) lands far below it\"}},\n  \"cells\": [\n"
    ));
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"shards\": {}, \"requests\": {}, \
             \"serialized_wall_ms\": {:.3}, \"sharded_wall_ms\": {:.3}, \
             \"sharded_nocache_wall_ms\": {:.3}, \
             \"speedup\": {:.3}, \"nocache_speedup\": {:.3}, \
             \"rounds\": {}, \"rounds_per_request\": {:.4}, \
             \"reads_coalesced\": {}, \"cache_hits\": {}, \"stale_serves\": {}}}{}\n",
            c.threads,
            c.shards,
            c.requests,
            c.serialized_ms,
            c.sharded_ms,
            c.sharded_nocache_ms,
            c.speedup,
            c.nocache_speedup,
            c.rounds,
            c.rounds_per_request,
            c.coalesced,
            c.cache_hits,
            c.stale_serves,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = "BENCH_throughput.json";
    std::fs::write(path, out).expect("write BENCH_throughput.json");
    report::row("machine-readable sweep", path);
}

// ---------------------------------------------------------------------------
// coalescing/caching profile (cold vs warm) — the PR3 view, kept
// ---------------------------------------------------------------------------

fn per_request(value: u64, requests: u64) -> f64 {
    value as f64 / requests.max(1) as f64
}

fn run_profile(threads: usize) {
    let (store, pids) = build_store(21, 4);
    let config = ServerConfig {
        cache_capacity: 4 * BLOCKS_PER as usize * 2,
        window: BatchWindow::Window(Duration::from_micros(500)),
        ..ServerConfig::paper_default()
    };
    let server = StoreServer::new(store, config);
    let requests = (threads * READS_PER_THREAD) as u64;
    let drive = |phase: u64| {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let server = &server;
                let pids = &pids;
                scope.spawn(move || {
                    let mut rng = DetRng::seed_from_u64(0x7900 + phase).derive(t as u64);
                    for _ in 0..READS_PER_THREAD {
                        let p = rng.gen_range(pids.len());
                        let b = rng.gen_range(BLOCKS_PER as usize) as u64;
                        server.read_block(pids[p], b).expect("read");
                    }
                });
            }
        });
        start.elapsed()
    };

    // Cold: empty cache, every distinct block pays wetlab work once.
    let cold_wall = drive(0);
    let cold: ServerStats = server.stats();
    // Warm: the identical storm again — the working set is cached.
    let warm_wall = drive(0);
    let warm = server.stats();
    let warm_rounds = warm.rounds_executed - cold.rounds_executed;
    let warm_hits = warm.cache_hits - cold.cache_hits;

    report::section(&format!(
        "{threads} client thread(s), {requests} reads per phase"
    ));
    report::row(
        "requests/sec (cold -> warm)",
        format!(
            "{:.0} -> {:.0}",
            requests as f64 / cold_wall.as_secs_f64().max(1e-9),
            requests as f64 / warm_wall.as_secs_f64().max(1e-9)
        ),
    );
    report::row(
        "wetlab rounds per request (cold -> warm)",
        format!(
            "{:.2} -> {:.2}",
            per_request(cold.rounds_executed, requests),
            per_request(warm_rounds, requests)
        ),
    );
    report::row(
        "cold misses / coalesced / rounds",
        format!(
            "{} / {} / {}",
            cold.cache_misses, cold.reads_coalesced, cold.rounds_executed
        ),
    );
    report::row(
        "warm hit rate",
        format!("{:.0}%", 100.0 * per_request(warm_hits, requests)),
    );
    report::row("stale serves", warm.stale_serves);
    assert_eq!(warm.stale_serves, 0, "coherence contract");
    assert_eq!(
        warm_rounds, 0,
        "a fully warm working set must execute 0 wetlab rounds"
    );
}

fn main() {
    report::section("multi-shard scaling: sharded server vs serialized global lock");
    report::row(
        "baseline",
        "Mutex<BlockStore>: each request holds the global lock for its wetlab round-trip",
    );
    report::row(
        "sharded",
        "StoreServer (500us window): coalesced rounds over per-shard tubes + decoded-block cache",
    );
    report::row(
        "workload",
        format!("{READS_PER_THREAD} seeded reads/thread, {BLOCKS_PER} blocks/shard"),
    );
    let mut cells = Vec::new();
    for &shards in &[1usize, 2, 4] {
        for &threads in &[1usize, 2, 4, 8, 16] {
            let cell = run_cell(threads, shards);
            report::row(
                &format!("threads={threads:<2} shards={shards}"),
                format!(
                    "{:>7.1}ms serialized | {:>7.1}ms sharded ({:>7.1}ms cache-off) | {:>5.2}x | {:.2} rounds/req",
                    cell.serialized_ms,
                    cell.sharded_ms,
                    cell.sharded_nocache_ms,
                    cell.speedup,
                    cell.rounds_per_request
                ),
            );
            assert_eq!(cell.stale_serves, 0, "coherence contract");
            cells.push(cell);
        }
    }
    write_json(&cells);
    // The acceptance bar: with >=4 client threads over >=4 partitions the
    // serving architecture must beat the serialized global-lock baseline
    // by >=10x wall-clock. The baseline is the architecture the refactor
    // removed — every request holding one global `Mutex<BlockStore>` for
    // its full wetlab round-trip; the serving path wins through
    // coalesced/deduplicated multiplex rounds over per-shard tubes plus
    // the decoded-block cache (the cache-off column above isolates the
    // concurrency layer, and on multi-core hosts the scoped-thread round
    // dispatch adds wall-clock parallelism on top). The bar was raised
    // from 2x when the wetlab fast path (k-mer annealing prefilter,
    // binding caches, sequencing/decode scratch reuse) cut per-round
    // simulation cost and the sweep's workload was scaled to amortize the
    // serving path's fixed batching windows. Every qualifying cell must
    // also clear a 1.2x sanity floor so a concurrency regression in one
    // cell cannot hide behind another cell's headline number.
    let qualifying: Vec<&Cell> = cells
        .iter()
        .filter(|c| c.threads >= 4 && c.shards >= 4)
        .collect();
    let best = qualifying
        .iter()
        .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
        .expect("sweep covers the acceptance cells");
    report::section("acceptance");
    report::row(
        "threads>=4, shards>=4 best speedup vs global lock",
        format!(
            "{:.2}x (threads={}, shards={})",
            best.speedup, best.threads, best.shards
        ),
    );
    let worst_nocache = qualifying
        .iter()
        .min_by(|a, b| a.nocache_speedup.total_cmp(&b.nocache_speedup))
        .expect("sweep covers the acceptance cells");
    report::row(
        "threads>=4, shards>=4 worst cache-off speedup vs global lock",
        format!(
            "{:.2}x (threads={}, shards={}, floor {NOCACHE_FLOOR}x)",
            worst_nocache.nocache_speedup, worst_nocache.threads, worst_nocache.shards
        ),
    );
    for cell in &qualifying {
        assert!(
            cell.speedup >= 1.2,
            "qualifying cell threads={} shards={} regressed below the 1.2x floor ({:.2}x)",
            cell.threads,
            cell.shards,
            cell.speedup
        );
        assert!(
            cell.nocache_speedup >= NOCACHE_FLOOR,
            "qualifying cell threads={} shards={} cache-off path fell below the \
             {NOCACHE_FLOOR}x floor vs the serialized baseline ({:.2}x): the \
             concurrency layer itself has regressed, independent of the cache",
            cell.threads,
            cell.shards,
            cell.nocache_speedup
        );
    }
    assert!(
        best.speedup >= 10.0,
        "sharded serving must beat the serialized global-lock baseline by >=10x \
         at threads={} shards={} (got {:.2}x)",
        best.threads,
        best.shards,
        best.speedup
    );

    report::section("serving-layer profile: coalescing + caching");
    report::row(
        "model",
        "N client threads -> one StoreServer (500us batching window, LRU cache)",
    );
    for threads in [1usize, 2, 4, 8, 16, 32] {
        run_profile(threads);
    }
}
