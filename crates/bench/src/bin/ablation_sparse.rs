//! Ablation: the §4.3 sparse index construction vs the dense baseline.

use dna_bench::experiments::ablations;
use dna_bench::report;

fn main() {
    let r = ablations::sparse_vs_dense(0xAB1A7E);
    report::section("Ablation: sparse (PCR-navigable) vs dense (max-density) indexes");
    report::compare(
        "max homopolymer (sparse)",
        "<=2 by construction",
        r.sparse_quality.max_homopolymer,
    );
    report::row("max homopolymer (dense)", r.dense_quality.max_homopolymer);
    report::compare(
        "worst prefix GC deviation (sparse)",
        "~0 (balanced)",
        format!("{:.2}", r.sparse_quality.max_gc_deviation),
    );
    report::row(
        "worst prefix GC deviation (dense)",
        format!("{:.2}", r.dense_quality.max_gc_deviation),
    );
    report::compare(
        "mean pairwise Hamming (sparse vs dense)",
        ">=2x (§4.3)",
        format!(
            "{:.2} vs {:.2} = {:.2}x",
            r.sparse_mean_distance,
            r.dense_mean_distance,
            r.sparse_mean_distance / r.dense_mean_distance
        ),
    );
    report::compare(
        "invalid elongated primers (sparse)",
        "0%",
        format!("{:.0}%", r.sparse_invalid_primers * 100.0),
    );
    report::row(
        "invalid elongated primers (dense)",
        format!("{:.0}%", r.dense_invalid_primers * 100.0),
    );
    report::row(
        "precise-access on-target (sparse)",
        format!("{:.1}%", r.sparse_on_target * 100.0),
    );
    report::row(
        "precise-access on-target (dense)",
        format!("{:.1}%", r.dense_on_target * 100.0),
    );
}
