//! Ablation: elongation depth vs retrieval precision (sequential access).

use dna_bench::experiments::ablations;
use dna_bench::report;

fn main() {
    report::section("Ablation: partial elongation sweep around block 531");
    println!(
        "  {:>7} | {:>11} | {:>16} | {:>15}",
        "levels", "primer len", "amplified leaves", "useful fraction"
    );
    for p in ablations::elongation_sweep(0xE10) {
        println!(
            "  {:>7} | {:>11} | {:>16} | {:>14.3}%",
            p.levels,
            p.primer_len,
            p.amplified_leaves,
            p.expected_useful * 100.0
        );
    }
    report::row(
        "interpretation",
        "each 2-base elongation narrows scope 4x (Fig. 4 partial elongation)",
    );
}
