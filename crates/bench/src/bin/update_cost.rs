//! §7.5 update cost table: synthesis and sequencing reductions.

use dna_bench::alice::{build, AliceConfig};
use dna_bench::experiments::{costs, fig9};
use dna_bench::report;

fn main() {
    let setup = build(AliceConfig::default());
    let b = fig9::precise_access(&setup, 531, 50_000, 0.20, 2);
    let table = costs::update_costs(b.on_target_fraction)
        .expect("measured on-target fraction must be in (0, 1]");
    report::section("§7.5 cost of creating and retrieving updates (block 531)");
    report::compare(
        "baseline synthesis (naive re-partition)",
        "8805 molecules",
        format!("{} molecules", table.baseline_synthesis_molecules),
    );
    report::compare(
        "our synthesis (one patch unit)",
        "15 molecules",
        format!("{} molecules", table.patch_molecules),
    );
    report::compare(
        "synthesis reduction",
        "~580x",
        format!("{:.0}x", table.synthesis_reduction),
    );
    report::compare(
        "updated-block sequencing reduction",
        "~146x",
        format!("{:.0}x", table.updated_read_reduction),
    );
    report::row(
        "vendor-model dollars (baseline vs patch)",
        format!(
            "${:.0} vs ${:.2}",
            table.baseline_dollars, table.patch_dollars
        ),
    );
    report::row(
        "hidden costs removed (§7.5.1)",
        "no primer pair burned, no stale copy, no re-notification",
    );
}
