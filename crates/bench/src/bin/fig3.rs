//! Regenerates Figure 3: capacity & density vs index length.

use dna_bench::experiments::fig3;

fn main() {
    let fig = fig3::run();
    fig3::print(&fig);
}
