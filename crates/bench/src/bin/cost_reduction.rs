//! §7.1–§7.3 sequencing-cost table, from measured Fig. 9 fractions.

use dna_bench::alice::{build, AliceConfig};
use dna_bench::experiments::{costs, fig9};
use dna_bench::report;

fn main() {
    let setup = build(AliceConfig::default());
    let a = fig9::whole_partition(&setup, 50_000, 1);
    let b = fig9::precise_access(&setup, 531, 50_000, 0.20, 2);
    let table = costs::sequencing_costs(a.fraction_block_531, b.on_target_fraction)
        .expect("measured useful fractions must be in (0, 1]");
    report::section("§7.3 sequencing cost reduction (block 531)");
    report::compare(
        "baseline useful fraction",
        "0.34%",
        format!("{:.2}%", table.baseline_useful * 100.0),
    );
    report::compare(
        "baseline waste factor",
        "293x",
        format!("{:.0}x", table.waste_baseline),
    );
    report::compare(
        "precise-access useful fraction",
        "48%",
        format!("{:.1}%", table.ours_useful * 100.0),
    );
    report::compare(
        "precise-access waste factor",
        "1.08x",
        format!("{:.2}x", table.waste_ours),
    );
    report::compare(
        "sequencing cost reduction",
        "141x",
        format!("{:.0}x", table.reduction),
    );
}
