//! Compaction bench: updates-until-exhaustion vs. updates-with-policy,
//! per layout — how many updates a tight partition survives, what a
//! maintenance policy reclaims, and what a hot-block read costs
//! immediately before vs. after consolidation.

use dna_bench::report;
use dna_block_store::{
    BlockStore, CompactionPolicy, Compactor, PartitionConfig, PartitionId, UpdateLayout, BLOCK_SIZE,
};

// Nearly-full partitions (56 of 64 leaves) keep the free update region —
// and therefore the updates-until-exhaustion baseline — small enough to
// bench in seconds.
const DATA_BLOCKS: usize = 56;

fn build(seed: u64, layout: UpdateLayout) -> (BlockStore, PartitionId, Vec<u8>) {
    let mut store = BlockStore::new(seed);
    store.set_coverage(24);
    store
        .set_log_partition_config(PartitionConfig::small(
            seed ^ 0x31,
            2,
            UpdateLayout::paper_default(),
        ))
        .expect("log not yet created");
    let pid = store
        .create_partition(PartitionConfig::small(seed ^ 0x32, 3, layout))
        .expect("primer library has room");
    let data = dna_block_store::workload::deterministic_text(DATA_BLOCKS * BLOCK_SIZE, seed ^ 0x33);
    store.write_file(pid, &data).expect("write");
    (store, pid, data)
}

fn edit(data: &mut [u8], round: u32) {
    data[(round % 8) as usize] = b'a' + (round % 26) as u8;
}

fn main() {
    let layouts = [
        UpdateLayout::Interleaved { update_slots: 3 },
        UpdateLayout::TwoStacks,
        UpdateLayout::DedicatedLog,
    ];
    report::section("Compaction: update capacity and read-cost reclaim per layout");
    println!(
        "  {:<16} | {:>12} | {:>12} | {:>11} | {:>9} | {:>14} | {:>15}",
        "layout",
        "no-policy cap",
        "with policy",
        "compactions",
        "reclaimed",
        "read pre/post",
        "synthesis $"
    );
    for (i, layout) in layouts.into_iter().enumerate() {
        let seed = 0x7C0 + i as u64;
        // Baseline: drive updates until the layout refuses.
        let (bare, bare_pid, mut bare_data) = build(seed, layout);
        let mut exhausted_at = 0u32;
        for round in 0..400u32 {
            edit(&mut bare_data, round);
            if bare
                .update_block(bare_pid, 0, &bare_data[..BLOCK_SIZE])
                .is_err()
            {
                exhausted_at = round;
                break;
            }
        }

        // Policy run: the same workload driven 20 updates PAST the bound
        // that just went read-only, kept alive by maintenance.
        let policy_updates = exhausted_at + 20;
        let (store, pid, mut data) = build(seed, layout);
        let compactor = Compactor::new(CompactionPolicy::headroom_only(2));
        let mut compactions = 0u32;
        let mut reclaimed = 0u64;
        let mut synthesis = 0.0f64;
        let mut pre_reads = 0usize;
        let mut post_reads = 0usize;
        for round in 0..policy_updates {
            edit(&mut data, round);
            if compactor.should_compact_partition(&store, pid)
                || compactor.should_compact_log(&store)
            {
                // Hot-block read cost immediately before the fold...
                let pre = store.read_blocks_batch(&[(pid, 0)]).expect("pre read");
                pre_reads = pre.stats.reads_sequenced;
                let report = compactor.run(&store).expect("maintenance pass");
                assert!(!report.is_empty(), "thresholds fired, pass must fold");
                compactions += 1;
                reclaimed += report.units_reclaimed;
                synthesis += report.synthesis_cost;
                // ...and right after.
                let post = store.read_blocks_batch(&[(pid, 0)]).expect("post read");
                post_reads = post.stats.reads_sequenced;
            }
            store
                .update_block(pid, 0, &data[..BLOCK_SIZE])
                .expect("policy keeps updates flowing");
        }
        assert!(compactions > 0, "running past the bound forces maintenance");
        assert!(
            post_reads < pre_reads,
            "post-compaction hot read must sequence fewer reads"
        );
        println!(
            "  {:<16} | {:>12} | {:>12} | {:>11} | {:>9} | {:>6}/{:<7} | {:>15.2}",
            layout.to_string(),
            exhausted_at,
            policy_updates,
            compactions,
            reclaimed,
            pre_reads,
            post_reads,
            synthesis
        );
    }
    report::row(
        "interpretation",
        "a headroom policy converts a hard write ceiling into periodic synthesis cost",
    );
}
