//! §7.4 latency table: NGS run counts and Nanopore hours.

use dna_bench::experiments::costs;
use dna_bench::report;

fn main() {
    // Use the paper's headline selectivity; cost_reduction prints the
    // measured one.
    let selectivity = 141.0;
    report::section("§7.4 sequencing latency (selectivity 141x)");
    println!(
        "  {:>14} | {:>10} {:>10} {:>9} | {:>12} {:>12} {:>9}",
        "partition", "NGS runs", "NGS(blk)", "reduct", "nanopore h", "nanopore(blk)", "reduct"
    );
    for row in costs::latency_table(selectivity) {
        let c = row.cmp;
        println!(
            "  {:>12}GB | {:>10} {:>10} {:>8.0}x | {:>12.1} {:>12.3} {:>8.0}x",
            (row.partition_bytes / 1e9) as u64,
            c.ngs_runs_partition,
            c.ngs_runs_block,
            c.ngs_reduction(),
            c.nanopore_hours_partition,
            c.nanopore_hours_block,
            c.nanopore_reduction(),
        );
    }
    report::row(
        "paper",
        "1TB partition = ~1000 MiSeq runs; nanopore reduction always = selectivity",
    );
}
