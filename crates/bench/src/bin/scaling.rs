//! §7.7 scalability: block counts, primer-library scaling, block-size
//! independence.

use dna_bench::experiments::scaling;
use dna_bench::report;

fn main() {
    report::section("§7.7.1 block counts");
    let r = scaling::block_counts();
    report::compare("one-sided 10-base elongation", "1024 blocks", r.one_sided);
    report::compare(
        "two-sided 10+10 elongation",
        "1024^2 = ~1M blocks",
        r.two_sided,
    );
    report::compare(
        "sparse-index overhead",
        "5 bases",
        format!("{} bases", r.elongation_overhead_bases),
    );
    report::compare(
        "nested-PCR overhead (one level)",
        "20 bases",
        format!("{} bases", r.nested_overhead_bases),
    );

    report::section("§1 primer-library scaling (greedy packing, equal attempt budget)");
    println!(
        "  {:>8} | {:>12} | {:>8} | {:>9}",
        "length", "min distance", "found", "attempts"
    );
    let rows = scaling::primer_library_scaling(60_000, 0x5CA1E);
    for row in &rows {
        println!(
            "  {:>8} | {:>12} | {:>8} | {:>9}",
            row.length, row.min_distance, row.found, row.attempts
        );
    }
    let ratio = rows.last().unwrap().found as f64 / rows[0].found.max(1) as f64;
    report::compare(
        "len-30 / len-20 library ratio",
        "~linear growth (§1)",
        format!("{ratio:.2}"),
    );

    report::section("§7.7.2 block-size independence of mispriming");
    report::compare(
        "binding prob identical for 50-base vs 5000-base payloads",
        "mispriming depends only on index structure",
        scaling::mispriming_independent_of_block_size(),
    );
}
