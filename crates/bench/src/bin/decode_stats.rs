//! §8 decoding procedure statistics.

use dna_bench::alice::{build, AliceConfig};
use dna_bench::experiments::{decode, fig9};
use dna_bench::report;

fn main() {
    let setup = build(AliceConfig::default());
    let a = fig9::whole_partition(&setup, 50_000, 1);
    let b = fig9::precise_access(&setup, 531, 50_000, 0.20, 2);
    let (min_reads, stats) =
        decode::minimal_reads(&setup, &b, &[225, 300, 400, 550, 800], a.fraction_block_531);
    report::section("§8 decoding block 531 from the precise-access product");
    report::compare("reads needed for full recovery", "225", min_reads);
    report::compare("clusters reconstructed", "31", stats.clusters_used);
    report::compare(
        "strands recovered (original + update)",
        "30",
        stats.strands_recovered,
    );
    report::compare("versions decoded", "2", stats.versions_decoded);
    report::compare(
        "RS corrections needed",
        "0 (100% accurate)",
        stats.corrected_symbols,
    );
    report::compare("original paragraph correct", "yes", stats.original_ok);
    report::compare("updated paragraph correct", "yes", stats.updated_ok);
    report::row(
        "§8.1 alternate-candidate search used",
        stats.used_alternates,
    );
    report::compare(
        "baseline reads for same recovery",
        "~50000",
        stats.baseline_reads_needed,
    );
}
