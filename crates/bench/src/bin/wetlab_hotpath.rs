//! Wetlab fast-path microbenches: one gate per optimization layer.
//!
//! Each layer of the simulator fast path is timed against the code it
//! replaced, on a workload shaped like the block store's (multiplex PCR
//! over a mostly-non-target pool, repeated sequencing of one product,
//! repeated block decodes):
//!
//! 1. **Annealing prefilter + binding cache** — `PcrReaction::run` (k-mer
//!    prefilter, per-pool binding cache, sparse application) vs the
//!    retained dense engine `run_reference`.
//! 2. **Sparse amplification** — the same pair on a pool where almost no
//!    species amplifies, isolating the per-cycle bookkeeping cost.
//! 3. **Sequencing scratch** — repeated draws from an unchanged pool with
//!    the epoch-keyed cumulative-weight table vs a cold table per batch.
//! 4. **Decode arena** — repeated block decodes through one
//!    [`DecodeScratch`] vs a fresh arena per call.
//!
//! Every layer's fast path is asserted equal to its baseline *in this
//! binary* before timing (the exhaustive oracle lives in
//! `crates/sim/tests/fastpath_equiv.rs`), so a gate failure is a perf
//! regression, never a correctness trade. Results land in
//! `BENCH_wetlab.json` with the gate and its rationale next to each
//! number; CI re-runs the binary, which asserts the gates.

use dna_bench::report;
use dna_codec::{intra, PayloadCodec, StrandGeometry};
use dna_ecc::{EncodingUnit, UnitConfig};
use dna_pipeline::{decode_block_validated_with_scratch, BlockDecodeConfig, DecodeScratch};
use dna_seq::rng::DetRng;
use dna_seq::{Base, DnaSeq};
use dna_sim::{
    IdsChannel, PcrPrimer, PcrProtocol, PcrReaction, Pool, Read, Sequencer, SequencerScratch,
    StrandTag,
};
use std::time::Instant;

struct Layer {
    name: &'static str,
    baseline_ms: f64,
    fast_ms: f64,
    speedup: f64,
    gate: f64,
    rationale: &'static str,
    counters: Vec<(&'static str, u64)>,
}

fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    // One warmup rep (populates thread-local caches exactly like steady
    // state), then the timed run.
    let _ = f();
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e3 / reps as f64
}

fn fwd_primer(phase: usize) -> DnaSeq {
    DnaSeq::from_bases((0..20).map(|i| Base::from_code(((i + phase) % 4) as u8)))
}

fn rev_primer() -> DnaSeq {
    "AAGGCCTTAAGGCCTTAAGG".parse().unwrap()
}

fn template(fwd_phase: usize, payload: usize) -> DnaSeq {
    let mut s = fwd_primer(fwd_phase);
    for j in 0..12 {
        s.push(Base::from_code(((payload >> (2 * j)) & 3) as u8));
    }
    for i in 0..40 {
        s.push(Base::from_code(((i * 3) % 4) as u8));
    }
    s.extend(rev_primer().reverse_complement().iter());
    s
}

/// A pool shaped like a multiplexed retrieval tube: a few strands the
/// primers target, many strands they cannot bind (other partitions'
/// species, junk). `targets` bind `fwd_primer(0)`; the rest use distant
/// primer phases and random payloads.
fn mixed_pool(targets: usize, others: usize) -> Pool {
    let mut pool = Pool::new();
    let mut rng = DetRng::seed_from_u64(0xbeef);
    for t in 0..targets {
        pool.add(template(0, t), 200.0 + t as f64, None);
    }
    for o in 0..others {
        // Homopolymer-dominated junk: no window of it comes near the
        // period-4 primer, and the random tail keeps species distinct.
        let mut junk = DnaSeq::new();
        let body = Base::from_code((o % 4) as u8);
        for _ in 0..70 {
            junk.push(body);
        }
        for _ in 0..12 {
            junk.push(Base::from_code((rng.gen_range(4)) as u8));
        }
        pool.add(junk, 50.0, None);
    }
    pool
}

fn pcr_rxn(budget: f64, cycles: usize) -> PcrReaction {
    PcrReaction {
        forward_primers: vec![PcrPrimer::with_budget(fwd_primer(0), budget)],
        reverse_primer: PcrPrimer::with_budget(rev_primer(), budget),
        protocol: PcrProtocol::standard(cycles, 55.0),
    }
}

// ---------------------------------------------------------------------------
// layer 1: k-mer prefilter + binding cache
// ---------------------------------------------------------------------------

fn bench_prefilter() -> Layer {
    let pool = mixed_pool(8, 192);
    let rxn = pcr_rxn(60_000.0, 12);
    // Oracle first: identical outcome, and the prefilter must actually
    // skip species (a disabled prefilter would still pass the equality).
    let before = dna_sim::stats::thread_totals();
    let fast = rxn.run(&pool);
    let delta = dna_sim::stats::thread_totals().delta_since(&before);
    let reference = rxn.run_reference(&pool);
    assert_eq!(fast.pool, reference.pool, "fast path diverged");
    assert_eq!(fast.fwd_consumed, reference.fwd_consumed);
    assert!(delta.species_skipped > 0, "prefilter skipped nothing");

    let fast_ms = time_ms(10, || rxn.run(&pool));
    let baseline_ms = time_ms(10, || rxn.run_reference(&pool));
    Layer {
        name: "pcr_prefilter",
        baseline_ms,
        fast_ms,
        speedup: baseline_ms / fast_ms.max(1e-9),
        gate: 2.0,
        rationale: "96% of the tube is non-target species; the positional \
                    k-mer piece test rejects them without bounded-Levenshtein \
                    windows and the (species, primer) cache carries survivors \
                    across cycles, so well over half the dense engine's \
                    annealing work must disappear — 2x is conservative for a \
                    96%-decoy tube and fails if the prefilter silently \
                    degrades to a full scan",
        counters: vec![
            ("species_skipped", delta.species_skipped),
            ("species_scanned", delta.species_scanned),
            ("binding_cache_hits", delta.binding_cache_hits),
        ],
    }
}

// ---------------------------------------------------------------------------
// layer 2: sparse amplification bookkeeping
// ---------------------------------------------------------------------------

fn bench_sparse_amplify() -> Layer {
    // 2 amplifying species in a 400-species tube, many cycles: the
    // reference engine re-walks and re-applies the full species map every
    // cycle; the fast engine touches only the amplified entries.
    let pool = mixed_pool(2, 398);
    let rxn = pcr_rxn(40_000.0, 24);
    let fast = rxn.run(&pool);
    let reference = rxn.run_reference(&pool);
    assert_eq!(fast.pool, reference.pool, "fast path diverged");

    let fast_ms = time_ms(10, || rxn.run(&pool));
    let baseline_ms = time_ms(10, || rxn.run_reference(&pool));
    Layer {
        name: "sparse_amplification",
        baseline_ms,
        fast_ms,
        speedup: baseline_ms / fast_ms.max(1e-9),
        gate: 2.0,
        rationale: "with 2 of 400 species amplifying over 24 cycles the \
                    per-cycle cost must track the amplified set, not the \
                    tube size; the dense engine pays O(species) per cycle \
                    for cloned contribution keys and whole-map application, \
                    so losing 2x here means the sparse bookkeeping is no \
                    longer sparse",
        counters: vec![],
    }
}

// ---------------------------------------------------------------------------
// layer 3: sequencing scratch reuse
// ---------------------------------------------------------------------------

fn bench_sequencing() -> Layer {
    // A wide amplified pool sequenced in many batches, as the serving
    // layer does when rounds share a tube: the epoch-keyed scratch builds
    // the O(species) cumulative table once, a cold path rebuilds it per
    // batch.
    let pool = mixed_pool(64, 5936);
    let seq = Sequencer::new(IdsChannel::illumina());
    let batches = 80usize;
    let per_batch = 12usize;

    // Oracle: batch draws through one scratch equal one contiguous run.
    let baseline_reads = seq.sequence(&pool, batches * per_batch, &mut DetRng::seed_from_u64(7));
    let mut scratch = SequencerScratch::new();
    let mut streamed: Vec<Read> = Vec::new();
    let mut rng = DetRng::seed_from_u64(7);
    let before = dna_sim::stats::thread_totals();
    for _ in 0..batches {
        seq.sequence_into(&pool, per_batch, &mut rng, &mut scratch, &mut streamed);
    }
    let delta = dna_sim::stats::thread_totals().delta_since(&before);
    assert_eq!(streamed, baseline_reads, "scratch path diverged");
    assert!(delta.scratch_reuses >= (batches - 1) as u64);

    let fast_ms = time_ms(5, || {
        let mut rng = DetRng::seed_from_u64(7);
        let mut scratch = SequencerScratch::new();
        let mut out: Vec<Read> = Vec::new();
        for _ in 0..batches {
            out.clear();
            seq.sequence_into(&pool, per_batch, &mut rng, &mut scratch, &mut out);
        }
        out.len()
    });
    let baseline_ms = time_ms(5, || {
        let mut rng = DetRng::seed_from_u64(7);
        let mut out: Vec<Read> = Vec::new();
        for _ in 0..batches {
            // Cold table every batch: what sequence() cost before the
            // epoch-keyed scratch existed.
            out.clear();
            seq.sequence_into(
                &pool,
                per_batch,
                &mut rng,
                &mut SequencerScratch::new(),
                &mut out,
            );
        }
        out.len()
    });
    Layer {
        name: "sequencing_scratch",
        baseline_ms,
        fast_ms,
        speedup: baseline_ms / fast_ms.max(1e-9),
        gate: 1.2,
        rationale: "80 batches of 12 reads from one unchanged 6000-species \
                    pool: the epoch check skips 79 of 80 O(species) \
                    cumulative-table builds, leaving only the O(reads log \
                    species) draws; 1.2x is the floor because the draw+IDS \
                    corruption work is shared by both paths and still \
                    dominates at these batch sizes",
        counters: vec![
            ("scratch_reuses", delta.scratch_reuses),
            ("reads_materialized", delta.reads_materialized),
        ],
    }
}

// ---------------------------------------------------------------------------
// layer 4: decode arena reuse
// ---------------------------------------------------------------------------

fn encode_unit_strands(data: &[u8; 264], seed: u64, unit_id: u64) -> Vec<DnaSeq> {
    let fwd: DnaSeq = "AACCGGTTAACCGGTTAACC".parse().unwrap();
    let rev: DnaSeq = "AAGGCCTTAAGGCCTTAAGG".parse().unwrap();
    let index: DnaSeq = "ACAGTCTGAC".parse().unwrap();
    let geometry = StrandGeometry::paper_default();
    let unit = EncodingUnit::new(UnitConfig::paper_default());
    unit.encode(data)
        .unwrap()
        .iter()
        .enumerate()
        .map(|(col, bytes)| {
            let codec = PayloadCodec::for_column(seed, unit_id, Base::A.code(), col as u8);
            geometry
                .assemble(
                    &fwd,
                    &index,
                    Base::A,
                    &intra::encode(col, 2).unwrap(),
                    &codec.encode(bytes),
                    &rev,
                )
                .unwrap()
        })
        .collect()
}

fn bench_decode_arena() -> Layer {
    let mut data = [0u8; 264];
    for (i, b) in data.iter_mut().enumerate() {
        *b = (i as u8).wrapping_mul(37).wrapping_add(5);
    }
    let mut pool = Pool::new();
    for s in encode_unit_strands(&data, 3, 9) {
        pool.add(s, 100.0, Some(StrandTag::new(1, 9, 0, 0)));
    }
    let mut rng = DetRng::seed_from_u64(11);
    let reads = Sequencer::new(IdsChannel::illumina()).sequence(&pool, 15 * 12, &mut rng);
    let prefix: DnaSeq = {
        let mut p: DnaSeq = "AACCGGTTAACCGGTTAACC".parse().unwrap();
        p.push(Base::A);
        p.extend("ACAGTCTGAC".parse::<DnaSeq>().unwrap().iter());
        p
    };
    let rev: DnaSeq = "AAGGCCTTAAGGCCTTAAGG".parse().unwrap();
    let cfg = BlockDecodeConfig::paper_default(3, 9);

    // Oracle: arena-reusing decodes equal fresh-arena decodes.
    let mut shared = DecodeScratch::new();
    let a = decode_block_validated_with_scratch(&reads, &prefix, &rev, &cfg, |_| true, &mut shared);
    let b = decode_block_validated_with_scratch(&reads, &prefix, &rev, &cfg, |_| true, &mut shared);
    let fresh = decode_block_validated_with_scratch(
        &reads,
        &prefix,
        &rev,
        &cfg,
        |_| true,
        &mut DecodeScratch::new(),
    );
    assert_eq!(a.versions, fresh.versions, "arena decode diverged");
    assert_eq!(b.versions, fresh.versions, "arena reuse diverged");
    assert_eq!(a.versions[&Base::A].unit_bytes, data.to_vec());

    let rounds = 12usize;
    let fast_ms = time_ms(5, || {
        let mut scratch = DecodeScratch::new();
        let mut ok = 0usize;
        for _ in 0..rounds {
            let out = decode_block_validated_with_scratch(
                &reads,
                &prefix,
                &rev,
                &cfg,
                |_| true,
                &mut scratch,
            );
            ok += out.versions.len();
        }
        ok
    });
    let baseline_ms = time_ms(5, || {
        let mut ok = 0usize;
        for _ in 0..rounds {
            let out = decode_block_validated_with_scratch(
                &reads,
                &prefix,
                &rev,
                &cfg,
                |_| true,
                &mut DecodeScratch::new(),
            );
            ok += out.versions.len();
        }
        ok
    });
    Layer {
        name: "decode_arena",
        baseline_ms,
        fast_ms,
        speedup: baseline_ms / fast_ms.max(1e-9),
        gate: 0.95,
        rationale: "the arena reuses the interior table, MinHash buckets \
                    and BMA buffers across decodes of one round; the win is \
                    allocator pressure, not algorithmic, and cluster \
                    edit-distance confirmation dominates the wall clock — \
                    so the gate is a no-regression floor (reuse must never \
                    cost time), with the real assertion being the byte-\
                    identical oracle above",
        counters: vec![],
    }
}

// ---------------------------------------------------------------------------
// report + JSON
// ---------------------------------------------------------------------------

fn write_json(layers: &[Layer]) {
    let mut out = String::from("{\n  \"bench\": \"wetlab_hotpath\",\n  \"layers\": [\n");
    for (i, l) in layers.iter().enumerate() {
        let counters = l
            .counters
            .iter()
            .map(|(n, v)| format!("\"{n}\": {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_ms\": {:.4}, \"fast_ms\": {:.4}, \
             \"speedup\": {:.3}, \"gate\": {}, \"counters\": {{{}}}, \"rationale\": \"{}\"}}{}\n",
            l.name,
            l.baseline_ms,
            l.fast_ms,
            l.speedup,
            l.gate,
            counters,
            l.rationale.split_whitespace().collect::<Vec<_>>().join(" "),
            if i + 1 == layers.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_wetlab.json", out).expect("write BENCH_wetlab.json");
    report::row("machine-readable layers", "BENCH_wetlab.json");
}

fn main() {
    report::section("wetlab fast path: per-layer microbenches");
    let layers = vec![
        bench_prefilter(),
        bench_sparse_amplify(),
        bench_sequencing(),
        bench_decode_arena(),
    ];
    for l in &layers {
        report::row(
            l.name,
            format!(
                "{:>8.3}ms baseline | {:>8.3}ms fast | {:>6.2}x (gate {}x)",
                l.baseline_ms, l.fast_ms, l.speedup, l.gate
            ),
        );
    }
    write_json(&layers);
    for l in &layers {
        assert!(
            l.speedup >= l.gate,
            "layer {} fell below its {}x gate: {:.2}x ({:.3}ms baseline vs {:.3}ms fast). {}",
            l.name,
            l.gate,
            l.speedup,
            l.baseline_ms,
            l.fast_ms,
            l.rationale
        );
    }
    report::section("gates");
    report::row("all layers", "passed");
}
