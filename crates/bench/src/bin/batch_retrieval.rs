//! Batched vs sequential multi-block retrieval: wall-clock and simulated
//! wetlab cost (PCR rounds, reads sequenced).
//!
//! The paper's cost lever is amortization: one multiplex PCR amplifies many
//! primer-addressed targets, so a batched access pays one round-trip where
//! sequential access pays one per block. This binary measures both paths on
//! identical stores (same seed, same archive) and prints the reduction.

use dna_bench::report;
use dna_block_store::{BlockStore, PartitionConfig, PartitionId, BLOCK_SIZE};
use std::time::Instant;

/// Builds a store with `partitions` partitions × `blocks_per` blocks each.
fn build_store(seed: u64, partitions: usize, blocks_per: usize) -> (BlockStore, Vec<PartitionId>) {
    let store = BlockStore::new(seed);
    let mut pids = Vec::new();
    for p in 0..partitions {
        let pid = store
            .create_partition(PartitionConfig::paper_default(0x300 + p as u64))
            .expect("primer library has room");
        let data =
            dna_block_store::workload::deterministic_text(blocks_per * BLOCK_SIZE, 40 + p as u64);
        store.write_file(pid, &data).expect("write");
        pids.push(pid);
    }
    (store, pids)
}

fn run_comparison(partitions: usize, blocks_per: usize) {
    let requests: Vec<(PartitionId, u64)> = (0..partitions)
        .flat_map(|p| (0..blocks_per as u64).map(move |b| (PartitionId(p), b)))
        .collect();

    // Sequential: one read_block (one PCR round) per request.
    let (store, _) = build_store(11, partitions, blocks_per);
    let t0 = Instant::now();
    let mut seq_rounds = 0usize;
    let mut seq_reads = 0usize;
    let mut seq_blocks = Vec::new();
    for &(pid, b) in &requests {
        let out = store.read_block(pid, b).expect("sequential read");
        seq_rounds += out.stats.pcr_rounds;
        seq_reads += out.stats.reads_sequenced;
        seq_blocks.push(out.block);
    }
    let seq_wall = t0.elapsed();

    // Batched: identical fresh store, one multiplexed call.
    let (store, _) = build_store(11, partitions, blocks_per);
    let t0 = Instant::now();
    let batch = store.read_blocks_batch(&requests).expect("batched read");
    let batch_wall = t0.elapsed();
    for (i, outcome) in batch.outcomes.iter().enumerate() {
        let got = outcome.as_ref().expect("batched block decodes");
        assert_eq!(
            got.block, seq_blocks[i],
            "batched content diverged at request {i}"
        );
    }

    report::section(&format!(
        "{} blocks ({} partitions x {})",
        requests.len(),
        partitions,
        blocks_per
    ));
    report::row(
        "PCR+sequencing rounds (sequential -> batched)",
        format!(
            "{seq_rounds} -> {} ({:.1}x fewer)",
            batch.stats.rounds,
            seq_rounds as f64 / batch.stats.rounds as f64
        ),
    );
    report::row(
        "reads sequenced (sequential -> batched)",
        format!(
            "{seq_reads} -> {} ({:.1}x fewer)",
            batch.stats.reads_sequenced,
            seq_reads as f64 / batch.stats.reads_sequenced.max(1) as f64
        ),
    );
    report::row(
        "batched reads matched / wasted",
        format!(
            "{} / {}",
            batch.stats.reads_matched, batch.stats.wasted_reads
        ),
    );
    report::row("primer pairs multiplexed", batch.stats.primer_pairs);
    report::row(
        "wall clock (sequential -> batched)",
        format!("{seq_wall:.2?} -> {batch_wall:.2?}"),
    );
    report::row(
        "contents",
        format!("byte-identical across all {} blocks", requests.len()),
    );
}

fn main() {
    report::section("batched retrieval: multiplex rounds amortize wetlab work");
    report::row(
        "model",
        "one multiplex PCR + one sequencing pass per compatible primer group",
    );
    // The acceptance shape: 8 blocks in one partition.
    run_comparison(1, 8);
    // Cross-partition batches: compatibility-grouped multiplex rounds.
    run_comparison(4, 2);
    run_comparison(2, 6);
}
