//! Regenerates Figure 9 (a/b/c) plus the §6.5 multiplex experiment.

use dna_bench::alice::{build, AliceConfig};
use dna_bench::experiments::fig9;
use dna_bench::report;

fn main() {
    let t0 = std::time::Instant::now();
    let setup = build(AliceConfig::default());
    eprintln!(
        "setup built in {:?} (pool {} species)",
        t0.elapsed(),
        setup.pool.distinct()
    );

    let a = fig9::whole_partition(&setup, 50_000, 1);
    report::section("Figure 9a: whole-partition random access (main primers)");
    report::compare(
        "block 531 fraction of reads",
        "0.34%",
        format!("{:.2}%", a.fraction_block_531 * 100.0),
    );
    report::compare(
        "uniformity (p95/p5, plain blocks)",
        "within 2x",
        format!("{:.2}x", a.uniformity_ratio),
    );
    report::compare(
        "updated blocks vs plain (mean ratio)",
        "~2x",
        format!("{:.2}x", a.updated_over_plain),
    );
    report::row("total reads", a.total_reads);
    report::histogram(&a.reads_per_block, 24, &[144, 307, 531]);

    for (label, block) in [("9b", 531u64), ("9c", 144u64)] {
        let t = std::time::Instant::now();
        let b = fig9::precise_access(&setup, block, 50_000, 0.20, 2);
        report::section(&format!(
            "Figure {label}: precise access for block {block} ({:?})",
            t.elapsed()
        ));
        report::compare(
            "leftover-primer (discarded) fraction",
            "18%",
            format!("{:.1}%", b.carryover_fraction * 100.0),
        );
        report::compare(
            "correct-target-prefix fraction",
            "82%",
            format!("{:.1}%", b.correct_prefix_fraction * 100.0),
        );
        report::compare(
            "target within correct-prefix reads",
            "59%",
            format!("{:.1}%", b.target_within_prefix * 100.0),
        );
        report::compare(
            "overall on-target fraction",
            "48%",
            format!("{:.1}%", b.on_target_fraction * 100.0),
        );
        report::row(
            "misprime source blocks",
            format!("{:?}", b.misprime_sources),
        );
        let top: Vec<_> = b.reads_per_block.iter().filter(|(_, &c)| c > 50).collect();
        report::row("reads by source block (top)", format!("{top:?}"));
    }

    let m = fig9::multiplex_access(&setup, &[144, 307, 531], 50_000, 3);
    report::section("§6.5 multiplex: blocks 144+307+531 in one reaction");
    for (b, f) in m {
        report::row(&format!("block {b} fraction"), format!("{:.1}%", f * 100.0));
    }
}
