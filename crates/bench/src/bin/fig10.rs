//! Regenerates Figure 10: original-vs-update molecule counts after the
//! §6.4.2 mixing protocols (the paper shows Amplify-then-Measure and notes
//! Measure-then-Amplify "numbers are similar").

use dna_bench::experiments::fig10;

fn main() {
    for atm in [true, false] {
        let fig = fig10::run(atm, 100_000, 0xA11CE);
        fig10::print(&fig);
        let worst = fig
            .per_block
            .values()
            .map(|c| (c.balance() - 1.0).abs())
            .fold(0.0f64, f64::max);
        dna_bench::report::compare(
            "worst update/original imbalance",
            "small (Fig. 10 bars ~equal)",
            format!("{:.0}%", worst * 100.0),
        );
    }
}
