//! Ablation: the §5.3 update-placement ladder (Figs. 6/7/8), end to end.

use dna_bench::experiments::ablations;
use dna_bench::report;

fn main() {
    report::section("Ablation: update layouts (8 blocks, 2 updates each, read updated block 3)");
    println!(
        "  {:<22} | {:>14} | {:>14} | {:>10} | {:>7}",
        "layout", "analytic scope", "reads used", "PCR rounds", "correct"
    );
    for row in ablations::layout_comparison(0x1A9) {
        println!(
            "  {:<22} | {:>14} | {:>14} | {:>10} | {:>7}",
            row.name,
            row.analytic_scope_units,
            row.measured_reads,
            row.measured_rounds,
            row.correct
        );
    }
    report::row(
        "interpretation",
        "only Fig. 8 keeps retrieval cost independent of unrelated updates",
    );
}
