//! Serving-over-the-wire benchmark: a `WireServer` on a loopback socket
//! driven by the deterministic million-user workload replay.
//!
//! Three phases:
//!
//! - **Replay sweep**: for each client-concurrency level, N driver
//!   threads each replay their own [`WorkloadSpec::client_stream`] slice
//!   of a 2-million-user population (zipf tenant/block/user skew,
//!   read-mostly mix) over keep-alive connections, measuring per-op
//!   wire latency (p50/p99/p999) and throughput.
//! - **Queue overload**: a deliberately tiny admission budget
//!   (`queue_depth: 2`, one worker) under an 8-thread submit storm —
//!   every rejection must be a *typed* shed, every admitted job must
//!   complete, and the storm must finish in bounded wall time.
//! - **Quota overload**: a starved token bucket (1 token/s, burst 4)
//!   under a rapid single-tenant read storm — again, typed sheds with
//!   actionable `retry_after_ms`, never hangs.
//!
//! Results land in machine-readable `BENCH_serving.json`; CI archives it
//! as the serving-layer latency/shedding trajectory.

use dna_bench::report;
use dna_block_store::workload::{tenant_files, OpKind, WorkloadSpec};
use dna_block_store::{BlockStore, ServerConfig, StoreServer, BLOCK_SIZE};
use dna_serve::client::{CallError, JobPoll};
use dna_serve::{Client, ServeConfig, WireServer};
use std::time::Instant;

/// Operations each driver client replays per sweep level.
const OPS_PER_CLIENT: usize = 60;
/// Client-concurrency levels of the sweep.
const LEVELS: [usize; 3] = [2, 4, 8];
/// Attempts per storm thread in the queue-overload phase.
const STORM_ATTEMPTS: usize = 25;
/// Storm threads in the queue-overload phase.
const STORM_THREADS: usize = 8;

fn boot(seed: u64, cfg: ServeConfig) -> WireServer {
    let store = StoreServer::new(BlockStore::new(seed), ServerConfig::paper_default());
    WireServer::start(store, cfg, "127.0.0.1:0").expect("bind loopback")
}

/// Per-tenant base images: one deterministic file per tenant partition.
fn base_images(spec: &WorkloadSpec) -> Vec<Vec<u8>> {
    (0..spec.tenants)
        .map(|t| {
            tenant_files(
                spec.seed,
                t,
                1,
                usize::try_from(spec.blocks_per_tenant).expect("tiny dimension"),
            )
            .remove(0)
        })
        .collect()
}

/// The image an update writes: the tenant's base block with a 16-byte
/// stamp at a fixed per-block offset. Updates only ever touch that
/// window, so any two in-flight images differ in one contiguous region —
/// exactly what a single §6.4 delete-then-insert patch can carry, even
/// under racing writers.
fn stamped_image(base: &[u8], block: u64, client: u64, n: usize) -> Vec<u8> {
    let mut image = base.to_vec();
    let at = usize::try_from((block * 29) % ((BLOCK_SIZE as u64) - 16)).expect("tiny offset");
    image[at..at + 16].copy_from_slice(format!("[{client:03}:{n:08}!!]").as_bytes());
    image
}

fn pct(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

// ---------------------------------------------------------------------------
// replay sweep
// ---------------------------------------------------------------------------

struct ThreadTally {
    latencies_us: Vec<u64>,
    reads: u64,
    updates: u64,
    maintenance: u64,
    update_retries: u64,
}

struct LevelCell {
    clients: usize,
    ops: u64,
    wall_ms: f64,
    ops_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    reads: u64,
    updates: u64,
    maintenance: u64,
    update_retries: u64,
    cache_hit_rate: f64,
    stale_serves: u64,
}

/// One client thread's slice of the replay: stream ops, measure each
/// round-trip, and survive update-slot exhaustion by compacting and
/// retrying once (the read-modify-write pattern a real tenant uses).
fn drive_client(
    spec: &WorkloadSpec,
    bases: &[Vec<u8>],
    pids: &[u64],
    addr: std::net::SocketAddr,
    client_id: u64,
) -> ThreadTally {
    let mut client = Client::connect(addr).expect("connect driver client");
    let mut tally = ThreadTally {
        latencies_us: Vec::with_capacity(OPS_PER_CLIENT),
        reads: 0,
        updates: 0,
        maintenance: 0,
        update_retries: 0,
    };
    for (n, op) in spec
        .client_stream(client_id)
        .take(OPS_PER_CLIENT)
        .enumerate()
    {
        let tenant = usize::try_from(op.tenant).expect("tiny tenant index");
        client.set_tenant(&format!("tenant-{tenant}"));
        let start = Instant::now();
        match op.kind {
            OpKind::Read => {
                let (bytes, _) = client.read_block(pids[tenant], op.block).expect("read");
                assert_eq!(bytes.len(), BLOCK_SIZE);
                tally.reads += 1;
            }
            OpKind::Update => {
                let base_block = &bases[tenant]
                    [usize::try_from(op.block).expect("tiny block") * BLOCK_SIZE..][..BLOCK_SIZE];
                let image = stamped_image(base_block, op.block, client_id, n);
                let submit = |c: &mut Client| -> Result<JobPoll, CallError> {
                    let job = c.submit_update(pids[tenant], op.block, &image)?;
                    c.wait(job)
                };
                match submit(&mut client) {
                    Ok(JobPoll::Updated) => {}
                    Ok(JobPoll::Failed(_)) | Err(CallError::Server { status: 409, .. }) => {
                        // Patch chain full: fold it and retry once.
                        client.maintenance().expect("compaction");
                        tally.update_retries += 1;
                        match submit(&mut client).expect("retried update") {
                            JobPoll::Updated => {}
                            other => panic!("update after compaction: {other:?}"),
                        }
                    }
                    other => panic!("update: {other:?}"),
                }
                tally.updates += 1;
            }
            OpKind::Maintenance => {
                let job = client.submit_maintenance().expect("submit maintenance");
                assert!(matches!(
                    client.wait(job).expect("maintenance"),
                    JobPoll::Maintained { .. }
                ));
                tally.maintenance += 1;
            }
        }
        let elapsed = start.elapsed().as_micros();
        tally
            .latencies_us
            .push(u64::try_from(elapsed).unwrap_or(u64::MAX));
    }
    tally
}

fn run_level(clients: usize) -> LevelCell {
    let spec = WorkloadSpec::serving_default(0xBE9C);
    let server = boot(0xBE9C, ServeConfig::default());
    let addr = server.local_addr();
    let bases = base_images(&spec);

    // Setup: one partition per tenant, loaded with its base file.
    let mut setup = Client::connect(addr).expect("setup client");
    let pids: Vec<u64> = (0..spec.tenants)
        .map(|t| {
            let pid = setup.create_partition(1000 + t).expect("create partition");
            let blocks = setup
                .write_file(pid, &bases[usize::try_from(t).expect("tiny tenant")])
                .expect("write tenant file");
            assert_eq!(blocks, spec.blocks_per_tenant);
            pid
        })
        .collect();

    let start = Instant::now();
    let tallies: Vec<ThreadTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let (spec, bases, pids) = (&spec, &bases, &pids);
                scope.spawn(move || drive_client(spec, bases, pids, addr, c as u64))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread"))
            .collect()
    });
    let wall = start.elapsed();

    let mut latencies: Vec<u64> = tallies
        .iter()
        .flat_map(|t| t.latencies_us.clone())
        .collect();
    latencies.sort_unstable();
    let stats = setup.stats().expect("stats");
    server.stop();

    let ops = latencies.len() as u64;
    let hits = stats["cache_hits"];
    let looked = hits + stats["cache_misses"];
    LevelCell {
        clients,
        ops,
        wall_ms: wall.as_secs_f64() * 1e3,
        ops_per_sec: ops as f64 / wall.as_secs_f64().max(1e-9),
        p50_us: pct(&latencies, 0.50),
        p99_us: pct(&latencies, 0.99),
        p999_us: pct(&latencies, 0.999),
        reads: tallies.iter().map(|t| t.reads).sum(),
        updates: tallies.iter().map(|t| t.updates).sum(),
        maintenance: tallies.iter().map(|t| t.maintenance).sum(),
        update_retries: tallies.iter().map(|t| t.update_retries).sum(),
        cache_hit_rate: hits as f64 / (looked.max(1)) as f64,
        stale_serves: stats["stale_serves"],
    }
}

// ---------------------------------------------------------------------------
// overload phases
// ---------------------------------------------------------------------------

struct QueueOverload {
    attempts: u64,
    admitted: u64,
    sheds: u64,
    shed_rate: f64,
    wall_ms: f64,
}

fn run_queue_overload() -> QueueOverload {
    let server = boot(
        7,
        ServeConfig {
            queue_depth: 2,
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let addr = server.local_addr();
    let mut setup = Client::connect(addr).expect("setup client");
    let pid = setup.create_partition(7).expect("create partition");
    let data = tenant_files(7, 0, 1, 2).remove(0);
    setup.write_file(pid, &data).expect("write file");

    let start = Instant::now();
    let per_thread: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..STORM_THREADS)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("storm client");
                    let (mut admitted, mut sheds) = (0u64, 0u64);
                    for _ in 0..STORM_ATTEMPTS {
                        match client.submit_read(pid, 0) {
                            Ok(job) => {
                                admitted += 1;
                                // Admitted work always completes.
                                match client.wait(job).expect("admitted job") {
                                    JobPoll::Block { .. } => {}
                                    other => panic!("storm read: {other:?}"),
                                }
                            }
                            Err(CallError::Overloaded {
                                reason,
                                retry_after_ms,
                            }) => {
                                assert_eq!(reason, "queue_full");
                                assert!(retry_after_ms >= 1);
                                sheds += 1;
                            }
                            Err(other) => panic!("storm submit: {other}"),
                        }
                    }
                    (admitted, sheds)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("storm thread"))
            .collect()
    });
    let wall = start.elapsed();
    server.stop();

    let attempts = (STORM_THREADS * STORM_ATTEMPTS) as u64;
    let admitted: u64 = per_thread.iter().map(|(a, _)| a).sum();
    let sheds: u64 = per_thread.iter().map(|(_, s)| s).sum();
    assert_eq!(admitted + sheds, attempts, "every attempt answered, typed");
    QueueOverload {
        attempts,
        admitted,
        sheds,
        shed_rate: sheds as f64 / attempts as f64,
        wall_ms: wall.as_secs_f64() * 1e3,
    }
}

struct QuotaOverload {
    attempts: u64,
    sheds: u64,
    min_retry_after_ms: u64,
}

fn run_quota_overload() -> QuotaOverload {
    let server = boot(
        9,
        ServeConfig {
            quota_rate: 1,
            quota_burst: 4,
            ..ServeConfig::default()
        },
    );
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("quota client");
    let pid = client.create_partition(9).expect("create partition");
    let data = tenant_files(9, 0, 1, 1).remove(0);
    client.write_file(pid, &data).expect("write file");
    client.set_tenant("starved");

    let attempts = 40u64;
    let mut sheds = 0u64;
    let mut min_retry = u64::MAX;
    for _ in 0..attempts {
        match client.read_block(pid, 0) {
            Ok(_) => {}
            Err(CallError::Overloaded {
                reason,
                retry_after_ms,
            }) => {
                assert_eq!(reason, "quota");
                assert!(retry_after_ms >= 1);
                min_retry = min_retry.min(retry_after_ms);
                sheds += 1;
            }
            Err(other) => panic!("quota read: {other}"),
        }
    }
    server.stop();
    assert!(sheds >= 1, "a starved bucket must shed a rapid storm");
    QuotaOverload {
        attempts,
        sheds,
        min_retry_after_ms: min_retry,
    }
}

// ---------------------------------------------------------------------------
// report
// ---------------------------------------------------------------------------

fn write_json(
    spec: &WorkloadSpec,
    cells: &[LevelCell],
    queue: &QueueOverload,
    quota: &QuotaOverload,
) {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"serving\",\n  \"simulated_users\": {},\n  \"tenants\": {},\n  \"blocks_per_tenant\": {},\n  \"ops_per_client\": {OPS_PER_CLIENT},\n  \"mix\": {{\"reads\": {}, \"updates\": {}, \"maintenance\": {}}},\n  \"skew\": {{\"tenant\": {}, \"block\": {}, \"user\": {}}},\n  \"levels\": [\n",
        spec.users,
        spec.tenants,
        spec.blocks_per_tenant,
        spec.mix.reads,
        spec.mix.updates,
        spec.mix.maintenance,
        spec.tenant_skew,
        spec.block_skew,
        spec.user_skew,
    ));
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"ops\": {}, \"wall_ms\": {:.3}, \
             \"ops_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \
             \"reads\": {}, \"updates\": {}, \"maintenance\": {}, \"update_retries\": {}, \
             \"cache_hit_rate\": {:.4}, \"stale_serves\": {}}}{}\n",
            c.clients,
            c.ops,
            c.wall_ms,
            c.ops_per_sec,
            c.p50_us,
            c.p99_us,
            c.p999_us,
            c.reads,
            c.updates,
            c.maintenance,
            c.update_retries,
            c.cache_hit_rate,
            c.stale_serves,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"overload\": {{\n    \"queue\": {{\"attempts\": {}, \"admitted\": {}, \"sheds\": {}, \"shed_rate\": {:.4}, \"wall_ms\": {:.3}}},\n    \"quota\": {{\"attempts\": {}, \"sheds\": {}, \"min_retry_after_ms\": {}}}\n  }}\n}}\n",
        queue.attempts,
        queue.admitted,
        queue.sheds,
        queue.shed_rate,
        queue.wall_ms,
        quota.attempts,
        quota.sheds,
        quota.min_retry_after_ms,
    ));
    let path = "BENCH_serving.json";
    std::fs::write(path, out).expect("write BENCH_serving.json");
    report::row("machine-readable sweep", path);
}

fn main() {
    let spec = WorkloadSpec::serving_default(0xBE9C);
    report::section("serving over the wire: million-user workload replay");
    report::row(
        "population",
        format!(
            "{} simulated users, {} tenants x {} blocks, zipf skew {}/{}/{}",
            spec.users,
            spec.tenants,
            spec.blocks_per_tenant,
            spec.tenant_skew,
            spec.block_skew,
            spec.user_skew
        ),
    );
    report::row(
        "mix",
        format!(
            "{}% read / {}% update / {}% maintenance, {OPS_PER_CLIENT} ops per client",
            spec.mix.reads, spec.mix.updates, spec.mix.maintenance
        ),
    );

    let mut cells = Vec::new();
    for &clients in &LEVELS {
        let cell = run_level(clients);
        report::row(
            &format!("clients={clients}"),
            format!(
                "{:>7.1}ms wall | {:>6.1} ops/s | p50 {:>6}us p99 {:>7}us p999 {:>7}us | {:.0}% cache",
                cell.wall_ms,
                cell.ops_per_sec,
                cell.p50_us,
                cell.p99_us,
                cell.p999_us,
                100.0 * cell.cache_hit_rate
            ),
        );
        assert_eq!(cell.stale_serves, 0, "coherence contract over the wire");
        cells.push(cell);
    }

    report::section("overload: typed shedding, bounded wall time");
    let queue = run_queue_overload();
    report::row(
        "queue storm (depth 2, 1 worker)",
        format!(
            "{} attempts -> {} admitted, {} shed ({:.0}%), {:.1}ms",
            queue.attempts,
            queue.admitted,
            queue.sheds,
            100.0 * queue.shed_rate,
            queue.wall_ms
        ),
    );
    assert!(
        queue.sheds >= 1,
        "a depth-2 queue must shed an 8-thread storm"
    );
    let quota = run_quota_overload();
    report::row(
        "quota storm (1 token/s, burst 4)",
        format!(
            "{} attempts -> {} shed, min retry_after {}ms",
            quota.attempts, quota.sheds, quota.min_retry_after_ms
        ),
    );

    write_json(&spec, &cells, &queue, &quota);
}
