//! Small report-formatting helpers shared by the experiment binaries.

/// Prints a section header.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints an aligned `name: value` row.
pub fn row(name: &str, value: impl std::fmt::Display) {
    println!("  {name:<46} {value}");
}

/// Prints a paper-vs-measured comparison row.
pub fn compare(name: &str, paper: impl std::fmt::Display, measured: impl std::fmt::Display) {
    println!("  {name:<46} paper: {paper:<12} measured: {measured}");
}

/// Renders a sparse ASCII histogram of `values` (index = x), marking the
/// listed x positions.
pub fn histogram(values: &[usize], buckets: usize, mark: &[usize]) {
    if values.is_empty() {
        return;
    }
    let bucket_size = values.len().div_ceil(buckets);
    let maxv = values.iter().copied().max().unwrap_or(1).max(1);
    for b in 0..buckets {
        let lo = b * bucket_size;
        if lo >= values.len() {
            break;
        }
        let hi = ((b + 1) * bucket_size).min(values.len());
        let avg: usize = values[lo..hi].iter().sum::<usize>() / (hi - lo);
        let bar = "#".repeat((avg * 50).div_ceil(maxv).max(1));
        let marked = mark.iter().any(|&m| (lo..hi).contains(&m));
        let flag = if marked { " <- updated" } else { "" };
        println!("  [{lo:>4}..{hi:>4}) {avg:>7} {bar}{flag}");
    }
}

/// Mean of an iterator of f64.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}
