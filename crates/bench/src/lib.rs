//! Experiment harness regenerating every figure and table of the paper.
//!
//! Each module under [`experiments`] reproduces one evaluation artifact
//! (see DESIGN.md §4 for the index). The binaries under `src/bin/` print
//! the same rows/series the paper reports; `EXPERIMENTS.md` records
//! paper-vs-measured values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alice;
pub mod experiments;
pub mod report;
