//! Ablations of the design choices DESIGN.md calls out.
//!
//! - `sparse_vs_dense`: what the §4.3 sparse construction buys over the
//!   maximum-density baseline index;
//! - `elongation_sweep`: precision vs elongation depth (§3.1/§4 partial
//!   elongation = sequential access);
//! - `layout_comparison`: the §5.3 ladder (Figs. 6/7/8) measured end to end.

use dna_block_store::{planner, workload, BlockStore, PartitionConfig, UpdateLayout, BLOCK_SIZE};
use dna_index::{analysis, IndexTree, LeafId};
use dna_primers::{ElongatedPrimer, PrimerConstraints};
use dna_seq::rng::DetRng;
use dna_seq::{Base, DnaSeq};
use dna_sim::{IdsChannel, PcrPrimer, PcrProtocol, PcrReaction, Pool, Sequencer, StrandTag};

/// Sparse-vs-dense index comparison.
#[derive(Debug, Clone)]
pub struct SparseVsDense {
    /// Quality metrics of the sparse tree.
    pub sparse_quality: analysis::IndexQuality,
    /// Quality metrics of the dense baseline.
    pub dense_quality: analysis::IndexQuality,
    /// Mean pairwise Hamming distance, sparse (paper claims ≥ 2× dense).
    pub sparse_mean_distance: f64,
    /// Mean pairwise Hamming distance, dense.
    pub dense_mean_distance: f64,
    /// Fraction of leaves whose elongated primer fails PCR validation,
    /// sparse (expected 0).
    pub sparse_invalid_primers: f64,
    /// Same for dense (expected large).
    pub dense_invalid_primers: f64,
    /// On-target read fraction in a precise-access simulation, sparse tree.
    pub sparse_on_target: f64,
    /// Same for the dense tree.
    pub dense_on_target: f64,
}

/// Runs the sparse-vs-dense ablation on `blocks`-leaf mini-partitions.
pub fn sparse_vs_dense(seed: u64) -> SparseVsDense {
    let sparse = IndexTree::new(seed, 5);
    let dense = IndexTree::dense(5);
    let sample = 256;
    let constraints = PrimerConstraints::paper_default(20);
    let main: DnaSeq = "AACCGGTTAACCGGTTAACC".parse().unwrap();

    let invalid_fraction = |tree: &IndexTree| {
        let mut bad = 0usize;
        for leaf in 0..sample as u64 {
            let mut tail = DnaSeq::new();
            tail.push(Base::A);
            tail.extend(tree.leaf_index(LeafId(leaf)).iter());
            if ElongatedPrimer::new(main.clone(), tail)
                .validate(&constraints)
                .is_err()
            {
                bad += 1;
            }
        }
        bad as f64 / sample as f64
    };

    SparseVsDense {
        sparse_quality: analysis::index_quality(&sparse, sample),
        dense_quality: analysis::index_quality(&dense, sample),
        sparse_mean_distance: analysis::pairwise_hamming_stats(&sparse, 96).mean,
        dense_mean_distance: analysis::pairwise_hamming_stats(&dense, 96).mean,
        sparse_invalid_primers: invalid_fraction(&sparse),
        dense_invalid_primers: invalid_fraction(&dense),
        sparse_on_target: on_target_fraction(&sparse, &main, seed),
        dense_on_target: on_target_fraction(&dense, &main, seed),
    }
}

/// Precise-access simulation over a mini-pool built from `tree`'s indexes:
/// 64 blocks, one strand each, retrieve block 21.
fn on_target_fraction(tree: &IndexTree, main: &DnaSeq, seed: u64) -> f64 {
    let rev: DnaSeq = "AAGGCCTTAAGGCCTTAAGG".parse().unwrap();
    let mut pool = Pool::new();
    for leaf in 0..64u64 {
        let mut strand = main.clone();
        strand.push(Base::A);
        strand.extend(tree.leaf_index(LeafId(leaf)).iter());
        // distinct payload per leaf
        for j in 0..60 {
            strand.push(Base::from_code(
                (((leaf as usize) >> (2 * (j % 5))) as u8 + j as u8) & 3,
            ));
        }
        strand.extend(rev.reverse_complement().iter());
        pool.add(strand, 1.0e6, Some(StrandTag::new(0, leaf, 0, 0)));
    }
    let target = 21u64;
    let mut primer = main.clone();
    primer.push(Base::A);
    primer.extend(tree.leaf_index(LeafId(target)).iter());
    let budget = pool.total_copies() * 30.0;
    let rxn = PcrReaction {
        forward_primers: vec![PcrPrimer::with_budget(primer, budget)],
        reverse_primer: PcrPrimer::with_budget(rev, budget),
        protocol: PcrProtocol::paper_block_access(),
    };
    let out = rxn.run(&pool);
    let mut rng = DetRng::seed_from_u64(seed ^ 0xAB1);
    let reads = Sequencer::new(IdsChannel::illumina()).sequence(&out.pool, 10_000, &mut rng);
    let on_target = reads
        .iter()
        .filter(|r| r.truth.map(|t| t.unit == target).unwrap_or(false))
        .count();
    on_target as f64 / reads.len() as f64
}

/// One point of the elongation sweep.
#[derive(Debug, Clone, Copy)]
pub struct ElongationPoint {
    /// Tree levels included in the primer (0 = bare main primer).
    pub levels: usize,
    /// Primer length in bases.
    pub primer_len: usize,
    /// Leaves amplified (scope).
    pub amplified_leaves: u64,
    /// Expected useful fraction for a single-block read.
    pub expected_useful: f64,
}

/// The §3.1/§4 elongation-depth sweep (analytic; the wetlab-scale
/// measurement lives in the fig9 experiment at level 5).
pub fn elongation_sweep(seed: u64) -> Vec<ElongationPoint> {
    let store_cfg = PartitionConfig::paper_default(seed);
    let partition = dna_block_store::Partition::new(
        store_cfg,
        dna_primers::PrimerPair::new(
            "AACCGGTTAACCGGTTAACC".parse().unwrap(),
            "AAGGCCTTAAGGCCTTAAGG".parse().unwrap(),
        ),
    );
    (0..=5)
        .map(|levels| {
            let plan = planner::plan_partial(&partition, 531, levels);
            ElongationPoint {
                levels,
                primer_len: plan.primers[0].len(),
                amplified_leaves: plan.amplified_leaves,
                expected_useful: plan.expected_useful_fraction(),
            }
        })
        .collect()
}

/// One row of the layout comparison.
#[derive(Debug, Clone)]
pub struct LayoutRow {
    /// Layout name.
    pub name: &'static str,
    /// Analytic retrieval scope in encoding units (block + co-retrieved
    /// updates) for the scenario.
    pub analytic_scope_units: u64,
    /// Measured reads sequenced by the store to return the block.
    pub measured_reads: usize,
    /// Measured PCR round-trips.
    pub measured_rounds: usize,
    /// The read returned the correct content.
    pub correct: bool,
}

/// End-to-end layout comparison: a small store per layout, several updates
/// spread across blocks, then one updated-block read.
pub fn layout_comparison(seed: u64) -> Vec<LayoutRow> {
    let scenarios: [(&'static str, UpdateLayout); 3] = [
        ("Interleaved (Fig. 8)", UpdateLayout::paper_default()),
        ("TwoStacks (Fig. 7)", UpdateLayout::TwoStacks),
        ("DedicatedLog (Fig. 6)", UpdateLayout::DedicatedLog),
    ];
    let blocks = 8usize;
    let updates_per_block = 2usize;
    scenarios
        .into_iter()
        .map(|(name, layout)| {
            let store = BlockStore::new(seed);
            let mut cfg = PartitionConfig::paper_default(seed ^ 0x1A1);
            cfg.layout = layout;
            let pid = store.create_partition(cfg).unwrap();
            let data = workload::deterministic_text(blocks * BLOCK_SIZE, seed ^ 0x77);
            store.write_file(pid, &data).unwrap();
            let mut current = data.clone();
            for b in 0..blocks as u64 {
                for u in 0..updates_per_block {
                    let off = b as usize * BLOCK_SIZE + u;
                    current[off] = b'A' + (u as u8);
                    store
                        .update_block(pid, b, &current[b as usize * BLOCK_SIZE..][..BLOCK_SIZE])
                        .unwrap();
                }
            }
            let target = 3u64;
            let outcome = store.read_block(pid, target).unwrap();
            let expected = &current[target as usize * BLOCK_SIZE..][..BLOCK_SIZE];
            let partition_updates = (blocks * updates_per_block) as u64;
            LayoutRow {
                name,
                analytic_scope_units: layout.retrieval_scope_units(
                    updates_per_block as u64,
                    partition_updates,
                    partition_updates,
                ),
                measured_reads: outcome.stats.reads_sequenced,
                measured_rounds: outcome.stats.pcr_rounds,
                correct: outcome.block.data == expected,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_beats_dense_everywhere() {
        let r = sparse_vs_dense(42);
        assert!(r.sparse_quality.max_homopolymer <= 2);
        assert!(r.dense_quality.max_homopolymer >= 5);
        assert!(r.sparse_mean_distance >= 2.0 * r.dense_mean_distance);
        assert_eq!(r.sparse_invalid_primers, 0.0);
        assert!(r.dense_invalid_primers > 0.05);
        assert!(
            r.sparse_on_target > r.dense_on_target,
            "sparse {} vs dense {}",
            r.sparse_on_target,
            r.dense_on_target
        );
    }

    #[test]
    fn elongation_sweep_shape() {
        let sweep = elongation_sweep(7);
        assert_eq!(sweep.len(), 6);
        assert_eq!(sweep[0].amplified_leaves, 1024);
        assert_eq!(sweep[5].amplified_leaves, 1);
        for w in sweep.windows(2) {
            assert!(w[1].amplified_leaves < w[0].amplified_leaves);
            assert!(w[1].expected_useful > w[0].expected_useful);
        }
        assert_eq!(sweep[5].primer_len, 31);
    }
}
