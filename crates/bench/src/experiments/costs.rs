//! §7.3–§7.5 cost and latency tables, derived from measured Fig. 9
//! fractions.

use dna_block_store::cost;
use dna_sim::{NanoporeModel, NgsRunModel};

/// The §7.3 sequencing-cost table.
#[derive(Debug, Clone, Copy)]
pub struct CostTable {
    /// Useful-read fraction of the baseline whole-partition access.
    pub baseline_useful: f64,
    /// Useful-read fraction of the precise block access.
    pub ours_useful: f64,
    /// Baseline waste factor (paper: 293×).
    pub waste_baseline: f64,
    /// Our waste factor (paper: 1.08×).
    pub waste_ours: f64,
    /// Sequencing cost reduction (paper: 141×).
    pub reduction: f64,
}

/// Builds the table from measured fractions. `None` when either measured
/// fraction is outside `(0, 1]` — a sign the experiment produced garbage,
/// which must not flow into the report as `inf`/`NaN`.
pub fn sequencing_costs(baseline_useful: f64, ours_useful: f64) -> Option<CostTable> {
    Some(CostTable {
        baseline_useful,
        ours_useful,
        waste_baseline: cost::waste_factor(baseline_useful)?,
        waste_ours: cost::waste_factor(ours_useful)?,
        reduction: cost::sequencing_cost_reduction(baseline_useful, ours_useful)?,
    })
}

/// The §7.5 update-cost table.
#[derive(Debug, Clone, Copy)]
pub struct UpdateCostTable {
    /// Molecules the naive baseline synthesizes (whole partition).
    pub baseline_synthesis_molecules: u64,
    /// Molecules our patch synthesizes.
    pub patch_molecules: u64,
    /// Synthesis reduction (paper: ~580×).
    pub synthesis_reduction: f64,
    /// Sequencing reduction for reading the updated block (paper: ~146×).
    pub updated_read_reduction: f64,
    /// Dollar cost of the naive baseline under the vendor model.
    pub baseline_dollars: f64,
    /// Patch synthesis cost in dollars.
    pub patch_dollars: f64,
}

/// Builds the §7.5 table. `ours_useful` is the measured on-target fraction
/// when retrieving the updated block (data + update strands both count).
/// `None` when the measured fraction is outside `(0, 1]`.
pub fn update_costs(ours_useful: f64) -> Option<UpdateCostTable> {
    let twist = dna_sim::SynthesisVendor::twist();
    let baseline_mols = 8805u64;
    let patch_mols = 15u64;
    Some(UpdateCostTable {
        baseline_synthesis_molecules: baseline_mols,
        patch_molecules: patch_mols,
        synthesis_reduction: cost::update_synthesis_reduction(baseline_mols, patch_mols)?,
        updated_read_reduction: cost::updated_read_reduction(baseline_mols, 30, ours_useful)?,
        baseline_dollars: twist.synthesis_cost(baseline_mols as usize, 150),
        patch_dollars: twist.synthesis_cost(patch_mols as usize, 150),
    })
}

/// One row of the §7.4 latency table.
#[derive(Debug, Clone, Copy)]
pub struct LatencyRow {
    /// Partition size in bytes.
    pub partition_bytes: f64,
    /// The comparison.
    pub cmp: cost::LatencyComparison,
}

/// Builds the §7.4 latency table for several partition sizes at the given
/// selectivity (the measured sequencing reduction).
pub fn latency_table(selectivity: f64) -> Vec<LatencyRow> {
    let ngs = NgsRunModel::miseq();
    let nanopore = NanoporeModel::minion();
    [1.0e9, 1.0e10, 1.0e11, 1.0e12]
        .into_iter()
        .map(|bytes| LatencyRow {
            partition_bytes: bytes,
            cmp: cost::latency_comparison(bytes, selectivity, &ngs, &nanopore),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_from_paper_fractions() {
        let t = sequencing_costs(0.0034, 0.48).unwrap();
        assert!((t.reduction - 141.0).abs() < 1.5);
        let u = update_costs(0.48).unwrap();
        assert!((u.synthesis_reduction - 587.0).abs() < 1.0);
        assert!((u.updated_read_reduction - 140.9).abs() < 2.0);
        assert!(u.baseline_dollars / u.patch_dollars > 500.0);
    }

    #[test]
    fn latency_table_shape() {
        let rows = latency_table(141.0);
        assert_eq!(rows.len(), 4);
        // 1 TB row: 1000 runs vs 8.
        let tb = rows.last().unwrap();
        assert_eq!(tb.cmp.ngs_runs_partition, 1000.0);
        assert!(tb.cmp.nanopore_reduction() > 140.0);
        // Small partitions cannot reduce NGS latency.
        assert_eq!(rows[0].cmp.ngs_reduction(), 1.0);
    }
}
