//! Figure 10: mixing outcome — original vs update molecules per updated
//! paragraph after concentration-matched mixing (§6.4.2, §7.6).

use crate::alice::{build, AliceConfig, IDT_UPDATED_BLOCKS};
use dna_seq::rng::DetRng;
use dna_sim::{IdsChannel, Sequencer};
use std::collections::BTreeMap;

/// Read counts for one updated paragraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixCounts {
    /// Reads of the original (version 0) strands.
    pub original: usize,
    /// Reads of the update (version > 0) strands.
    pub update: usize,
}

impl MixCounts {
    /// update/original balance (1.0 = perfectly matched concentrations).
    pub fn balance(&self) -> f64 {
        self.update as f64 / self.original.max(1) as f64
    }
}

/// One protocol's Fig. 10 bars.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Protocol name.
    pub protocol: &'static str,
    /// Counts per updated paragraph.
    pub per_block: BTreeMap<u64, MixCounts>,
    /// Total reads sequenced.
    pub total_reads: usize,
}

/// Runs the figure for one mixing protocol.
pub fn run(amplify_then_measure: bool, num_reads: usize, seed: u64) -> Fig10 {
    let setup = build(AliceConfig {
        seed,
        amplify_then_measure,
        ..AliceConfig::default()
    });
    let mut rng = DetRng::seed_from_u64(seed ^ 0xF16);
    let reads = Sequencer::new(IdsChannel::illumina()).sequence(&setup.pool, num_reads, &mut rng);
    let mut per_block: BTreeMap<u64, MixCounts> = IDT_UPDATED_BLOCKS
        .iter()
        .map(|&b| {
            (
                b,
                MixCounts {
                    original: 0,
                    update: 0,
                },
            )
        })
        .collect();
    for r in &reads {
        if let Some(t) = r.truth {
            if t.partition == 13 && !t.prefix_overwritten {
                if let Some(counts) = per_block.get_mut(&t.unit) {
                    if t.version == 0 {
                        counts.original += 1;
                    } else {
                        counts.update += 1;
                    }
                }
            }
        }
    }
    Fig10 {
        protocol: if amplify_then_measure {
            "Amplify-then-Measure"
        } else {
            "Measure-then-Amplify"
        },
        per_block,
        total_reads: reads.len(),
    }
}

/// Prints one protocol's bars.
pub fn print(fig: &Fig10) {
    crate::report::section(&format!("Figure 10: mixing outcome ({})", fig.protocol));
    println!(
        "  {:>10} | {:>10} | {:>10} | {:>8}",
        "paragraph", "original", "update", "balance"
    );
    for (block, counts) in &fig.per_block {
        println!(
            "  {:>10} | {:>10} | {:>10} | {:>8.2}",
            block,
            counts.original,
            counts.update,
            counts.balance()
        );
    }
    crate::report::row("total reads", fig.total_reads);
}
