//! §7.7 scalability analysis: block counts, primer-library scaling,
//! block-size independence.

use dna_primers::{PrimerConstraints, PrimerLibrary};
use dna_sim::AnnealModel;

/// One row of the primer-library scaling study (§1: "the number of
/// compatible primers scales approximately linearly with the primer
/// length").
#[derive(Debug, Clone, Copy)]
pub struct LibraryRow {
    /// Primer length.
    pub length: usize,
    /// Minimum pairwise Hamming distance enforced.
    pub min_distance: usize,
    /// Primers found within the attempt budget.
    pub found: usize,
    /// Attempts used.
    pub attempts: usize,
}

/// Greedy library search at lengths 20/25/30 under one attempt budget.
pub fn primer_library_scaling(attempts: usize, seed: u64) -> Vec<LibraryRow> {
    [20usize, 25, 30]
        .into_iter()
        .map(|length| {
            let constraints = PrimerConstraints::paper_default(length);
            let lib = PrimerLibrary::generate_with_distance(
                &constraints,
                length / 2,
                usize::MAX,
                attempts,
                seed,
            );
            LibraryRow {
                length,
                min_distance: length / 2,
                found: lib.len(),
                attempts: lib.attempts_used(),
            }
        })
        .collect()
}

/// §7.7.1 address-count arithmetic.
#[derive(Debug, Clone, Copy)]
pub struct BlockCountReport {
    /// Blocks with one-sided 10-base elongation (paper: 1024).
    pub one_sided: u64,
    /// Blocks with two-sided 10+10 elongation (paper: 1024² ≈ 10⁶, "the
    /// same order of magnitude as the number of pages in memory or blocks
    /// in modern SSDs").
    pub two_sided: u64,
    /// Extra bases per strand for our sparse index (§9: 5 — vs 20 for one
    /// nested-primer level).
    pub elongation_overhead_bases: usize,
    /// Extra bases for one nested-PCR level (§9).
    pub nested_overhead_bases: usize,
}

/// Computes the §7.7.1 / §9 address arithmetic.
pub fn block_counts() -> BlockCountReport {
    BlockCountReport {
        one_sided: 1 << 10,           // 4^5 leaves from a 10-base sparse index
        two_sided: 1 << 20,           // (4^5)² with both primers extended
        elongation_overhead_bases: 5, // 10 sparse vs 5 dense bases
        nested_overhead_bases: 20,
    }
}

/// §7.7.2: mispriming is independent of block size. We verify the model
/// property directly: binding probability depends only on the primer and
/// the edit distance of the 5' index window, never on template length.
pub fn mispriming_independent_of_block_size() -> bool {
    let anneal = AnnealModel::calibrated();
    let primer: dna_seq::DnaSeq = "AACCGGTTAACCGGTTAACCAACGACGTACG".parse().unwrap();
    // Same prefix, payload tails of very different lengths.
    let mut short = primer.clone();
    short.extend((0..50).map(|i| dna_seq::Base::from_code((i % 4) as u8)));
    let mut long = primer.clone();
    long.extend((0..5000).map(|i| dna_seq::Base::from_code((i % 4) as u8)));
    let p_short = anneal.site_probability(&primer, &short, 55.0);
    let p_long = anneal.site_probability(&primer, &long, 55.0);
    anneal.binding_distance(&primer, &short) == anneal.binding_distance(&primer, &long)
        && (p_short - p_long).abs() < 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_primers_admit_larger_libraries() {
        let rows = primer_library_scaling(8_000, 7);
        assert_eq!(rows.len(), 3);
        assert!(
            rows[2].found >= rows[0].found,
            "len 30 ({}) should pack at least as many as len 20 ({})",
            rows[2].found,
            rows[0].found
        );
        assert!(rows[0].found > 0);
    }

    #[test]
    fn block_count_arithmetic() {
        let r = block_counts();
        assert_eq!(r.one_sided, 1024);
        assert_eq!(r.two_sided, 1024 * 1024);
        assert_eq!(r.nested_overhead_bases / r.elongation_overhead_bases, 4);
    }

    #[test]
    fn block_size_independence_holds() {
        assert!(mispriming_independent_of_block_size());
    }
}
