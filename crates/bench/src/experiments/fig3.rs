//! Figure 3: partition capacity and information density vs index length.

use dna_block_store::capacity::{self, CapacityPoint};

/// The two curves of Fig. 3 (primer lengths 20 and 30, strand length 150).
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Points for 20-base primers (solid lines).
    pub primer20: Vec<CapacityPoint>,
    /// Points for 30-base primers (dashed lines).
    pub primer30: Vec<CapacityPoint>,
    /// The world's-data reference line (log2 bytes).
    pub world_data_log2: f64,
}

/// Regenerates the figure's data.
pub fn run() -> Fig3 {
    Fig3 {
        primer20: capacity::sweep(150, 20),
        primer30: capacity::sweep(150, 30),
        world_data_log2: capacity::world_data_2023_log2_bytes(),
    }
}

/// Prints the series as the figure's underlying table.
pub fn print(fig: &Fig3) {
    crate::report::section("Figure 3: capacity & density vs index length (strand 150)");
    println!(
        "  {:>5} | {:>16} {:>13} | {:>16} {:>13}",
        "L", "cap log2(B) p20", "bits/base p20", "cap log2(B) p30", "bits/base p30"
    );
    for l in (0..=110).step_by(5) {
        let p20 = fig.primer20.get(l);
        let p30 = fig.primer30.get(l);
        let fmt = |p: Option<&CapacityPoint>| match p {
            Some(p) => format!("{:>16.1} {:>13.3}", p.capacity_log2_bytes, p.bits_per_base),
            None => format!("{:>16} {:>13}", "-", "-"),
        };
        println!("  {l:>5} | {} | {}", fmt(p20), fmt(p30));
    }
    crate::report::row(
        "world's data in 2023 (log2 bytes)",
        format!("{:.1}", fig.world_data_log2),
    );
    let crossing = fig
        .primer20
        .iter()
        .find(|p| p.capacity_log2_bytes > fig.world_data_log2)
        .map(|p| p.index_len);
    crate::report::row(
        "smallest L whose capacity exceeds world data",
        format!("{crossing:?}"),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_has_expected_shape() {
        let fig = run();
        assert_eq!(fig.primer20.len(), 111);
        assert_eq!(fig.primer30.len(), 91);
        // Corner values from the paper.
        assert!((fig.primer20.last().unwrap().capacity_log2_bytes - 217.0).abs() < 1e-9);
        assert!((fig.primer20[0].bits_per_base - 2.0 * 110.0 / 150.0).abs() < 1e-12);
        // Both curves cross the world-data line well before L = 60.
        let cross20 = fig
            .primer20
            .iter()
            .find(|p| p.capacity_log2_bytes > fig.world_data_log2)
            .unwrap();
        assert!(cross20.index_len < 60);
    }
}
