//! §8 decoding statistics: recover block 531 (original + update) from a
//! few hundred reads of the precise-access product.

use crate::alice::{expected_paragraph, AliceSetup};
use crate::experiments::fig9::PreciseAccess;
use dna_block_store::{unit_checksum_ok, workload, Block, UpdatePatch};
use dna_pipeline::decode_block_validated;
use dna_seq::Base;

/// Measured decoding statistics.
#[derive(Debug, Clone)]
pub struct DecodeStats {
    /// Reads handed to the decoder (paper: 225).
    pub reads_used: usize,
    /// Clusters formed.
    pub clusters_total: usize,
    /// Clusters reconstructed before full coverage (paper: 31).
    pub clusters_used: usize,
    /// Distinct strands recovered across versions (paper: 30).
    pub strands_recovered: usize,
    /// Versions decoded (paper: 2 — original + one update).
    pub versions_decoded: usize,
    /// RS symbols corrected (paper: 0 — "no error correction needed").
    pub corrected_symbols: usize,
    /// Whether the §8.1 alternate search was needed.
    pub used_alternates: bool,
    /// Original paragraph decoded correctly.
    pub original_ok: bool,
    /// Update patch decoded and applies to the expected content.
    pub updated_ok: bool,
    /// Reads the baseline would need for the same recovery at the measured
    /// whole-partition useful fraction (paper: ~50000).
    pub baseline_reads_needed: usize,
}

/// Scans ascending read budgets and returns the first that fully decodes
/// (original + update verified), along with its stats. Falls back to the
/// largest budget's stats if none fully succeeds.
pub fn minimal_reads(
    setup: &AliceSetup,
    access: &PreciseAccess,
    budgets: &[usize],
    baseline_useful: f64,
) -> (usize, DecodeStats) {
    let mut last = None;
    for &budget in budgets {
        let stats = run(setup, access, budget, baseline_useful);
        let ok = stats.original_ok && stats.updated_ok;
        last = Some((budget, stats));
        if ok {
            break;
        }
    }
    last.expect("at least one budget")
}

/// Decodes the target block from the first `reads_used` reads of a precise
/// access, verifying contents against ground truth.
pub fn run(
    setup: &AliceSetup,
    access: &PreciseAccess,
    reads_used: usize,
    baseline_useful: f64,
) -> DecodeStats {
    let reads = &access.reads[..reads_used.min(access.reads.len())];
    let prefix = setup.partition.elongated_primer(access.block);
    let rev = setup.partition.primers().reverse().clone();
    let cfg = setup.partition.decode_config(access.block);
    let outcome = decode_block_validated(reads, &prefix, &rev, &cfg, unit_checksum_ok);
    let strands_recovered: usize = outcome
        .versions
        .values()
        .map(|v| 15 - v.column_erasures)
        .sum();
    let corrected: usize = outcome.versions.values().map(|v| v.corrected_symbols).sum();
    let used_alternates = outcome.versions.values().any(|v| v.used_alternates);

    let original_ok = outcome
        .versions
        .get(&Base::A)
        .and_then(|v| Block::from_unit_bytes(&v.unit_bytes).ok())
        .map(|b| b.data == workload::alice_paragraph(access.block as usize))
        .unwrap_or(false);
    let updated_ok = outcome
        .versions
        .get(&Base::C)
        .and_then(|v| Block::from_unit_bytes(&v.unit_bytes).ok())
        .and_then(|b| UpdatePatch::from_block(&b).ok())
        .and_then(|p| {
            let base = Block::from_bytes(&workload::alice_paragraph(access.block as usize)).ok()?;
            p.apply(&base).ok()
        })
        .map(|b| b == expected_paragraph(access.block))
        .unwrap_or(false);

    // Baseline: to see the same 30 strands at similar per-strand coverage,
    // reads scale inversely with the useful fraction.
    let per_strand = reads_used as f64 / 30.0;
    let baseline_reads_needed = (per_strand * 30.0 / baseline_useful).round() as usize;

    DecodeStats {
        reads_used: reads.len(),
        clusters_total: outcome.clusters_total,
        clusters_used: outcome.clusters_used,
        strands_recovered,
        versions_decoded: outcome.versions.len(),
        corrected_symbols: corrected,
        used_alternates,
        original_ok,
        updated_ok,
        baseline_reads_needed,
    }
}
