//! One module per paper artifact (DESIGN.md §4).

pub mod ablations;
pub mod costs;
pub mod decode;
pub mod fig10;
pub mod fig3;
pub mod fig9;
pub mod scaling;
