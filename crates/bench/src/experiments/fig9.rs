//! Figure 9: read distributions after PCR random access.
//!
//! - 9a: whole-partition access with the main primers — uniform within ~2×,
//!   with the three co-synthesized-update blocks at ~2×, and the target
//!   block at ~0.34% of reads;
//! - 9b/9c: precise access with a 31-base elongated primer — ≈18% of reads
//!   from leftover main primers, ≈82% carrying the correct target prefix of
//!   which ≈59% are true target copies (≈48% of all reads on-target).

use crate::alice::{AliceSetup, TWIST_UPDATED_BLOCKS};
use dna_pipeline::ReadFilter;
use dna_seq::rng::DetRng;
use dna_sim::{IdsChannel, PcrPrimer, PcrProtocol, PcrReaction, Pool, Read, Sequencer};
use std::collections::BTreeMap;

/// Result of the Fig. 9a whole-partition access.
#[derive(Debug, Clone)]
pub struct WholePartitionAccess {
    /// Reads per book block (index = block id).
    pub reads_per_block: Vec<usize>,
    /// Total reads sequenced.
    pub total_reads: usize,
    /// Fraction of reads belonging to block 531 (data + its update).
    pub fraction_block_531: f64,
    /// p95/p5 uniformity ratio across non-updated blocks.
    pub uniformity_ratio: f64,
    /// mean(updated blocks) / mean(other blocks) — the "twice as many
    /// molecules" of Fig. 9a.
    pub updated_over_plain: f64,
}

/// Runs Fig. 9a: main-primer PCR over the original (Twist) pool, then
/// sequencing.
pub fn whole_partition(setup: &AliceSetup, num_reads: usize, seed: u64) -> WholePartitionAccess {
    let fwd = setup.partition.primers().forward().clone();
    let rev = setup.partition.primers().reverse().clone();
    let budget = setup.twist_pool.total_copies() * 30.0;
    let reaction = PcrReaction {
        forward_primers: vec![PcrPrimer::with_budget(fwd, budget)],
        reverse_primer: PcrPrimer::with_budget(rev, budget),
        protocol: PcrProtocol::paper_amplification(),
    };
    let out = reaction.run(&setup.twist_pool);
    let mut rng = DetRng::seed_from_u64(seed);
    let reads = Sequencer::new(IdsChannel::illumina()).sequence(&out.pool, num_reads, &mut rng);

    let mut per_block = vec![0usize; dna_block_store::workload::ALICE_BLOCKS];
    let mut total_13 = 0usize;
    for r in &reads {
        if let Some(t) = r.truth {
            if t.partition == 13 && (t.unit as usize) < per_block.len() {
                per_block[t.unit as usize] += 1;
                total_13 += 1;
            }
        }
    }
    let f531 = per_block[531] as f64 / total_13.max(1) as f64;
    let mut plain: Vec<usize> = per_block
        .iter()
        .enumerate()
        .filter(|(b, _)| !TWIST_UPDATED_BLOCKS.contains(&(*b as u64)))
        .map(|(_, &c)| c)
        .collect();
    plain.sort_unstable();
    let p5 = plain[plain.len() * 5 / 100].max(1);
    let p95 = plain[plain.len() * 95 / 100];
    let plain_mean = plain.iter().sum::<usize>() as f64 / plain.len() as f64;
    let updated_mean = TWIST_UPDATED_BLOCKS
        .iter()
        .map(|&b| per_block[b as usize] as f64)
        .sum::<f64>()
        / TWIST_UPDATED_BLOCKS.len() as f64;
    WholePartitionAccess {
        reads_per_block: per_block,
        total_reads: reads.len(),
        fraction_block_531: f531,
        uniformity_ratio: p95 as f64 / p5 as f64,
        updated_over_plain: updated_mean / plain_mean,
    }
}

/// Result of a Fig. 9b/9c precise access.
#[derive(Debug, Clone)]
pub struct PreciseAccess {
    /// The target block.
    pub block: u64,
    /// Reads per source block among correct-prefix reads (ground truth).
    pub reads_per_block: BTreeMap<u64, usize>,
    /// Total reads sequenced.
    pub total_reads: usize,
    /// Fraction of reads *without* the target prefix (leftover-main-primer
    /// amplification; paper: ≈18%).
    pub carryover_fraction: f64,
    /// Fraction of reads with the correct target prefix (paper: ≈82%).
    pub correct_prefix_fraction: f64,
    /// Among correct-prefix reads, the fraction actually from the target
    /// (paper: ≈59%).
    pub target_within_prefix: f64,
    /// Overall on-target fraction (paper: ≈48%).
    pub on_target_fraction: f64,
    /// Blocks that contributed misprimed reads ("a handful").
    pub misprime_sources: Vec<u64>,
    /// The raw reads (for downstream decoding experiments).
    pub reads: Vec<Read>,
    /// The amplified pool.
    pub pool: Pool,
}

/// Runs Fig. 9b/9c: touchdown PCR with the block's elongated primer plus a
/// leftover-main-primer carryover, then sequencing and classification.
///
/// `carryover_ratio` is the leftover primer's budget relative to the
/// elongated primer's (calibrated so that ≈18% of reads come from it, as
/// the paper observed).
pub fn precise_access(
    setup: &AliceSetup,
    block: u64,
    num_reads: usize,
    carryover_ratio: f64,
    seed: u64,
) -> PreciseAccess {
    let elongated = setup.partition.elongated_primer(block);
    let main_fwd = setup.partition.primers().forward().clone();
    let rev = setup.partition.primers().reverse().clone();
    let budget = setup.pool.total_copies() * 30.0;
    let reaction = PcrReaction {
        forward_primers: vec![
            PcrPrimer::with_budget(elongated.clone(), budget),
            PcrPrimer::with_budget(main_fwd, budget * carryover_ratio),
        ],
        reverse_primer: PcrPrimer::with_budget(rev.clone(), budget * (1.0 + carryover_ratio)),
        protocol: PcrProtocol::paper_block_access(),
    };
    let out = reaction.run(&setup.pool);
    let mut rng = DetRng::seed_from_u64(seed);
    let reads = Sequencer::new(IdsChannel::illumina()).sequence(&out.pool, num_reads, &mut rng);

    // Classify: correct target prefix = physically carries the elongated
    // primer (with the index-tail check; §7.2's "82% had the correct target
    // prefix").
    let filter = ReadFilter::with_tail_check(
        elongated.clone(),
        &rev,
        3,
        setup.partition.config().geometry.unit_index_len,
        1,
    );
    let mut correct_prefix = 0usize;
    let mut on_target = 0usize;
    let mut per_block: BTreeMap<u64, usize> = BTreeMap::new();
    for r in &reads {
        let has_prefix = filter.extract(&r.seq).is_some();
        if has_prefix {
            correct_prefix += 1;
            if let Some(t) = r.truth {
                *per_block.entry(t.unit).or_insert(0) += 1;
                if t.unit == block {
                    on_target += 1;
                }
            }
        }
    }
    let total = reads.len().max(1);
    let correct_prefix_fraction = correct_prefix as f64 / total as f64;
    let target_within_prefix = on_target as f64 / correct_prefix.max(1) as f64;
    let misprime_sources: Vec<u64> = per_block
        .iter()
        .filter(|&(&b, &c)| b != block && c > correct_prefix / 100)
        .map(|(&b, _)| b)
        .collect();
    PreciseAccess {
        block,
        reads_per_block: per_block,
        total_reads: reads.len(),
        carryover_fraction: 1.0 - correct_prefix_fraction,
        correct_prefix_fraction,
        target_within_prefix,
        on_target_fraction: on_target as f64 / total as f64,
        misprime_sources,
        reads,
        pool: out.pool,
    }
}

/// Runs the §6.5 multiplex access: blocks 144, 307 and 531 amplified in one
/// reaction with an equal mix of all three elongated primers ("with the
/// total primer concentration of the mixed pool being the same as in the
/// case of the single primer pair").
pub fn multiplex_access(
    setup: &AliceSetup,
    blocks: &[u64],
    num_reads: usize,
    seed: u64,
) -> BTreeMap<u64, f64> {
    let rev = setup.partition.primers().reverse().clone();
    let budget = setup.pool.total_copies() * 30.0;
    let reaction = PcrReaction {
        forward_primers: blocks
            .iter()
            .map(|&b| {
                PcrPrimer::with_budget(
                    setup.partition.elongated_primer(b),
                    budget / blocks.len() as f64,
                )
            })
            .collect(),
        reverse_primer: PcrPrimer::with_budget(rev, budget),
        protocol: PcrProtocol::paper_block_access(),
    };
    let out = reaction.run(&setup.pool);
    let mut rng = DetRng::seed_from_u64(seed);
    let reads = Sequencer::new(IdsChannel::illumina()).sequence(&out.pool, num_reads, &mut rng);
    let mut per_target: BTreeMap<u64, usize> = blocks.iter().map(|&b| (b, 0)).collect();
    for r in &reads {
        if let Some(t) = r.truth {
            if let Some(slot) = per_target.get_mut(&t.unit) {
                *slot += 1;
            }
        }
    }
    per_target
        .into_iter()
        .map(|(b, c)| (b, c as f64 / reads.len() as f64))
        .collect()
}
