//! The §6 wetlab setup, rebuilt in the simulator.
//!
//! 13 files in one pool. File 13 is the 150 kB "book" (587 × 256 B blocks,
//! 8805 strands) with a PCR-navigable 1024-leaf index. Three update patches
//! (blocks 144, 307, 531) are co-synthesized with the originals by the
//! Twist vendor model; three more (blocks 243, 374, 556) come from the IDT
//! vendor model at 50000× concentration and are mixed in via the §6.4.2
//! protocols.

use dna_block_store::{workload, Block, Partition, PartitionConfig, UpdatePatch, VersionSlot};
use dna_primers::PrimerPair;
use dna_seq::rng::DetRng;
use dna_seq::DnaSeq;
use dna_sim::{mixing, Molecule, Nanodrop, Pool, SynthesisVendor};

/// Blocks updated by patches co-synthesized with the original pool.
pub const TWIST_UPDATED_BLOCKS: [u64; 3] = [144, 307, 531];

/// Blocks updated by the separately synthesized (IDT) patch pool (Fig. 10).
pub const IDT_UPDATED_BLOCKS: [u64; 3] = [243, 374, 556];

/// The assembled experiment state.
pub struct AliceSetup {
    /// File 13's partition (the book).
    pub partition: Partition,
    /// The 12 unrelated partitions' main primer pairs (only their strands
    /// matter; kept for completeness).
    pub other_primers: Vec<PrimerPair>,
    /// The combined pool: Twist synthesis of all 13 files + co-synthesized
    /// updates, with the IDT updates mixed in at matched concentration.
    pub pool: Pool,
    /// The pre-mix pool (no IDT updates) — the "original pool" of Fig. 9a.
    pub twist_pool: Pool,
    /// The raw IDT update pool (50000× concentrated), pre-mixing.
    pub idt_pool: Pool,
    /// Deterministic RNG stream for downstream steps.
    pub rng: DetRng,
}

/// Per-setup knobs (kept small; defaults match the paper).
#[derive(Debug, Clone, Copy)]
pub struct AliceConfig {
    /// Master seed.
    pub seed: u64,
    /// Blocks per unrelated file (presence is what matters; the paper does
    /// not report their sizes).
    pub other_file_blocks: usize,
    /// Use the Amplify-then-Measure protocol for the IDT mix (else
    /// Measure-then-Amplify).
    pub amplify_then_measure: bool,
}

impl Default for AliceConfig {
    fn default() -> Self {
        AliceConfig {
            seed: 0xA11CE,
            other_file_blocks: 20,
            amplify_then_measure: true,
        }
    }
}

/// Builds the full §6 pool.
pub fn build(config: AliceConfig) -> AliceSetup {
    let mut rng = DetRng::seed_from_u64(config.seed);
    let twist = SynthesisVendor::twist();
    let idt = SynthesisVendor::idt();

    // Primer pairs: file 13 + 12 unrelated files.
    let constraints = dna_primers::PrimerConstraints::paper_default(20);
    let library = dna_primers::PrimerLibrary::generate_with_distance(
        &constraints,
        8,
        26,
        400_000,
        config.seed ^ 0x9121,
    );
    assert!(library.len() >= 26, "need 13 primer pairs");
    let alice_primers = PrimerPair::new(library.primer(0).clone(), library.primer(1).clone());
    let other_primers: Vec<PrimerPair> = (1..13)
        .map(|i| {
            PrimerPair::new(
                library.primer(2 * i).clone(),
                library.primer(2 * i + 1).clone(),
            )
        })
        .collect();

    // File 13: the book.
    let mut pcfg = PartitionConfig::paper_default(config.seed ^ 0x0DD5);
    pcfg.partition_tag = 13;
    let mut partition = Partition::new(pcfg, alice_primers);
    let book = workload::alice_book();
    let mut designs: Vec<Molecule> = Vec::with_capacity(8850);
    for (i, chunk) in book.chunks(dna_block_store::BLOCK_SIZE).enumerate() {
        let block = Block::from_bytes(chunk).expect("block-sized chunk");
        designs.extend(partition.encode_block(i as u64, &block).expect("in range"));
    }
    assert_eq!(designs.len(), 8805);

    // Twist-co-synthesized updates for 144/307/531.
    for &b in &TWIST_UPDATED_BLOCKS {
        let patch = paragraph_patch(b);
        let (_, mols) = partition.encode_update(b, &patch).expect("direct slot");
        designs.extend(mols);
    }
    assert_eq!(designs.len(), 8850);

    // 12 unrelated files (their content is irrelevant; unique strands).
    for (fi, file) in workload::unrelated_files(12, config.other_file_blocks)
        .into_iter()
        .enumerate()
    {
        let mut ocfg = PartitionConfig::paper_default(config.seed ^ (0xF11E + fi as u64));
        ocfg.partition_tag = fi as u32 + 1;
        let mut op = Partition::new(ocfg, other_primers[fi].clone());
        for (i, chunk) in file.chunks(dna_block_store::BLOCK_SIZE).enumerate() {
            let block = Block::from_bytes(chunk).expect("block-sized chunk");
            designs.extend(op.encode_block(i as u64, &block).expect("in range"));
        }
    }

    let twist_pool = twist.synthesize(&designs, &mut rng);

    // IDT updates for 243/374/556 (45 molecules, 50000× concentrated).
    let mut idt_designs = Vec::new();
    for &b in &IDT_UPDATED_BLOCKS {
        let patch = paragraph_patch(b);
        let (_, mols) = partition.encode_update(b, &patch).expect("direct slot");
        idt_designs.extend(mols);
    }
    assert_eq!(idt_designs.len(), 45);
    let idt_pool = idt.synthesize(&idt_designs, &mut rng);

    // Mix at matched per-oligo concentration (§6.4.2).
    let fwd = partition.primers().forward().clone();
    let rev = partition.primers().reverse().clone();
    let nanodrop = Nanodrop::benchtop();
    let twist_designs_in_alice = 8850;
    let mix = if config.amplify_then_measure {
        mixing::amplify_then_measure(
            &twist_pool,
            &idt_pool,
            twist_designs_in_alice,
            45,
            &fwd,
            &rev,
            &nanodrop,
            &mut rng,
        )
    } else {
        mixing::measure_then_amplify(
            &twist_pool,
            &idt_pool,
            twist_designs_in_alice,
            45,
            &fwd,
            &rev,
            &nanodrop,
            &mut rng,
        )
    };

    AliceSetup {
        partition,
        other_primers,
        pool: mix.pool,
        twist_pool,
        idt_pool,
        rng,
    }
}

/// The update applied to a paragraph in the experiments: replace a short
/// span of the paragraph's text (a realistic §6.4 patch).
pub fn paragraph_patch(block: u64) -> UpdatePatch {
    let offset = (block % 200) as u8;
    UpdatePatch::new(offset, 7, offset, b"UPDATED".to_vec()).expect("valid patch")
}

/// Ground truth content of a paragraph after its patch (if any) applies.
pub fn expected_paragraph(block: u64) -> Block {
    let base = Block::from_bytes(&workload::alice_paragraph(block as usize)).expect("block");
    let updated = TWIST_UPDATED_BLOCKS.contains(&block) || IDT_UPDATED_BLOCKS.contains(&block);
    if updated {
        paragraph_patch(block).apply(&base).expect("patch applies")
    } else {
        base
    }
}

/// The elongated primer (31 bases) used for precise access to `block`.
pub fn elongated_primer(setup: &AliceSetup, block: u64) -> DnaSeq {
    setup.partition.elongated_primer(block)
}

/// The version-scoped primer used to inspect a specific slot.
pub fn version_primer(setup: &AliceSetup, block: u64, slot: u8) -> DnaSeq {
    setup.partition.version_primer(block, VersionSlot(slot))
}
