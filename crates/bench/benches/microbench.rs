//! Micro-benchmarks of the core substrates.

use criterion::{criterion_group, criterion_main, Criterion};
use dna_block_store::{Block, UpdatePatch};
use dna_ecc::{EncodingUnit, GfTables, ReedSolomon, UnitConfig};
use dna_index::{IndexTree, LeafId};
use dna_pipeline::{bma, cluster_reads, double_sided_bma, ClusterConfig};
use dna_seq::distance::{levenshtein, levenshtein_bounded};
use dna_seq::rng::DetRng;
use dna_seq::{Base, DnaSeq};
use dna_sim::IdsChannel;
use std::hint::black_box;

fn random_seq(len: usize, rng: &mut DetRng) -> DnaSeq {
    DnaSeq::from_bases((0..len).map(|_| Base::from_code(rng.gen_range(4) as u8)))
}

fn bench_distances(c: &mut Criterion) {
    let mut rng = DetRng::seed_from_u64(1);
    let a = random_seq(150, &mut rng);
    let b = IdsChannel::illumina().corrupt(&a, &mut rng);
    c.bench_function("levenshtein_150", |bch| {
        bch.iter(|| black_box(levenshtein(a.as_slice(), b.as_slice())));
    });
    c.bench_function("levenshtein_bounded_150_k4", |bch| {
        bch.iter(|| black_box(levenshtein_bounded(a.as_slice(), b.as_slice(), 4)));
    });
}

fn bench_rs(c: &mut Criterion) {
    let rs = ReedSolomon::new(GfTables::gf16(), 4);
    let data: Vec<u8> = (0..11).collect();
    let clean = rs.encode(&data);
    c.bench_function("rs15_11_encode", |b| {
        b.iter(|| black_box(rs.encode(black_box(&data))));
    });
    c.bench_function("rs15_11_decode_2_errors", |b| {
        b.iter(|| {
            let mut cw = clean.clone();
            cw[3] ^= 0x9;
            cw[12] ^= 0x4;
            black_box(rs.decode(&mut cw, &[]).unwrap())
        });
    });
}

fn bench_unit(c: &mut Criterion) {
    let unit = EncodingUnit::new(UnitConfig::paper_default());
    let data: Vec<u8> = (0..264u32).map(|i| (i % 251) as u8).collect();
    let cols = unit.encode(&data).unwrap();
    c.bench_function("unit_encode_264B", |b| {
        b.iter(|| black_box(unit.encode(black_box(&data)).unwrap()));
    });
    c.bench_function("unit_decode_4_erasures", |b| {
        b.iter(|| {
            let mut received: Vec<Option<Vec<u8>>> = cols.iter().cloned().map(Some).collect();
            received[0] = None;
            received[5] = None;
            received[9] = None;
            received[14] = None;
            black_box(unit.decode(&received).unwrap())
        });
    });
}

fn bench_tree(c: &mut Criterion) {
    let tree = IndexTree::new(0x7EE, 5);
    let idx = tree.leaf_index(LeafId(531));
    c.bench_function("tree_leaf_index", |b| {
        b.iter(|| black_box(tree.leaf_index(black_box(LeafId(531)))));
    });
    c.bench_function("tree_parse_index", |b| {
        b.iter(|| black_box(tree.parse_index(black_box(&idx))));
    });
    c.bench_function("tree_cover_range_unaligned", |b| {
        b.iter(|| black_box(tree.cover_range(LeafId(3), LeafId(997))));
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let mut rng = DetRng::seed_from_u64(3);
    let ch = IdsChannel::illumina();
    let origs: Vec<DnaSeq> = (0..20).map(|_| random_seq(99, &mut rng)).collect();
    let reads: Vec<DnaSeq> = origs
        .iter()
        .flat_map(|o| (0..10).map(|_| ch.corrupt(o, &mut rng)).collect::<Vec<_>>())
        .collect();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    group.bench_function("cluster_200_reads", |b| {
        b.iter(|| black_box(cluster_reads(&reads, &ClusterConfig::default())));
    });
    let traces: Vec<DnaSeq> = (0..10).map(|_| ch.corrupt(&origs[0], &mut rng)).collect();
    group.bench_function("bma_10_traces", |b| {
        b.iter(|| black_box(bma(&traces, 99)));
    });
    group.bench_function("double_sided_bma_10_traces", |b| {
        b.iter(|| black_box(double_sided_bma(&traces, 99)));
    });
    group.finish();
}

fn bench_patches(c: &mut Criterion) {
    let old = Block::from_bytes(&dna_block_store::workload::deterministic_text(256, 1)).unwrap();
    let mut edited = old.clone();
    edited.data[40..47].copy_from_slice(b"UPDATED");
    c.bench_function("patch_diff", |b| {
        b.iter(|| black_box(UpdatePatch::diff(&old, &edited).unwrap()));
    });
    let patch = UpdatePatch::diff(&old, &edited).unwrap();
    c.bench_function("patch_apply", |b| {
        b.iter(|| black_box(patch.apply(&old).unwrap()));
    });
}

fn bench_pool_mixing(c: &mut Criterion) {
    // The write-path fix behind the sharded store: `mixed_with` clones the
    // whole archival tube per synthesis batch (O(pool)), `mix_in` lands
    // the batch in place (O(batch · log pool)).
    use dna_sim::Pool;
    let mut rng = DetRng::seed_from_u64(77);
    let mut pool = Pool::new();
    for _ in 0..2_000 {
        pool.add(random_seq(150, &mut rng), 1.0e6, None);
    }
    let mut batch = Pool::new();
    for _ in 0..4 {
        batch.add(random_seq(150, &mut rng), 5.0e10, None);
    }
    c.bench_function("pool2000_mixed_with_batch4 (clone per write)", |b| {
        b.iter(|| black_box(pool.mixed_with(&batch, 1.0, 2.0e-5)));
    });
    c.bench_function("pool2000_mix_in_batch4 (in place)", |b| {
        let mut live = pool.clone();
        b.iter(|| {
            live.mix_in(&batch, 1.0, 2.0e-5);
            black_box(live.distinct())
        });
    });
}

criterion_group!(
    micro,
    bench_distances,
    bench_rs,
    bench_unit,
    bench_tree,
    bench_pipeline,
    bench_patches,
    bench_pool_mixing
);
criterion_main!(micro);
