//! Figure-scale criterion benches: timed, shrunk versions of each paper
//! artifact. The full-size regenerations live in the `dna-bench` binaries
//! (`cargo run -p dna-bench --release --bin fig9` etc.); these benches track
//! the cost of the underlying machinery so regressions show up in CI.

use criterion::{criterion_group, criterion_main, Criterion};
use dna_bench::experiments::{ablations, costs, fig3, scaling};
use dna_block_store::{workload, Block, Partition, PartitionConfig, VersionSlot};
use dna_primers::PrimerPair;
use dna_seq::rng::DetRng;
use dna_sim::{IdsChannel, PcrPrimer, PcrProtocol, PcrReaction, Pool, Sequencer};
use std::hint::black_box;

fn primer_pair() -> PrimerPair {
    PrimerPair::new(
        "AACCGGTTAACCGGTTAACC".parse().unwrap(),
        "AAGGCCTTAAGGCCTTAAGG".parse().unwrap(),
    )
}

/// A 32-block mini version of the Alice partition, reused across the
/// figure benches.
fn mini_partition() -> (Partition, Pool) {
    let mut partition = Partition::new(PartitionConfig::paper_default(0xBE7C), primer_pair());
    let mut designs = Vec::new();
    let text = workload::deterministic_text(32 * dna_block_store::BLOCK_SIZE, 3);
    for (i, chunk) in text.chunks(dna_block_store::BLOCK_SIZE).enumerate() {
        let b = Block::from_bytes(chunk).unwrap();
        designs.extend(partition.encode_block(i as u64, &b).unwrap());
    }
    let mut rng = DetRng::seed_from_u64(5);
    let pool = dna_sim::SynthesisVendor::twist().synthesize(&designs, &mut rng);
    (partition, pool)
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_capacity_sweep", |b| {
        b.iter(|| black_box(fig3::run()));
    });
}

fn bench_fig9_precise_access(c: &mut Criterion) {
    let (partition, pool) = mini_partition();
    let primer = partition.elongated_primer(21);
    let rev = partition.primers().reverse().clone();
    let budget = pool.total_copies() * 30.0;
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("precise_access_pcr_32_blocks", |b| {
        b.iter(|| {
            let rxn = PcrReaction {
                forward_primers: vec![PcrPrimer::with_budget(primer.clone(), budget)],
                reverse_primer: PcrPrimer::with_budget(rev.clone(), budget),
                protocol: PcrProtocol::paper_block_access(),
            };
            black_box(rxn.run(&pool))
        });
    });
    group.bench_function("sequencing_5k_reads", |b| {
        let rxn = PcrReaction {
            forward_primers: vec![PcrPrimer::with_budget(primer.clone(), budget)],
            reverse_primer: PcrPrimer::with_budget(rev.clone(), budget),
            protocol: PcrProtocol::paper_block_access(),
        };
        let amplified = rxn.run(&pool).pool;
        let mut rng = DetRng::seed_from_u64(7);
        b.iter(|| {
            black_box(Sequencer::new(IdsChannel::illumina()).sequence(&amplified, 5_000, &mut rng))
        });
    });
    group.finish();
}

fn bench_fig10_mixing(c: &mut Criterion) {
    let (mut partition, pool) = mini_partition();
    let patch = dna_block_store::UpdatePatch::new(0, 3, 0, b"UPD".to_vec()).unwrap();
    let (_, mols) = partition.encode_update(5, &patch).unwrap();
    let mut rng = DetRng::seed_from_u64(11);
    let update_pool = dna_sim::SynthesisVendor::idt().synthesize(&mols, &mut rng);
    let fwd = partition.primers().forward().clone();
    let rev = partition.primers().reverse().clone();
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("amplify_then_measure_mix", |b| {
        let mut rng = DetRng::seed_from_u64(13);
        b.iter(|| {
            black_box(dna_sim::mixing::amplify_then_measure(
                &pool,
                &update_pool,
                32 * 15,
                15,
                &fwd,
                &rev,
                &dna_sim::Nanodrop::benchtop(),
                &mut rng,
            ))
        });
    });
    group.finish();
}

fn bench_tables(c: &mut Criterion) {
    c.bench_function("tab_cost_and_latency", |b| {
        b.iter(|| {
            let t = costs::sequencing_costs(0.0034, 0.48).expect("fractions in (0, 1]");
            let u = costs::update_costs(0.48);
            let l = costs::latency_table(t.reduction);
            black_box((t, u, l))
        });
    });
    c.bench_function("tab_scaling_block_counts", |b| {
        b.iter(|| black_box(scaling::block_counts()));
    });
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("sparse_vs_dense", |b| {
        b.iter(|| black_box(ablations::sparse_vs_dense(0xAB)));
    });
    group.bench_function("elongation_sweep", |b| {
        b.iter(|| black_box(ablations::elongation_sweep(0xE1)));
    });
    group.finish();
}

fn bench_block_roundtrip(c: &mut Criterion) {
    // The write-path hot loop: one unit → 15 strands.
    let (partition, _) = mini_partition();
    let block = Block::from_bytes(b"benchmark paragraph content").unwrap();
    let mut group = c.benchmark_group("roundtrip");
    group.bench_function("encode_unit_15_strands", |b| {
        b.iter(|| black_box(partition.encode_unit(40, VersionSlot(0), &block)));
    });
    group.bench_function("elongated_primer_derivation", |b| {
        b.iter(|| black_box(partition.elongated_primer(black_box(21))));
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_fig3,
    bench_fig9_precise_access,
    bench_fig10_mixing,
    bench_tables,
    bench_ablations,
    bench_block_roundtrip
);
criterion_main!(figures);
