//! Kill-and-resume soak: a real `served` subprocess on a durable dir,
//! killed with no warning mid-workload, relaunched, and resumed.
//!
//! The oracle is exact: every update this test model-records was *acked*
//! over the wire before the kill, and the store journals each commit
//! before acking (PR 7), so the recovered image must equal the model
//! byte-for-byte — and the staleness oracle must report
//! `stale_serves == 0` across both incarnations.

use dna_block_store::BLOCK_SIZE;
use dna_serve::client::JobPoll;
use dna_serve::Client;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};

struct Served {
    child: Child,
    addr: SocketAddr,
}

impl Served {
    fn launch(dir: &Path) -> Served {
        let mut child = Command::new(env!("CARGO_BIN_EXE_served"))
            .args(["--dir", dir.to_str().expect("utf8 dir")])
            .args(["--seed", "42", "--addr", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn served");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read LISTENING line");
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
            .parse()
            .expect("parse addr");
        Served { child, addr }
    }

    fn kill(mut self) {
        self.child.kill().expect("SIGKILL served");
        self.child.wait().expect("reap served");
    }
}

// A panicking assertion must not orphan the subprocess: it inherits our
// stderr pipe, and a leaked child keeps the whole test harness pipeline
// open forever.
impl Drop for Served {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dna-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create soak dir");
    dir
}

fn block_image(seed: u64) -> Vec<u8> {
    dna_block_store::workload::deterministic_text(BLOCK_SIZE, seed)
}

/// The next image of a block: the previous image with a 16-byte stamp
/// at a round-dependent offset — a contiguous edit small enough for one
/// §6.4 delete-then-insert patch (full-block rewrites are typed away by
/// the store).
fn stamped(prev: &[u8], round: u64) -> Vec<u8> {
    let mut next = prev.to_vec();
    let at = usize::try_from((round * 13) % ((BLOCK_SIZE as u64) - 16)).expect("tiny offset");
    next[at..at + 16].copy_from_slice(format!("[stamp {round:06} !]").as_bytes());
    next
}

#[test]
fn killed_server_resumes_the_acked_prefix_with_zero_stale_serves() {
    let dir = fresh_dir("resume");
    const BLOCKS: u64 = 4;

    // ---- incarnation 1: build state, ack updates, die without warning.
    let served = Served::launch(&dir);
    let mut client = Client::connect(served.addr).expect("connect");
    let pid = client.create_partition(7).expect("create partition");
    let initial: Vec<u8> = (0..BLOCKS).flat_map(block_image).collect();
    assert_eq!(
        client.write_file(pid, &initial).expect("write file"),
        BLOCKS
    );

    // The exact oracle: `model[b]` is the last *acked* image of block b.
    let mut model: Vec<Vec<u8>> = (0..BLOCKS).map(block_image).collect();
    for round in 0..6u64 {
        let block = usize::try_from(round % BLOCKS).expect("tiny index");
        let image = stamped(&model[block], round);
        let job = client
            .submit_update(pid, block as u64, &image)
            .expect("submit update");
        assert_eq!(client.wait(job).expect("acked update"), JobPoll::Updated);
        // Ack received: only now does the oracle advance.
        model[block] = image;
    }
    let stats = client.stats().expect("stats before kill");
    assert_eq!(stats["stale_serves"], 0);
    assert_eq!(stats["updates_applied"], 6);
    // SIGKILL mid-workload: no flush, no shutdown hook, connection dies.
    served.kill();

    // ---- incarnation 2: same dir, fresh process, fresh port.
    let served = Served::launch(&dir);
    let mut client = Client::connect(served.addr).expect("reconnect");

    // Every block serves exactly the acked prefix.
    for (b, want) in model.iter().enumerate() {
        let (got, _) = client
            .read_block(pid, b as u64)
            .expect("read after recovery");
        assert_eq!(&got, want, "block {b} lost an acked update");
    }

    // The workload resumes: more acked updates land on the recovered
    // image, and the staleness oracle stays clean end-to-end.
    for round in 6..10u64 {
        let block = usize::try_from(round % BLOCKS).expect("tiny index");
        let image = stamped(&model[block], round);
        let job = client
            .submit_update(pid, block as u64, &image)
            .expect("submit update");
        assert_eq!(client.wait(job).expect("acked update"), JobPoll::Updated);
        model[block] = image;
    }
    for (b, want) in model.iter().enumerate() {
        let (got, _) = client.read_block(pid, b as u64).expect("read resumed");
        assert_eq!(&got, want, "block {b} diverged after resume");
    }

    let stats = client.stats().expect("stats after resume");
    assert_eq!(stats["stale_serves"], 0, "staleness oracle tripped");
    assert_eq!(stats["updates_applied"], 4, "second incarnation's updates");
    assert!(stats["reads_served"] >= 2 * BLOCKS);

    served.kill();
    let _ = std::fs::remove_dir_all(&dir);
}
