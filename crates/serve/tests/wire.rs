//! End-to-end wire-protocol tests: a real `WireServer` on an ephemeral
//! port, driven by the [`Client`] over real sockets — lifecycle, typed
//! shedding on both admission gates, and protocol robustness.

use dna_block_store::service::{ServerConfig, StoreServer};
use dna_block_store::{BlockStore, BLOCK_SIZE};
use dna_serve::client::{CallError, JobPoll};
use dna_serve::{Client, ServeConfig, WireServer};
use std::io::{Read, Write};

fn boot(cfg: ServeConfig) -> WireServer {
    let store = StoreServer::new(BlockStore::new(42), ServerConfig::paper_default());
    WireServer::start(store, cfg, "127.0.0.1:0").expect("bind ephemeral")
}

#[test]
fn full_lifecycle_over_the_wire() {
    let server = boot(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let pid = client.create_partition(7).expect("create partition");
    let data = dna_block_store::workload::deterministic_text(2 * BLOCK_SIZE, 0xD1);
    assert_eq!(client.write_file(pid, &data).expect("write file"), 2);

    // Inline read: cold then cached.
    let (bytes, from_cache) = client.read_block(pid, 0).expect("inline read");
    assert_eq!(bytes, &data[..BLOCK_SIZE]);
    assert!(!from_cache);
    let (bytes, from_cache) = client.read_block(pid, 0).expect("warm read");
    assert_eq!(bytes, &data[..BLOCK_SIZE]);
    assert!(from_cache);

    // Job lifecycle: read.
    let job = client.submit_read(pid, 1).expect("submit read");
    match client.wait(job).expect("job result") {
        JobPoll::Block { data: got, .. } => assert_eq!(got, &data[BLOCK_SIZE..]),
        other => panic!("expected block, got {other:?}"),
    }
    // A terminal fetch consumed the job: polling again is 404.
    match client.poll(job) {
        Err(CallError::Server { status: 404, .. }) => {}
        other => panic!("expected 404 for consumed job, got {other:?}"),
    }

    // Job lifecycle: update, then verify the new bytes serve.
    let mut updated = data[..BLOCK_SIZE].to_vec();
    updated[..6].copy_from_slice(b"EDITED");
    let job = client
        .submit_update(pid, 0, &updated)
        .expect("submit update");
    assert_eq!(client.wait(job).expect("update result"), JobPoll::Updated);
    let (bytes, _) = client.read_block(pid, 0).expect("read after update");
    assert_eq!(bytes, updated);

    // Maintenance job goes through the same lifecycle.
    let job = client.submit_maintenance().expect("submit maintenance");
    assert!(matches!(
        client.wait(job).expect("maintenance result"),
        JobPoll::Maintained { .. }
    ));

    // Stats export: core counters and serve counters in one flat object.
    let stats = client.stats().expect("stats");
    assert_eq!(stats["stale_serves"], 0);
    assert_eq!(
        stats["reads_served"],
        stats["cache_hits"] + stats["cache_misses"]
    );
    assert_eq!(stats["serve_jobs_submitted"], 3);
    assert_eq!(stats["serve_jobs_completed"], 3);
    assert_eq!(stats["serve_inline_reads"], 3);
    assert!(stats["serve_http_requests"] >= 10);
    assert_eq!(stats["serve_live_jobs"], 0, "all results were consumed");

    // Checkpoint answers over the wire too.
    // (The store has no durable dir here, so it must *fail typed*, not hang.)
    match client.checkpoint() {
        Err(CallError::Server { status: 409, .. }) => {}
        other => panic!("expected typed persistence error, got {other:?}"),
    }
    server.stop();
}

#[test]
fn queue_full_sheds_typed_and_recovers() {
    // depth 1: a submitted job occupies its slot until its result is
    // fetched, so a second submit must shed deterministically no matter
    // how fast the worker is.
    let server = boot(ServeConfig {
        queue_depth: 1,
        workers: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let first = client.submit_maintenance().expect("first job admitted");
    match client.submit_maintenance() {
        Err(CallError::Overloaded {
            reason,
            retry_after_ms,
        }) => {
            assert_eq!(reason, "queue_full");
            assert!(retry_after_ms >= 1);
        }
        other => panic!("expected queue_full shed, got {other:?}"),
    }
    // Consuming the first result frees the slot; admission recovers.
    client.wait(first).expect("first job result");
    client
        .submit_maintenance()
        .expect("slot freed after terminal fetch");
    let stats = client.stats().expect("stats");
    assert_eq!(stats["serve_sheds_queue_full"], 1);
    server.stop();
}

#[test]
fn tenant_quota_sheds_typed_and_isolates_tenants() {
    let server = boot(ServeConfig {
        quota_rate: 1,
        quota_burst: 3,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.set_tenant("alpha");

    // 5 rapid submits against burst 3 at 1/s: at least one typed shed
    // (refill can forgive at most ~1 during a fast test run).
    let mut sheds = 0;
    let mut admitted = Vec::new();
    for _ in 0..5 {
        match client.submit_maintenance() {
            Ok(job) => admitted.push(job),
            Err(CallError::Overloaded {
                reason,
                retry_after_ms,
            }) => {
                assert_eq!(reason, "quota");
                assert!(retry_after_ms >= 1);
                sheds += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(sheds >= 1, "burst 3 cannot admit 5 rapid requests");

    // Another tenant is untouched by alpha's empty bucket.
    let mut other = Client::connect(server.local_addr()).expect("connect");
    other.set_tenant("beta");
    let job = other.submit_maintenance().expect("beta has its own bucket");
    other.wait(job).expect("beta job");
    for job in admitted {
        client.wait(job).expect("alpha job");
    }
    let stats = client.stats().expect("stats");
    assert!(stats["serve_sheds_quota"] >= 1);
    server.stop();
}

#[test]
fn malformed_and_unknown_requests_answer_typed_errors() {
    let server = boot(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Unknown route.
    match client.read_block(99, 0) {
        Err(CallError::Server {
            status: 404,
            message,
        }) => {
            assert!(message.contains("unknown partition"), "{message}");
        }
        other => panic!("expected 404, got {other:?}"),
    }
    // Unknown job id.
    match client.poll(dna_serve::JobId(12345)) {
        Err(CallError::Server { status: 404, .. }) => {}
        other => panic!("expected 404, got {other:?}"),
    }

    // Raw garbage gets a 400 and a clean close, not a hang or a panic.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("raw connect");
    raw.write_all(b"NONSENSE\r\n\r\n").expect("write garbage");
    let mut response = String::new();
    raw.read_to_string(&mut response).expect("read response");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");

    // The server is still healthy afterwards.
    let stats = client.stats().expect("stats after garbage");
    assert!(stats["serve_protocol_errors"] >= 1);
    server.stop();
}
