//! Per-tenant token-bucket admission quotas.
//!
//! The bucket arithmetic is pure over `u64` microsecond timestamps — the
//! wall clock is injected by the caller — so refill and shed behavior is
//! unit-testable deterministically, down to the exact `retry_after_ms`
//! the shed response advertises.

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

/// Millitokens per token: refill math runs at 1/1000-token granularity so
/// sub-millisecond refill intervals don't round to zero.
const MILLI: u64 = 1000;

/// A token bucket: `rate_per_sec` sustained requests per second with
/// bursts up to `burst` back-to-back requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenBucket {
    rate_per_sec: u64,
    burst_milli: u64,
    tokens_milli: u64,
    last_us: u64,
}

impl TokenBucket {
    /// A bucket that starts full (a fresh tenant can burst immediately).
    /// `rate_per_sec == 0` disables the quota: every take succeeds.
    pub fn new(rate_per_sec: u64, burst: u64) -> TokenBucket {
        let burst_milli = burst.max(1).saturating_mul(MILLI);
        TokenBucket {
            rate_per_sec,
            burst_milli,
            tokens_milli: burst_milli,
            last_us: 0,
        }
    }

    /// Takes one token at time `now_us` (microseconds on any monotonic
    /// scale shared by all calls).
    ///
    /// # Errors
    ///
    /// When the bucket is empty: the number of **milliseconds** after
    /// which one token will have refilled — the `retry_after_ms` hint the
    /// shed response carries.
    pub fn try_take(&mut self, now_us: u64) -> Result<(), u64> {
        if self.rate_per_sec == 0 {
            return Ok(());
        }
        let elapsed_us = now_us.saturating_sub(self.last_us);
        self.last_us = now_us;
        // rate tokens/s == rate millitokens/ms == rate/1000 millitokens/us.
        let refill_milli = elapsed_us.saturating_mul(self.rate_per_sec) / MILLI;
        self.tokens_milli = (self.tokens_milli + refill_milli).min(self.burst_milli);
        if self.tokens_milli >= MILLI {
            self.tokens_milli -= MILLI;
            Ok(())
        } else {
            let deficit_milli = MILLI - self.tokens_milli;
            // deficit millitokens / (rate millitokens per ms), rounded up.
            Err(deficit_milli.div_ceil(self.rate_per_sec).max(1))
        }
    }
}

/// A lazily-populated map of per-tenant buckets behind one mutex (the
/// critical section is a map lookup plus integer arithmetic; admission is
/// not a throughput bottleneck next to wetlab work).
pub struct TenantQuotas {
    rate_per_sec: u64,
    burst: u64,
    buckets: Mutex<BTreeMap<String, TokenBucket>>,
}

impl TenantQuotas {
    /// Quotas applying `rate_per_sec`/`burst` to every tenant
    /// independently. `rate_per_sec == 0` disables quotas entirely.
    pub fn new(rate_per_sec: u64, burst: u64) -> TenantQuotas {
        TenantQuotas {
            rate_per_sec,
            burst,
            buckets: Mutex::new(BTreeMap::new()),
        }
    }

    /// Admits one request from `tenant` at `now_us`, creating the
    /// tenant's bucket (full) on first sight.
    ///
    /// # Errors
    ///
    /// The `retry_after_ms` shed hint when the tenant's bucket is empty.
    pub fn admit(&self, tenant: &str, now_us: u64) -> Result<(), u64> {
        if self.rate_per_sec == 0 {
            return Ok(());
        }
        let mut buckets = self.buckets.lock().unwrap_or_else(PoisonError::into_inner);
        buckets
            .entry(tenant.to_string())
            .or_insert_with(|| TokenBucket::new(self.rate_per_sec, self.burst))
            .try_take(now_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_shed_then_refill() {
        let mut b = TokenBucket::new(10, 3); // 10/s, burst 3
        assert_eq!(b.try_take(0), Ok(()));
        assert_eq!(b.try_take(0), Ok(()));
        assert_eq!(b.try_take(0), Ok(()));
        // Bucket empty: one token refills in 100 ms at 10/s.
        assert_eq!(b.try_take(0), Err(100));
        // 50 ms later: half a token there, 50 ms still to go.
        assert_eq!(b.try_take(50_000), Err(50));
        // 100 ms after that: refilled past one token.
        assert_eq!(b.try_take(150_000), Ok(()));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(10, 2);
        assert_eq!(b.try_take(0), Ok(()));
        assert_eq!(b.try_take(0), Ok(()));
        // An hour later the bucket holds burst (2), not 36000.
        assert_eq!(b.try_take(3_600_000_000), Ok(()));
        assert_eq!(b.try_take(3_600_000_000), Ok(()));
        assert!(b.try_take(3_600_000_000).is_err());
    }

    #[test]
    fn zero_rate_disables_the_quota() {
        let mut b = TokenBucket::new(0, 1);
        for _ in 0..10_000 {
            assert_eq!(b.try_take(0), Ok(()));
        }
        let q = TenantQuotas::new(0, 1);
        assert_eq!(q.admit("anyone", 0), Ok(()));
    }

    #[test]
    fn tenants_are_isolated() {
        let q = TenantQuotas::new(1000, 1);
        assert_eq!(q.admit("a", 0), Ok(()));
        assert!(q.admit("a", 0).is_err(), "a exhausted its burst");
        assert_eq!(q.admit("b", 0), Ok(()), "b has its own bucket");
        // retry_after is at least 1 ms even when sub-ms would suffice.
        let retry = q.admit("a", 0).expect_err("still empty");
        assert!(retry >= 1);
    }

    #[test]
    fn sub_token_refill_accumulates() {
        // 1/s: after 3 × 300 ms the bucket holds 0.9 tokens — still sheds —
        // and crosses 1.0 at 1 s.
        let mut b = TokenBucket::new(1, 1);
        assert_eq!(b.try_take(0), Ok(()));
        assert!(b.try_take(300_000).is_err());
        assert!(b.try_take(600_000).is_err());
        assert!(b.try_take(900_000).is_err());
        assert_eq!(b.try_take(1_000_000), Ok(()));
    }
}
