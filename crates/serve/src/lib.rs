//! **dna-serve** — the networked frontend over
//! [`dna_block_store::service::StoreServer`]: a hand-rolled HTTP/1.1
//! server on `std::net` (no external dependencies) with a job-style
//! request lifecycle, per-tenant token-bucket quotas, and bounded
//! admission queues that **shed load with typed responses instead of
//! queueing unboundedly** — the server may say `429 overloaded`, but it
//! never hangs and never panics a client.
//!
//! # Architecture
//!
//! ```text
//!                 accept loop (1 thread)
//!   TCP ──────► connection threads (1/conn, keep-alive HTTP/1.1)
//!                 │  admission: per-tenant TokenBucket, then JobTable
//!                 │  budget (queued + running + unfetched results)
//!                 ▼
//!               JobTable (bounded) ──► worker threads (N)
//!                                        │ execute against StoreServer
//!                                        ▼ (coalescing windows, cache,
//!                                           compaction — crates/core)
//! ```
//!
//! Small control-plane calls (create partition, write file, stats,
//! checkpoint) execute inline on the connection thread. Data-plane reads,
//! updates and maintenance go through the job lifecycle: `POST /v1/jobs`
//! returns a job id immediately (or a typed shed), the client polls
//! `GET /v1/jobs/{id}` until the terminal state, and the terminal fetch
//! consumes the result — which is what bounds the table: a submitted job
//! occupies one slot of the admission budget from submit until its result
//! is fetched (or it is shed).
//!
//! The protocol grammar, lifecycle states and shed semantics are
//! documented in the workspace README ("Serving over the wire").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod jobs;
pub mod quota;
pub mod server;

pub use client::Client;
pub use jobs::{JobId, JobOp, JobOutput, JobState, Shed};
pub use quota::{TenantQuotas, TokenBucket};
pub use server::{ServeConfig, ServeStats, WireServer};
