//! `served` — the serving binary: a durable [`StoreServer`] behind the
//! wire frontend.
//!
//! ```text
//! served --dir /var/dna-store --seed 42 --addr 127.0.0.1:0 \
//!        --workers 4 --queue-depth 256 --quota-rate 0 --quota-burst 64
//! ```
//!
//! Prints exactly one `LISTENING <addr>` line to stdout once the socket
//! is bound (supervisors and the soak harness parse it — with `:0` the
//! kernel picks the port), then serves until killed. The store journals
//! every commit before acknowledging it, so a `SIGKILL` at any moment
//! loses nothing acknowledged: restart with the same `--dir` and
//! [`StoreServer::open_or_recover`] resumes the committed prefix.

use dna_block_store::service::{ServerConfig, StoreServer};
use dna_serve::{ServeConfig, WireServer};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    dir: PathBuf,
    seed: u64,
    addr: String,
    serve: ServeConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dir: PathBuf::new(),
        seed: 42,
        addr: "127.0.0.1:0".to_string(),
        serve: ServeConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--dir" => args.dir = PathBuf::from(value("--dir")?),
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--addr" => args.addr = value("--addr")?,
            "--workers" => args.serve.workers = parse(&value("--workers")?)?,
            "--queue-depth" => args.serve.queue_depth = parse(&value("--queue-depth")?)?,
            "--quota-rate" => args.serve.quota_rate = parse(&value("--quota-rate")?)?,
            "--quota-burst" => args.serve.quota_burst = parse(&value("--quota-burst")?)?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.dir.as_os_str().is_empty() {
        return Err("--dir is required".to_string());
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("unparsable value: {s}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("served: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let store =
        match StoreServer::open_or_recover(&args.dir, args.seed, ServerConfig::paper_default()) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("served: opening {}: {e}", args.dir.display());
                return ExitCode::FAILURE;
            }
        };
    let server = match WireServer::start(store, args.serve, &args.addr) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("served: binding {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("LISTENING {}", server.local_addr());
    let _ = std::io::stdout().flush();
    // Serve until killed: the accept loop owns the traffic; this thread
    // only keeps the process (and the WireServer) alive.
    loop {
        std::thread::park();
    }
}
