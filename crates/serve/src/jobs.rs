//! The job lifecycle: a bounded submit → poll → result table.
//!
//! A submitted job occupies one slot of the admission budget from
//! `submit` until its terminal result is **fetched** (fetching a terminal
//! state consumes the entry). That single rule bounds queue depth *and*
//! result-map memory: a client that submits and walks away can occupy at
//! most the slots it was admitted to, and once the table is full the
//! server sheds with a typed [`Shed::QueueFull`] — it never queues
//! unboundedly and never hangs.
//!
//! ```text
//!   submit ──► Queued ──► Running ──► Done(result)
//!     │429 QueueFull                    │ GET consumes the entry
//!     └─ typed shed, no state created   └─ slot freed
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex, PoisonError};

/// Opaque job identifier, unique for the life of the serving process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// What a job does when a worker picks it up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOp {
    /// Read one block of one partition.
    Read {
        /// Target partition.
        pid: u64,
        /// Block within the partition.
        block: u64,
    },
    /// Update one block with a full replacement image.
    Update {
        /// Target partition.
        pid: u64,
        /// Block within the partition.
        block: u64,
        /// Replacement content (≤ one block).
        data: Vec<u8>,
    },
    /// One policy-driven maintenance (compaction) pass.
    Maintenance,
}

/// Terminal payload of a finished job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutput {
    /// A read: the decoded block bytes and whether the cache served it.
    Block {
        /// Decoded, update-applied block content.
        data: Vec<u8>,
        /// Zero-wetlab cache hit?
        from_cache: bool,
    },
    /// An update: committed.
    Updated,
    /// A maintenance pass: stale units reclaimed (0 = nothing to fold).
    Maintained {
        /// Units reclaimed by the pass.
        units_reclaimed: u64,
    },
}

/// Lifecycle state of a job in the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the payload (or the store's error string) awaits one
    /// fetch, which consumes the entry.
    Done(Result<JobOutput, String>),
}

/// A typed load-shed: the request was *not* admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// The admission budget (queued + running + unfetched results) is
    /// exhausted.
    QueueFull,
    /// The tenant's token bucket is empty; retry after this many ms.
    Quota(u64),
}

struct TableState {
    next_id: u64,
    queue: VecDeque<(JobId, JobOp)>,
    states: BTreeMap<JobId, JobState>,
    shutting_down: bool,
}

/// The bounded job table shared by connection threads (submit/fetch) and
/// worker threads (claim/finish).
pub struct JobTable {
    depth: usize,
    state: Mutex<TableState>,
    arrivals: Condvar,
}

impl JobTable {
    /// A table admitting at most `depth` concurrently-live jobs.
    pub fn new(depth: usize) -> JobTable {
        JobTable {
            depth: depth.max(1),
            state: Mutex::new(TableState {
                next_id: 0,
                queue: VecDeque::new(),
                states: BTreeMap::new(),
                shutting_down: false,
            }),
            arrivals: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TableState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits one job, or sheds.
    ///
    /// # Errors
    ///
    /// [`Shed::QueueFull`] when the admission budget is exhausted.
    pub fn submit(&self, op: JobOp) -> Result<JobId, Shed> {
        let mut state = self.lock();
        if state.states.len() >= self.depth {
            return Err(Shed::QueueFull);
        }
        let id = JobId(state.next_id);
        state.next_id += 1;
        state.states.insert(id, JobState::Queued);
        state.queue.push_back((id, op));
        drop(state);
        self.arrivals.notify_one();
        Ok(id)
    }

    /// Worker side: blocks for the next queued job, marks it `Running`,
    /// and returns it. `None` once the table is shutting down and
    /// drained.
    pub fn claim(&self) -> Option<(JobId, JobOp)> {
        let mut state = self.lock();
        loop {
            if let Some((id, op)) = state.queue.pop_front() {
                state.states.insert(id, JobState::Running);
                return Some((id, op));
            }
            if state.shutting_down {
                return None;
            }
            state = self
                .arrivals
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Worker side: publishes a claimed job's terminal result.
    pub fn finish(&self, id: JobId, result: Result<JobOutput, String>) {
        let mut state = self.lock();
        state.states.insert(id, JobState::Done(result));
    }

    /// Client side: the job's current state. A `Done` fetch **consumes**
    /// the entry (freeing its admission slot); `Queued`/`Running` fetches
    /// do not. `None` for ids never admitted or already consumed.
    pub fn fetch(&self, id: JobId) -> Option<JobState> {
        let mut state = self.lock();
        match state.states.get(&id) {
            Some(JobState::Done(_)) => state.states.remove(&id),
            other => other.cloned(),
        }
    }

    /// Jobs currently occupying admission slots (queued + running +
    /// unfetched results).
    pub fn live(&self) -> usize {
        self.lock().states.len()
    }

    /// Wakes every blocked [`JobTable::claim`] so workers can exit;
    /// queued-but-unclaimed jobs still drain first.
    pub fn shut_down(&self) {
        let mut state = self.lock();
        state.shutting_down = true;
        drop(state);
        self.arrivals.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_slot_accounting() {
        let table = JobTable::new(2);
        let a = table.submit(JobOp::Maintenance).expect("slot free");
        let b = table
            .submit(JobOp::Read { pid: 0, block: 1 })
            .expect("slot free");
        assert_ne!(a, b);
        assert_eq!(table.submit(JobOp::Maintenance), Err(Shed::QueueFull));
        assert_eq!(table.fetch(a), Some(JobState::Queued));

        let (id, op) = table.claim().expect("queued job");
        assert_eq!(id, a);
        assert_eq!(op, JobOp::Maintenance);
        assert_eq!(table.fetch(a), Some(JobState::Running));
        // Running still occupies the slot.
        assert_eq!(table.submit(JobOp::Maintenance), Err(Shed::QueueFull));

        table.finish(a, Ok(JobOutput::Updated));
        assert_eq!(table.fetch(a), Some(JobState::Done(Ok(JobOutput::Updated))));
        // The terminal fetch consumed the entry: slot free, id gone.
        assert_eq!(table.fetch(a), None);
        assert!(table.submit(JobOp::Maintenance).is_ok());
        assert_eq!(table.live(), 2);
        let _ = b;
    }

    #[test]
    fn claim_drains_queue_before_shutdown() {
        let table = JobTable::new(4);
        table.submit(JobOp::Maintenance).expect("admitted");
        table.shut_down();
        assert!(table.claim().is_some(), "queued work drains first");
        assert!(table.claim().is_none(), "then workers exit");
    }

    #[test]
    fn fetch_of_unknown_id_is_none() {
        let table = JobTable::new(1);
        assert_eq!(table.fetch(JobId(99)), None);
    }
}
