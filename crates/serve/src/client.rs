//! A small blocking client for the wire protocol — one keep-alive
//! connection per [`Client`]. Used by the workload driver, the soak
//! harness, and the wire tests; also a reference implementation of the
//! protocol for external clients.

use crate::http::read_response;
use crate::jobs::JobId;
use std::collections::BTreeMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Outcome of one protocol call, separating transport failures from the
/// server's typed answers.
#[derive(Debug)]
pub enum CallError {
    /// Socket-level failure (connection died, malformed response).
    Io(io::Error),
    /// A typed `429` shed: `reason` is `queue_full` or `quota`.
    Overloaded {
        /// `queue_full` or `quota`.
        reason: String,
        /// Back-off hint from the server.
        retry_after_ms: u64,
    },
    /// Any other non-2xx answer, with the server's error body.
    Server {
        /// HTTP status code.
        status: u16,
        /// The `error` string from the JSON body (or the raw body).
        message: String,
    },
}

impl From<io::Error> for CallError {
    fn from(e: io::Error) -> CallError {
        CallError::Io(e)
    }
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::Io(e) => write!(f, "transport: {e}"),
            CallError::Overloaded {
                reason,
                retry_after_ms,
            } => write!(f, "overloaded ({reason}), retry after {retry_after_ms} ms"),
            CallError::Server { status, message } => write!(f, "server {status}: {message}"),
        }
    }
}

/// One poll of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobPoll {
    /// Still `queued` or `running`.
    Pending,
    /// Terminal: a read's block bytes (and cache provenance).
    Block {
        /// Block content.
        data: Vec<u8>,
        /// Served by the decoded-block cache?
        from_cache: bool,
    },
    /// Terminal: update committed.
    Updated,
    /// Terminal: maintenance finished.
    Maintained {
        /// Stale units reclaimed.
        units_reclaimed: u64,
    },
    /// Terminal: the store rejected the job.
    Failed(String),
}

/// A blocking protocol client over one keep-alive connection.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    tenant: String,
}

impl Client {
    /// Connects to a wire server.
    ///
    /// # Errors
    ///
    /// Socket connect errors.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            stream,
            reader,
            tenant: "anon".to_string(),
        })
    }

    /// Sets the `x-tenant` header sent with every subsequent request.
    pub fn set_tenant(&mut self, tenant: &str) {
        self.tenant = tenant.to_string();
    }

    /// Bounds how long a single response read may block.
    ///
    /// # Errors
    ///
    /// Socket option errors.
    pub fn set_timeout(&mut self, timeout: Duration) -> io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))
    }

    fn call(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, String)],
        body: &[u8],
    ) -> io::Result<crate::http::RawResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: store\r\n");
        head.push_str(&format!("x-tenant: {}\r\n", self.tenant));
        head.push_str(&format!("content-length: {}\r\n", body.len()));
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        read_response(&mut self.reader)
    }

    /// Maps a non-2xx response to the typed [`CallError`].
    fn typed(status: u16, body: &[u8]) -> CallError {
        let text = String::from_utf8_lossy(body).to_string();
        if status == 429 {
            CallError::Overloaded {
                reason: json_str(&text, "reason").unwrap_or_else(|| "unknown".to_string()),
                retry_after_ms: json_u64(&text, "retry_after_ms").unwrap_or(1),
            }
        } else {
            CallError::Server {
                status,
                message: json_str(&text, "error").unwrap_or(text),
            }
        }
    }

    /// `POST /v1/partitions` — create a partition from `seed`.
    ///
    /// # Errors
    ///
    /// Transport or typed server errors.
    pub fn create_partition(&mut self, seed: u64) -> Result<u64, CallError> {
        let (status, _, body) = self.call(
            "POST",
            "/v1/partitions",
            &[("x-seed", seed.to_string())],
            &[],
        )?;
        if status != 200 {
            return Err(Client::typed(status, &body));
        }
        json_u64(&String::from_utf8_lossy(&body), "pid").ok_or_else(|| CallError::Server {
            status,
            message: "missing pid".to_string(),
        })
    }

    /// `PUT /v1/files/{pid}` — returns blocks written.
    ///
    /// # Errors
    ///
    /// Transport or typed server errors.
    pub fn write_file(&mut self, pid: u64, data: &[u8]) -> Result<u64, CallError> {
        let (status, _, body) = self.call("PUT", &format!("/v1/files/{pid}"), &[], data)?;
        if status != 200 {
            return Err(Client::typed(status, &body));
        }
        json_u64(&String::from_utf8_lossy(&body), "blocks").ok_or_else(|| CallError::Server {
            status,
            message: "missing blocks".to_string(),
        })
    }

    /// `GET /v1/blocks/{pid}/{block}` — synchronous read; returns the
    /// block bytes and whether the cache served them.
    ///
    /// # Errors
    ///
    /// Transport or typed server errors (including typed sheds).
    pub fn read_block(&mut self, pid: u64, block: u64) -> Result<(Vec<u8>, bool), CallError> {
        let (status, headers, body) =
            self.call("GET", &format!("/v1/blocks/{pid}/{block}"), &[], &[])?;
        if status != 200 {
            return Err(Client::typed(status, &body));
        }
        let from_cache = headers
            .iter()
            .any(|(n, v)| n == "x-from-cache" && v == "true");
        Ok((body, from_cache))
    }

    /// `POST /v1/jobs` with `x-op: read`.
    ///
    /// # Errors
    ///
    /// Transport or typed server errors (including typed sheds).
    pub fn submit_read(&mut self, pid: u64, block: u64) -> Result<JobId, CallError> {
        self.submit(
            &[
                ("x-op", "read".to_string()),
                ("x-pid", pid.to_string()),
                ("x-block", block.to_string()),
            ],
            &[],
        )
    }

    /// `POST /v1/jobs` with `x-op: update` and the replacement bytes.
    ///
    /// # Errors
    ///
    /// Transport or typed server errors (including typed sheds).
    pub fn submit_update(&mut self, pid: u64, block: u64, data: &[u8]) -> Result<JobId, CallError> {
        self.submit(
            &[
                ("x-op", "update".to_string()),
                ("x-pid", pid.to_string()),
                ("x-block", block.to_string()),
            ],
            data,
        )
    }

    /// `POST /v1/jobs` with `x-op: maintenance`.
    ///
    /// # Errors
    ///
    /// Transport or typed server errors (including typed sheds).
    pub fn submit_maintenance(&mut self) -> Result<JobId, CallError> {
        self.submit(&[("x-op", "maintenance".to_string())], &[])
    }

    fn submit(&mut self, headers: &[(&str, String)], body: &[u8]) -> Result<JobId, CallError> {
        let (status, _, resp) = self.call("POST", "/v1/jobs", headers, body)?;
        if status != 202 {
            return Err(Client::typed(status, &resp));
        }
        json_u64(&String::from_utf8_lossy(&resp), "job")
            .map(JobId)
            .ok_or_else(|| CallError::Server {
                status,
                message: "missing job id".to_string(),
            })
    }

    /// One `GET /v1/jobs/{id}` poll. A terminal poll consumes the job on
    /// the server.
    ///
    /// # Errors
    ///
    /// Transport or typed server errors.
    pub fn poll(&mut self, id: JobId) -> Result<JobPoll, CallError> {
        let (status, headers, body) = self.call("GET", &format!("/v1/jobs/{}", id.0), &[], &[])?;
        if status != 200 {
            return Err(Client::typed(status, &body));
        }
        if headers
            .iter()
            .any(|(n, v)| n == "x-job-state" && v == "done")
        {
            let from_cache = headers
                .iter()
                .any(|(n, v)| n == "x-from-cache" && v == "true");
            return Ok(JobPoll::Block {
                data: body,
                from_cache,
            });
        }
        let text = String::from_utf8_lossy(&body).to_string();
        match json_str(&text, "state").as_deref() {
            Some("queued" | "running") => Ok(JobPoll::Pending),
            Some("failed") => Ok(JobPoll::Failed(
                json_str(&text, "error").unwrap_or_default(),
            )),
            Some("done") => {
                if let Some(units) = json_u64(&text, "units_reclaimed") {
                    Ok(JobPoll::Maintained {
                        units_reclaimed: units,
                    })
                } else {
                    Ok(JobPoll::Updated)
                }
            }
            _ => Err(CallError::Server {
                status,
                message: format!("unparsable job state: {text}"),
            }),
        }
    }

    /// Polls `id` until terminal, yielding between polls.
    ///
    /// # Errors
    ///
    /// Transport or typed server errors.
    pub fn wait(&mut self, id: JobId) -> Result<JobPoll, CallError> {
        loop {
            match self.poll(id)? {
                JobPoll::Pending => std::thread::yield_now(),
                terminal => return Ok(terminal),
            }
        }
    }

    /// `GET /v1/stats` — the flat counter snapshot as a name → value map.
    ///
    /// # Errors
    ///
    /// Transport or typed server errors.
    pub fn stats(&mut self) -> Result<BTreeMap<String, u64>, CallError> {
        let (status, _, body) = self.call("GET", "/v1/stats", &[], &[])?;
        if status != 200 {
            return Err(Client::typed(status, &body));
        }
        Ok(json_u64_fields(&String::from_utf8_lossy(&body)))
    }

    /// `POST /v1/maintenance` — inline pass; returns units reclaimed.
    ///
    /// # Errors
    ///
    /// Transport or typed server errors.
    pub fn maintenance(&mut self) -> Result<u64, CallError> {
        let (status, _, body) = self.call("POST", "/v1/maintenance", &[], &[])?;
        if status != 200 {
            return Err(Client::typed(status, &body));
        }
        json_u64(&String::from_utf8_lossy(&body), "units_reclaimed").ok_or_else(|| {
            CallError::Server {
                status,
                message: "missing units_reclaimed".to_string(),
            }
        })
    }

    /// `POST /v1/checkpoint`.
    ///
    /// # Errors
    ///
    /// Transport or typed server errors.
    pub fn checkpoint(&mut self) -> Result<(), CallError> {
        let (status, _, body) = self.call("POST", "/v1/checkpoint", &[], &[])?;
        if status != 200 {
            return Err(Client::typed(status, &body));
        }
        Ok(())
    }
}

// ----- micro JSON readers --------------------------------------------------
//
// The server emits flat `{"key":value}` objects with string and integer
// values only; these scanners read exactly that subset (keys are unique,
// no nesting), which keeps the client dependency-free.

/// The integer value of `"key":N`, if present.
fn json_u64(text: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// The string value of `"key":"...."`, if present (no unescaping beyond
/// the server's escape set).
fn json_str(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Every `"key":<integer>` field of a flat JSON object.
fn json_u64_fields(text: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    let mut rest = text;
    while let Some(start) = rest.find('"') {
        rest = &rest[start + 1..];
        let Some(end) = rest.find('"') else { break };
        let key = &rest[..end];
        rest = &rest[end + 1..];
        if let Some(after) = rest.strip_prefix(':') {
            let digits: String = after.chars().take_while(char::is_ascii_digit).collect();
            if !digits.is_empty() {
                if let Ok(v) = digits.parse() {
                    out.insert(key.to_string(), v);
                }
                rest = &after[digits.len()..];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_readers_parse_the_server_subset() {
        let text = r#"{"pid":7,"state":"done","units_reclaimed":42,"error":"b \"x\""}"#;
        assert_eq!(json_u64(text, "pid"), Some(7));
        assert_eq!(json_u64(text, "units_reclaimed"), Some(42));
        assert_eq!(json_u64(text, "missing"), None);
        assert_eq!(json_str(text, "state").as_deref(), Some("done"));
        let fields = json_u64_fields(r#"{"a":1,"b":22,"c":0}"#);
        assert_eq!(fields.len(), 3);
        assert_eq!(fields["b"], 22);
    }
}
