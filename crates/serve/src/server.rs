//! The wire server: TCP accept loop, HTTP routing, admission control,
//! and the worker pool executing jobs against the [`StoreServer`].
//!
//! # Protocol (see README "Serving over the wire" for the full grammar)
//!
//! | Method & path              | Meaning                                    |
//! |----------------------------|--------------------------------------------|
//! | `POST /v1/partitions`      | create a partition (`x-seed` header)       |
//! | `PUT /v1/files/{pid}`      | write the body as a file into `pid`        |
//! | `GET /v1/blocks/{pid}/{b}` | inline (synchronous) block read            |
//! | `POST /v1/jobs`            | submit a job (`x-op`,`x-pid`,`x-block`)    |
//! | `GET /v1/jobs/{id}`        | poll; a terminal fetch consumes the result |
//! | `GET /v1/stats`            | flat JSON counter snapshot                 |
//! | `POST /v1/maintenance`     | inline maintenance pass                    |
//! | `POST /v1/checkpoint`      | snapshot the store image, reset journal    |
//!
//! Data-plane requests (inline reads, job submits) pass two admission
//! gates in order: the tenant's token bucket (`x-tenant` header, default
//! `anon`), then — for jobs — the bounded [`JobTable`]. Either gate
//! failing sheds with `429` and a typed JSON body; the server never
//! queues unboundedly and never blocks a client on another tenant's
//! backlog.

use crate::http::{json_escape, read_request, write_response, Request};
use crate::jobs::{JobId, JobOp, JobOutput, JobState, JobTable, Shed};
use crate::quota::TenantQuotas;
use dna_block_store::service::StoreServer;
use dna_block_store::{PartitionConfig, PartitionId, StoreError};
use std::io::{self, BufReader};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Wire-server configuration (the store-level knobs live in
/// [`dna_block_store::service::ServerConfig`], set when constructing the
/// [`StoreServer`] this wraps).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing jobs against the store.
    pub workers: usize,
    /// Admission budget: jobs live at once (queued + running + unfetched).
    pub queue_depth: usize,
    /// Per-tenant sustained requests/second (`0` disables quotas).
    pub quota_rate: u64,
    /// Per-tenant burst size.
    pub quota_burst: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_depth: 256,
            quota_rate: 0,
            quota_burst: 64,
        }
    }
}

/// Wire-layer counters, exported on `/v1/stats` alongside the store's
/// [`dna_block_store::ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// HTTP requests parsed (any route, any outcome).
    pub http_requests: u64,
    /// Synchronous `GET /v1/blocks` reads served.
    pub inline_reads: u64,
    /// Jobs admitted to the table.
    pub jobs_submitted: u64,
    /// Jobs a worker finished (successfully or not).
    pub jobs_completed: u64,
    /// Requests shed because the admission budget was full.
    pub sheds_queue_full: u64,
    /// Requests shed by a tenant token bucket.
    pub sheds_quota: u64,
    /// Malformed requests answered `4xx`.
    pub protocol_errors: u64,
}

#[derive(Default)]
struct ServeAtomics {
    http_requests: AtomicU64,
    inline_reads: AtomicU64,
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    sheds_queue_full: AtomicU64,
    sheds_quota: AtomicU64,
    protocol_errors: AtomicU64,
}

impl ServeAtomics {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ServeStats {
        ServeStats {
            http_requests: self.http_requests.load(Ordering::Relaxed),
            inline_reads: self.inline_reads.load(Ordering::Relaxed),
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            sheds_queue_full: self.sheds_queue_full.load(Ordering::Relaxed),
            sheds_quota: self.sheds_quota.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

struct Inner {
    server: StoreServer,
    table: JobTable,
    quotas: TenantQuotas,
    stats: ServeAtomics,
    /// Monotonic epoch for quota timestamps.
    started: Instant,
    shutdown: AtomicBool,
    /// Seed counter for partitions created without an `x-seed` header.
    partition_seed: AtomicU64,
}

impl Inner {
    fn now_us(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A running wire server: owns the listener, the accept thread, and the
/// worker pool. Connections get a thread each (keep-alive HTTP/1.1) and
/// exit with the client.
pub struct WireServer {
    inner: Arc<Inner>,
    addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl WireServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving `server`.
    ///
    /// # Errors
    ///
    /// Socket bind errors.
    pub fn start(server: StoreServer, cfg: ServeConfig, addr: &str) -> io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let inner = Arc::new(Inner {
            server,
            table: JobTable::new(cfg.queue_depth),
            quotas: TenantQuotas::new(cfg.quota_rate, cfg.quota_burst),
            stats: ServeAtomics::default(),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            partition_seed: AtomicU64::new(0x5EED_0000),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_inner));
        Ok(WireServer {
            inner,
            addr: local,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Wire-layer counters.
    pub fn serve_stats(&self) -> ServeStats {
        self.inner.stats.snapshot()
    }

    /// The wrapped store server (e.g. for end-of-test stats audits).
    pub fn store_server(&self) -> &StoreServer {
        &self.inner.server
    }

    /// Stops accepting, drains queued jobs, and joins the accept and
    /// worker threads. Live client connections are not waited for — they
    /// exit with their sockets. (Dropping the server does the same.)
    pub fn stop(self) {
        drop(self);
    }

    fn halt(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.table.shut_down();
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.halt();
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Nagle + delayed ACK costs ~40ms per small request/response
        // round-trip on loopback; a wire protocol of small framed
        // messages must flush immediately.
        let _ = stream.set_nodelay(true);
        let conn_inner = Arc::clone(inner);
        std::thread::spawn(move || connection_loop(stream, &conn_inner));
    }
}

fn connection_loop(stream: TcpStream, inner: &Arc<Inner>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(Some(req)) => {
                ServeAtomics::bump(&inner.stats.http_requests);
                let close = req.wants_close();
                if handle(&req, &mut write_half, inner).is_err() || close {
                    return;
                }
            }
            Ok(None) => return, // clean EOF
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                ServeAtomics::bump(&inner.stats.protocol_errors);
                let body = format!("{{\"error\":\"{}\"}}", json_escape(&e.to_string()));
                let _ = write_response(
                    &mut write_half,
                    400,
                    "Bad Request",
                    "application/json",
                    &[],
                    body.as_bytes(),
                );
                return;
            }
            Err(_) => return,
        }
    }
}

// ----- responses -----------------------------------------------------------

fn ok_json(stream: &mut TcpStream, body: String) -> io::Result<()> {
    write_response(stream, 200, "OK", "application/json", &[], body.as_bytes())
}

fn error_json(stream: &mut TcpStream, status: u16, reason: &str, msg: &str) -> io::Result<()> {
    let body = format!("{{\"error\":\"{}\"}}", json_escape(msg));
    write_response(
        stream,
        status,
        reason,
        "application/json",
        &[],
        body.as_bytes(),
    )
}

/// The typed shed response: always `429`, always machine-readable, always
/// with a `retry-after-ms` hint so clients can back off without parsing.
fn shed_json(stream: &mut TcpStream, shed: Shed) -> io::Result<()> {
    let (reason, retry_ms) = match shed {
        Shed::QueueFull => ("queue_full", 1),
        Shed::Quota(ms) => ("quota", ms),
    };
    let body = format!(
        "{{\"error\":\"overloaded\",\"reason\":\"{reason}\",\"retry_after_ms\":{retry_ms}}}"
    );
    write_response(
        stream,
        429,
        "Too Many Requests",
        "application/json",
        &[("retry-after-ms", retry_ms.to_string())],
        body.as_bytes(),
    )
}

fn store_error(stream: &mut TcpStream, err: &StoreError) -> io::Result<()> {
    let status = match err {
        StoreError::UnknownPartition(_)
        | StoreError::BlockOutOfRange { .. }
        | StoreError::BlockNotWritten(_) => 404,
        _ => 409,
    };
    let reason = if status == 404 {
        "Not Found"
    } else {
        "Conflict"
    };
    error_json(stream, status, reason, &err.to_string())
}

// ----- routing -------------------------------------------------------------

fn parse_u64(s: &str) -> Option<u64> {
    s.parse::<u64>().ok()
}

fn header_u64(req: &Request, name: &str) -> Option<u64> {
    req.header(name).and_then(parse_u64)
}

fn pid_of(raw: u64) -> Option<PartitionId> {
    usize::try_from(raw).ok().map(PartitionId)
}

fn handle(req: &Request, stream: &mut TcpStream, inner: &Arc<Inner>) -> io::Result<()> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let tenant = req.header("x-tenant").unwrap_or("anon").to_string();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "stats"]) => ok_json(stream, stats_json(inner)),
        ("POST", ["v1", "partitions"]) => {
            let seed = header_u64(req, "x-seed")
                .unwrap_or_else(|| inner.partition_seed.fetch_add(1, Ordering::Relaxed));
            match inner
                .server
                .create_partition(PartitionConfig::paper_default(seed))
            {
                Ok(pid) => ok_json(stream, format!("{{\"pid\":{}}}", pid.0)),
                Err(e) => store_error(stream, &e),
            }
        }
        ("PUT", ["v1", "files", pid]) => {
            let Some(pid) = parse_u64(pid).and_then(pid_of) else {
                ServeAtomics::bump(&inner.stats.protocol_errors);
                return error_json(stream, 400, "Bad Request", "bad partition id");
            };
            match inner.server.write_file(pid, &req.body) {
                Ok(blocks) => ok_json(stream, format!("{{\"blocks\":{blocks}}}")),
                Err(e) => store_error(stream, &e),
            }
        }
        ("GET", ["v1", "blocks", pid, block]) => {
            let parsed = parse_u64(pid).and_then(pid_of).zip(parse_u64(block));
            let Some((pid, block)) = parsed else {
                ServeAtomics::bump(&inner.stats.protocol_errors);
                return error_json(stream, 400, "Bad Request", "bad block address");
            };
            if let Err(retry_ms) = inner.quotas.admit(&tenant, inner.now_us()) {
                ServeAtomics::bump(&inner.stats.sheds_quota);
                return shed_json(stream, Shed::Quota(retry_ms));
            }
            match inner.server.read_block(pid, block) {
                Ok(read) => {
                    ServeAtomics::bump(&inner.stats.inline_reads);
                    write_response(
                        stream,
                        200,
                        "OK",
                        "application/octet-stream",
                        &[("x-from-cache", read.from_cache.to_string())],
                        &read.block.data,
                    )
                }
                Err(e) => store_error(stream, &e),
            }
        }
        ("POST", ["v1", "jobs"]) => submit_job(req, stream, inner, &tenant),
        ("GET", ["v1", "jobs", id]) => {
            let Some(id) = parse_u64(id) else {
                ServeAtomics::bump(&inner.stats.protocol_errors);
                return error_json(stream, 400, "Bad Request", "bad job id");
            };
            poll_job(JobId(id), stream, inner)
        }
        ("POST", ["v1", "maintenance"]) => match inner.server.run_maintenance() {
            Ok(report) => ok_json(
                stream,
                format!("{{\"units_reclaimed\":{}}}", report.units_reclaimed),
            ),
            Err(e) => store_error(stream, &e),
        },
        ("POST", ["v1", "checkpoint"]) => match inner.server.checkpoint() {
            Ok(()) => ok_json(stream, "{\"ok\":true}".to_string()),
            Err(e) => store_error(stream, &e),
        },
        _ => {
            ServeAtomics::bump(&inner.stats.protocol_errors);
            error_json(stream, 404, "Not Found", "no such route")
        }
    }
}

fn submit_job(
    req: &Request,
    stream: &mut TcpStream,
    inner: &Arc<Inner>,
    tenant: &str,
) -> io::Result<()> {
    let op = match req.header("x-op") {
        Some("read") => match (header_u64(req, "x-pid"), header_u64(req, "x-block")) {
            (Some(pid), Some(block)) => JobOp::Read { pid, block },
            _ => {
                ServeAtomics::bump(&inner.stats.protocol_errors);
                return error_json(stream, 400, "Bad Request", "read needs x-pid and x-block");
            }
        },
        Some("update") => match (header_u64(req, "x-pid"), header_u64(req, "x-block")) {
            (Some(pid), Some(block)) => JobOp::Update {
                pid,
                block,
                data: req.body.clone(),
            },
            _ => {
                ServeAtomics::bump(&inner.stats.protocol_errors);
                return error_json(stream, 400, "Bad Request", "update needs x-pid and x-block");
            }
        },
        Some("maintenance") => JobOp::Maintenance,
        _ => {
            ServeAtomics::bump(&inner.stats.protocol_errors);
            return error_json(
                stream,
                400,
                "Bad Request",
                "x-op must be read|update|maintenance",
            );
        }
    };
    if let Err(retry_ms) = inner.quotas.admit(tenant, inner.now_us()) {
        ServeAtomics::bump(&inner.stats.sheds_quota);
        return shed_json(stream, Shed::Quota(retry_ms));
    }
    match inner.table.submit(op) {
        Ok(id) => {
            ServeAtomics::bump(&inner.stats.jobs_submitted);
            let body = format!("{{\"job\":{}}}", id.0);
            write_response(
                stream,
                202,
                "Accepted",
                "application/json",
                &[],
                body.as_bytes(),
            )
        }
        Err(shed) => {
            ServeAtomics::bump(&inner.stats.sheds_queue_full);
            shed_json(stream, shed)
        }
    }
}

fn poll_job(id: JobId, stream: &mut TcpStream, inner: &Arc<Inner>) -> io::Result<()> {
    match inner.table.fetch(id) {
        None => error_json(stream, 404, "Not Found", "unknown or consumed job"),
        Some(JobState::Queued) => {
            ok_json(stream, format!("{{\"job\":{},\"state\":\"queued\"}}", id.0))
        }
        Some(JobState::Running) => ok_json(
            stream,
            format!("{{\"job\":{},\"state\":\"running\"}}", id.0),
        ),
        Some(JobState::Done(Ok(JobOutput::Block { data, from_cache }))) => write_response(
            stream,
            200,
            "OK",
            "application/octet-stream",
            &[
                ("x-job-state", "done".to_string()),
                ("x-from-cache", from_cache.to_string()),
            ],
            &data,
        ),
        Some(JobState::Done(Ok(JobOutput::Updated))) => ok_json(
            stream,
            format!(
                "{{\"job\":{},\"state\":\"done\",\"result\":\"updated\"}}",
                id.0
            ),
        ),
        Some(JobState::Done(Ok(JobOutput::Maintained { units_reclaimed }))) => ok_json(
            stream,
            format!(
                "{{\"job\":{},\"state\":\"done\",\"units_reclaimed\":{units_reclaimed}}}",
                id.0
            ),
        ),
        Some(JobState::Done(Err(msg))) => ok_json(
            stream,
            format!(
                "{{\"job\":{},\"state\":\"failed\",\"error\":\"{}\"}}",
                id.0,
                json_escape(&msg)
            ),
        ),
    }
}

fn stats_json(inner: &Arc<Inner>) -> String {
    let mut body = String::from("{");
    for (name, value) in inner.server.stats().fields() {
        body.push_str(&format!("\"{name}\":{value},"));
    }
    let serve = inner.stats.snapshot();
    for (name, value) in [
        ("serve_http_requests", serve.http_requests),
        ("serve_inline_reads", serve.inline_reads),
        ("serve_jobs_submitted", serve.jobs_submitted),
        ("serve_jobs_completed", serve.jobs_completed),
        ("serve_sheds_queue_full", serve.sheds_queue_full),
        ("serve_sheds_quota", serve.sheds_quota),
        ("serve_protocol_errors", serve.protocol_errors),
    ] {
        body.push_str(&format!("\"{name}\":{value},"));
    }
    body.push_str(&format!("\"serve_live_jobs\":{}}}", inner.table.live()));
    body
}

// ----- workers -------------------------------------------------------------

fn worker_loop(inner: &Arc<Inner>) {
    while let Some((id, op)) = inner.table.claim() {
        let result = execute(&inner.server, op);
        inner.table.finish(id, result);
        ServeAtomics::bump(&inner.stats.jobs_completed);
    }
}

fn execute(server: &StoreServer, op: JobOp) -> Result<JobOutput, String> {
    match op {
        JobOp::Read { pid, block } => {
            let pid = pid_of(pid).ok_or("partition id out of range")?;
            let read = server.read_block(pid, block).map_err(|e| e.to_string())?;
            Ok(JobOutput::Block {
                data: read.block.data,
                from_cache: read.from_cache,
            })
        }
        JobOp::Update { pid, block, data } => {
            let pid = pid_of(pid).ok_or("partition id out of range")?;
            server
                .update_block(pid, block, &data)
                .map_err(|e| e.to_string())?;
            Ok(JobOutput::Updated)
        }
        JobOp::Maintenance => {
            let report = server.run_maintenance().map_err(|e| e.to_string())?;
            Ok(JobOutput::Maintained {
                units_reclaimed: report.units_reclaimed,
            })
        }
    }
}
