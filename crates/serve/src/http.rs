//! A minimal, dependency-free HTTP/1.1 codec over [`std::net`].
//!
//! Supports exactly what the serving protocol needs: request line +
//! headers + `Content-Length` bodies, keep-alive by default with
//! `Connection: close` honored, and hard caps on header and body size so
//! a misbehaving client cannot balloon server memory. Anything outside
//! that subset (chunked encoding, upgrades, pipelining beyond
//! read-one-write-one) is rejected with a clean error, never undefined
//! behavior.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Cap on the request line plus all header bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Cap on a request body (`write_file` of a ~100-block file fits with
/// room; anything larger is a protocol misuse, not a workload).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed HTTP/1.1 request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, `PUT`).
    pub method: String,
    /// Request target path, e.g. `/v1/jobs/7` (query strings unused).
    pub path: String,
    /// Header name/value pairs; names lowercased at parse time.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length` bytes, possibly empty).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Reads one request off a keep-alive connection.
///
/// Returns `Ok(None)` on clean EOF (client hung up between requests) and
/// `Err` on malformed or oversized input — the caller should answer
/// `400` and drop the connection.
///
/// # Errors
///
/// I/O errors from the socket, plus [`io::ErrorKind::InvalidData`] for
/// protocol violations (bad request line, header overflow, oversized or
/// unparsable `Content-Length`).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut head_bytes = line.len();
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| invalid("empty request line"))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| invalid("request line missing target"))?
        .to_string();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    loop {
        let mut header_line = String::new();
        if reader.read_line(&mut header_line)? == 0 {
            return Err(invalid("connection closed mid-headers"));
        }
        head_bytes += header_line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(invalid("request head exceeds cap"));
        }
        let trimmed = header_line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let (name, value) = trimmed
            .split_once(':')
            .ok_or_else(|| invalid("malformed header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| invalid("unparsable content-length"))?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(invalid("request body exceeds cap"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Writes one response, always with an explicit `Content-Length` so the
/// connection can stay alive.
///
/// # Errors
///
/// I/O errors from the socket.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A client-side response triple: `(status, headers, body)`.
pub type RawResponse = (u16, Vec<(String, String)>, Vec<u8>);

/// Reads one response on the client side: `(status, headers, body)`.
///
/// # Errors
///
/// I/O errors, plus [`io::ErrorKind::InvalidData`] on malformed status
/// lines or headers. Clean EOF before a status line is
/// [`io::ErrorKind::UnexpectedEof`].
pub fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<RawResponse> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed before status line",
        ));
    }
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| invalid("malformed status line"))?;
    let mut headers = Vec::new();
    loop {
        let mut header_line = String::new();
        if reader.read_line(&mut header_line)? == 0 {
            return Err(invalid("connection closed mid-headers"));
        }
        let trimmed = header_line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| invalid("unparsable content-length"))?
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, headers, body))
}

/// Escapes a string for embedding in a JSON body (the error strings the
/// server emits contain no exotic characters, but quoting must still be
/// airtight).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t\u{1}"), "x\\n\\t\\u0001");
    }
}
