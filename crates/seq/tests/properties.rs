//! Property-based tests for the foundational sequence types.

use dna_seq::distance::{hamming, levenshtein, levenshtein_bounded};
use dna_seq::{Base, DnaSeq};
use proptest::prelude::*;

fn arb_seq(max_len: usize) -> impl Strategy<Value = DnaSeq> {
    prop::collection::vec(0u8..4, 0..max_len)
        .prop_map(|codes| DnaSeq::from_bases(codes.into_iter().map(Base::from_code)))
}

proptest! {
    #[test]
    fn display_parse_round_trip(seq in arb_seq(200)) {
        let text = seq.to_string();
        let back: DnaSeq = text.parse().unwrap();
        prop_assert_eq!(back, seq);
    }

    #[test]
    fn packed_bytes_round_trip(seq in arb_seq(200)) {
        let packed = seq.to_packed_bytes();
        let back = DnaSeq::from_packed_bytes(&packed, seq.len());
        prop_assert_eq!(back, seq);
    }

    #[test]
    fn reverse_complement_involution(seq in arb_seq(200)) {
        prop_assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    fn complement_preserves_gc_count(seq in arb_seq(200)) {
        prop_assert_eq!(seq.complement().gc_count(), seq.gc_count());
    }

    #[test]
    fn hamming_vs_levenshtein(a in arb_seq(64), b in arb_seq(64)) {
        // Levenshtein is a lower bound on Hamming for equal-length strings.
        if a.len() == b.len() {
            let h = hamming(a.as_slice(), b.as_slice());
            let l = levenshtein(a.as_slice(), b.as_slice());
            prop_assert!(l <= h);
        }
    }

    #[test]
    fn levenshtein_identity_and_symmetry(a in arb_seq(48), b in arb_seq(48)) {
        prop_assert_eq!(levenshtein(a.as_slice(), a.as_slice()), 0);
        prop_assert_eq!(
            levenshtein(a.as_slice(), b.as_slice()),
            levenshtein(b.as_slice(), a.as_slice())
        );
    }

    #[test]
    fn bounded_levenshtein_matches_full(a in arb_seq(40), b in arb_seq(40), bound in 0usize..12) {
        let full = levenshtein(a.as_slice(), b.as_slice());
        let got = levenshtein_bounded(a.as_slice(), b.as_slice(), bound);
        if full <= bound {
            prop_assert_eq!(got, Some(full));
        } else {
            prop_assert_eq!(got, None);
        }
    }

    #[test]
    fn levenshtein_length_difference_lower_bound(a in arb_seq(64), b in arb_seq(64)) {
        let l = levenshtein(a.as_slice(), b.as_slice());
        prop_assert!(l >= a.len().abs_diff(b.len()));
        prop_assert!(l <= a.len().max(b.len()));
    }

    #[test]
    fn homopolymer_bounded_by_len(seq in arb_seq(100)) {
        let h = seq.max_homopolymer();
        prop_assert!(h <= seq.len());
        if !seq.is_empty() {
            prop_assert!(h >= 1);
        }
    }

    #[test]
    fn minhash_self_similarity_is_one(seq in arb_seq(80)) {
        prop_assume!(seq.len() >= 8);
        let sig = dna_seq::kmer::MinHashSignature::new(&seq, 6, 16);
        prop_assert_eq!(sig.similarity(&sig), 1.0);
    }

    #[test]
    fn rng_reproducibility(seed in any::<u64>()) {
        let mut a = dna_seq::rng::DetRng::seed_from_u64(seed);
        let mut b = dna_seq::rng::DetRng::seed_from_u64(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
