//! Packed k-mer utilities.
//!
//! Read clustering (Rashtchian et al. style, used in §6.6 of the paper) needs
//! cheap similarity signatures before paying for edit-distance comparisons.
//! We pack k-mers (k ≤ 32) into `u64`s and expose iteration plus a MinHash
//! signature.

use crate::{Base, DnaSeq};

/// A k-mer packed into a `u64` at 2 bits per base (first base in the most
/// significant position of the used bits).
///
/// # Examples
///
/// ```
/// use dna_seq::{kmer::Kmer, DnaSeq};
/// let s: DnaSeq = "ACGT".parse().unwrap();
/// let k = Kmer::from_bases(s.as_slice()).unwrap();
/// assert_eq!(k.k(), 4);
/// assert_eq!(k.to_seq().to_string(), "ACGT");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Kmer {
    packed: u64,
    k: u8,
}

impl Kmer {
    /// Packs `bases` into a k-mer.
    ///
    /// Returns `None` if `bases` is empty or longer than 32.
    pub fn from_bases(bases: &[Base]) -> Option<Kmer> {
        if bases.is_empty() || bases.len() > 32 {
            return None;
        }
        let mut packed = 0u64;
        for &b in bases {
            packed = (packed << 2) | u64::from(b.code());
        }
        Some(Kmer {
            packed,
            k: bases.len() as u8,
        })
    }

    /// The k-mer length.
    pub fn k(&self) -> usize {
        usize::from(self.k)
    }

    /// The raw packed value (low `2k` bits).
    pub fn packed(&self) -> u64 {
        self.packed
    }

    /// Unpacks the k-mer back into a sequence.
    pub fn to_seq(&self) -> DnaSeq {
        let mut seq = DnaSeq::with_capacity(self.k());
        for i in (0..self.k()).rev() {
            seq.push(Base::from_code(((self.packed >> (2 * i)) & 0b11) as u8));
        }
        seq
    }
}

/// Iterates over all overlapping k-mers of a sequence.
///
/// Yields nothing if the sequence is shorter than `k` or `k` is 0 or > 32.
pub fn kmers(seq: &DnaSeq, k: usize) -> impl Iterator<Item = Kmer> + '_ {
    let valid = (1..=32).contains(&k) && seq.len() >= k;
    let count = if valid { seq.len() - k + 1 } else { 0 };
    (0..count).map(move |i| Kmer::from_bases(&seq.as_slice()[i..i + k]).expect("valid window"))
}

/// A fixed-width MinHash signature over a sequence's k-mer set.
///
/// Two reads from the same original strand share most k-mers even after
/// indel noise, so their signatures collide in many slots; reads from
/// different strands rarely do. The clustering pipeline buckets on signature
/// slots before confirming with bounded edit distance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MinHashSignature {
    slots: Vec<u64>,
}

impl MinHashSignature {
    /// Computes a `num_slots`-wide MinHash over the `k`-mers of `seq`.
    ///
    /// An empty k-mer set yields all-`u64::MAX` slots.
    pub fn new(seq: &DnaSeq, k: usize, num_slots: usize) -> MinHashSignature {
        let mut slots = vec![u64::MAX; num_slots];
        for km in kmers(seq, k) {
            for (i, slot) in slots.iter_mut().enumerate() {
                let h = mix(km.packed() ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)));
                if h < *slot {
                    *slot = h;
                }
            }
        }
        MinHashSignature { slots }
    }

    /// The signature slots.
    pub fn slots(&self) -> &[u64] {
        &self.slots
    }

    /// Fraction of matching slots with `other` (an estimate of k-mer set
    /// Jaccard similarity).
    ///
    /// # Panics
    ///
    /// Panics if the signatures have different widths.
    pub fn similarity(&self, other: &MinHashSignature) -> f64 {
        assert_eq!(
            self.slots.len(),
            other.slots.len(),
            "signature widths differ"
        );
        if self.slots.is_empty() {
            return 0.0;
        }
        let matches = self
            .slots
            .iter()
            .zip(&other.slots)
            .filter(|(a, b)| a == b)
            .count();
        matches as f64 / self.slots.len() as f64
    }
}

/// SplitMix64-style avalanche hash.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(text: &str) -> DnaSeq {
        text.parse().unwrap()
    }

    #[test]
    fn kmer_round_trip() {
        for text in [
            "A",
            "ACGT",
            "TTTTGGGGCCCCAAAA",
            "ACGTACGTACGTACGTACGTACGTACGTACGT",
        ] {
            let seq = s(text);
            let k = Kmer::from_bases(seq.as_slice()).unwrap();
            assert_eq!(k.to_seq(), seq);
        }
    }

    #[test]
    fn kmer_rejects_bad_lengths() {
        assert!(Kmer::from_bases(&[]).is_none());
        let long = s("ACGTACGTACGTACGTACGTACGTACGTACGTA"); // 33
        assert!(Kmer::from_bases(long.as_slice()).is_none());
    }

    #[test]
    fn kmer_iteration_counts() {
        let seq = s("ACGTAC");
        assert_eq!(kmers(&seq, 3).count(), 4);
        assert_eq!(kmers(&seq, 6).count(), 1);
        assert_eq!(kmers(&seq, 7).count(), 0);
        assert_eq!(kmers(&seq, 0).count(), 0);
        let all: Vec<String> = kmers(&seq, 3).map(|k| k.to_seq().to_string()).collect();
        assert_eq!(all, ["ACG", "CGT", "GTA", "TAC"]);
    }

    #[test]
    fn minhash_identical_sequences_match_fully() {
        let a = MinHashSignature::new(&s("ACGTACGTACGTGGTT"), 5, 16);
        let b = MinHashSignature::new(&s("ACGTACGTACGTGGTT"), 5, 16);
        assert_eq!(a.similarity(&b), 1.0);
    }

    #[test]
    fn minhash_similar_beats_dissimilar() {
        let orig = s("ACGTACGTACGTGGTTACGGATCCGATCGGAT");
        // one substitution
        let close = s("ACGTACGTACGTGGTTACGGATCCGATCGGAA");
        let far = s("TTGACCGGTTAACCGGTTAACCGGTTAACCGG");
        let so = MinHashSignature::new(&orig, 6, 32);
        let sc = MinHashSignature::new(&close, 6, 32);
        let sf = MinHashSignature::new(&far, 6, 32);
        assert!(so.similarity(&sc) > so.similarity(&sf));
        assert!(so.similarity(&sc) > 0.5);
    }
}
