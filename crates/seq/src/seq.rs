//! Owned DNA sequences.

use crate::error::ParseDnaError;
use crate::Base;
use std::fmt;
use std::ops::{Index, Range, RangeFrom, RangeTo};
use std::str::FromStr;

/// An owned sequence of DNA [`Base`]s.
///
/// `DnaSeq` is the universal currency of the storage stack: primers, internal
/// addresses, payloads, whole synthesized strands and sequencer reads are all
/// `DnaSeq` values. It behaves like a small `Vec<Base>` with domain-specific
/// helpers (reverse complement, GC statistics, 2-bit packing).
///
/// # Examples
///
/// ```
/// use dna_seq::{Base, DnaSeq};
///
/// let mut s = DnaSeq::new();
/// s.push(Base::A);
/// s.push(Base::C);
/// assert_eq!(s.to_string(), "AC");
///
/// let t: DnaSeq = "GGT".parse().unwrap();
/// let joined = s.concat(&t);
/// assert_eq!(joined.to_string(), "ACGGT");
/// assert_eq!(joined.gc_fraction(), 0.6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DnaSeq {
    bases: Vec<Base>,
}

impl DnaSeq {
    /// Creates an empty sequence.
    pub fn new() -> DnaSeq {
        DnaSeq { bases: Vec::new() }
    }

    /// Creates an empty sequence with room for `capacity` bases.
    pub fn with_capacity(capacity: usize) -> DnaSeq {
        DnaSeq {
            bases: Vec::with_capacity(capacity),
        }
    }

    /// Builds a sequence from anything that yields bases.
    ///
    /// # Examples
    ///
    /// ```
    /// use dna_seq::{Base, DnaSeq};
    /// let s = DnaSeq::from_bases([Base::T, Base::A]);
    /// assert_eq!(s.to_string(), "TA");
    /// ```
    pub fn from_bases<I: IntoIterator<Item = Base>>(iter: I) -> DnaSeq {
        DnaSeq {
            bases: iter.into_iter().collect(),
        }
    }

    /// Number of bases in the sequence.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// Returns `true` if the sequence contains no bases.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// Appends a single base.
    pub fn push(&mut self, base: Base) {
        self.bases.push(base);
    }

    /// Removes and returns the last base, or `None` if empty.
    pub fn pop(&mut self) -> Option<Base> {
        self.bases.pop()
    }

    /// Appends all bases from `other`.
    pub fn extend_from_slice(&mut self, other: &[Base]) {
        self.bases.extend_from_slice(other);
    }

    /// Removes every base, keeping the allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.bases.clear();
    }

    /// A view of the bases as a slice.
    pub fn as_slice(&self) -> &[Base] {
        &self.bases
    }

    /// Returns the base at `i`, or `None` when out of bounds.
    pub fn get(&self, i: usize) -> Option<Base> {
        self.bases.get(i).copied()
    }

    /// Returns the last base, or `None` when empty.
    pub fn last(&self) -> Option<Base> {
        self.bases.last().copied()
    }

    /// Iterates over the bases by value.
    pub fn iter(&self) -> impl Iterator<Item = Base> + '_ {
        self.bases.iter().copied()
    }

    /// Returns a new sequence holding `self[range]`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn subseq(&self, range: Range<usize>) -> DnaSeq {
        DnaSeq {
            bases: self.bases[range].to_vec(),
        }
    }

    /// Returns the first `n` bases as a new sequence (the whole sequence if
    /// shorter than `n`).
    pub fn prefix(&self, n: usize) -> DnaSeq {
        let n = n.min(self.len());
        self.subseq(0..n)
    }

    /// Returns `true` if `self` begins with `prefix`.
    pub fn starts_with(&self, prefix: &DnaSeq) -> bool {
        self.bases.starts_with(&prefix.bases)
    }

    /// Returns `true` if `self` ends with `suffix`.
    pub fn ends_with(&self, suffix: &DnaSeq) -> bool {
        self.bases.ends_with(&suffix.bases)
    }

    /// Returns a new sequence equal to `self` followed by `other`.
    pub fn concat(&self, other: &DnaSeq) -> DnaSeq {
        let mut bases = Vec::with_capacity(self.len() + other.len());
        bases.extend_from_slice(&self.bases);
        bases.extend_from_slice(&other.bases);
        DnaSeq { bases }
    }

    /// The base-wise Watson–Crick complement (no reversal).
    pub fn complement(&self) -> DnaSeq {
        DnaSeq {
            bases: self.bases.iter().map(|b| b.complement()).collect(),
        }
    }

    /// The reverse complement — the sequence of the opposite strand read
    /// 5'→3'. Reverse PCR primers bind as the reverse complement of the
    /// strand's tail.
    pub fn reverse_complement(&self) -> DnaSeq {
        DnaSeq {
            bases: self.bases.iter().rev().map(|b| b.complement()).collect(),
        }
    }

    /// Number of G or C bases.
    pub fn gc_count(&self) -> usize {
        self.bases.iter().filter(|b| b.is_gc()).count()
    }

    /// Fraction of G or C bases, in `[0, 1]`. Returns `0.0` for an empty
    /// sequence.
    pub fn gc_fraction(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.gc_count() as f64 / self.len() as f64
        }
    }

    /// Length of the longest homopolymer run (maximal stretch of one
    /// repeated base). Returns `0` for an empty sequence.
    ///
    /// The §4.3 index construction guarantees runs of at most 2 in every
    /// sparse index.
    pub fn max_homopolymer(&self) -> usize {
        let mut best = 0;
        let mut run = 0;
        let mut prev: Option<Base> = None;
        for b in self.iter() {
            if Some(b) == prev {
                run += 1;
            } else {
                run = 1;
                prev = Some(b);
            }
            best = best.max(run);
        }
        best
    }

    /// Packs the sequence into bytes at 2 bits per base, MSB first
    /// (4 bases per byte; the tail byte is zero-padded).
    ///
    /// This is the *unconstrained coding* of the paper (§2.1.1): maximum
    /// density, relying on randomization + ECC instead of constrained codes.
    ///
    /// # Examples
    ///
    /// ```
    /// use dna_seq::DnaSeq;
    /// let s: DnaSeq = "ACGT".parse().unwrap();
    /// assert_eq!(s.to_packed_bytes(), vec![0b00_01_10_11]);
    /// assert_eq!(DnaSeq::from_packed_bytes(&s.to_packed_bytes(), 4), s);
    /// ```
    pub fn to_packed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len().div_ceil(4));
        for chunk in self.bases.chunks(4) {
            let mut byte = 0u8;
            for (i, b) in chunk.iter().enumerate() {
                byte |= b.code() << (6 - 2 * i);
            }
            out.push(byte);
        }
        out
    }

    /// Unpacks `base_count` bases from 2-bit packed `bytes` (MSB first).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` holds fewer than `base_count` bases.
    pub fn from_packed_bytes(bytes: &[u8], base_count: usize) -> DnaSeq {
        assert!(
            bytes.len() * 4 >= base_count,
            "need {} bytes for {} bases, got {}",
            base_count.div_ceil(4),
            base_count,
            bytes.len()
        );
        let mut bases = Vec::with_capacity(base_count);
        for i in 0..base_count {
            let byte = bytes[i / 4];
            let code = (byte >> (6 - 2 * (i % 4))) & 0b11;
            bases.push(Base::from_code(code));
        }
        DnaSeq { bases }
    }

    /// Finds the first occurrence of `needle` at or after `from`, returning
    /// its start offset.
    pub fn find(&self, needle: &DnaSeq, from: usize) -> Option<usize> {
        if needle.is_empty() || needle.len() > self.len() {
            return None;
        }
        (from..=self.len() - needle.len())
            .find(|&i| self.bases[i..i + needle.len()] == needle.bases[..])
    }
}

impl fmt::Display for DnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bases {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl FromStr for DnaSeq {
    type Err = ParseDnaError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.chars().map(Base::from_char).collect()
    }
}

impl FromIterator<Base> for DnaSeq {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> Self {
        DnaSeq::from_bases(iter)
    }
}

impl Extend<Base> for DnaSeq {
    fn extend<I: IntoIterator<Item = Base>>(&mut self, iter: I) {
        self.bases.extend(iter);
    }
}

impl IntoIterator for DnaSeq {
    type Item = Base;
    type IntoIter = std::vec::IntoIter<Base>;

    fn into_iter(self) -> Self::IntoIter {
        self.bases.into_iter()
    }
}

impl<'a> IntoIterator for &'a DnaSeq {
    type Item = &'a Base;
    type IntoIter = std::slice::Iter<'a, Base>;

    fn into_iter(self) -> Self::IntoIter {
        self.bases.iter()
    }
}

impl AsRef<[Base]> for DnaSeq {
    fn as_ref(&self) -> &[Base] {
        &self.bases
    }
}

impl From<Vec<Base>> for DnaSeq {
    fn from(bases: Vec<Base>) -> Self {
        DnaSeq { bases }
    }
}

impl From<DnaSeq> for Vec<Base> {
    fn from(seq: DnaSeq) -> Self {
        seq.bases
    }
}

impl Index<usize> for DnaSeq {
    type Output = Base;

    fn index(&self, i: usize) -> &Base {
        &self.bases[i]
    }
}

impl Index<Range<usize>> for DnaSeq {
    type Output = [Base];

    fn index(&self, r: Range<usize>) -> &[Base] {
        &self.bases[r]
    }
}

impl Index<RangeFrom<usize>> for DnaSeq {
    type Output = [Base];

    fn index(&self, r: RangeFrom<usize>) -> &[Base] {
        &self.bases[r]
    }
}

impl Index<RangeTo<usize>> for DnaSeq {
    type Output = [Base];

    fn index(&self, r: RangeTo<usize>) -> &[Base] {
        &self.bases[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let s: DnaSeq = "ACGTACGT".parse().unwrap();
        assert_eq!(s.to_string(), "ACGTACGT");
        assert_eq!(s.len(), 8);
        let lower: DnaSeq = "acgt".parse().unwrap();
        assert_eq!(lower.to_string(), "ACGT");
    }

    #[test]
    fn parse_rejects_invalid() {
        assert!("ACGU".parse::<DnaSeq>().is_err());
        assert_eq!("AXGT".parse::<DnaSeq>().unwrap_err().invalid_char(), 'X');
    }

    #[test]
    fn reverse_complement_matches_known_example() {
        let s: DnaSeq = "AACGTT".parse().unwrap();
        assert_eq!(s.reverse_complement().to_string(), "AACGTT"); // palindrome
        let t: DnaSeq = "ATGC".parse().unwrap();
        assert_eq!(t.reverse_complement().to_string(), "GCAT");
    }

    #[test]
    fn reverse_complement_is_involution() {
        let s: DnaSeq = "ACGGTTACGGAT".parse().unwrap();
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn gc_statistics() {
        let s: DnaSeq = "GGCC".parse().unwrap();
        assert_eq!(s.gc_count(), 4);
        assert_eq!(s.gc_fraction(), 1.0);
        let t: DnaSeq = "ATAT".parse().unwrap();
        assert_eq!(t.gc_fraction(), 0.0);
        assert_eq!(DnaSeq::new().gc_fraction(), 0.0);
    }

    #[test]
    fn homopolymer_runs() {
        assert_eq!(DnaSeq::new().max_homopolymer(), 0);
        let s: DnaSeq = "ACGT".parse().unwrap();
        assert_eq!(s.max_homopolymer(), 1);
        let t: DnaSeq = "AAATTTTG".parse().unwrap();
        assert_eq!(t.max_homopolymer(), 4);
        let u: DnaSeq = "GGGGG".parse().unwrap();
        assert_eq!(u.max_homopolymer(), 5);
    }

    #[test]
    fn packing_round_trips_unaligned_lengths() {
        for len in [0usize, 1, 3, 4, 5, 7, 8, 13] {
            let s = DnaSeq::from_bases((0..len).map(|i| Base::from_code((i % 4) as u8)));
            let packed = s.to_packed_bytes();
            assert_eq!(packed.len(), len.div_ceil(4));
            assert_eq!(DnaSeq::from_packed_bytes(&packed, len), s);
        }
    }

    #[test]
    fn find_locates_substring() {
        let s: DnaSeq = "AACGTACG".parse().unwrap();
        let needle: DnaSeq = "ACG".parse().unwrap();
        assert_eq!(s.find(&needle, 0), Some(1));
        assert_eq!(s.find(&needle, 2), Some(5));
        assert_eq!(s.find(&needle, 6), None);
        assert_eq!(s.find(&DnaSeq::new(), 0), None);
    }

    #[test]
    fn prefix_and_subseq() {
        let s: DnaSeq = "ACGTAC".parse().unwrap();
        assert_eq!(s.prefix(3).to_string(), "ACG");
        assert_eq!(s.prefix(99), s);
        assert_eq!(s.subseq(2..5).to_string(), "GTA");
        assert!(s.starts_with(&"ACG".parse().unwrap()));
        assert!(s.ends_with(&"TAC".parse().unwrap()));
        assert!(!s.starts_with(&"CG".parse().unwrap()));
    }

    #[test]
    fn concat_and_extend() {
        let a: DnaSeq = "AC".parse().unwrap();
        let b: DnaSeq = "GT".parse().unwrap();
        assert_eq!(a.concat(&b).to_string(), "ACGT");
        let mut c = a.clone();
        c.extend(b.iter());
        assert_eq!(c.to_string(), "ACGT");
    }
}
