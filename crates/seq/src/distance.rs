//! Hamming and Levenshtein (edit) distances between DNA sequences.
//!
//! Both metrics matter in the paper: primer libraries are screened by
//! *Hamming* distance (§1), while read clustering and mispriming analysis use
//! *Levenshtein* distance (§2.1.2, §8.1 — "incorrectly amplified strands
//! largely had indexes ... 2 or 3 edit distance apart").

use crate::Base;

/// Hamming distance between two equal-length base slices.
///
/// # Panics
///
/// Panics if the slices have different lengths; use [`hamming_prefix`] for
/// comparing a primer against the prefix of a longer template.
///
/// # Examples
///
/// ```
/// use dna_seq::{distance::hamming, DnaSeq};
/// let a: DnaSeq = "ACGT".parse().unwrap();
/// let b: DnaSeq = "AGGA".parse().unwrap();
/// assert_eq!(hamming(a.as_slice(), b.as_slice()), 2);
/// ```
pub fn hamming(a: &[Base], b: &[Base]) -> usize {
    assert_eq!(
        a.len(),
        b.len(),
        "hamming distance requires equal lengths ({} vs {})",
        a.len(),
        b.len()
    );
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Hamming distance between `probe` and the equally long prefix of
/// `template`. Positions of `probe` beyond `template`'s end count as
/// mismatches.
///
/// This models primer-vs-strand annealing comparisons, where the primer is
/// matched against the 5' end of the template.
pub fn hamming_prefix(probe: &[Base], template: &[Base]) -> usize {
    let overlap = probe.len().min(template.len());
    let mismatches = probe[..overlap]
        .iter()
        .zip(&template[..overlap])
        .filter(|(x, y)| x != y)
        .count();
    mismatches + (probe.len() - overlap)
}

/// Hamming distance with early exit: returns `None` as soon as the distance
/// exceeds `bound`.
pub fn hamming_bounded(a: &[Base], b: &[Base], bound: usize) -> Option<usize> {
    assert_eq!(a.len(), b.len(), "hamming distance requires equal lengths");
    let mut d = 0;
    for (x, y) in a.iter().zip(b) {
        if x != y {
            d += 1;
            if d > bound {
                return None;
            }
        }
    }
    Some(d)
}

/// Levenshtein (edit) distance: minimum number of insertions, deletions and
/// substitutions converting `a` into `b`.
///
/// # Examples
///
/// ```
/// use dna_seq::{distance::levenshtein, DnaSeq};
/// let a: DnaSeq = "ACGT".parse().unwrap();
/// let b: DnaSeq = "AGT".parse().unwrap();
/// assert_eq!(levenshtein(a.as_slice(), b.as_slice()), 1);
/// ```
pub fn levenshtein(a: &[Base], b: &[Base]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Two-row dynamic program.
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &x) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &y) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(x != y);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Banded Levenshtein distance with early exit: returns `None` if the
/// distance exceeds `bound`. Runs in `O(bound · max(|a|,|b|))`, which is what
/// makes clustering millions of reads tractable.
pub fn levenshtein_bounded(a: &[Base], b: &[Base], bound: usize) -> Option<usize> {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > bound {
        return None;
    }
    if n == 0 {
        return (m <= bound).then_some(m);
    }
    if m == 0 {
        return (n <= bound).then_some(n);
    }
    const BIG: usize = usize::MAX / 2;
    // Band of width 2*bound+1 around the diagonal.
    let width = 2 * bound + 1;
    let mut prev = vec![BIG; width];
    let mut cur = vec![BIG; width];
    // prev corresponds to row i=0: cell (0, j) = j for |j - 0| <= bound.
    for (k, slot) in prev.iter_mut().enumerate() {
        // k indexes offset j - i + bound.
        let j = k as isize - bound as isize;
        if j >= 0 && (j as usize) <= m {
            *slot = j as usize;
        }
    }
    for i in 1..=n {
        cur.fill(BIG);
        let x = a[i - 1];
        let lo = i.saturating_sub(bound);
        let hi = (i + bound).min(m);
        for j in lo..=hi {
            let k = (j as isize - i as isize + bound as isize) as usize;
            let mut best = BIG;
            // Substitution / match: prev[(j-1) - (i-1) + bound] = prev[k]
            if j >= 1 {
                let diag = prev[k];
                if diag < BIG {
                    best = best.min(diag + usize::from(x != b[j - 1]));
                }
            } else if i >= 1 {
                // j == 0 column: distance is i (delete all of a's prefix)
                best = best.min(i);
            }
            // Deletion from a: (i-1, j) -> prev[k+1]
            if k + 1 < width && prev[k + 1] < BIG {
                best = best.min(prev[k + 1] + 1);
            }
            // Insertion into a: (i, j-1) -> cur[k-1]
            if k >= 1 && cur[k - 1] < BIG {
                best = best.min(cur[k - 1] + 1);
            }
            cur[k] = best;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let k = (m as isize - n as isize + bound as isize) as usize;
    let d = prev[k];
    (d <= bound).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DnaSeq;

    fn s(text: &str) -> DnaSeq {
        text.parse().unwrap()
    }

    #[test]
    fn hamming_basic() {
        assert_eq!(hamming(s("ACGT").as_slice(), s("ACGT").as_slice()), 0);
        assert_eq!(hamming(s("AAAA").as_slice(), s("TTTT").as_slice()), 4);
        assert_eq!(hamming(s("").as_slice(), s("").as_slice()), 0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_panics_on_length_mismatch() {
        hamming(s("AC").as_slice(), s("ACG").as_slice());
    }

    #[test]
    fn hamming_prefix_counts_overhang() {
        assert_eq!(
            hamming_prefix(s("ACG").as_slice(), s("ACGTTT").as_slice()),
            0
        );
        assert_eq!(
            hamming_prefix(s("ACT").as_slice(), s("ACGTTT").as_slice()),
            1
        );
        assert_eq!(
            hamming_prefix(s("ACGTT").as_slice(), s("ACG").as_slice()),
            2
        );
    }

    #[test]
    fn hamming_bounded_early_exit() {
        assert_eq!(
            hamming_bounded(s("AAAA").as_slice(), s("AATA").as_slice(), 1),
            Some(1)
        );
        assert_eq!(
            hamming_bounded(s("AAAA").as_slice(), s("TTTT").as_slice(), 2),
            None
        );
    }

    #[test]
    fn levenshtein_textbook_cases() {
        assert_eq!(levenshtein(s("ACGT").as_slice(), s("ACGT").as_slice()), 0);
        assert_eq!(levenshtein(s("ACGT").as_slice(), s("AGT").as_slice()), 1);
        assert_eq!(levenshtein(s("").as_slice(), s("ACG").as_slice()), 3);
        assert_eq!(levenshtein(s("ACG").as_slice(), s("").as_slice()), 3);
        // classic: kitten/sitting analogue in DNA
        assert_eq!(
            levenshtein(s("ACGTACGT").as_slice(), s("AGTACGGT").as_slice()),
            2
        );
    }

    #[test]
    fn levenshtein_is_symmetric_and_triangle() {
        let seqs = [s("ACGT"), s("AGT"), s("TTTT"), s("ACGG"), s("")];
        for a in &seqs {
            for b in &seqs {
                let dab = levenshtein(a.as_slice(), b.as_slice());
                let dba = levenshtein(b.as_slice(), a.as_slice());
                assert_eq!(dab, dba);
                for c in &seqs {
                    let dac = levenshtein(a.as_slice(), c.as_slice());
                    let dcb = levenshtein(c.as_slice(), b.as_slice());
                    assert!(dab <= dac + dcb, "triangle inequality violated");
                }
            }
        }
    }

    #[test]
    fn bounded_levenshtein_agrees_with_full() {
        let pairs = [
            ("ACGTACGT", "ACGTACGT"),
            ("ACGTACGT", "ACGACGT"),
            ("ACGTACGT", "TCGTACGA"),
            ("AAAA", "TTTT"),
            ("ACGT", ""),
            ("", ""),
            ("ACGTAAGGTT", "CGTAAGGTTA"),
        ];
        for (x, y) in pairs {
            let a = s(x);
            let b = s(y);
            let full = levenshtein(a.as_slice(), b.as_slice());
            for bound in 0..=10 {
                let got = levenshtein_bounded(a.as_slice(), b.as_slice(), bound);
                if full <= bound {
                    assert_eq!(got, Some(full), "{x} vs {y} bound {bound}");
                } else {
                    assert_eq!(got, None, "{x} vs {y} bound {bound}");
                }
            }
        }
    }
}
