//! Primer melting-temperature estimates.
//!
//! PCR annealing succeeds when the reaction's annealing temperature sits a
//! few degrees below the primer's melting temperature (Tm). The paper's
//! 20-base main primers anneal at ~50–55 °C and the 31-base elongated primers
//! melt at 63–64 °C (§6.5); touchdown PCR starts above Tm and walks down to
//! gain specificity. We provide the two standard quick estimates used in
//! primer-design practice.

use crate::DnaSeq;

/// Wallace rule: `Tm = 2·(A+T) + 4·(G+C)` (°C).
///
/// Reasonable for oligos up to ~14 bases; overestimates for longer primers.
///
/// # Examples
///
/// ```
/// use dna_seq::{tm::wallace, DnaSeq};
/// let p: DnaSeq = "ACGTACGTACGT".parse().unwrap();
/// assert_eq!(wallace(&p), 36.0); // 6 weak + 6 strong = 12 + 24
/// ```
pub fn wallace(seq: &DnaSeq) -> f64 {
    let gc = seq.gc_count() as f64;
    let at = (seq.len() - seq.gc_count()) as f64;
    2.0 * at + 4.0 * gc
}

/// Marmur–Doty/GC-fraction estimate for primers longer than ~13 bases:
/// `Tm = 64.9 + 41·(GC − 16.4)/N` (°C), with GC the number of strong bases
/// and `N` the primer length.
///
/// A 20-base primer at 50% GC gives ≈ 51.8 °C and a 31-base elongated primer
/// at ~50% GC gives ≈ 63.7 °C — matching the 63–64 °C the paper reports for
/// its elongated primers.
///
/// # Examples
///
/// ```
/// use dna_seq::{tm::marmur_doty, DnaSeq};
/// // 20-mer, 10 GC:
/// let p: DnaSeq = "ACGTACGTACGTACGTACGT".parse().unwrap();
/// let tm = marmur_doty(&p);
/// assert!((tm - 51.8).abs() < 0.2);
/// ```
pub fn marmur_doty(seq: &DnaSeq) -> f64 {
    let n = seq.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    64.9 + 41.0 * (seq.gc_count() as f64 - 16.4) / n
}

/// Best-available estimate: Wallace for short oligos (< 14 bases),
/// Marmur–Doty otherwise.
pub fn melting_temperature(seq: &DnaSeq) -> f64 {
    if seq.len() < 14 {
        wallace(seq)
    } else {
        marmur_doty(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(text: &str) -> DnaSeq {
        text.parse().unwrap()
    }

    #[test]
    fn wallace_counts_classes() {
        assert_eq!(wallace(&s("AT")), 4.0);
        assert_eq!(wallace(&s("GC")), 8.0);
        assert_eq!(wallace(&s("ATGC")), 12.0);
    }

    #[test]
    fn elongated_primer_tm_matches_paper_range() {
        // A 31-base GC-balanced elongated primer (paper §6.5: 63-64 C).
        // 31 bases, 15..16 GC.
        let primer = s("ACGTACGTACGTACGTACGTACGTACGTACG"); // 31 bases, 15 GC? A=8,C=8,G=8,T=7 -> GC=16
        let tm = marmur_doty(&primer);
        assert!(
            (62.0..66.0).contains(&tm),
            "31-mer balanced primer Tm {tm} outside paper's 63-64C window"
        );
    }

    #[test]
    fn twenty_mer_anneals_near_52() {
        let primer = s("ACGTACGTACGTACGTACGT");
        let tm = marmur_doty(&primer);
        assert!((50.0..54.0).contains(&tm));
    }

    #[test]
    fn dispatch_picks_formula_by_length() {
        let short = s("ATGCATGC");
        assert_eq!(melting_temperature(&short), wallace(&short));
        let long = s("ATGCATGCATGCATGCATGC");
        assert_eq!(melting_temperature(&long), marmur_doty(&long));
    }

    #[test]
    fn longer_primers_melt_hotter() {
        // Monotonicity sanity for balanced primers of growing length.
        let mut prev = 0.0;
        for len in [14usize, 18, 22, 26, 30, 34] {
            let seq = DnaSeq::from_bases((0..len).map(|i| crate::Base::from_code((i % 4) as u8)));
            let tm = marmur_doty(&seq);
            assert!(tm > prev, "Tm should grow with length");
            prev = tm;
        }
    }
}
