//! Core DNA sequence types and algorithms for the DNA block-storage stack.
//!
//! This crate is the foundation of the MICRO'23 *"Efficiently Enabling Block
//! Semantics and Data Updates in DNA Storage"* reproduction. It provides:
//!
//! - [`Base`] — the four-letter DNA alphabet with complementing and GC
//!   classification,
//! - [`DnaSeq`] — an owned DNA sequence with the string/slice-like API the
//!   rest of the stack builds on,
//! - [`distance`] — Hamming and Levenshtein (edit) distances, including
//!   bounded variants used by the read-clustering pipeline,
//! - [`kmer`] — packed k-mer iteration used for clustering signatures,
//! - [`analysis`] — GC-content and homopolymer analysis used by primer and
//!   index-tree constraints (§4 of the paper),
//! - [`tm`] — melting-temperature estimates for primers (§6.5 reports
//!   elongated primers melting at 63–64 °C),
//! - [`rng`] — deterministic, portable PRNGs. The paper's index trees are
//!   reconstructed from a stored seed alone (§4.4), so the generator must be
//!   bit-for-bit stable across platforms and releases; we therefore ship our
//!   own SplitMix64/Xoshiro256** rather than depend on an external crate.
//!
//! # Examples
//!
//! ```
//! use dna_seq::{Base, DnaSeq};
//!
//! let s: DnaSeq = "ACGTTG".parse().unwrap();
//! assert_eq!(s.len(), 6);
//! assert_eq!(s.reverse_complement().to_string(), "CAACGT");
//! assert_eq!(s.gc_count(), 3);
//! assert_eq!(s[0], Base::A);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod base;
mod error;
mod seq;

pub mod analysis;
pub mod distance;
pub mod kmer;
pub mod rng;
pub mod tm;

pub use base::Base;
pub use error::ParseDnaError;
pub use seq::DnaSeq;
