//! Deterministic, portable pseudo-random number generation.
//!
//! §4.4 of the paper: *"Because of our primary reliance on randomization and
//! deterministic procedures in the construction of the PCR-compatible index
//! tree, we do not need to store the tree. We only need to remember the seed
//! used for the randomization of its construction."*
//!
//! That design constraint means the generator must be **bit-for-bit stable
//! forever** — a library upgrade must never silently re-shuffle every index
//! tree in an archive. We therefore implement the well-specified SplitMix64
//! and Xoshiro256\*\* algorithms here rather than depend on an external crate
//! whose stream may change between versions, and we pin their behaviour with
//! golden-value tests.
//!
//! [`DetRng`] also carries the handful of samplers the wetlab simulator
//! needs (Bernoulli, binomial, Poisson, normal, log-normal).

/// SplitMix64: a tiny, high-quality 64-bit generator, used for seeding and
/// for deriving independent streams (one per partition, §4.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Produces the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The workhorse generator: Xoshiro256\*\* seeded via SplitMix64, with
/// simulation-oriented samplers.
///
/// # Examples
///
/// ```
/// use dna_seq::rng::DetRng;
///
/// let mut a = DetRng::seed_from_u64(42);
/// let mut b = DetRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
///
/// let mut rng = DetRng::seed_from_u64(7);
/// let x = rng.gen_range(10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Seeds the generator from a single `u64` by expanding it through
    /// SplitMix64 (the canonical Xoshiro seeding procedure).
    pub fn seed_from_u64(seed: u64) -> DetRng {
        let mut sm = SplitMix64::new(seed);
        DetRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Derives an independent child generator identified by `stream`.
    ///
    /// Used to give every partition / experiment phase its own stream from a
    /// single archive-level seed without correlated output.
    pub fn derive(&self, stream: u64) -> DetRng {
        // Hash the full state with the stream id through SplitMix64.
        let mut sm = SplitMix64::new(
            self.s[0]
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(self.s[2].rotate_left(17))
                ^ stream.wrapping_mul(0xd1b5_4a32_d192_ed03),
        );
        DetRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the raw Xoshiro256\*\* state, for persistence.
    ///
    /// A store image must capture generators mid-stream so that a restored
    /// archive continues the *same* random sequence (§4.4 demands the tree
    /// be re-derivable from the seed; shard RNGs additionally advance with
    /// every operation, so their live state is part of the image).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`DetRng::state`].
    ///
    /// The resulting generator continues the exact stream the captured one
    /// would have produced.
    pub fn from_state(s: [u64; 4]) -> DetRng {
        DetRng { s }
    }

    /// Produces the next 64-bit output (Xoshiro256\*\*).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_range requires n > 0");
        // Multiply-shift with rejection (Lemire).
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(n);
            let low = m as u64;
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as usize;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_between(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "gen_range_between requires lo < hi");
        lo + self.gen_range(hi - lo)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0,1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i + 1);
            slice.swap(i, j);
        }
    }

    /// Uniformly chooses one element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(slice.len())])
        }
    }

    /// Standard normal via Box–Muller (one value per call; the sibling value
    /// is discarded to keep state evolution simple and reproducible).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Avoid ln(0).
        let u1 = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let u1 = if u1 <= f64::MIN_POSITIVE {
            f64::MIN_POSITIVE
        } else {
            u1
        };
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Log-normal sample: `exp(N(mu, sigma))`.
    ///
    /// The synthesis simulator uses this for per-molecule copy-number skew —
    /// Fig. 9a shows copy counts uniform "within 2×", which corresponds to a
    /// small sigma.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Binomial sample: number of successes in `n` trials of probability `p`.
    ///
    /// Exact inversion for small `n·p`, normal approximation for large.
    pub fn binomial(&mut self, n: u64, p: f64) -> u64 {
        if n == 0 || p <= 0.0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        let mean = n as f64 * p;
        if n <= 64 {
            // Direct simulation.
            let mut k = 0;
            for _ in 0..n {
                if self.gen_bool(p) {
                    k += 1;
                }
            }
            return k;
        }
        if mean < 12.0 || n as f64 * (1.0 - p) < 12.0 {
            // Inversion on the smaller tail via Poisson-like geometric walk
            // would be intricate; direct per-trial simulation is fine up to a
            // few thousand trials which covers our use.
            if n <= 8192 {
                let mut k = 0;
                for _ in 0..n {
                    if self.gen_bool(p) {
                        k += 1;
                    }
                }
                return k;
            }
        }
        // Normal approximation with continuity correction.
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let x = self.normal(mean, sd).round();
        x.clamp(0.0, n as f64) as u64
    }

    /// Poisson sample with rate `lambda`.
    ///
    /// Knuth's product method for small `lambda`, normal approximation above
    /// 64. Used to draw per-molecule read counts at a given coverage.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda < 64.0 {
            let l = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.next_f64();
                if p <= l {
                    return k;
                }
                k += 1;
                if k > 10_000 {
                    return k; // numeric safety net
                }
            }
        }
        let x = self.normal(lambda, lambda.sqrt()).round();
        x.max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden values pin the exact output stream: these must NEVER change,
    /// or archived index trees become unrecoverable (§4.4).
    #[test]
    fn splitmix64_golden_values() {
        // Reference outputs for seed 1234567 from the public-domain
        // SplitMix64 reference implementation.
        let mut sm = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn xoshiro_is_deterministic_and_stable() {
        let mut a = DetRng::seed_from_u64(0xDEADBEEF);
        let first: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let mut b = DetRng::seed_from_u64(0xDEADBEEF);
        let second: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(first, second);
        // Golden value: guards against accidental algorithm changes.
        let mut c = DetRng::seed_from_u64(0);
        let v = c.next_u64();
        assert_eq!(v, 11091344671253066420);
    }

    #[test]
    fn derive_produces_distinct_streams() {
        let root = DetRng::seed_from_u64(99);
        let mut a = root.derive(0);
        let mut b = root.derive(1);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
        // Re-deriving the same stream reproduces it.
        let mut a2 = root.derive(0);
        let va2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        assert_eq!(va, va2);
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut a = DetRng::seed_from_u64(0x5EED);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = DetRng::from_state(a.state());
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb, "restored state must continue the same stream");
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = DetRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = rng.gen_range(7);
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = DetRng::seed_from_u64(6);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = DetRng::seed_from_u64(8);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(-0.5));
        assert!(rng.gen_bool(1.5));
    }

    #[test]
    fn binomial_mean_is_right() {
        let mut rng = DetRng::seed_from_u64(9);
        let trials = 2000;
        let mut total = 0u64;
        for _ in 0..trials {
            total += rng.binomial(100, 0.3);
        }
        let mean = total as f64 / trials as f64;
        assert!(
            (mean - 30.0).abs() < 1.0,
            "binomial mean {mean} should be ~30"
        );
    }

    #[test]
    fn binomial_large_n_normal_path() {
        let mut rng = DetRng::seed_from_u64(19);
        let mut total = 0u64;
        for _ in 0..200 {
            let x = rng.binomial(1_000_000, 0.25);
            assert!(x <= 1_000_000);
            total += x;
        }
        let mean = total as f64 / 200.0;
        assert!((mean - 250_000.0).abs() < 2_000.0);
    }

    #[test]
    fn poisson_mean_is_right() {
        let mut rng = DetRng::seed_from_u64(10);
        for lambda in [0.5, 5.0, 30.0, 200.0] {
            let trials = 2000;
            let mut total = 0u64;
            for _ in 0..trials {
                total += rng.poisson(lambda);
            }
            let mean = total as f64 / trials as f64;
            assert!(
                (mean - lambda).abs() < lambda.sqrt().max(0.5) * 0.2 + 0.2,
                "poisson mean {mean} should be ~{lambda}"
            );
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = DetRng::seed_from_u64(11);
        let n = 4000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.normal(10.0, 2.0);
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - 10.0).abs() < 0.15);
        assert!((var - 4.0).abs() < 0.5);
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = DetRng::seed_from_u64(12);
        for _ in 0..100 {
            assert!(rng.lognormal(0.0, 0.3) > 0.0);
        }
    }
}
