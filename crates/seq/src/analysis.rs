//! GC-content and structural analysis of sequences.
//!
//! PCR compatibility (§2.1.4, §4.2 of the paper) requires balanced GC content
//! *within every part of every index regardless of its length*, and no long
//! homopolymer runs. These helpers verify those properties.

use crate::DnaSeq;

/// GC fraction of every window of length `window`, sliding by one base.
///
/// Returns an empty vector when the sequence is shorter than `window` or
/// `window == 0`.
pub fn windowed_gc(seq: &DnaSeq, window: usize) -> Vec<f64> {
    if window == 0 || seq.len() < window {
        return Vec::new();
    }
    let slice = seq.as_slice();
    let mut gc = slice[..window].iter().filter(|b| b.is_gc()).count();
    let mut out = Vec::with_capacity(seq.len() - window + 1);
    out.push(gc as f64 / window as f64);
    for i in window..seq.len() {
        gc += usize::from(slice[i].is_gc());
        gc -= usize::from(slice[i - window].is_gc());
        out.push(gc as f64 / window as f64);
    }
    out
}

/// Checks that **every prefix** of `seq` of length ≥ `min_len` has GC
/// fraction in `[lo, hi]`.
///
/// This is the elongated-primer requirement of §4.2: "the GC content needs to
/// be balanced within every part of every index regardless of its length",
/// because a primer may be elongated by 6 bases or 10 bases and must be PCR
/// compatible either way.
pub fn gc_balanced_prefixes(seq: &DnaSeq, lo: f64, hi: f64, min_len: usize) -> bool {
    let mut gc = 0usize;
    for (i, b) in seq.iter().enumerate() {
        gc += usize::from(b.is_gc());
        let len = i + 1;
        if len >= min_len {
            let frac = gc as f64 / len as f64;
            if frac < lo || frac > hi {
                return false;
            }
        }
    }
    true
}

/// Maximum absolute deviation of any prefix (length ≥ `min_len`) from 50% GC.
///
/// Useful as a scalar "PCR friendliness" score; the sparse index trees keep
/// this near zero by construction.
pub fn max_prefix_gc_deviation(seq: &DnaSeq, min_len: usize) -> f64 {
    let mut gc = 0usize;
    let mut worst: f64 = 0.0;
    for (i, b) in seq.iter().enumerate() {
        gc += usize::from(b.is_gc());
        let len = i + 1;
        if len >= min_len {
            worst = worst.max((gc as f64 / len as f64 - 0.5).abs());
        }
    }
    worst
}

/// Longest self-complementary tail/head overlap, a crude hairpin propensity
/// score: the length of the longest suffix of `seq` whose reverse complement
/// is a prefix of `seq`.
///
/// Primers with long such overlaps fold on themselves and fail to anneal;
/// primer validation rejects scores above a threshold.
pub fn hairpin_score(seq: &DnaSeq) -> usize {
    let rc = seq.reverse_complement();
    let n = seq.len();
    let mut best = 0;
    for k in (1..=n / 2).rev() {
        // suffix of length k: seq[n-k..]; its reverse complement is rc[..k]
        if seq.as_slice()[..k] == rc.as_slice()[..k] {
            best = k;
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(text: &str) -> DnaSeq {
        text.parse().unwrap()
    }

    #[test]
    fn windowed_gc_slides_correctly() {
        let seq = s("GGATAT");
        let w = windowed_gc(&seq, 2);
        assert_eq!(w, vec![1.0, 0.5, 0.0, 0.0, 0.0]);
        assert!(windowed_gc(&seq, 0).is_empty());
        assert!(windowed_gc(&seq, 7).is_empty());
    }

    #[test]
    fn perfectly_alternating_sequence_is_balanced() {
        // Weak/strong alternating. Odd-length prefixes of such a sequence
        // deviate by up to 1/(2k+1); length-3 prefix "ACA" has GC 1/3.
        let seq = s("ACAGTCTG");
        assert!(gc_balanced_prefixes(&seq, 1.0 / 3.0, 2.0 / 3.0, 2));
        assert!(max_prefix_gc_deviation(&seq, 2) <= 0.25);
    }

    #[test]
    fn skewed_sequence_fails_balance() {
        let seq = s("GGGGGGAT");
        assert!(!gc_balanced_prefixes(&seq, 0.4, 0.6, 2));
        assert!(max_prefix_gc_deviation(&seq, 2) == 0.5);
    }

    #[test]
    fn min_len_exempts_short_prefixes() {
        // first 3 bases are all GC but prefixes shorter than 4 are ignored
        let seq = s("GCGATATA"); // prefix(4)=GCGA 75%... fails at 0.6
        assert!(!gc_balanced_prefixes(&seq, 0.4, 0.6, 4));
        // but with min_len 8 only the whole sequence is checked: 3/8 = 0.375
        assert!(gc_balanced_prefixes(&seq, 0.35, 0.6, 8));
    }

    #[test]
    fn hairpin_score_detects_self_complement() {
        // prefix ACGT's reverse complement is ACGT -> palindromic head/tail
        let seq = s("ACGTAAAAACGT");
        assert!(hairpin_score(&seq) >= 4);
        let clean = s("ACCATG");
        assert!(hairpin_score(&clean) <= 2);
    }
}
