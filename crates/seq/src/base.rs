//! The four-letter DNA alphabet.

use crate::error::ParseDnaError;
use std::fmt;

/// A single DNA nucleotide: adenine, cytosine, guanine or thymine.
///
/// The discriminants are the canonical 2-bit encoding used throughout the
/// storage stack (`A=0, C=1, G=2, T=3`), matching the alphabetical edge order
/// of the index trees in the paper (§3.1: "four edges labelled A, C, G, T, in
/// that order").
///
/// # Examples
///
/// ```
/// use dna_seq::Base;
///
/// assert_eq!(Base::A.complement(), Base::T);
/// assert_eq!(Base::G.to_char(), 'G');
/// assert!(Base::C.is_gc());
/// assert_eq!(Base::from_code(3), Base::T);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
}

impl Base {
    /// All four bases in canonical (alphabetical) order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Returns the Watson–Crick complement (`A↔T`, `C↔G`).
    #[inline]
    pub const fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::C => Base::G,
            Base::G => Base::C,
            Base::T => Base::A,
        }
    }

    /// Returns `true` for the *strong* (three-hydrogen-bond) bases G and C.
    ///
    /// The paper's sparsification rule (§4.3) always inserts a base of the
    /// *opposite* GC class from its predecessor, which is what keeps every
    /// elongation GC-balanced.
    #[inline]
    pub const fn is_gc(self) -> bool {
        matches!(self, Base::C | Base::G)
    }

    /// Returns the canonical 2-bit code (`A=0, C=1, G=2, T=3`).
    #[inline]
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Builds a base from its 2-bit code. Only the low two bits are used.
    #[inline]
    pub const fn from_code(code: u8) -> Base {
        match code & 0b11 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        }
    }

    /// Returns the uppercase ASCII character for this base.
    #[inline]
    pub const fn to_char(self) -> char {
        match self {
            Base::A => 'A',
            Base::C => 'C',
            Base::G => 'G',
            Base::T => 'T',
        }
    }

    /// Parses a single character (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`ParseDnaError`] if `c` is not one of `AaCcGgTt`.
    pub fn from_char(c: char) -> Result<Base, ParseDnaError> {
        match c {
            'A' | 'a' => Ok(Base::A),
            'C' | 'c' => Ok(Base::C),
            'G' | 'g' => Ok(Base::G),
            'T' | 't' => Ok(Base::T),
            other => Err(ParseDnaError::new(other)),
        }
    }

    /// The two bases of the *same* GC class as `self` (including `self`).
    #[inline]
    pub const fn same_gc_class(self) -> [Base; 2] {
        if self.is_gc() {
            [Base::C, Base::G]
        } else {
            [Base::A, Base::T]
        }
    }

    /// The two bases of the *opposite* GC class from `self`.
    ///
    /// This is the candidate set for the §4.3 separator insertion: "if the
    /// previous letter on the path from the root was A, the extra letter
    /// could be either C or G".
    #[inline]
    pub const fn opposite_gc_class(self) -> [Base; 2] {
        if self.is_gc() {
            [Base::A, Base::T]
        } else {
            [Base::C, Base::G]
        }
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Base::A => "A",
            Base::C => "C",
            Base::G => "G",
            Base::T => "T",
        })
    }
}

impl TryFrom<char> for Base {
    type Error = ParseDnaError;

    fn try_from(c: char) -> Result<Self, Self::Error> {
        Base::from_char(c)
    }
}

impl From<Base> for char {
    fn from(b: Base) -> char {
        b.to_char()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
        }
    }

    #[test]
    fn complement_swaps_gc_class_membership() {
        // A<->T stay weak, C<->G stay strong.
        assert!(!Base::A.is_gc());
        assert!(!Base::T.is_gc());
        assert!(Base::C.is_gc());
        assert!(Base::G.is_gc());
        for b in Base::ALL {
            assert_eq!(b.is_gc(), b.complement().is_gc());
        }
    }

    #[test]
    fn code_round_trips() {
        for b in Base::ALL {
            assert_eq!(Base::from_code(b.code()), b);
        }
        // from_code masks to two bits.
        assert_eq!(Base::from_code(4), Base::A);
        assert_eq!(Base::from_code(7), Base::T);
    }

    #[test]
    fn char_round_trips_case_insensitive() {
        for b in Base::ALL {
            assert_eq!(Base::from_char(b.to_char()).unwrap(), b);
            assert_eq!(
                Base::from_char(b.to_char().to_ascii_lowercase()).unwrap(),
                b
            );
        }
        assert!(Base::from_char('N').is_err());
        assert!(Base::from_char('x').is_err());
    }

    #[test]
    fn gc_classes_partition_alphabet() {
        for b in Base::ALL {
            let same = b.same_gc_class();
            let opp = b.opposite_gc_class();
            assert!(same.contains(&b));
            assert!(!opp.contains(&b));
            let mut all: Vec<Base> = same.iter().chain(opp.iter()).copied().collect();
            all.sort();
            assert_eq!(all, Base::ALL.to_vec());
        }
    }

    #[test]
    fn canonical_order_matches_paper_edge_labels() {
        assert_eq!(Base::ALL.map(|b| b.to_char()), ['A', 'C', 'G', 'T']);
    }
}
