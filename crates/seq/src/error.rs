//! Error types for DNA parsing.

use std::error::Error;
use std::fmt;

/// Error returned when parsing DNA from text encounters a non-`ACGT`
/// character.
///
/// # Examples
///
/// ```
/// use dna_seq::DnaSeq;
///
/// let err = "ACGX".parse::<DnaSeq>().unwrap_err();
/// assert_eq!(err.invalid_char(), 'X');
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseDnaError {
    invalid: char,
}

impl ParseDnaError {
    pub(crate) fn new(invalid: char) -> Self {
        ParseDnaError { invalid }
    }

    /// The offending character.
    pub fn invalid_char(&self) -> char {
        self.invalid
    }
}

impl fmt::Display for ParseDnaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid DNA character {:?}, expected one of A, C, G, T",
            self.invalid
        )
    }
}

impl Error for ParseDnaError {}
