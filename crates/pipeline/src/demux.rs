//! Per-round software demultiplexing: route reads to primer channels
//! before decoding.
//!
//! A multiplexed retrieval round sequences one pool carrying many
//! partitions' strands. Every [`crate::DecodeJob`] demultiplexes by
//! matching its full elongated prefix against *every* read — correct, but
//! quadratic in practice: a round with `C` channels and `J` jobs pays
//! `J × reads` bounded-edit prefix scans even though each read can only
//! ever belong to the one channel whose 20-base main forward primer it
//! carries (primer libraries are generated pairwise-distant precisely so
//! that channels are distinguishable).
//!
//! [`demux_reads`] restores the linear structure: one `C × reads` routing
//! pass on the *main primer* region, after which each channel's jobs scan
//! only their own bucket. Routing is a strict superset of what any job
//! would accept — a read whose full elongated prefix lies within a job's
//! edit tolerance necessarily has its primer region within the same
//! tolerance of the channel primer, so routing with the same tolerance
//! never drops a read a job would have matched, and per-job decode
//! outcomes (and `reads_matched` statistics) are bit-identical to the
//! unrouted path. Ambiguous reads (within tolerance of several channels —
//! possible only under heavy noise) are given to every matching channel.

use crate::decode::BlockDecodeConfig;
use dna_seq::distance::levenshtein_bounded;
use dna_seq::DnaSeq;
use dna_sim::Read;

/// One demultiplex target: a channel's main forward primer and the edit
/// tolerance its jobs filter with.
#[derive(Debug, Clone)]
pub struct ChannelPrimer {
    /// The channel's main forward primer (the shared head of every
    /// elongated prefix amplified through this channel).
    pub forward: DnaSeq,
    /// Edit tolerance, matching the channel's
    /// [`BlockDecodeConfig::filter_max_edit`].
    pub tolerance: usize,
}

impl ChannelPrimer {
    /// Builds the routing key for a channel from its forward primer and a
    /// representative job configuration.
    pub fn for_jobs(forward: DnaSeq, config: &BlockDecodeConfig) -> ChannelPrimer {
        ChannelPrimer {
            forward,
            tolerance: config.filter_max_edit,
        }
    }

    /// Whether `read` plausibly starts with this channel's primer: some
    /// window of the read's head lies within the edit tolerance. Mirrors
    /// the window scan of the decode-time read filter, restricted to the
    /// primer region.
    fn matches(&self, read: &DnaSeq) -> bool {
        let n = self.forward.len();
        let lo = n.saturating_sub(self.tolerance);
        let hi = (n + self.tolerance).min(read.len());
        for w in lo..=hi {
            let window = &read.as_slice()[..w];
            if levenshtein_bounded(self.forward.as_slice(), window, self.tolerance).is_some() {
                return true;
            }
        }
        false
    }
}

/// Routes each read to the channel(s) whose primer it carries, preserving
/// read order within each bucket. Buckets borrow from `reads` — routing
/// copies nothing, even for ambiguous reads landing in several buckets.
/// Reads matching no channel (pure noise, truncated heads) are dropped —
/// no job would have matched them either.
pub fn demux_reads<'a>(reads: &'a [Read], channels: &[ChannelPrimer]) -> Vec<Vec<&'a Read>> {
    let mut buckets: Vec<Vec<&'a Read>> = channels.iter().map(|_| Vec::new()).collect();
    for read in reads {
        for (c, channel) in channels.iter().enumerate() {
            if channel.matches(&read.seq) {
                buckets[c].push(read);
            }
        }
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{decode_block, BlockDecodeConfig};
    use dna_seq::rng::DetRng;
    use dna_seq::Base;
    use dna_sim::IdsChannel;

    fn primer(seed: u64) -> DnaSeq {
        let mut rng = DetRng::seed_from_u64(seed);
        DnaSeq::from_bases((0..20).map(|_| Base::from_code(rng.gen_range(4) as u8)))
    }

    fn strand(fwd: &DnaSeq, tag: u8) -> DnaSeq {
        let mut rng = DetRng::seed_from_u64(u64::from(tag) + 77);
        let interior = DnaSeq::from_bases((0..80).map(|_| Base::from_code(rng.gen_range(4) as u8)));
        fwd.concat(&interior)
    }

    #[test]
    fn routes_noisy_reads_to_their_channel() {
        let a = primer(1);
        let b = primer(2);
        let channels = [
            ChannelPrimer {
                forward: a.clone(),
                tolerance: 3,
            },
            ChannelPrimer {
                forward: b.clone(),
                tolerance: 3,
            },
        ];
        let mut rng = DetRng::seed_from_u64(9);
        let ch = IdsChannel::illumina();
        let reads: Vec<Read> = (0..100)
            .map(|i| {
                let src = if i % 2 == 0 { &a } else { &b };
                Read {
                    seq: ch.corrupt(&strand(src, i as u8 % 2), &mut rng),
                    truth: None,
                }
            })
            .collect();
        let buckets = demux_reads(&reads, &channels);
        // Essentially every read lands in its own channel's bucket;
        // random 20-mers at routing distance are far apart, so
        // cross-routing is rare.
        assert!(buckets[0].len() >= 45, "bucket a: {}", buckets[0].len());
        assert!(buckets[1].len() >= 45, "bucket b: {}", buckets[1].len());
        assert!(buckets[0].len() + buckets[1].len() <= 110);
    }

    #[test]
    fn bucket_decode_matches_unrouted_decode() {
        // The superset guarantee in action: decoding a job against its
        // routed bucket gives bit-identical results to decoding against
        // the full read set.
        let fwd: DnaSeq = "AACCGGTTAACCGGTTAACC".parse().unwrap();
        let other = primer(3);
        let rev: DnaSeq = "AAGGCCTTAAGGCCTTAAGG".parse().unwrap();
        let mut rng = DetRng::seed_from_u64(11);
        let ch = IdsChannel::illumina();
        let mut reads: Vec<Read> = (0..60)
            .map(|_| Read {
                seq: ch.corrupt(&strand(&fwd, 0), &mut rng),
                truth: None,
            })
            .collect();
        reads.extend((0..60).map(|_| Read {
            seq: ch.corrupt(&strand(&other, 1), &mut rng),
            truth: None,
        }));
        let cfg = BlockDecodeConfig::paper_default(7, 531);
        let channels = [ChannelPrimer::for_jobs(fwd.clone(), &cfg)];
        let buckets = demux_reads(&reads, &channels);
        assert!(buckets[0].len() >= 55 && buckets[0].len() <= 70);
        let mut prefix = fwd.clone();
        prefix.push(Base::A);
        prefix.extend("ACAGTCTGAC".parse::<DnaSeq>().unwrap().iter());
        let full = decode_block(&reads, &prefix, &rev, &cfg);
        let routed = decode_block(&buckets[0], &prefix, &rev, &cfg);
        assert_eq!(full.reads_matched, routed.reads_matched);
        assert_eq!(full.clusters_total, routed.clusters_total);
    }
}
