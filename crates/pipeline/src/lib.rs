//! Read-recovery pipeline: from noisy sequencer reads back to block bytes.
//!
//! Implements the paper's §6.6/§8 decoding procedure:
//!
//! 1. **Filter** ([`ReadFilter`]): find the elongated forward primer and the
//!    reverse primer in each read and extract the interior;
//! 2. **Cluster** ([`cluster_reads`]): group interiors so each cluster holds
//!    the noisy copies of one original strand (Rashtchian et al. style:
//!    MinHash bucketing + bounded edit-distance confirmation);
//! 3. **Reconstruct** ([`double_sided_bma`]): two-sided Bitwise Majority
//!    Alignment (Lin et al.) per cluster, largest clusters first;
//! 4. **Decode** ([`decode_block`]): place reconstructed strands into
//!    encoding-unit matrices by their (version, intra-unit) address, discard
//!    duplicate addresses, Reed-Solomon-decode each version, and — when
//!    mispriming poisons an address (§8.1) — retry with alternate candidate
//!    strands in descending cluster-size order;
//! 5. **Fan out** ([`decode_jobs_parallel`]): demultiplex a multiplexed
//!    round's shared read pool into per-block [`DecodeJob`]s and decode them
//!    on parallel OS threads.
//!
//! # Examples
//!
//! See `decode_block`'s documentation and the crate's integration tests for
//! end-to-end usage with the simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bma;
mod cluster;
mod decode;
mod demux;
mod filter;
mod parallel;

pub use bma::{bma, bma_with, double_sided_bma, double_sided_bma_with, BmaScratch};
pub use cluster::{
    cluster_reads, cluster_reads_with_scratch, Cluster, ClusterConfig, ClusterScratch,
};
pub use decode::{
    decode_block, decode_block_validated, decode_block_validated_with_scratch, BlockDecodeConfig,
    BlockDecodeOutcome, DecodeScratch, RecoveredVersion,
};
pub use demux::{demux_reads, ChannelPrimer};
pub use filter::ReadFilter;
pub use parallel::{decode_jobs_parallel, decode_jobs_parallel_into, thread_share, DecodeJob};
