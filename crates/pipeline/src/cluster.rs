//! Read clustering (§2.1.2, §6.6).
//!
//! Groups read interiors so that each cluster ideally contains all noisy
//! copies of one original strand. Follows the shape of Rashtchian et al.'s
//! hashing-based clustering: cheap MinHash signature buckets propose
//! candidate clusters, bounded edit distance against the cluster
//! representative confirms membership.

use dna_seq::distance::levenshtein_bounded;
use dna_seq::kmer::MinHashSignature;
use dna_seq::DnaSeq;
use std::collections::HashMap;

/// Clustering parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// k-mer length for signatures.
    pub kmer: usize,
    /// Number of MinHash slots per signature.
    pub slots: usize,
    /// Maximum edit distance between a read and its cluster representative.
    pub max_edit: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            kmer: 8,
            slots: 8,
            max_edit: 10,
        }
    }
}

/// One cluster of read interiors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// Indices into the input slice, in arrival order. The first member is
    /// the cluster representative.
    pub members: Vec<usize>,
}

impl Cluster {
    /// Number of reads in the cluster.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The member sequences, borrowed from the input slice.
    pub fn sequences<'a>(&self, reads: &'a [DnaSeq]) -> Vec<&'a DnaSeq> {
        self.members.iter().map(|&i| &reads[i]).collect()
    }
}

/// Reusable buffers for repeated clustering runs: the MinHash bucket index,
/// the per-read candidate list, and the representative-signature table. All
/// buffers are cleared on entry, so [`cluster_reads_with_scratch`] is
/// byte-identical to [`cluster_reads`] for any scratch state — the reuse only
/// spares the allocator, it never carries state between calls.
#[derive(Debug, Clone, Default)]
pub struct ClusterScratch {
    buckets: HashMap<(usize, u64), Vec<usize>>,
    candidates: Vec<usize>,
    rep_sigs: Vec<MinHashSignature>,
}

impl ClusterScratch {
    /// Creates an empty scratch.
    pub fn new() -> ClusterScratch {
        ClusterScratch::default()
    }
}

/// Clusters `reads` and returns clusters sorted by size, largest first
/// (ties broken by first appearance, so the result is deterministic).
///
/// §8 step 2: "We then cluster these payloads as per Rashtchian et al. so
/// that the payloads from the reads of the same original strand are
/// clustered together."
pub fn cluster_reads(reads: &[DnaSeq], config: &ClusterConfig) -> Vec<Cluster> {
    cluster_reads_with_scratch(reads, config, &mut ClusterScratch::new())
}

/// As [`cluster_reads`], reusing `scratch` buffers across calls.
pub fn cluster_reads_with_scratch(
    reads: &[DnaSeq],
    config: &ClusterConfig,
    scratch: &mut ClusterScratch,
) -> Vec<Cluster> {
    let mut clusters: Vec<Cluster> = Vec::new();
    // Bucket index: (slot index, slot value) → cluster ids.
    let ClusterScratch {
        buckets,
        candidates,
        rep_sigs,
    } = scratch;
    buckets.clear();
    rep_sigs.clear();

    for (i, read) in reads.iter().enumerate() {
        let sig = MinHashSignature::new(read, config.kmer, config.slots);
        // Collect candidate clusters from matching buckets, preserving
        // discovery order for determinism.
        candidates.clear();
        for (s, &v) in sig.slots().iter().enumerate() {
            if let Some(ids) = buckets.get(&(s, v)) {
                for &c in ids {
                    if !candidates.contains(&c) {
                        candidates.push(c);
                    }
                }
            }
        }
        // Confirm with bounded edit distance to the representative; take the
        // closest match.
        let mut best: Option<(usize, usize)> = None; // (dist, cluster)
        for &c in candidates.iter() {
            let rep_idx = clusters[c].members[0];
            if let Some(d) =
                levenshtein_bounded(read.as_slice(), reads[rep_idx].as_slice(), config.max_edit)
            {
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, c));
                }
            }
        }
        match best {
            Some((_, c)) => clusters[c].members.push(i),
            None => {
                let id = clusters.len();
                clusters.push(Cluster { members: vec![i] });
                for (s, &v) in sig.slots().iter().enumerate() {
                    buckets.entry((s, v)).or_default().push(id);
                }
                rep_sigs.push(sig);
            }
        }
    }
    // Largest first; stable on first-appearance order.
    clusters.sort_by(|a, b| {
        b.size()
            .cmp(&a.size())
            .then(a.members[0].cmp(&b.members[0]))
    });
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_seq::rng::DetRng;
    use dna_seq::Base;
    use dna_sim::IdsChannel;

    fn originals(n: usize, len: usize, rng: &mut DetRng) -> Vec<DnaSeq> {
        (0..n)
            .map(|_| DnaSeq::from_bases((0..len).map(|_| Base::from_code(rng.gen_range(4) as u8))))
            .collect()
    }

    #[test]
    fn noiseless_copies_cluster_perfectly() {
        let mut rng = DetRng::seed_from_u64(1);
        let origs = originals(10, 99, &mut rng);
        let mut reads = Vec::new();
        for (i, o) in origs.iter().enumerate() {
            for _ in 0..(5 + i) {
                reads.push(o.clone());
            }
        }
        let clusters = cluster_reads(&reads, &ClusterConfig::default());
        assert_eq!(clusters.len(), 10);
        // Sorted descending: the last original got the most copies.
        assert_eq!(clusters[0].size(), 14);
        assert_eq!(clusters[9].size(), 5);
    }

    #[test]
    fn noisy_copies_cluster_by_origin() {
        let mut rng = DetRng::seed_from_u64(2);
        let origs = originals(20, 99, &mut rng);
        let ch = IdsChannel::illumina();
        let mut reads = Vec::new();
        let mut truth = Vec::new();
        for (i, o) in origs.iter().enumerate() {
            for _ in 0..20 {
                reads.push(ch.corrupt(o, &mut rng));
                truth.push(i);
            }
        }
        let clusters = cluster_reads(&reads, &ClusterConfig::default());
        // Every cluster must be pure (all members from one original).
        let mut clustered_reads = 0;
        for c in &clusters {
            let first = truth[c.members[0]];
            for &m in &c.members {
                assert_eq!(truth[m], first, "impure cluster");
            }
            clustered_reads += c.size();
        }
        assert_eq!(clustered_reads, reads.len());
        // Nearly all reads should land in the 20 main clusters.
        let main: usize = clusters.iter().take(20).map(|c| c.size()).sum();
        assert!(main as f64 >= reads.len() as f64 * 0.97, "main {main}");
    }

    #[test]
    fn empty_input_yields_no_clusters() {
        assert!(cluster_reads(&[], &ClusterConfig::default()).is_empty());
    }

    #[test]
    fn clustering_is_deterministic() {
        let mut rng = DetRng::seed_from_u64(3);
        let origs = originals(5, 60, &mut rng);
        let ch = IdsChannel::illumina();
        let reads: Vec<DnaSeq> = origs
            .iter()
            .flat_map(|o| (0..8).map(|_| ch.corrupt(o, &mut rng)).collect::<Vec<_>>())
            .collect();
        let a = cluster_reads(&reads, &ClusterConfig::default());
        let b = cluster_reads(&reads, &ClusterConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn distant_sequences_never_merge() {
        // Two sequences at edit distance far beyond max_edit.
        let a = DnaSeq::from_bases((0..80).map(|i| Base::from_code((i % 4) as u8)));
        let b = DnaSeq::from_bases((0..80).map(|i| Base::from_code(((i / 7 + 2) % 4) as u8)));
        let reads = vec![a.clone(), b.clone(), a, b];
        let clusters = cluster_reads(&reads, &ClusterConfig::default());
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].size(), 2);
    }
}
