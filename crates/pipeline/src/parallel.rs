//! Parallel block decoding: fan the per-block cluster/BMA/RS pipeline out
//! over OS threads.
//!
//! A multiplexed retrieval round sequences *one* read pool containing many
//! blocks' strands; demultiplexing happens in software by primer prefix
//! (each [`DecodeJob`] carries its own elongated prefix and decode
//! configuration). The jobs are independent pure functions over the shared
//! read slice, so they parallelize embarrassingly well with
//! `std::thread::scope` — no `unsafe`, no shared mutable state, and the
//! output order is the input job order regardless of scheduling.

use crate::decode::{
    decode_block_validated, decode_block_validated_with_scratch, BlockDecodeConfig,
    BlockDecodeOutcome, DecodeScratch,
};
use dna_seq::DnaSeq;
use dna_sim::Read;

/// One block's worth of demultiplex + decode work against a shared read
/// pool.
#[derive(Debug, Clone)]
pub struct DecodeJob {
    /// The elongated forward prefix addressing the block (demultiplex key).
    pub prefix: DnaSeq,
    /// The partition's reverse primer.
    pub reverse: DnaSeq,
    /// Decode configuration (geometry, RS dimensions, clustering, §8.1
    /// search budget).
    pub config: BlockDecodeConfig,
}

/// Fair per-consumer thread budget when `consumers` independent decode
/// stages run concurrently (one multiplexed retrieval round each): the
/// machine's available parallelism divided evenly, floored at one thread
/// per consumer. A sharded store executing its rounds on scoped threads
/// routes each round's [`decode_jobs_parallel_into`] through this so the
/// rounds share the cores instead of each oversubscribing the machine.
pub fn thread_share(consumers: usize) -> usize {
    let total = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (total / consumers.max(1)).max(1)
}

/// Decodes every job against the shared `reads`, fanning out over at most
/// `max_threads` OS threads (clamped to the job count; `0` means "use
/// [`std::thread::available_parallelism`]"). Results are returned in job
/// order and are identical to running [`decode_block_validated`]
/// sequentially per job.
///
/// `validator` is the unit-integrity check shared by all jobs (the block
/// store passes its checksum test).
pub fn decode_jobs_parallel<B, F>(
    reads: &[B],
    jobs: &[DecodeJob],
    validator: F,
    max_threads: usize,
) -> Vec<BlockDecodeOutcome>
where
    B: std::borrow::Borrow<Read> + Sync,
    F: Fn(&[u8]) -> bool + Sync,
{
    let mut out = Vec::with_capacity(jobs.len());
    decode_jobs_parallel_into(reads, jobs, validator, max_threads, &mut out);
    out
}

/// As [`decode_jobs_parallel`], but *appends* the outcomes (still in job
/// order) to a caller-owned vector instead of allocating a fresh one.
///
/// This is the entry point for scheduler-driven decoding: a multi-round
/// batch accumulates one outcome vector across rounds so that a leaf
/// decoded in an earlier round (e.g. the shared update-log partition) is
/// never decoded again — callers index outcomes by the position recorded
/// when the job was first submitted.
pub fn decode_jobs_parallel_into<B, F>(
    reads: &[B],
    jobs: &[DecodeJob],
    validator: F,
    max_threads: usize,
    out: &mut Vec<BlockDecodeOutcome>,
) where
    B: std::borrow::Borrow<Read> + Sync,
    F: Fn(&[u8]) -> bool + Sync,
{
    let threads = if max_threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        max_threads
    }
    .min(jobs.len())
    .max(1);
    if threads == 1 || jobs.len() <= 1 {
        // The caller thread's thread-local scratch persists across rounds.
        out.extend(
            jobs.iter().map(|j| {
                decode_block_validated(reads, &j.prefix, &j.reverse, &j.config, &validator)
            }),
        );
        return;
    }
    let validator = &validator;
    let mut results: Vec<Option<BlockDecodeOutcome>> = Vec::new();
    results.resize_with(jobs.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            // Stripe the jobs: thread t takes indices t, t+threads, ...
            // Each worker carries one decode arena across its stripe.
            handles.push(scope.spawn(move || {
                let mut scratch = DecodeScratch::new();
                jobs.iter()
                    .enumerate()
                    .skip(t)
                    .step_by(threads)
                    .map(|(i, j)| {
                        (
                            i,
                            decode_block_validated_with_scratch(
                                reads,
                                &j.prefix,
                                &j.reverse,
                                &j.config,
                                validator,
                                &mut scratch,
                            ),
                        )
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            for (i, outcome) in handle.join().expect("decode worker panicked") {
                results[i] = Some(outcome);
            }
        }
    });
    out.extend(
        results
            .into_iter()
            .map(|r| r.expect("every job striped to exactly one worker")),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_codec::{intra, PayloadCodec, StrandGeometry};
    use dna_ecc::{EncodingUnit, UnitConfig};
    use dna_seq::rng::DetRng;
    use dna_seq::Base;
    use dna_sim::{IdsChannel, Pool, Sequencer};

    fn fwd() -> DnaSeq {
        "AACCGGTTAACCGGTTAACC".parse().unwrap()
    }

    fn rev() -> DnaSeq {
        "AAGGCCTTAAGGCCTTAAGG".parse().unwrap()
    }

    fn indexes() -> Vec<DnaSeq> {
        vec![
            "ACAGTCTGAC".parse().unwrap(),
            "TGTCAGACTG".parse().unwrap(),
            "CATGCATGCA".parse().unwrap(),
        ]
    }

    fn prefix_for(index: &DnaSeq) -> DnaSeq {
        let mut p = fwd();
        p.push(Base::A);
        p.extend(index.iter());
        p
    }

    fn unit_bytes(tag: u8) -> [u8; 264] {
        let mut d = [0u8; 264];
        for (i, b) in d.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(29).wrapping_add(tag);
        }
        d
    }

    /// Encodes one unit's 15 strands under the given index.
    fn encode_unit(data: &[u8; 264], index: &DnaSeq, seed: u64, unit_id: u64) -> Vec<DnaSeq> {
        let geometry = StrandGeometry::paper_default();
        let unit = EncodingUnit::new(UnitConfig::paper_default());
        unit.encode(data)
            .unwrap()
            .iter()
            .enumerate()
            .map(|(col, bytes)| {
                let codec = PayloadCodec::for_column(seed, unit_id, Base::A.code(), col as u8);
                geometry
                    .assemble(
                        &fwd(),
                        index,
                        Base::A,
                        &intra::encode(col, 2).unwrap(),
                        &codec.encode(bytes),
                        &rev(),
                    )
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn parallel_results_match_sequential_in_job_order() {
        // Three blocks multiplexed into one read pool.
        let mut pool = Pool::new();
        let mut jobs = Vec::new();
        let mut expected = Vec::new();
        for (u, index) in indexes().iter().enumerate() {
            let data = unit_bytes(u as u8);
            for s in encode_unit(&data, index, 5, u as u64) {
                pool.add(s, 100.0, None);
            }
            jobs.push(DecodeJob {
                prefix: prefix_for(index),
                reverse: rev(),
                config: BlockDecodeConfig::paper_default(5, u as u64),
            });
            expected.push(data.to_vec());
        }
        let mut rng = DetRng::seed_from_u64(21);
        let reads = Sequencer::new(IdsChannel::illumina()).sequence(&pool, 45 * 10, &mut rng);

        let parallel = decode_jobs_parallel(&reads, &jobs, |_| true, 0);
        let sequential: Vec<BlockDecodeOutcome> = jobs
            .iter()
            .map(|j| decode_block_validated(&reads, &j.prefix, &j.reverse, &j.config, |_| true))
            .collect();
        assert_eq!(parallel.len(), 3);
        for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
            assert_eq!(
                p.versions[&Base::A].unit_bytes,
                expected[i],
                "job {i} decoded wrong bytes"
            );
            assert_eq!(p.versions, s.versions, "job {i} parallel != sequential");
            assert_eq!(p.reads_matched, s.reads_matched);
        }
    }

    #[test]
    fn append_into_preserves_existing_outcomes_and_job_order() {
        // Two "rounds": the second round's outcomes append after the
        // first's without disturbing them — the accumulation contract the
        // block store's cross-round decode dedupe relies on.
        let mut pool = Pool::new();
        let mut jobs = Vec::new();
        let mut expected = Vec::new();
        for (u, index) in indexes().iter().enumerate() {
            let data = unit_bytes(40 + u as u8);
            for s in encode_unit(&data, index, 13, u as u64) {
                pool.add(s, 100.0, None);
            }
            jobs.push(DecodeJob {
                prefix: prefix_for(index),
                reverse: rev(),
                config: BlockDecodeConfig::paper_default(13, u as u64),
            });
            expected.push(data.to_vec());
        }
        let mut rng = DetRng::seed_from_u64(8);
        let reads = Sequencer::new(IdsChannel::illumina()).sequence(&pool, 45 * 10, &mut rng);

        let mut acc = Vec::new();
        decode_jobs_parallel_into(&reads, &jobs[..1], |_| true, 0, &mut acc);
        assert_eq!(acc.len(), 1);
        let first = acc[0].clone();
        decode_jobs_parallel_into(&reads, &jobs[1..], |_| true, 0, &mut acc);
        assert_eq!(acc.len(), 3);
        assert_eq!(acc[0].versions, first.versions, "round 1 outcome untouched");
        for (i, outcome) in acc.iter().enumerate() {
            assert_eq!(
                outcome.versions[&Base::A].unit_bytes,
                expected[i],
                "job {i} decoded wrong bytes"
            );
        }
        // The append path agrees with the one-shot path.
        let oneshot = decode_jobs_parallel(&reads, &jobs, |_| true, 0);
        for (a, b) in acc.iter().zip(&oneshot) {
            assert_eq!(a.versions, b.versions);
        }
    }

    #[test]
    fn thread_cap_and_empty_jobs_are_safe() {
        assert!(decode_jobs_parallel::<Read, _>(&[], &[], |_| true, 4).is_empty());
        // One job, absurd thread cap: must still work.
        let index = &indexes()[0];
        let data = unit_bytes(9);
        let mut pool = Pool::new();
        for s in encode_unit(&data, index, 7, 0) {
            pool.add(s, 100.0, None);
        }
        let mut rng = DetRng::seed_from_u64(3);
        let reads = Sequencer::new(IdsChannel::noiseless()).sequence(&pool, 60, &mut rng);
        let jobs = vec![DecodeJob {
            prefix: prefix_for(index),
            reverse: rev(),
            config: BlockDecodeConfig::paper_default(7, 0),
        }];
        let out = decode_jobs_parallel(&reads, &jobs, |_| true, 64);
        assert_eq!(out[0].versions[&Base::A].unit_bytes, data.to_vec());
    }
}
