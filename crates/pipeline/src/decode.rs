//! The §8 block-decoding procedure.

use crate::bma::{double_sided_bma_with, BmaScratch};
use crate::cluster::{cluster_reads_with_scratch, ClusterConfig, ClusterScratch};
use crate::filter::ReadFilter;
use dna_codec::{intra, PayloadCodec, StrandGeometry};
use dna_ecc::{EncodingUnit, UnitConfig};
use dna_seq::{Base, DnaSeq};
use dna_sim::Read;
use std::borrow::Borrow;
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Configuration for decoding one block from a read set.
#[derive(Debug, Clone)]
pub struct BlockDecodeConfig {
    /// Strand geometry (field offsets/lengths).
    pub geometry: StrandGeometry,
    /// Encoding-unit geometry (RS dimensions).
    pub unit: UnitConfig,
    /// Partition payload-randomizer seed.
    pub payload_seed: u64,
    /// The block's unit id (used in per-column codec derivation).
    pub unit_id: u64,
    /// Clustering parameters.
    pub cluster: ClusterConfig,
    /// Edit tolerance when matching primers in reads.
    pub filter_max_edit: usize,
    /// Maximum clusters to reconstruct (0 = no cap).
    pub max_clusters: usize,
    /// Alternate candidates kept per strand address for the §8.1 mispriming
    /// recovery search.
    pub max_alternates: usize,
    /// Attempt budget for the candidate-combination search.
    pub max_decode_attempts: usize,
    /// Strict edit tolerance on the index tail of the prefix (the last
    /// `geometry.unit_index_len` bases): discriminates sibling blocks whose
    /// indexes are only 2 edits apart. `None` disables the check.
    pub index_tail_tolerance: Option<usize>,
    /// Version bases the caller knows are live at this address (`None` =
    /// decode every observed version). A store whose metadata is exact —
    /// e.g. a freshly compacted/rebased unit holds only the base version —
    /// passes the live set so that noise or mispriming products claiming a
    /// retired version base are never RS-decoded into a phantom version:
    /// they are skipped outright, not even reported as failed.
    pub version_allowlist: Option<Vec<Base>>,
}

impl BlockDecodeConfig {
    /// Paper-default configuration for a given block.
    pub fn paper_default(payload_seed: u64, unit_id: u64) -> BlockDecodeConfig {
        BlockDecodeConfig {
            geometry: StrandGeometry::paper_default(),
            unit: UnitConfig::paper_default(),
            payload_seed,
            unit_id,
            cluster: ClusterConfig::default(),
            filter_max_edit: 3,
            max_clusters: 0,
            max_alternates: 2,
            max_decode_attempts: 8192,
            index_tail_tolerance: Some(1),
            version_allowlist: None,
        }
    }

    /// Interior length between the elongated prefix and the reverse site:
    /// version + intra index + payload.
    pub fn interior_len(&self) -> usize {
        self.geometry.version_len + self.geometry.intra_index_len + self.geometry.payload_len
    }
}

/// One successfully decoded version of the block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredVersion {
    /// The decoded unit bytes (data columns; padding still attached).
    pub unit_bytes: Vec<u8>,
    /// RS symbols corrected across all rows.
    pub corrected_symbols: usize,
    /// Columns that had to be treated as erasures (no strand recovered).
    pub column_erasures: usize,
    /// Whether the §8.1 alternate-candidate search was needed.
    pub used_alternates: bool,
}

/// Outcome of [`decode_block`].
#[derive(Debug, Clone)]
pub struct BlockDecodeOutcome {
    /// Decoded versions keyed by their version base.
    pub versions: BTreeMap<Base, RecoveredVersion>,
    /// Version bases that were observed but failed to decode.
    pub failed_versions: Vec<Base>,
    /// Reads whose primer regions matched the target prefix.
    pub reads_matched: usize,
    /// Total clusters formed from matching reads.
    pub clusters_total: usize,
    /// Clusters reconstructed before every observed address was covered
    /// (§8: "we had to perform trace reconstruction on the first 31 largest
    /// clusters").
    pub clusters_used: usize,
}

/// Decodes one block (all versions present) from `reads`, accepting any
/// RS-valid result. See [`decode_block_validated`] for the §8.1-complete
/// variant with an integrity validator.
pub fn decode_block<B: Borrow<Read>>(
    reads: &[B],
    elongated_prefix: &DnaSeq,
    rev_primer: &DnaSeq,
    config: &BlockDecodeConfig,
) -> BlockDecodeOutcome {
    decode_block_validated(reads, elongated_prefix, rev_primer, config, |_| true)
}

/// Decodes one block (all versions present) from `reads`.
///
/// `elongated_prefix` is the strand prefix addressing the block: main
/// forward primer + sync base + full unit index (31 bases in the paper's
/// geometry). `rev_primer` is the partition's reverse primer (as a primer
/// sequence).
///
/// Implements §8: filter → cluster → double-sided BMA in descending
/// cluster-size order, discarding duplicate addresses → per-version RS
/// decode, falling back to alternate candidates when mispriming poisoned an
/// address (§8.1: "recursively try to decode the original data using each of
/// these candidates, until we correctly recover our data").
///
/// `validator` decides what "correctly recover" means: beyond the RS
/// capacity, a poisoned column can silently *miscorrect* to a valid-but-
/// wrong codeword, so callers should pass an integrity check over the unit
/// bytes (the block store stores a checksum in the unit's padding bytes).
pub fn decode_block_validated<B: Borrow<Read>>(
    reads: &[B],
    elongated_prefix: &DnaSeq,
    rev_primer: &DnaSeq,
    config: &BlockDecodeConfig,
    validator: impl Fn(&[u8]) -> bool,
) -> BlockDecodeOutcome {
    THREAD_SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut scratch) => decode_block_validated_with_scratch(
            reads,
            elongated_prefix,
            rev_primer,
            config,
            validator,
            &mut scratch,
        ),
        // Reentrant call (a validator decoding another block): fall back to
        // a throwaway scratch rather than double-borrowing.
        Err(_) => decode_block_validated_with_scratch(
            reads,
            elongated_prefix,
            rev_primer,
            config,
            validator,
            &mut DecodeScratch::new(),
        ),
    })
}

/// Reusable allocation arena for repeated block decodes: the extracted-
/// interior table, the clustering buffers, and the BMA walk/reverse buffers.
///
/// One scratch serves any sequence of decode calls (the parallel fan-out
/// keeps one per worker thread); every buffer is cleared on entry, so
/// [`decode_block_validated_with_scratch`] is byte-identical to
/// [`decode_block_validated`] for any scratch state. Reuse after the first
/// call is counted in [`dna_sim::WetlabStats::scratch_reuses`].
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    interiors: Vec<DnaSeq>,
    cluster: ClusterScratch,
    bma: BmaScratch,
    used: bool,
}

impl DecodeScratch {
    /// Creates an empty scratch.
    pub fn new() -> DecodeScratch {
        DecodeScratch::default()
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<DecodeScratch> = RefCell::new(DecodeScratch::new());
}

/// As [`decode_block_validated`], reusing `scratch` buffers across calls.
pub fn decode_block_validated_with_scratch<B: Borrow<Read>>(
    reads: &[B],
    elongated_prefix: &DnaSeq,
    rev_primer: &DnaSeq,
    config: &BlockDecodeConfig,
    validator: impl Fn(&[u8]) -> bool,
    scratch: &mut DecodeScratch,
) -> BlockDecodeOutcome {
    if scratch.used {
        dna_sim::stats::record_scratch_reuse(1);
    } else {
        scratch.used = true;
    }
    let filter = match config.index_tail_tolerance {
        Some(tol) => ReadFilter::with_tail_check(
            elongated_prefix.clone(),
            rev_primer,
            config.filter_max_edit,
            config.geometry.unit_index_len.min(elongated_prefix.len()),
            tol,
        ),
        None => ReadFilter::new(elongated_prefix.clone(), rev_primer, config.filter_max_edit),
    };
    let DecodeScratch {
        interiors,
        cluster: cluster_scratch,
        bma: bma_scratch,
        ..
    } = scratch;
    interiors.clear();
    interiors.extend(reads.iter().filter_map(|r| filter.extract(&r.borrow().seq)));
    let reads_matched = interiors.len();
    let clusters = cluster_reads_with_scratch(interiors, &config.cluster, cluster_scratch);
    let clusters_total = clusters.len();

    // Reconstruct strands, largest clusters first, keeping the first
    // candidate per (version, column) address plus bounded alternates,
    // each remembering its supporting cluster size.
    let interior_len = config.interior_len();
    let mut slots: BTreeMap<(Base, usize), Vec<(DnaSeq, usize)>> = BTreeMap::new();
    let mut clusters_used = 0usize;
    let cap = if config.max_clusters == 0 {
        clusters.len()
    } else {
        config.max_clusters.min(clusters.len())
    };
    let mut members: Vec<&DnaSeq> = Vec::new();
    for (ci, cluster) in clusters.iter().take(cap).enumerate() {
        members.clear();
        members.extend(cluster.members.iter().map(|&i| &interiors[i]));
        let Some(strand) = double_sided_bma_with(&members, interior_len, bma_scratch) else {
            continue;
        };
        let version = strand[0];
        let column = intra::decode(&strand.subseq(
            config.geometry.version_len
                ..config.geometry.version_len + config.geometry.intra_index_len,
        ));
        if column >= config.unit.total_cols {
            continue; // junk address
        }
        let payload = strand
            .subseq(config.geometry.version_len + config.geometry.intra_index_len..interior_len);
        let entry = slots.entry((version, column)).or_default();
        if entry.is_empty() {
            entry.push((payload, cluster.size()));
            clusters_used = ci + 1;
        } else if entry.len() <= config.max_alternates && !entry.iter().any(|(p, _)| *p == payload)
        {
            // §8 step 3: "We discard any reconstructed strand that has the
            // same address as a previously recovered strand" — but §8.1
            // keeps them as decode-time alternates.
            entry.push((payload, cluster.size()));
        }
    }

    // Group candidates by version and RS-decode each.
    let unit_codec = EncodingUnit::new(config.unit);
    let mut versions = BTreeMap::new();
    let mut failed = Vec::new();
    let observed: Vec<Base> = {
        let mut v: Vec<Base> = slots.keys().map(|&(b, _)| b).collect();
        v.sort();
        v.dedup();
        if let Some(allow) = &config.version_allowlist {
            v.retain(|b| allow.contains(b));
        }
        v
    };
    for version in observed {
        // Candidate byte-columns per column index. Slots supported by only
        // a thin cluster (≤ 2 reads) additionally offer an *erasure*
        // alternative: at low coverage a 1–2-read "reconstruction" is often
        // worse than letting the row code erase the column.
        let candidates: Vec<ColumnCandidates> = (0..config.unit.total_cols)
            .map(|col| {
                let cands = slots.get(&(version, col));
                let bytes: Vec<(Vec<u8>, usize)> = cands
                    .map(|list| {
                        list.iter()
                            .map(|(payload, size)| {
                                let decoded = PayloadCodec::for_column(
                                    config.payload_seed,
                                    config.unit_id,
                                    version.code(),
                                    col as u8,
                                )
                                .decode(payload);
                                (decoded, *size)
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                let thin = cands
                    .map(|list| list.iter().all(|&(_, size)| size <= 2))
                    .unwrap_or(true);
                ColumnCandidates {
                    bytes,
                    allow_erase: thin,
                }
            })
            .collect();
        let erasures = candidates.iter().filter(|c| c.bytes.is_empty()).count();
        let mut attempts = config.max_decode_attempts;
        match search_decode(&unit_codec, &candidates, &mut attempts, &validator) {
            Some((unit_bytes, corrected, used_alternates)) => {
                versions.insert(
                    version,
                    RecoveredVersion {
                        unit_bytes,
                        corrected_symbols: corrected,
                        column_erasures: erasures,
                        used_alternates,
                    },
                );
            }
            None => failed.push(version),
        }
    }

    dna_sim::stats::flush_to_global();
    BlockDecodeOutcome {
        versions,
        failed_versions: failed,
        reads_matched,
        clusters_total,
        clusters_used,
    }
}

/// Depth-first search over candidate columns (§8.1): try primary candidates
/// first, then swap in alternates, within an attempt budget.
/// Candidate payloads for one unit column, with an optional erasure escape.
struct ColumnCandidates {
    /// Decoded byte candidates with their supporting cluster sizes, in
    /// cluster-size order (primary first).
    bytes: Vec<(Vec<u8>, usize)>,
    /// Whether the DFS may also *drop* this column (treat as erasure).
    allow_erase: bool,
}

impl ColumnCandidates {
    /// Number of DFS choices for this column (at least 1: "missing").
    fn options(&self) -> usize {
        if self.bytes.is_empty() {
            1
        } else {
            self.bytes.len() + usize::from(self.allow_erase)
        }
    }
}

fn search_decode(
    unit: &EncodingUnit,
    candidates: &[ColumnCandidates],
    attempts: &mut usize,
    validator: &dyn Fn(&[u8]) -> bool,
) -> Option<(Vec<u8>, usize, bool)> {
    // Columns that actually have alternates, in order.
    let mut choice = vec![0usize; candidates.len()];
    // Try the all-primary assignment, then vary alternates column by column
    // (DFS over columns with >1 candidate). A choice index beyond the
    // candidate list means "erase this column".
    fn assemble(candidates: &[ColumnCandidates], choice: &[usize]) -> Vec<Option<Vec<u8>>> {
        candidates
            .iter()
            .zip(choice)
            .map(|(cands, &c)| cands.bytes.get(c).map(|(b, _)| b.clone()))
            .collect()
    }
    fn try_decode(
        unit: &EncodingUnit,
        columns: &[Option<Vec<u8>>],
        validator: &dyn Fn(&[u8]) -> bool,
    ) -> Option<(Vec<u8>, usize)> {
        match unit.decode(columns) {
            Ok((bytes, corrected)) if validator(&bytes) => Some((bytes, corrected)),
            _ => None,
        }
    }
    fn dfs(
        unit: &EncodingUnit,
        candidates: &[ColumnCandidates],
        choice: &mut Vec<usize>,
        col: usize,
        attempts: &mut usize,
        validator: &dyn Fn(&[u8]) -> bool,
    ) -> Option<(Vec<u8>, usize)> {
        if *attempts == 0 {
            return None;
        }
        if col == candidates.len() {
            *attempts -= 1;
            let columns = assemble(candidates, choice);
            return try_decode(unit, &columns, validator);
        }
        let options = candidates[col].options();
        for c in 0..options {
            choice[col] = c;
            if let Some(hit) = dfs(unit, candidates, choice, col + 1, attempts, validator) {
                return Some(hit);
            }
            if *attempts == 0 {
                return None;
            }
        }
        choice[col] = 0;
        None
    }
    // Fast path: all-primary.
    let primary = assemble(candidates, &choice);
    *attempts = attempts.saturating_sub(1);
    if let Some((bytes, corrected)) = try_decode(unit, &primary, validator) {
        return Some((bytes, corrected, false));
    }
    // §8.1 flood path: a misprimed foreign unit whose chimera products
    // carry this unit's full address can out-cluster the true strands on
    // MANY columns at once (the regime partial-prefix range PCR produces
    // when a foreign index collides). The per-column DFS below would need
    // ~2^cols attempts to flip every poisoned column, so two families of
    // cheap global hypotheses run first.
    //
    // (1) Uniform rank: "the true strand is the k-th biggest cluster
    // everywhere" — columns with shorter candidate lists clamp to their
    // deepest candidate, covering columns that only ever saw the truth.
    let max_rank = candidates.iter().map(|c| c.bytes.len()).max().unwrap_or(0);
    for k in 1..max_rank {
        if *attempts == 0 {
            return None;
        }
        *attempts -= 1;
        let columns: Vec<Option<Vec<u8>>> = candidates
            .iter()
            .map(|c| match c.bytes.len() {
                0 => None,
                len => c.bytes.get(k.min(len - 1)).map(|(b, _)| b.clone()),
            })
            .collect();
        if let Some((bytes, corrected)) = try_decode(unit, &columns, validator) {
            return Some((bytes, corrected, true));
        }
    }
    // (2) Abundance bands: one unit's strands were synthesized and
    // amplified together, so its clusters share a size band, and a chimera
    // impostor's clusters share a *different* band — but per column the
    // rank between the two bands is a coin flip, which defeats both the
    // rank passes and the DFS. For each observed cluster size, hypothesize
    // it as the true band's center and pick per column the candidate
    // closest to it.
    let mut band_centers: Vec<usize> = candidates
        .iter()
        .flat_map(|c| c.bytes.iter().map(|&(_, size)| size))
        .collect();
    band_centers.sort_unstable();
    band_centers.dedup();
    for center in band_centers {
        if *attempts == 0 {
            return None;
        }
        *attempts -= 1;
        let columns: Vec<Option<Vec<u8>>> = candidates
            .iter()
            .map(|c| {
                c.bytes
                    .iter()
                    .min_by_key(|&&(_, size)| size.abs_diff(center))
                    .map(|(b, _)| b.clone())
            })
            .collect();
        if let Some((bytes, corrected)) = try_decode(unit, &columns, validator) {
            return Some((bytes, corrected, true));
        }
    }
    // (3) Few-flips search, shallowest first: with p poisoned primaries
    // and RS able to correct 2 errors, flipping just p-2 columns suffices
    // — so explore flip sets of size 1, then 2, then 3, ... instead of
    // the lexicographic DFS order (which buries a col-2 flip behind the
    // full product of cols 3..n). Depth 1 tries every alternate and the
    // erasure; depth 2 the first alternate and the erasure; deeper levels
    // the first alternate only, so depth d costs just C(cols, d) attempts
    // and an equal-abundance impostor (a per-column coin flip between two
    // candidates) is still found within ~2^cols total.
    for depth in 1..=candidates.len() {
        if let Some(hit) = flip_search(unit, candidates, depth, attempts, validator) {
            return Some((hit.0, hit.1, true));
        }
        if *attempts == 0 {
            return None;
        }
    }
    dfs(unit, candidates, &mut choice, 0, attempts, validator).map(|(b, c)| (b, c, true))
}

/// Tries every assignment that flips exactly `depth` columns off their
/// primary candidate (see `search_decode` pass 3).
fn flip_search(
    unit: &EncodingUnit,
    candidates: &[ColumnCandidates],
    depth: usize,
    attempts: &mut usize,
    validator: &dyn Fn(&[u8]) -> bool,
) -> Option<(Vec<u8>, usize)> {
    // Columns that actually have an alternative to their primary.
    let flippable: Vec<usize> = (0..candidates.len())
        .filter(|&i| candidates[i].options() > 1)
        .collect();
    if flippable.len() < depth {
        return None;
    }
    let mut picked: Vec<usize> = Vec::with_capacity(depth);
    flip_combos(
        unit,
        candidates,
        &flippable,
        0,
        depth,
        &mut picked,
        attempts,
        validator,
    )
}

/// Recursively enumerates `depth`-column combinations and their flip
/// options.
#[allow(clippy::too_many_arguments)]
fn flip_combos(
    unit: &EncodingUnit,
    candidates: &[ColumnCandidates],
    flippable: &[usize],
    from: usize,
    depth: usize,
    picked: &mut Vec<usize>,
    attempts: &mut usize,
    validator: &dyn Fn(&[u8]) -> bool,
) -> Option<(Vec<u8>, usize)> {
    if picked.len() == depth {
        // Option sets per flipped column: all alternates at depth 1,
        // {first alternate, erasure} deeper.
        let mut choice = vec![0usize; candidates.len()];
        return flip_options(
            unit,
            candidates,
            picked,
            0,
            depth,
            &mut choice,
            attempts,
            validator,
        );
    }
    for (i, &col) in flippable.iter().enumerate().skip(from) {
        picked.push(col);
        let hit = flip_combos(
            unit,
            candidates,
            flippable,
            i + 1,
            depth,
            picked,
            attempts,
            validator,
        );
        picked.pop();
        if hit.is_some() || *attempts == 0 {
            return hit;
        }
    }
    None
}

/// Enumerates the option assignments for one picked flip set.
#[allow(clippy::too_many_arguments)]
fn flip_options(
    unit: &EncodingUnit,
    candidates: &[ColumnCandidates],
    picked: &[usize],
    pos: usize,
    depth: usize,
    choice: &mut Vec<usize>,
    attempts: &mut usize,
    validator: &dyn Fn(&[u8]) -> bool,
) -> Option<(Vec<u8>, usize)> {
    if pos == picked.len() {
        if *attempts == 0 {
            return None;
        }
        *attempts -= 1;
        let columns: Vec<Option<Vec<u8>>> = candidates
            .iter()
            .zip(choice.iter())
            .map(|(cands, &c)| cands.bytes.get(c).map(|(b, _)| b.clone()))
            .collect();
        return match unit.decode(&columns) {
            Ok((bytes, corrected)) if validator(&bytes) => Some((bytes, corrected)),
            _ => None,
        };
    }
    let col = picked[pos];
    let options: Vec<usize> = match depth {
        1 => (1..candidates[col].options()).collect(),
        2 => {
            // First alternate, plus an erasure when permitted.
            let mut v = Vec::with_capacity(2);
            if candidates[col].bytes.len() > 1 {
                v.push(1);
            }
            if candidates[col].allow_erase {
                v.push(candidates[col].bytes.len());
            }
            v
        }
        // Deeper flips: first alternate only (columns with no second
        // candidate fall back to the erasure, when permitted).
        _ => {
            if candidates[col].bytes.len() > 1 {
                vec![1]
            } else if candidates[col].allow_erase {
                vec![candidates[col].bytes.len()]
            } else {
                Vec::new()
            }
        }
    };
    for opt in options {
        choice[col] = opt;
        let hit = flip_options(
            unit,
            candidates,
            picked,
            pos + 1,
            depth,
            choice,
            attempts,
            validator,
        );
        if hit.is_some() || *attempts == 0 {
            choice[col] = 0;
            return hit;
        }
    }
    choice[col] = 0;
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_seq::rng::DetRng;
    use dna_sim::{IdsChannel, Sequencer, StrandTag};

    fn fwd() -> DnaSeq {
        "AACCGGTTAACCGGTTAACC".parse().unwrap()
    }

    fn rev() -> DnaSeq {
        "AAGGCCTTAAGGCCTTAAGG".parse().unwrap()
    }

    fn unit_index() -> DnaSeq {
        "ACAGTCTGAC".parse().unwrap()
    }

    fn elongated_prefix() -> DnaSeq {
        let mut p = fwd();
        p.push(Base::A); // sync
        p.extend(unit_index().iter());
        p
    }

    /// Encode one version of a block into its 15 strands, as the block
    /// store does.
    fn encode_version(data: &[u8; 264], version: Base, seed: u64, unit_id: u64) -> Vec<DnaSeq> {
        let geometry = StrandGeometry::paper_default();
        let unit = EncodingUnit::new(UnitConfig::paper_default());
        let columns = unit.encode(data).unwrap();
        columns
            .iter()
            .enumerate()
            .map(|(col, bytes)| {
                let codec = PayloadCodec::for_column(seed, unit_id, version.code(), col as u8);
                let payload = codec.encode(bytes);
                geometry
                    .assemble(
                        &fwd(),
                        &unit_index(),
                        version,
                        &intra::encode(col, 2).unwrap(),
                        &payload,
                        &rev(),
                    )
                    .unwrap()
            })
            .collect()
    }

    fn reads_for(
        strands: &[(DnaSeq, StrandTag)],
        coverage: usize,
        channel: IdsChannel,
        seed: u64,
    ) -> Vec<Read> {
        let mut pool = dna_sim::Pool::new();
        for (s, t) in strands {
            pool.add(s.clone(), 100.0, Some(*t));
        }
        let mut rng = DetRng::seed_from_u64(seed);
        Sequencer::new(channel).sequence(&pool, coverage * strands.len(), &mut rng)
    }

    fn sample_unit_bytes(tag: u8) -> [u8; 264] {
        let mut d = [0u8; 264];
        for (i, b) in d.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(31).wrapping_add(tag);
        }
        d
    }

    fn fnv64(data: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in data {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Unit bytes whose 8 padding bytes hold a hash of the 256 data bytes —
    /// the integrity check the §8.1 candidate search validates against.
    fn checksummed_unit_bytes(tag: u8) -> [u8; 264] {
        let mut d = sample_unit_bytes(tag);
        let h = fnv64(&d[..256]).to_le_bytes();
        d[256..].copy_from_slice(&h);
        d
    }

    fn checksum_ok(bytes: &[u8]) -> bool {
        bytes.len() == 264 && bytes[256..] == fnv64(&bytes[..256]).to_le_bytes()
    }

    #[test]
    fn clean_block_decodes_with_few_reads() {
        // §8: "With just 225 sequenced reads, we successfully decoded both
        // the original block and the updated block."
        let data = sample_unit_bytes(1);
        let update = sample_unit_bytes(2);
        let mut strands: Vec<(DnaSeq, StrandTag)> = encode_version(&data, Base::A, 7, 531)
            .into_iter()
            .map(|s| (s, StrandTag::new(13, 531, 0, 0)))
            .collect();
        strands.extend(
            encode_version(&update, Base::C, 7, 531)
                .into_iter()
                .map(|s| (s, StrandTag::new(13, 531, 1, 0))),
        );
        // 30 strands total; ~225 reads ≈ 7.5x coverage.
        let reads = reads_for(&strands, 8, IdsChannel::illumina(), 99);
        assert!(reads.len() <= 240);
        let cfg = BlockDecodeConfig::paper_default(7, 531);
        let out = decode_block(&reads, &elongated_prefix(), &rev(), &cfg);
        assert_eq!(out.versions.len(), 2, "failed: {:?}", out.failed_versions);
        assert_eq!(out.versions[&Base::A].unit_bytes, data.to_vec());
        assert_eq!(out.versions[&Base::C].unit_bytes, update.to_vec());
        assert!(
            out.clusters_used >= 30,
            "clusters used {}",
            out.clusters_used
        );
        assert!(!out.versions[&Base::A].used_alternates);
    }

    #[test]
    fn lost_columns_recovered_via_erasures() {
        let data = sample_unit_bytes(3);
        let all = encode_version(&data, Base::A, 11, 144);
        // Drop 3 of 15 strands entirely.
        let strands: Vec<(DnaSeq, StrandTag)> = all
            .into_iter()
            .enumerate()
            .filter(|(i, _)| ![2usize, 7, 12].contains(i))
            .map(|(i, s)| (s, StrandTag::new(13, 144, 0, i as u8)))
            .collect();
        let reads = reads_for(&strands, 10, IdsChannel::illumina(), 5);
        let cfg = BlockDecodeConfig::paper_default(11, 144);
        let out = decode_block(&reads, &elongated_prefix(), &rev(), &cfg);
        let v = &out.versions[&Base::A];
        assert_eq!(v.unit_bytes, data.to_vec());
        assert_eq!(v.column_erasures, 3);
    }

    #[test]
    fn misprimed_impostor_defeated_by_alternates() {
        // §8.1: a misprimed strand with the target's address but a foreign
        // payload can out-cluster the real strand. One poisoned column alone
        // is within RS capacity, so we also drop 4 real columns (erasures):
        // 2·errors + erasures = 6 > 4 makes the primary assignment
        // undecodable (or silently miscorrected — caught by the checksum
        // validator), forcing the candidate search to swap in the true
        // column-5 strand.
        let data = checksummed_unit_bytes(4);
        let mut strands: Vec<(DnaSeq, StrandTag)> = encode_version(&data, Base::A, 13, 531)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| ![1usize, 8, 11, 14].contains(i))
            .map(|(_, s)| (s, StrandTag::new(13, 531, 0, 0)))
            .collect();
        // Impostor: same prefix + address as column 5, random payload.
        let geometry = StrandGeometry::paper_default();
        let mut rng = DetRng::seed_from_u64(17);
        let junk_payload =
            DnaSeq::from_bases((0..96).map(|_| Base::from_code(rng.gen_range(4) as u8)));
        let impostor = geometry
            .assemble(
                &fwd(),
                &unit_index(),
                Base::A,
                &intra::encode(5, 2).unwrap(),
                &junk_payload,
                &rev(),
            )
            .unwrap();
        strands.push((impostor, StrandTag::new(13, 999, 0, 5)));
        // Give the impostor HIGHER abundance so its cluster is bigger.
        let mut pool = dna_sim::Pool::new();
        for (i, (s, t)) in strands.iter().enumerate() {
            let ab = if i == strands.len() - 1 { 300.0 } else { 100.0 };
            pool.add(s.clone(), ab, Some(*t));
        }
        let mut srng = DetRng::seed_from_u64(23);
        let reads = Sequencer::new(IdsChannel::illumina()).sequence(&pool, 600, &mut srng);
        let cfg = BlockDecodeConfig::paper_default(13, 531);
        let out = decode_block_validated(&reads, &elongated_prefix(), &rev(), &cfg, checksum_ok);
        let v = &out.versions[&Base::A];
        assert_eq!(v.unit_bytes, data.to_vec(), "impostor won");
        assert!(v.used_alternates, "should have needed the §8.1 search");
    }

    #[test]
    fn unrelated_reads_are_ignored() {
        let data = sample_unit_bytes(5);
        let strands: Vec<(DnaSeq, StrandTag)> = encode_version(&data, Base::A, 19, 531)
            .into_iter()
            .map(|s| (s, StrandTag::new(13, 531, 0, 0)))
            .collect();
        let mut reads = reads_for(&strands, 8, IdsChannel::illumina(), 3);
        // Add junk reads with a different unit index.
        let other_index: DnaSeq = "GTGACATCAG".parse().unwrap();
        let geometry = StrandGeometry::paper_default();
        let junk = geometry
            .assemble(
                &fwd(),
                &other_index,
                Base::A,
                &intra::encode(0, 2).unwrap(),
                &DnaSeq::from_bases((0..96).map(|i| Base::from_code((i % 4) as u8))),
                &rev(),
            )
            .unwrap();
        for _ in 0..100 {
            reads.push(Read {
                seq: junk.clone(),
                truth: None,
            });
        }
        let cfg = BlockDecodeConfig::paper_default(19, 531);
        let out = decode_block(&reads, &elongated_prefix(), &rev(), &cfg);
        assert_eq!(out.versions[&Base::A].unit_bytes, data.to_vec());
        // All junk reads excluded; nearly all true reads retained (the
        // fixed-window index check drops the few with indels near the
        // index).
        let true_reads = reads.len() - 100;
        assert!(out.reads_matched <= true_reads);
        assert!(
            out.reads_matched >= true_reads * 9 / 10,
            "matched {} of {true_reads}",
            out.reads_matched
        );
    }

    #[test]
    fn version_allowlist_skips_retired_versions() {
        // A tube holding a rebased base unit plus stale reads claiming a
        // retired version base: with the allowlist the stale version is
        // neither decoded nor reported failed; without it, it decodes.
        let data = sample_unit_bytes(7);
        let stale = sample_unit_bytes(8);
        let mut strands: Vec<(DnaSeq, StrandTag)> = encode_version(&data, Base::A, 29, 531)
            .into_iter()
            .map(|s| (s, StrandTag::new(13, 531, 0, 0)))
            .collect();
        strands.extend(
            encode_version(&stale, Base::C, 29, 531)
                .into_iter()
                .map(|s| (s, StrandTag::new(13, 531, 1, 0))),
        );
        let reads = reads_for(&strands, 8, IdsChannel::illumina(), 41);
        let mut cfg = BlockDecodeConfig::paper_default(29, 531);
        let open = decode_block(&reads, &elongated_prefix(), &rev(), &cfg);
        assert_eq!(open.versions.len(), 2, "both versions decode when open");
        cfg.version_allowlist = Some(vec![Base::A]);
        let restricted = decode_block(&reads, &elongated_prefix(), &rev(), &cfg);
        assert_eq!(restricted.versions.len(), 1);
        assert_eq!(restricted.versions[&Base::A].unit_bytes, data.to_vec());
        assert!(
            restricted.failed_versions.is_empty(),
            "skipped versions are not failures"
        );
        // Matching statistics are unchanged: the filter still counts the
        // stale reads, only the RS stage skips them.
        assert_eq!(restricted.reads_matched, open.reads_matched);
    }

    #[test]
    fn scratch_reuse_is_byte_identical_and_counted() {
        // The arena never changes results: decoding two different blocks
        // through one scratch (buffers sized by the first call, reused by
        // the second) matches fresh-scratch decodes field for field, and
        // the reuse is visible in the wetlab counters.
        let data_a = sample_unit_bytes(11);
        let data_b = sample_unit_bytes(12);
        let mut strands: Vec<(DnaSeq, StrandTag)> = encode_version(&data_a, Base::A, 31, 531)
            .into_iter()
            .map(|s| (s, StrandTag::new(13, 531, 0, 0)))
            .collect();
        strands.extend(
            encode_version(&data_b, Base::C, 31, 531)
                .into_iter()
                .map(|s| (s, StrandTag::new(13, 531, 1, 0))),
        );
        let reads = reads_for(&strands, 8, IdsChannel::illumina(), 77);
        let cfg = BlockDecodeConfig::paper_default(31, 531);

        let fresh_a = decode_block_validated_with_scratch(
            &reads,
            &elongated_prefix(),
            &rev(),
            &cfg,
            |_| true,
            &mut DecodeScratch::new(),
        );
        let fresh_b = {
            let mut cfg_b = cfg.clone();
            cfg_b.version_allowlist = Some(vec![Base::C]);
            decode_block_validated_with_scratch(
                &reads,
                &elongated_prefix(),
                &rev(),
                &cfg_b,
                |_| true,
                &mut DecodeScratch::new(),
            )
        };

        let before = dna_sim::stats::thread_totals();
        let mut scratch = DecodeScratch::new();
        let shared_a = decode_block_validated_with_scratch(
            &reads,
            &elongated_prefix(),
            &rev(),
            &cfg,
            |_| true,
            &mut scratch,
        );
        let mut cfg_b = cfg.clone();
        cfg_b.version_allowlist = Some(vec![Base::C]);
        let shared_b = decode_block_validated_with_scratch(
            &reads,
            &elongated_prefix(),
            &rev(),
            &cfg_b,
            |_| true,
            &mut scratch,
        );
        let delta = dna_sim::stats::thread_totals().delta_since(&before);

        assert_eq!(shared_a.versions, fresh_a.versions);
        assert_eq!(shared_a.reads_matched, fresh_a.reads_matched);
        assert_eq!(shared_a.clusters_total, fresh_a.clusters_total);
        assert_eq!(shared_a.clusters_used, fresh_a.clusters_used);
        assert_eq!(shared_b.versions, fresh_b.versions);
        assert_eq!(shared_b.reads_matched, fresh_b.reads_matched);
        // First call through `scratch` is a fresh use, second is the reuse.
        assert_eq!(delta.scratch_reuses, 1, "delta {delta:?}");
    }

    #[test]
    fn insufficient_reads_fail_cleanly() {
        let data = sample_unit_bytes(6);
        let strands: Vec<(DnaSeq, StrandTag)> = encode_version(&data, Base::A, 23, 531)
            .into_iter()
            .take(5) // only 5 of 15 columns present at all
            .map(|s| (s, StrandTag::new(13, 531, 0, 0)))
            .collect();
        let reads = reads_for(&strands, 6, IdsChannel::illumina(), 8);
        let cfg = BlockDecodeConfig::paper_default(23, 531);
        let out = decode_block(&reads, &elongated_prefix(), &rev(), &cfg);
        assert!(out.versions.is_empty());
        assert_eq!(out.failed_versions, vec![Base::A]);
    }
}
