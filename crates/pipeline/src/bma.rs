//! Trace reconstruction: Bitwise Majority Alignment, double-sided.
//!
//! BMA (Batu et al.) reconstructs a sequence from noisy traces with
//! insertions/deletions by walking per-trace pointers: at each output
//! position, take the majority symbol; traces that agree advance by one;
//! traces whose *next* symbol agrees advance by two (their current symbol
//! was an insertion); disagreeing traces hold (their symbol belongs later —
//! a deletion). Plain BMA accumulates alignment drift toward the tail, so
//! the paper uses the **double-sided** variant of Lin et al. (§6.6, §8 step
//! 3: "trace reconstruction using double sided BMA"): run BMA forward and
//! backward and keep each side's trustworthy half.

use dna_seq::{Base, DnaSeq};
use std::borrow::Borrow;

/// Reusable buffers for repeated BMA runs (the per-trace walk pointers and
/// the reversed-trace copies of the backward pass). One scratch serves any
/// number of calls; every buffer is sized/cleared on entry, so results are
/// identical to the allocating entry points.
#[derive(Debug, Clone, Default)]
pub struct BmaScratch {
    ptr: Vec<usize>,
    reversed: Vec<DnaSeq>,
}

impl BmaScratch {
    /// Creates an empty scratch.
    pub fn new() -> BmaScratch {
        BmaScratch::default()
    }
}

/// Forward Bitwise Majority Alignment to a known target length.
///
/// Returns `None` when `traces` is empty. Accepts anything that borrows as
/// [`DnaSeq`] (`&[DnaSeq]`, `&[&DnaSeq]`), so callers holding an index-based
/// clustering need not clone member sequences.
///
/// # Examples
///
/// ```
/// use dna_pipeline::bma;
/// use dna_seq::DnaSeq;
///
/// let t1: DnaSeq = "ACGTACGT".parse().unwrap();
/// let t2: DnaSeq = "ACTACGT".parse().unwrap();  // deletion
/// let t3: DnaSeq = "ACGGTACGT".parse().unwrap(); // insertion
/// assert_eq!(bma(&[t1.clone(), t2, t3], 8), Some(t1));
/// ```
pub fn bma<T: Borrow<DnaSeq>>(traces: &[T], target_len: usize) -> Option<DnaSeq> {
    bma_core(traces, target_len, &mut Vec::new())
}

/// As [`bma`], reusing `scratch` buffers across calls.
pub fn bma_with<T: Borrow<DnaSeq>>(
    traces: &[T],
    target_len: usize,
    scratch: &mut BmaScratch,
) -> Option<DnaSeq> {
    bma_core(traces, target_len, &mut scratch.ptr)
}

fn bma_core<T: Borrow<DnaSeq>>(
    traces: &[T],
    target_len: usize,
    ptr: &mut Vec<usize>,
) -> Option<DnaSeq> {
    if traces.is_empty() {
        return None;
    }
    ptr.clear();
    ptr.resize(traces.len(), 0);
    let mut out = DnaSeq::with_capacity(target_len);
    for _ in 0..target_len {
        let mut counts = [0usize; 4];
        for (t, &p) in traces.iter().zip(ptr.iter()) {
            if let Some(b) = t.borrow().get(p) {
                counts[b.code() as usize] += 1;
            }
        }
        // Deterministic argmax (ties → smallest code).
        let maj = (0..4)
            .max_by_key(|&c| (counts[c], 3 - c))
            .expect("non-empty");
        let maj_base = Base::from_code(maj as u8);
        out.push(maj_base);
        for (t, p) in traces.iter().zip(ptr.iter_mut()) {
            let t = t.borrow();
            match t.get(*p) {
                Some(b) if b == maj_base => *p += 1,
                // Insertion in this trace? Peek one ahead.
                Some(_) if t.get(*p + 1) == Some(maj_base) => *p += 2,
                // Deletion in this trace — hold position.
                Some(_) | None => {}
            }
        }
    }
    Some(out)
}

/// Double-sided BMA: forward pass supplies the first half, a backward pass
/// (BMA over reversed traces) supplies the second half.
///
/// Returns `None` when `traces` is empty.
pub fn double_sided_bma<T: Borrow<DnaSeq>>(traces: &[T], target_len: usize) -> Option<DnaSeq> {
    double_sided_bma_with(traces, target_len, &mut BmaScratch::new())
}

/// As [`double_sided_bma`], reusing `scratch` buffers (walk pointers and the
/// reversed-trace copies) across calls. Byte-identical to the allocating
/// entry point for any scratch state.
pub fn double_sided_bma_with<T: Borrow<DnaSeq>>(
    traces: &[T],
    target_len: usize,
    scratch: &mut BmaScratch,
) -> Option<DnaSeq> {
    let BmaScratch { ptr, reversed } = scratch;
    let fwd = bma_core(traces, target_len, ptr)?;
    reversed.truncate(traces.len());
    reversed.resize_with(traces.len(), DnaSeq::new);
    for (buf, t) in reversed.iter_mut().zip(traces) {
        buf.clear();
        for &b in t.borrow().as_slice().iter().rev() {
            buf.push(b);
        }
    }
    let bwd_rev = bma_core(&reversed[..], target_len, ptr)?;
    let bwd = DnaSeq::from_bases(bwd_rev.as_slice().iter().rev().copied());
    let mid = target_len / 2;
    let mut out = DnaSeq::with_capacity(target_len);
    out.extend_from_slice(&fwd.as_slice()[..mid]);
    out.extend_from_slice(&bwd.as_slice()[mid..]);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_seq::rng::DetRng;
    use dna_sim::IdsChannel;

    fn random_seq(len: usize, rng: &mut DetRng) -> DnaSeq {
        DnaSeq::from_bases((0..len).map(|_| Base::from_code(rng.gen_range(4) as u8)))
    }

    #[test]
    fn identical_traces_reproduce_input() {
        let mut rng = DetRng::seed_from_u64(1);
        let orig = random_seq(99, &mut rng);
        let traces = vec![orig.clone(); 5];
        assert_eq!(bma(&traces, 99), Some(orig.clone()));
        assert_eq!(double_sided_bma(&traces, 99), Some(orig));
    }

    #[test]
    fn empty_traces_return_none() {
        assert_eq!(bma::<DnaSeq>(&[], 10), None);
        assert_eq!(double_sided_bma::<DnaSeq>(&[], 10), None);
    }

    #[test]
    fn scratch_and_borrowed_traces_match_allocating_path() {
        let mut rng = DetRng::seed_from_u64(13);
        let ch = IdsChannel::nanopore();
        let mut scratch = BmaScratch::new();
        for trial in 0..50 {
            let orig = random_seq(99, &mut rng);
            let traces: Vec<DnaSeq> = (0..2 + trial % 6)
                .map(|_| ch.corrupt(&orig, &mut rng))
                .collect();
            let refs: Vec<&DnaSeq> = traces.iter().collect();
            let base = double_sided_bma(&traces, 99);
            // Borrowed traces, fresh scratch, and a scratch reused across
            // trials (with varying trace counts) must all agree.
            assert_eq!(double_sided_bma(&refs, 99), base);
            assert_eq!(double_sided_bma_with(&refs, 99, &mut scratch), base);
            assert_eq!(bma_with(&refs, 99, &mut scratch), bma(&traces, 99));
        }
    }

    #[test]
    fn substitutions_are_outvoted() {
        let orig: DnaSeq = "ACGTACGTACGTACGT".parse().unwrap();
        let mut bad: Vec<Base> = orig.iter().collect();
        bad[5] = Base::T;
        let traces = vec![orig.clone(), orig.clone(), DnaSeq::from_bases(bad)];
        assert_eq!(bma(&traces, 16), Some(orig));
    }

    #[test]
    fn illumina_noise_reconstructs_exactly_with_modest_coverage() {
        let mut rng = DetRng::seed_from_u64(7);
        let ch = IdsChannel::illumina();
        let mut exact = 0;
        let trials = 100;
        for _ in 0..trials {
            let orig = random_seq(99, &mut rng);
            let traces: Vec<DnaSeq> = (0..8).map(|_| ch.corrupt(&orig, &mut rng)).collect();
            if double_sided_bma(&traces, 99) == Some(orig) {
                exact += 1;
            }
        }
        assert!(exact >= 95, "only {exact}/{trials} exact at coverage 8");
    }

    #[test]
    fn double_sided_fixes_tail_drift() {
        // Forward BMA accumulates alignment drift toward the TAIL under
        // deletion-heavy noise with thin coverage; the double-sided variant
        // takes the tail from the backward pass, whose drift is at the head.
        let mut rng = DetRng::seed_from_u64(9);
        let ch = IdsChannel {
            sub_rate: 0.01,
            ins_rate: 0.01,
            del_rate: 0.04,
        };
        let trials = 200;
        let len = 99;
        let tail = 30;
        let (mut single_tail_errs, mut double_tail_errs) = (0usize, 0usize);
        for _ in 0..trials {
            let orig = random_seq(len, &mut rng);
            let traces: Vec<DnaSeq> = (0..4).map(|_| ch.corrupt(&orig, &mut rng)).collect();
            let s = bma(&traces, len).unwrap();
            let d = double_sided_bma(&traces, len).unwrap();
            single_tail_errs += dna_seq::distance::hamming(
                &s.as_slice()[len - tail..],
                &orig.as_slice()[len - tail..],
            );
            double_tail_errs += dna_seq::distance::hamming(
                &d.as_slice()[len - tail..],
                &orig.as_slice()[len - tail..],
            );
        }
        assert!(
            double_tail_errs * 2 <= single_tail_errs,
            "double-sided tail errors {double_tail_errs} should be ≤ half of single-sided {single_tail_errs}"
        );
    }

    #[test]
    fn output_length_is_always_target() {
        let mut rng = DetRng::seed_from_u64(11);
        let ch = IdsChannel::nanopore();
        let orig = random_seq(99, &mut rng);
        let traces: Vec<DnaSeq> = (0..6).map(|_| ch.corrupt(&orig, &mut rng)).collect();
        assert_eq!(bma(&traces, 99).unwrap().len(), 99);
        assert_eq!(double_sided_bma(&traces, 99).unwrap().len(), 99);
    }
}
