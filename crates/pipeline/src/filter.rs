//! Read filtering: locate primers, extract the interior (§8 step 1).

use dna_seq::distance::levenshtein_bounded;
use dna_seq::DnaSeq;

/// Extracts the interior of reads that carry the expected forward prefix and
/// reverse-primer site, tolerating IDS noise in the primer regions.
///
/// §8 step 1: "We first search for the elongated forward primer and reverse
/// primer of our target block in our reads and extract the substring between
/// them as the payloads."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadFilter {
    fwd: DnaSeq,
    rev_site: DnaSeq,
    max_edit: usize,
    /// Optional `(len, tolerance)` strict check on the prefix tail.
    tail_check: Option<(usize, usize)>,
}

impl ReadFilter {
    /// Creates a filter for reads beginning with `fwd` (a main or elongated
    /// primer, as synthesized on the strand) and ending with the reverse
    /// primer's site. `rev_primer` is given as the primer sequence; the
    /// filter matches its reverse complement at the read's 3' end.
    ///
    /// `max_edit` is the per-primer edit tolerance (2 is a good default for
    /// Illumina-grade noise over 20–31-base primers).
    pub fn new(fwd: DnaSeq, rev_primer: &DnaSeq, max_edit: usize) -> ReadFilter {
        ReadFilter {
            fwd,
            rev_site: rev_primer.reverse_complement(),
            max_edit,
            tail_check: None,
        }
    }

    /// As [`ReadFilter::new`], additionally requiring the last `tail_len`
    /// bases of the forward prefix (the block's sparse index) to match
    /// within `tail_tolerance` edits.
    ///
    /// Sibling blocks' indexes sit at Hamming distance 2 — within the
    /// overall prefix tolerance needed for sequencing noise — so address
    /// discrimination needs this stricter per-region check. Misprimed
    /// products are *not* rejected by it: PCR physically overwrote their
    /// prefix with the target index (§3.2), which is exactly why they reach
    /// the §8.1 candidate search instead of being filtered here.
    pub fn with_tail_check(
        fwd: DnaSeq,
        rev_primer: &DnaSeq,
        max_edit: usize,
        tail_len: usize,
        tail_tolerance: usize,
    ) -> ReadFilter {
        assert!(tail_len <= fwd.len(), "tail longer than prefix");
        ReadFilter {
            fwd,
            rev_site: rev_primer.reverse_complement(),
            max_edit,
            tail_check: Some((tail_len, tail_tolerance)),
        }
    }

    /// The forward prefix this filter expects.
    pub fn forward(&self) -> &DnaSeq {
        &self.fwd
    }

    /// Attempts to extract the interior of `read` (everything between the
    /// forward prefix and the reverse site). Returns `None` if either
    /// primer region is beyond the edit tolerance.
    pub fn extract(&self, read: &DnaSeq) -> Option<DnaSeq> {
        let start = self.match_prefix(read)?;
        if let Some((tail_len, tol)) = self.tail_check {
            if !self.tail_matches(read, start, tail_len, tol) {
                return None;
            }
        }
        let end = self.match_suffix(read)?;
        if start >= end {
            return None;
        }
        Some(read.subseq(start..end))
    }

    /// Checks that the exact `tail_len`-base region of the read ending at
    /// `prefix_end` matches the prefix's tail within `tol` edits.
    ///
    /// The window is deliberately *fixed*: allowing window slack would let a
    /// sibling index at Hamming distance 2 re-align its final bases as a
    /// single "deletion" and sneak under a tolerance of 1. The fixed window
    /// sacrifices a small fraction of true reads with indels near the index
    /// (they are merely dropped, not misassigned) in exchange for strict
    /// sibling discrimination.
    fn tail_matches(&self, read: &DnaSeq, prefix_end: usize, tail_len: usize, tol: usize) -> bool {
        if tail_len == 0 || tail_len > prefix_end {
            return false;
        }
        let expected = &self.fwd.as_slice()[self.fwd.len() - tail_len..];
        let window = &read.as_slice()[prefix_end - tail_len..prefix_end];
        levenshtein_bounded(expected, window, tol).is_some()
    }

    /// Best end-position of the forward prefix at the start of the read.
    fn match_prefix(&self, read: &DnaSeq) -> Option<usize> {
        let n = self.fwd.len();
        let mut best: Option<(usize, usize)> = None; // (dist, end)
        let lo = n.saturating_sub(self.max_edit);
        let hi = (n + self.max_edit).min(read.len());
        for w in lo..=hi {
            let window = &read.as_slice()[..w];
            if let Some(d) = levenshtein_bounded(self.fwd.as_slice(), window, self.max_edit) {
                // Prefer smaller distance; among ties prefer window length
                // closest to the primer length.
                let tie = w.abs_diff(n);
                match best {
                    Some((bd, bend)) if (bd, bend.abs_diff(n)) <= (d, tie) => {}
                    _ => best = Some((d, w)),
                }
            }
        }
        best.map(|(_, end)| end)
    }

    /// Best start-position of the reverse site at the end of the read.
    fn match_suffix(&self, read: &DnaSeq) -> Option<usize> {
        let n = self.rev_site.len();
        let mut best: Option<(usize, usize)> = None; // (dist, start)
        let lo = n.saturating_sub(self.max_edit);
        let hi = (n + self.max_edit).min(read.len());
        for w in lo..=hi {
            let window = &read.as_slice()[read.len() - w..];
            if let Some(d) = levenshtein_bounded(self.rev_site.as_slice(), window, self.max_edit) {
                let tie = w.abs_diff(n);
                match best {
                    Some((bd, bstart))
                        if {
                            let bw = read.len() - bstart;
                            (bd, bw.abs_diff(n)) <= (d, tie)
                        } => {}
                    _ => best = Some((d, read.len() - w)),
                }
            }
        }
        best.map(|(_, start)| start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_seq::rng::DetRng;
    use dna_seq::Base;
    use dna_sim::IdsChannel;

    fn fwd() -> DnaSeq {
        "AACCGGTTAACCGGTTAACC".parse().unwrap()
    }

    fn rev() -> DnaSeq {
        "AAGGCCTTAAGGCCTTAAGG".parse().unwrap()
    }

    fn interior() -> DnaSeq {
        DnaSeq::from_bases((0..60).map(|i| Base::from_code(((i * 3 + 1) % 4) as u8)))
    }

    fn read() -> DnaSeq {
        fwd()
            .concat(&interior())
            .concat(&rev().reverse_complement())
    }

    #[test]
    fn clean_read_extracts_exact_interior() {
        let f = ReadFilter::new(fwd(), &rev(), 2);
        assert_eq!(f.extract(&read()).unwrap(), interior());
    }

    #[test]
    fn noisy_primers_still_match() {
        let f = ReadFilter::new(fwd(), &rev(), 2);
        let mut rng = DetRng::seed_from_u64(5);
        let ch = IdsChannel::illumina();
        let mut extracted = 0;
        for _ in 0..200 {
            let noisy = ch.corrupt(&read(), &mut rng);
            if let Some(inner) = f.extract(&noisy) {
                extracted += 1;
                // interior should be close to the truth
                let d = dna_seq::distance::levenshtein(inner.as_slice(), interior().as_slice());
                assert!(d <= 4, "interior drifted by {d}");
            }
        }
        assert!(extracted >= 195, "only {extracted}/200 noisy reads matched");
    }

    #[test]
    fn wrong_prefix_rejected() {
        let f = ReadFilter::new(fwd(), &rev(), 2);
        let other = DnaSeq::from_bases((0..20).map(|i| Base::from_code(((i + 2) % 4) as u8)));
        let bad = other
            .concat(&interior())
            .concat(&rev().reverse_complement());
        assert_eq!(f.extract(&bad), None);
    }

    #[test]
    fn wrong_suffix_rejected() {
        let f = ReadFilter::new(fwd(), &rev(), 2);
        let bad = fwd().concat(&interior()).concat(&fwd()); // wrong tail
        assert_eq!(f.extract(&bad), None);
    }

    #[test]
    fn elongated_prefix_distinguishes_blocks() {
        // Filters with different 10-base extensions must not cross-match.
        let ext_a: DnaSeq = "ACAGTCTGAC".parse().unwrap();
        let ext_b: DnaSeq = "GTGACATCAG".parse().unwrap();
        let fa = ReadFilter::new(fwd().concat(&ext_a), &rev(), 2);
        let read_b = fwd()
            .concat(&ext_b)
            .concat(&interior())
            .concat(&rev().reverse_complement());
        assert_eq!(fa.extract(&read_b), None);
    }

    #[test]
    fn too_short_read_rejected() {
        let f = ReadFilter::new(fwd(), &rev(), 2);
        let stub = fwd();
        assert_eq!(f.extract(&stub), None);
        assert_eq!(f.extract(&DnaSeq::new()), None);
    }
}
