//! Property-based tests for the recovery pipeline.

use dna_pipeline::{bma, cluster_reads, double_sided_bma, ClusterConfig, ReadFilter};
use dna_seq::rng::DetRng;
use dna_seq::{Base, DnaSeq};
use dna_sim::IdsChannel;
use proptest::prelude::*;

fn random_seq(len: usize, rng: &mut DetRng) -> DnaSeq {
    DnaSeq::from_bases((0..len).map(|_| Base::from_code(rng.gen_range(4) as u8)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// BMA output always has the requested length, regardless of trace
    /// noise, and reproduces clean unanimous traces exactly.
    #[test]
    fn bma_length_and_identity(seed in any::<u64>(), len in 8usize..150, coverage in 1usize..12) {
        let mut rng = DetRng::seed_from_u64(seed);
        let orig = random_seq(len, &mut rng);
        let clean = vec![orig.clone(); coverage];
        prop_assert_eq!(bma(&clean, len), Some(orig.clone()));
        prop_assert_eq!(double_sided_bma(&clean, len), Some(orig.clone()));
        let ch = IdsChannel::nanopore();
        let noisy: Vec<DnaSeq> = (0..coverage).map(|_| ch.corrupt(&orig, &mut rng)).collect();
        prop_assert_eq!(bma(&noisy, len).unwrap().len(), len);
        prop_assert_eq!(double_sided_bma(&noisy, len).unwrap().len(), len);
    }

    /// Clustering always partitions the input: every read lands in exactly
    /// one cluster, and clusters are size-sorted.
    #[test]
    fn clustering_partitions_input(seed in any::<u64>(), n_orig in 1usize..8, copies in 1usize..8) {
        let mut rng = DetRng::seed_from_u64(seed);
        let ch = IdsChannel::illumina();
        let origs: Vec<DnaSeq> = (0..n_orig).map(|_| random_seq(80, &mut rng)).collect();
        let reads: Vec<DnaSeq> = origs
            .iter()
            .flat_map(|o| (0..copies).map(|_| ch.corrupt(o, &mut rng)).collect::<Vec<_>>())
            .collect();
        let clusters = cluster_reads(&reads, &ClusterConfig::default());
        let mut seen = vec![false; reads.len()];
        for c in &clusters {
            for &m in &c.members {
                prop_assert!(!seen[m], "read {m} in two clusters");
                seen[m] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        for w in clusters.windows(2) {
            prop_assert!(w[0].size() >= w[1].size());
        }
    }

    /// The read filter extracts exactly the interior for arbitrary clean
    /// strands and rejects strands with a different index tail.
    #[test]
    fn filter_extracts_interior(seed in any::<u64>(), interior_len in 20usize..120) {
        let mut rng = DetRng::seed_from_u64(seed);
        let fwd = random_seq(31, &mut rng);
        let rev = random_seq(20, &mut rng);
        let interior = random_seq(interior_len, &mut rng);
        let strand = fwd.concat(&interior).concat(&rev.reverse_complement());
        let f = ReadFilter::new(fwd.clone(), &rev, 2);
        prop_assert_eq!(f.extract(&strand), Some(interior.clone()));
        // A strand with a heavily different prefix must not match.
        let other = random_seq(31, &mut rng);
        prop_assume!(dna_seq::distance::levenshtein(fwd.as_slice(), other.as_slice()) > 4);
        let bad = other.concat(&interior).concat(&rev.reverse_complement());
        prop_assert_eq!(f.extract(&bad), None);
    }

    /// Reconstruction from k noisy traces of a known strand recovers the
    /// original when the IDS rates sit at or below the paper's operating
    /// point (the Illumina profile its wetlab used, §6.6). Reconstruction
    /// is stochastic at the margin, so each case aggregates independent
    /// trials and requires a 3/4 supermajority of exact recoveries — a
    /// regression here means the operating point itself moved.
    #[test]
    fn noisy_traces_reconstruct_below_operating_point(
        seed in any::<u64>(),
        k in 8usize..16,
        rate_frac in 0.0f64..1.0,
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let base = IdsChannel::illumina();
        let ch = IdsChannel {
            sub_rate: base.sub_rate * rate_frac,
            ins_rate: base.ins_rate * rate_frac,
            del_rate: base.del_rate * rate_frac,
        };
        let trials = 12;
        let mut exact = 0;
        for _ in 0..trials {
            let orig = random_seq(99, &mut rng);
            let traces: Vec<DnaSeq> = (0..k).map(|_| ch.corrupt(&orig, &mut rng)).collect();
            if double_sided_bma(&traces, 99) == Some(orig) {
                exact += 1;
            }
        }
        prop_assert!(
            exact * 4 >= trials * 3,
            "only {exact}/{trials} exact at k={k}, rate_frac={rate_frac:.2}"
        );
    }

    /// The full cluster-then-reconstruct path: noisy copies of several
    /// distinct strands are clustered and each well-covered cluster's BMA
    /// reconstruction equals one of the originals (no chimeras), with at
    /// most one original lost per case.
    #[test]
    fn clustered_reconstruction_recovers_originals(
        seed in any::<u64>(),
        n_orig in 2usize..6,
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let base = IdsChannel::illumina();
        let ch = IdsChannel {
            sub_rate: base.sub_rate * 0.5,
            ins_rate: base.ins_rate * 0.5,
            del_rate: base.del_rate * 0.5,
        };
        let origs: Vec<DnaSeq> = (0..n_orig).map(|_| random_seq(99, &mut rng)).collect();
        let coverage = 10;
        let reads: Vec<DnaSeq> = origs
            .iter()
            .flat_map(|o| (0..coverage).map(|_| ch.corrupt(o, &mut rng)).collect::<Vec<_>>())
            .collect();
        let clusters = cluster_reads(&reads, &ClusterConfig::default());
        let mut recovered = std::collections::HashSet::new();
        for c in &clusters {
            if c.size() < 5 {
                continue;
            }
            let members: Vec<DnaSeq> = c.members.iter().map(|&i| reads[i].clone()).collect();
            let Some(strand) = double_sided_bma(&members, 99) else { continue };
            // Every reconstruction from a real cluster must be one of the
            // originals — never a chimera of two.
            if let Some(pos) = origs.iter().position(|o| *o == strand) {
                recovered.insert(pos);
            }
        }
        prop_assert!(
            recovered.len() + 1 >= n_orig,
            "recovered only {}/{n_orig} originals",
            recovered.len()
        );
    }

    /// The tail-checked filter never accepts a strand whose final ten bases
    /// differ from the expected index by more than the tolerance (clean
    /// reads — the sibling-discrimination property).
    #[test]
    fn tail_check_rejects_distant_tails(seed in any::<u64>()) {
        let mut rng = DetRng::seed_from_u64(seed);
        let main = random_seq(21, &mut rng);
        let index = random_seq(10, &mut rng);
        let fwd = main.concat(&index);
        let rev = random_seq(20, &mut rng);
        let f = ReadFilter::with_tail_check(fwd.clone(), &rev, 3, 10, 1);
        // Build a "sibling": same main, index differing in 3 positions.
        let mut sib: Vec<Base> = index.iter().collect();
        for i in [2usize, 5, 8] {
            sib[i] = Base::from_code((sib[i].code() + 1) & 3);
        }
        let sibling_prefix = main.concat(&DnaSeq::from_bases(sib));
        let interior = random_seq(60, &mut rng);
        let good = fwd.concat(&interior).concat(&rev.reverse_complement());
        let bad = sibling_prefix.concat(&interior).concat(&rev.reverse_complement());
        prop_assert!(f.extract(&good).is_some());
        prop_assert!(f.extract(&bad).is_none());
    }
}
