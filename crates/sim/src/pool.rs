//! DNA pools: the in-silico test tube.

use crate::molecule::StrandTag;
use dna_seq::DnaSeq;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide epoch counter. Epoch 0 is reserved for empty pools; every
/// mutation stamps the pool with a fresh, never-reused value, so two pools
/// sharing an epoch are guaranteed content-identical (clones share the
/// epoch until one of them is mutated).
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

fn fresh_epoch() -> u64 {
    NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// One distinct sequence in a pool, with its copy count.
///
/// Copy counts are `f64` expected values: PCR dynamics evolve them
/// deterministically, and stochasticity enters only where it matters — the
/// sequencer samples integer reads from the abundance distribution. This
/// keeps simulations smooth, fast and exactly reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct Species {
    /// Expected number of physical copies in the tube.
    pub abundance: f64,
    /// Ground-truth tag (carried from the molecule that created the species).
    pub tag: Option<StrandTag>,
}

/// A test tube: a set of distinct sequences with abundances.
///
/// Backed by a `BTreeMap` so iteration order — and therefore every
/// simulation consuming it — is deterministic.
///
/// # Examples
///
/// ```
/// use dna_sim::Pool;
///
/// let mut pool = Pool::new();
/// pool.add("ACGT".parse().unwrap(), 100.0, None);
/// pool.add("ACGT".parse().unwrap(), 50.0, None); // merges
/// assert_eq!(pool.distinct(), 1);
/// assert_eq!(pool.total_copies(), 150.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Pool {
    species: BTreeMap<DnaSeq, Species>,
    /// Content-version stamp (see [`Pool::epoch`]). Not part of equality —
    /// two pools built along different mutation histories still compare
    /// equal if they hold the same species.
    epoch: u64,
}

impl PartialEq for Pool {
    fn eq(&self, other: &Pool) -> bool {
        self.species == other.species
    }
}

impl Pool {
    /// Creates an empty pool.
    pub fn new() -> Pool {
        Pool::default()
    }

    /// Adds `abundance` copies of `seq`. Merges with an existing species of
    /// the same sequence (keeping the existing tag).
    pub fn add(&mut self, seq: DnaSeq, abundance: f64, tag: Option<StrandTag>) {
        assert!(abundance >= 0.0, "abundance must be non-negative");
        self.species
            .entry(seq)
            .and_modify(|s| s.abundance += abundance)
            .or_insert(Species { abundance, tag });
        self.epoch = fresh_epoch();
    }

    /// Content-version stamp for cache invalidation. Epoch 0 means "empty,
    /// never mutated"; every mutating call (`add`, `mix_in`, `retire_where`,
    /// `extend`) stamps a fresh process-unique value, and constructors
    /// (`scaled`, `filtered`, `mixed_with`) return pools with fresh stamps.
    /// Clones keep the source's epoch until they are themselves mutated, so
    /// `a.epoch() == b.epoch()` implies `a == b` — safe to key derived data
    /// (cumulative weight tables, annealing candidate sets) on the epoch
    /// alone. The stamp is transient: it is not part of `PartialEq` and is
    /// never persisted.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Overwrites (or inserts) a species with an exact abundance and tag —
    /// the delta-application primitive for the PCR fast path, which
    /// computes final abundances out-of-pool and writes each changed
    /// species back once.
    pub(crate) fn set_species(&mut self, seq: DnaSeq, abundance: f64, tag: Option<StrandTag>) {
        debug_assert!(abundance >= 0.0, "abundance must be non-negative");
        self.species.insert(seq, Species { abundance, tag });
        self.epoch = fresh_epoch();
    }

    /// Number of distinct sequences.
    pub fn distinct(&self) -> usize {
        self.species.len()
    }

    /// `true` if the pool holds nothing.
    pub fn is_empty(&self) -> bool {
        self.species.is_empty()
    }

    /// Total copies across all species.
    pub fn total_copies(&self) -> f64 {
        self.species.values().map(|s| s.abundance).sum()
    }

    /// Mean copies per distinct species (the "per-oligo concentration" that
    /// the §6.4.2 mixing protocols equalize). Zero for an empty pool.
    pub fn mean_abundance(&self) -> f64 {
        if self.species.is_empty() {
            0.0
        } else {
            self.total_copies() / self.species.len() as f64
        }
    }

    /// Iterates over `(sequence, species)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&DnaSeq, &Species)> {
        self.species.iter()
    }

    /// Looks up a species by exact sequence.
    pub fn get(&self, seq: &DnaSeq) -> Option<&Species> {
        self.species.get(seq)
    }

    /// Returns a copy of this pool with all abundances multiplied by
    /// `factor` (dilution for `factor < 1`).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    pub fn scaled(&self, factor: f64) -> Pool {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        let mut out = self.clone();
        for s in out.species.values_mut() {
            s.abundance *= factor;
        }
        out.epoch = fresh_epoch();
        out
    }

    /// Mixes two pools (after independent dilutions) into a new tube.
    pub fn mixed_with(&self, other: &Pool, self_scale: f64, other_scale: f64) -> Pool {
        let mut out = self.scaled(self_scale);
        out.mix_in(other, 1.0, other_scale);
        out
    }

    /// Mixes `other` into this tube *in place* (after independent
    /// dilutions): the write-path primitive. Unlike
    /// [`Pool::mixed_with`], no copy of the existing species map is made —
    /// a synthesis batch of `k` designs lands in a tube of `n` species in
    /// `O(k log n)` instead of `O(n + k log n)`, which is what keeps
    /// sustained update traffic from re-cloning the archival tube on every
    /// write.
    ///
    /// # Panics
    ///
    /// Panics if either scale factor is negative.
    pub fn mix_in(&mut self, other: &Pool, self_scale: f64, other_scale: f64) {
        assert!(self_scale >= 0.0, "scale factor must be non-negative");
        assert!(other_scale >= 0.0, "scale factor must be non-negative");
        if self_scale != 1.0 {
            for s in self.species.values_mut() {
                s.abundance *= self_scale;
            }
        }
        for (seq, s) in other.iter() {
            self.add(seq.clone(), s.abundance * other_scale, s.tag);
        }
        self.epoch = fresh_epoch();
    }

    /// Removes species below `min_abundance` (wash/cleanup steps).
    pub fn filtered(&self, min_abundance: f64) -> Pool {
        Pool {
            species: self
                .species
                .iter()
                .filter(|(_, s)| s.abundance >= min_abundance)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            epoch: fresh_epoch(),
        }
    }

    /// Removes every species whose ground-truth tag satisfies `pred` —
    /// the degradation-style retirement hook used by compaction: stale
    /// version/overflow/log molecules are withdrawn from the archival tube
    /// (selective degradation of superseded strands, as in rewritable
    /// DNA-storage systems) before their re-synthesized replacements are
    /// mixed in. Untagged species are never retired (their provenance is
    /// unknown). Returns the number of distinct species removed.
    pub fn retire_where(&mut self, mut pred: impl FnMut(&StrandTag) -> bool) -> usize {
        let before = self.species.len();
        self.species
            .retain(|_, s| !s.tag.as_ref().is_some_and(&mut pred));
        self.epoch = fresh_epoch();
        before - self.species.len()
    }

    /// Sums abundance per block unit (tag-based ground truth): the Fig. 9
    /// histograms before sequencing.
    pub fn abundance_by_unit(&self) -> BTreeMap<u64, f64> {
        let mut out = BTreeMap::new();
        for (_, s) in self.iter() {
            if let Some(tag) = s.tag {
                *out.entry(tag.unit).or_insert(0.0) += s.abundance;
            }
        }
        out
    }
}

impl Extend<(DnaSeq, Species)> for Pool {
    fn extend<I: IntoIterator<Item = (DnaSeq, Species)>>(&mut self, iter: I) {
        for (seq, s) in iter {
            self.add(seq, s.abundance, s.tag);
        }
    }
}

impl FromIterator<(DnaSeq, Species)> for Pool {
    fn from_iter<I: IntoIterator<Item = (DnaSeq, Species)>>(iter: I) -> Pool {
        let mut pool = Pool::new();
        pool.extend(iter);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecule::StrandTag;

    fn seq(text: &str) -> DnaSeq {
        text.parse().unwrap()
    }

    #[test]
    fn add_merges_same_sequence() {
        let mut pool = Pool::new();
        pool.add(seq("AAAA"), 10.0, Some(StrandTag::new(1, 2, 0, 0)));
        pool.add(seq("AAAA"), 5.0, None);
        pool.add(seq("CCCC"), 1.0, None);
        assert_eq!(pool.distinct(), 2);
        assert_eq!(pool.get(&seq("AAAA")).unwrap().abundance, 15.0);
        // first tag wins on merge
        assert!(pool.get(&seq("AAAA")).unwrap().tag.is_some());
    }

    #[test]
    fn scaling_and_mixing() {
        let mut a = Pool::new();
        a.add(seq("AAAA"), 100.0, None);
        let mut b = Pool::new();
        b.add(seq("CCCC"), 1000.0, None);
        b.add(seq("AAAA"), 10.0, None);
        let mix = a.mixed_with(&b, 1.0, 0.1);
        assert_eq!(mix.total_copies(), 100.0 + 100.0 + 1.0);
        assert_eq!(mix.get(&seq("AAAA")).unwrap().abundance, 101.0);
        let diluted = mix.scaled(0.5);
        assert!((diluted.total_copies() - 100.5).abs() < 1e-9);
    }

    #[test]
    fn mean_abundance() {
        let mut pool = Pool::new();
        assert_eq!(pool.mean_abundance(), 0.0);
        pool.add(seq("AAAA"), 10.0, None);
        pool.add(seq("CCCC"), 30.0, None);
        assert_eq!(pool.mean_abundance(), 20.0);
    }

    #[test]
    fn filtering_removes_trace_species() {
        let mut pool = Pool::new();
        pool.add(seq("AAAA"), 100.0, None);
        pool.add(seq("CCCC"), 0.001, None);
        let clean = pool.filtered(1.0);
        assert_eq!(clean.distinct(), 1);
    }

    #[test]
    fn abundance_by_unit_aggregates_tags() {
        let mut pool = Pool::new();
        pool.add(seq("AAAA"), 10.0, Some(StrandTag::new(13, 531, 0, 0)));
        pool.add(seq("CCCC"), 20.0, Some(StrandTag::new(13, 531, 1, 0)));
        pool.add(seq("GGGG"), 5.0, Some(StrandTag::new(13, 144, 0, 0)));
        pool.add(seq("TTTT"), 1.0, None);
        let by_unit = pool.abundance_by_unit();
        assert_eq!(by_unit[&531], 30.0);
        assert_eq!(by_unit[&144], 5.0);
        assert_eq!(by_unit.len(), 2);
    }

    #[test]
    fn epoch_tracks_content_changes() {
        let empty = Pool::new();
        assert_eq!(empty.epoch(), 0);
        let mut pool = Pool::new();
        pool.add(seq("AAAA"), 10.0, None);
        let e1 = pool.epoch();
        assert_ne!(e1, 0);
        // Clones share the epoch (content-identical) until mutated.
        let mut clone = pool.clone();
        assert_eq!(clone.epoch(), e1);
        clone.add(seq("CCCC"), 1.0, None);
        assert_ne!(clone.epoch(), e1);
        assert_eq!(pool.epoch(), e1);
        // Equality ignores the epoch.
        let mut rebuilt = Pool::new();
        rebuilt.add(seq("AAAA"), 10.0, None);
        assert_ne!(rebuilt.epoch(), pool.epoch());
        assert_eq!(rebuilt, pool);
        // Derived pools get fresh stamps.
        assert_ne!(pool.scaled(1.0).epoch(), pool.epoch());
        assert_ne!(pool.filtered(0.0).epoch(), pool.epoch());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_abundance_panics() {
        Pool::new().add(seq("AAAA"), -1.0, None);
    }

    #[test]
    fn mix_in_matches_mixed_with() {
        let mut a = Pool::new();
        a.add(seq("AAAA"), 100.0, Some(StrandTag::new(1, 0, 0, 0)));
        a.add(seq("GGGG"), 40.0, None);
        let mut b = Pool::new();
        b.add(seq("CCCC"), 1000.0, None);
        b.add(seq("AAAA"), 10.0, None);
        let reference = a.mixed_with(&b, 0.5, 0.1);
        let mut in_place = a.clone();
        in_place.mix_in(&b, 0.5, 0.1);
        assert_eq!(in_place, reference);
        // Identity self-scale takes the no-rescale fast path.
        let reference = a.mixed_with(&b, 1.0, 2.0);
        a.mix_in(&b, 1.0, 2.0);
        assert_eq!(a, reference);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn mix_in_rejects_negative_scale() {
        Pool::new().mix_in(&Pool::new(), -1.0, 1.0);
    }

    #[test]
    fn retire_where_removes_matching_tagged_species_only() {
        let mut pool = Pool::new();
        pool.add(seq("AAAA"), 10.0, Some(StrandTag::new(3, 531, 1, 0)));
        pool.add(seq("CCCC"), 20.0, Some(StrandTag::new(3, 531, 0, 0)));
        pool.add(seq("GGGG"), 5.0, Some(StrandTag::new(4, 531, 1, 0)));
        pool.add(seq("TTTT"), 1.0, None);
        // Retire partition 3's stale version-1 molecules.
        let removed = pool.retire_where(|t| t.partition == 3 && t.version > 0);
        assert_eq!(removed, 1);
        assert!(pool.get(&seq("AAAA")).is_none());
        // Same unit, version 0: untouched. Other partition: untouched.
        assert!(pool.get(&seq("CCCC")).is_some());
        assert!(pool.get(&seq("GGGG")).is_some());
        // Untagged species survive any predicate.
        let removed = pool.retire_where(|_| true);
        assert_eq!(removed, 2);
        assert_eq!(pool.distinct(), 1);
        assert!(pool.get(&seq("TTTT")).is_some());
    }
}
