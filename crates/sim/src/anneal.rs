//! The primer↔template annealing model.
//!
//! This is the calibrated heart of the PCR simulator. A primer binds a
//! template site with probability that falls with (a) the *edit distance*
//! between primer and site — §8.1 found misprimed strands "2 or 3 edit
//! distance apart", so we align with indels, not just Hamming — and (b) the
//! gap between the annealing temperature and the duplex's effective melting
//! temperature. Touchdown PCR (§6.5) starts hot, where only perfect duplexes
//! are stable, and walks down 1 °C per cycle, which suppresses *early*
//! mispriming events (the ones that would be amplified most).

use dna_seq::distance::levenshtein_bounded;
use dna_seq::tm::melting_temperature;
use dna_seq::DnaSeq;

/// Annealing/binding probability model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealModel {
    /// Binding probability of a perfect duplex at permissive temperature
    /// (per cycle). Real PCR efficiencies run 0.85–0.97.
    pub max_efficiency: f64,
    /// Multiplicative penalty per unit of edit distance, at the reference
    /// annealing temperature [`AnnealModel::reference_temp`].
    pub edit_penalty: f64,
    /// Effective melting-temperature drop (°C) per unit edit distance.
    pub tm_drop_per_edit: f64,
    /// Width (°C) of the melting sigmoid.
    pub melt_width: f64,
    /// Duplex stabilization (°C) added to the naive Marmur–Doty estimate:
    /// PCR buffers (salt, polymerase clamping) raise the working Tm, which
    /// is why 20-mers with nominal Tm ≈ 52 °C anneal fine at 55 °C.
    pub tm_salt_offset: f64,
    /// Reference annealing temperature at which `edit_penalty` applies
    /// as-is. Above it, mismatches are penalized harder (stringency);
    /// the exponent grows by 1 per `stringency_scale` °C.
    pub reference_temp: f64,
    /// °C above the reference per extra unit of penalty exponent.
    pub stringency_scale: f64,
    /// Maximum edit distance considered at all (binding beyond is ~0).
    pub max_edit: usize,
    /// Length of the 3'-terminal window whose mismatches block polymerase
    /// extension (textbook PCR: terminal mismatches are far more
    /// destructive than internal ones).
    pub three_prime_window: usize,
    /// Multiplicative penalty per mismatch inside the 3' window.
    pub three_prime_penalty: f64,
}

/// The geometry of one primer↔site binding: total edit distance plus the
/// mismatches falling in the primer's 3'-terminal window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BindingSite {
    /// Edit distance between primer and the best-aligned site window.
    pub dist: usize,
    /// Edit distance within the primer's 3'-terminal window.
    pub three_prime_dist: usize,
}

impl Default for AnnealModel {
    fn default() -> Self {
        AnnealModel::calibrated()
    }
}

impl AnnealModel {
    /// The calibration used for all paper-reproduction experiments. Chosen
    /// so that the Fig. 9b read composition (≈59% target vs ≈41% misprimed
    /// neighbours at edit distance 2–3 after touchdown 65→55 + 18 cycles)
    /// emerges from the dynamics.
    pub fn calibrated() -> AnnealModel {
        AnnealModel {
            max_efficiency: 0.95,
            edit_penalty: 0.45,
            tm_drop_per_edit: 1.8,
            melt_width: 2.5,
            tm_salt_offset: 8.0,
            reference_temp: 55.0,
            stringency_scale: 5.0,
            max_edit: 4,
            three_prime_window: 5,
            three_prime_penalty: 0.15,
        }
    }

    /// Edit distance between `primer` and the best-aligned window at the
    /// start of `site` (window lengths `primer.len() ± max_edit`), or `None`
    /// if it exceeds [`AnnealModel::max_edit`].
    pub fn binding_distance(&self, primer: &DnaSeq, site: &DnaSeq) -> Option<usize> {
        self.binding_site(primer, site).map(|b| b.dist)
    }

    /// Full binding geometry: best window's edit distance and its
    /// 3'-terminal mismatch count, or `None` when the primer cannot bind.
    pub fn binding_site(&self, primer: &DnaSeq, site: &DnaSeq) -> Option<BindingSite> {
        if primer.is_empty() {
            return None;
        }
        let mut best: Option<BindingSite> = None;
        let lo = primer.len().saturating_sub(self.max_edit);
        let hi = (primer.len() + self.max_edit).min(site.len());
        if lo > site.len() {
            return None;
        }
        let k = self.three_prime_window.min(primer.len());
        let tail = &primer.as_slice()[primer.len() - k..];
        for w in lo..=hi {
            let window = &site.as_slice()[..w];
            let Some(d) = levenshtein_bounded(primer.as_slice(), window, self.max_edit) else {
                continue;
            };
            let site_tail = &window[w.saturating_sub(k)..];
            let d3 = levenshtein_bounded(tail, site_tail, k).unwrap_or(k);
            let candidate = BindingSite {
                dist: d,
                three_prime_dist: d3,
            };
            let better = match best {
                None => true,
                Some(b) => {
                    (candidate.dist, candidate.three_prime_dist) < (b.dist, b.three_prime_dist)
                }
            };
            if better {
                best = Some(candidate);
            }
            if matches!(best, Some(b) if b.dist == 0 && b.three_prime_dist == 0) {
                break;
            }
        }
        best
    }

    /// Per-cycle binding probability of `primer` at a given binding
    /// geometry and annealing temperature (°C).
    pub fn binding_probability(&self, primer: &DnaSeq, site: BindingSite, temp: f64) -> f64 {
        if site.dist > self.max_edit {
            return 0.0;
        }
        let tm = melting_temperature(primer) + self.tm_salt_offset
            - self.tm_drop_per_edit * site.dist as f64;
        // Melting sigmoid: ≈1 well below Tm, ≈0 well above.
        let melt = 1.0 / (1.0 + ((temp - tm) / self.melt_width).exp());
        // Mismatch penalty with temperature-dependent stringency.
        let exponent = site.dist as f64
            * (1.0 + ((temp - self.reference_temp).max(0.0) / self.stringency_scale));
        let penalty = self.edit_penalty.powf(exponent);
        // 3'-terminal mismatches block extension regardless of temperature.
        let blocking = self.three_prime_penalty.powi(site.three_prime_dist as i32);
        self.max_efficiency * melt * penalty * blocking
    }

    /// Convenience: probability of a perfectly matched duplex (distance 0).
    pub fn perfect_probability(&self, primer: &DnaSeq, temp: f64) -> f64 {
        self.binding_probability(
            primer,
            BindingSite {
                dist: 0,
                three_prime_dist: 0,
            },
            temp,
        )
    }

    /// Convenience: geometry + probability against a template's 5' start.
    pub fn site_probability(&self, primer: &DnaSeq, template: &DnaSeq, temp: f64) -> f64 {
        match self.binding_site(primer, template) {
            Some(site) => self.binding_probability(primer, site, temp),
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_seq::Base;

    fn balanced(n: usize) -> DnaSeq {
        DnaSeq::from_bases((0..n).map(|i| Base::from_code((i % 4) as u8)))
    }

    fn site(d: usize, d3: usize) -> BindingSite {
        BindingSite {
            dist: d,
            three_prime_dist: d3,
        }
    }

    #[test]
    fn perfect_match_binds_efficiently_below_tm() {
        let m = AnnealModel::calibrated();
        let primer = balanced(31); // Tm ≈ 63-64
        let p = m.binding_probability(&primer, site(0, 0), 55.0);
        assert!(p > 0.9, "perfect 31-mer at 55C should bind ≈max: {p}");
    }

    #[test]
    fn binding_collapses_well_above_tm() {
        let m = AnnealModel::calibrated();
        let primer = balanced(31); // nominal Tm ≈ 63.7, salt-corrected ≈ 71.7
        let hot = m.binding_probability(&primer, site(0, 0), 78.0);
        assert!(hot < 0.1, "binding at 78C should collapse: {hot}");
        // A 20-mer must still bind usefully at the 55C annealing step.
        let short = balanced(20);
        let p = m.binding_probability(&short, site(0, 0), 55.0);
        assert!(p > 0.4, "20-mer at 55C should bind: {p}");
    }

    #[test]
    fn mismatches_penalized_and_ordered() {
        let m = AnnealModel::calibrated();
        let primer = balanced(31);
        let p0 = m.binding_probability(&primer, site(0, 0), 55.0);
        let p1 = m.binding_probability(&primer, site(1, 0), 55.0);
        let p2 = m.binding_probability(&primer, site(2, 0), 55.0);
        let p3 = m.binding_probability(&primer, site(3, 0), 55.0);
        assert!(p0 > p1 && p1 > p2 && p2 > p3);
        assert!(p2 / p0 < 0.25, "2-edit binding should be ≤25% of perfect");
        assert_eq!(m.binding_probability(&primer, site(5, 0), 55.0), 0.0);
        // 3'-terminal mismatches are far more destructive than internal.
        let p2_terminal = m.binding_probability(&primer, site(2, 2), 55.0);
        assert!(
            p2_terminal < p2 / 10.0,
            "3' mismatches should block extension"
        );
    }

    #[test]
    fn touchdown_suppresses_mismatches_harder_than_target() {
        // At 65C (touchdown start) the ratio p2/p0 must be much smaller than
        // at 55C — that is the entire point of touchdown PCR (§6.5).
        let m = AnnealModel::calibrated();
        let primer = balanced(31);
        let r55 = m.binding_probability(&primer, site(2, 0), 55.0)
            / m.binding_probability(&primer, site(0, 0), 55.0);
        let r62 = m.binding_probability(&primer, site(2, 0), 62.0)
            / m.binding_probability(&primer, site(0, 0), 62.0);
        assert!(
            r62 < r55 / 3.0,
            "stringency at 62C ({r62:.5}) should beat 55C ({r55:.5}) by ≥3x"
        );
    }

    #[test]
    fn binding_distance_aligns_with_indels() {
        let m = AnnealModel::calibrated();
        let primer: DnaSeq = "ACGTACGTAC".parse().unwrap();
        // Template with one base deleted from the primer region.
        let template: DnaSeq = "ACGTCGTACGGGTTTAAACCC".parse().unwrap();
        let d = m.binding_distance(&primer, &template).unwrap();
        assert_eq!(d, 1, "single deletion should align at distance 1");
        // Perfect site.
        let perfect: DnaSeq = "ACGTACGTACGGGTTTAAA".parse().unwrap();
        assert_eq!(m.binding_distance(&primer, &perfect), Some(0));
        // Unrelated site.
        let junk: DnaSeq = "TTTTTTTTTTTTTTTTTTTT".parse().unwrap();
        assert_eq!(m.binding_distance(&primer, &junk), None);
    }

    #[test]
    fn short_template_counts_overhang() {
        let m = AnnealModel::calibrated();
        let primer = balanced(10);
        let short = balanced(7);
        // primer vs 7-base template: 3 missing bases = distance 3
        assert_eq!(m.binding_distance(&primer, &short), Some(3));
    }
}
