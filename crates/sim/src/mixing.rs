//! Physical mixing of data and update pools (§5.5, §6.4.2).
//!
//! The update pool may arrive 50000× more concentrated than the data pool
//! (different vendor, §6.4.1). If mixed naively, sequencing output would be
//! dominated by whichever pool is denser, multiplying sequencing cost (§5.5:
//! a 10× mismatch wastes ~90% of the output). Both paper protocols dilute to
//! matched *per-oligo* concentrations before combining:
//!
//! - **Measure-then-Amplify**: measure both raw pools, dilute the update
//!   pool, mix, then amplify the mixture with the main partition primers;
//! - **Amplify-then-Measure**: amplify each pool separately (when the
//!   original synthesis pools are no longer available), clean up, measure,
//!   then mix "in concentrations proportionate to the number of unique
//!   oligos in each pool".

use crate::nanodrop::Nanodrop;
use crate::pcr::{PcrOutcome, PcrPrimer, PcrProtocol, PcrReaction};
use crate::pool::Pool;
use dna_seq::rng::DetRng;
use dna_seq::DnaSeq;

/// Outcome of a mixing protocol.
#[derive(Debug, Clone)]
pub struct MixOutcome {
    /// The combined pool.
    pub pool: Pool,
    /// Dilution factor applied to the data pool.
    pub data_dilution: f64,
    /// Dilution factor applied to the update pool.
    pub update_dilution: f64,
}

/// Pipetting transfer-volume noise (relative sigma) applied when combining
/// pools; even perfect measurement leaves this.
const PIPETTING_SIGMA: f64 = 0.02;

/// Measure-then-Amplify (§6.4.2): equalize per-oligo concentrations of the
/// *unamplified* pools, combine, then amplify the mixture with the main
/// partition primers (15 cycles).
///
/// `data_designs` / `update_designs` are the known distinct-oligo counts of
/// each pool (the operator ordered them, so they are known exactly).
#[allow(clippy::too_many_arguments)]
pub fn measure_then_amplify(
    data: &Pool,
    update: &Pool,
    data_designs: usize,
    update_designs: usize,
    fwd: &DnaSeq,
    rev: &DnaSeq,
    nanodrop: &Nanodrop,
    rng: &mut DetRng,
) -> MixOutcome {
    let data_per_oligo = nanodrop.measure_per_oligo(data, data_designs, rng);
    let update_per_oligo = nanodrop.measure_per_oligo(update, update_designs, rng);
    // Dilute the denser pool down to the thinner one's per-oligo level.
    let (data_dilution, update_dilution) = dilutions(data_per_oligo, update_per_oligo);
    let mixed = data.mixed_with(
        update,
        data_dilution * rng.lognormal(0.0, PIPETTING_SIGMA),
        update_dilution * rng.lognormal(0.0, PIPETTING_SIGMA),
    );
    let outcome = amplify_with_main_primers(&mixed, fwd, rev);
    MixOutcome {
        pool: outcome.pool,
        data_dilution,
        update_dilution,
    }
}

/// Amplify-then-Measure (§6.4.2): amplify each pool separately with the main
/// primers (simulating the case where the original synthesis pools are
/// unavailable), then measure and mix at matched per-oligo concentrations.
#[allow(clippy::too_many_arguments)]
pub fn amplify_then_measure(
    data: &Pool,
    update: &Pool,
    data_designs: usize,
    update_designs: usize,
    fwd: &DnaSeq,
    rev: &DnaSeq,
    nanodrop: &Nanodrop,
    rng: &mut DetRng,
) -> MixOutcome {
    let data_amp = amplify_with_main_primers(data, fwd, rev).pool;
    let update_amp = amplify_with_main_primers(update, fwd, rev).pool;
    let data_per_oligo = nanodrop.measure_per_oligo(&data_amp, data_designs, rng);
    let update_per_oligo = nanodrop.measure_per_oligo(&update_amp, update_designs, rng);
    let (data_dilution, update_dilution) = dilutions(data_per_oligo, update_per_oligo);
    let pool = data_amp.mixed_with(
        &update_amp,
        data_dilution * rng.lognormal(0.0, PIPETTING_SIGMA),
        update_dilution * rng.lognormal(0.0, PIPETTING_SIGMA),
    );
    MixOutcome {
        pool,
        data_dilution,
        update_dilution,
    }
}

/// Dilution factors that bring both pools to the smaller per-oligo level.
fn dilutions(data_per_oligo: f64, update_per_oligo: f64) -> (f64, f64) {
    assert!(data_per_oligo > 0.0 && update_per_oligo > 0.0);
    if update_per_oligo >= data_per_oligo {
        (1.0, data_per_oligo / update_per_oligo)
    } else {
        (update_per_oligo / data_per_oligo, 1.0)
    }
}

/// 15-cycle amplification with the main partition primers (§6.4.2), primer
/// budget sized for healthy exponential growth without immediate plateau.
fn amplify_with_main_primers(pool: &Pool, fwd: &DnaSeq, rev: &DnaSeq) -> PcrOutcome {
    let budget = pool.total_copies() * 2000.0;
    let rxn = PcrReaction {
        forward_primers: vec![PcrPrimer::with_budget(fwd.clone(), budget)],
        reverse_primer: PcrPrimer::with_budget(rev.clone(), budget),
        protocol: PcrProtocol::paper_amplification(),
    };
    rxn.run(pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecule::StrandTag;
    use dna_seq::Base;

    fn fwd() -> DnaSeq {
        "AACCGGTTAACCGGTTAACC".parse().unwrap()
    }

    fn rev() -> DnaSeq {
        "AAGGCCTTAAGGCCTTAAGG".parse().unwrap()
    }

    fn payload(phase: usize) -> DnaSeq {
        // Encode the phase in the leading bases so payloads never collide.
        let mut s = DnaSeq::new();
        for j in 0..10 {
            s.push(Base::from_code(((phase >> (2 * j)) & 3) as u8));
        }
        s.extend((0..50).map(|i| Base::from_code((i % 4) as u8)));
        s
    }

    fn strand(phase: usize) -> DnaSeq {
        fwd()
            .concat(&payload(phase))
            .concat(&rev().reverse_complement())
    }

    /// Data pool: 10 oligos at ~1e6 copies. Update pool: 2 oligos at ~5e10
    /// (the 50000× gap of §6.4.1).
    fn pools() -> (Pool, Pool) {
        let mut data = Pool::new();
        for i in 0..10 {
            data.add(strand(i), 1.0e6, Some(StrandTag::new(0, i as u64, 0, 0)));
        }
        let mut update = Pool::new();
        for i in 0..2 {
            update.add(
                strand(100 + i),
                5.0e10,
                Some(StrandTag::new(0, i as u64, 1, 0)),
            );
        }
        (data, update)
    }

    fn balance_of(pool: &Pool) -> f64 {
        // mean update-oligo abundance / mean data-oligo abundance
        let (mut du, mut nu, mut dd, mut nd) = (0.0, 0, 0.0, 0);
        for (_, s) in pool.iter() {
            match s.tag {
                Some(t) if t.version > 0 => {
                    du += s.abundance;
                    nu += 1;
                }
                Some(_) => {
                    dd += s.abundance;
                    nd += 1;
                }
                None => {}
            }
        }
        (du / nu as f64) / (dd / nd as f64)
    }

    #[test]
    fn measure_then_amplify_balances_50000x_gap() {
        let (data, update) = pools();
        let mut rng = DetRng::seed_from_u64(42);
        let out = measure_then_amplify(
            &data,
            &update,
            10,
            2,
            &fwd(),
            &rev(),
            &Nanodrop::benchtop(),
            &mut rng,
        );
        let balance = balance_of(&out.pool);
        assert!(
            (0.5..2.0).contains(&balance),
            "per-oligo balance {balance} should be ~1 after mixing"
        );
        assert!(
            out.update_dilution < 1.0e-4,
            "update must be heavily diluted"
        );
        assert_eq!(out.data_dilution, 1.0);
    }

    #[test]
    fn amplify_then_measure_balances_too() {
        let (data, update) = pools();
        let mut rng = DetRng::seed_from_u64(43);
        let out = amplify_then_measure(
            &data,
            &update,
            10,
            2,
            &fwd(),
            &rev(),
            &Nanodrop::benchtop(),
            &mut rng,
        );
        let balance = balance_of(&out.pool);
        assert!(
            (0.5..2.0).contains(&balance),
            "per-oligo balance {balance} should be ~1 after mixing"
        );
    }

    #[test]
    fn naive_mixing_is_catastrophically_skewed() {
        // The §5.5 failure mode the protocols exist to prevent.
        let (data, update) = pools();
        let naive = data.mixed_with(&update, 1.0, 1.0);
        let balance = balance_of(&naive);
        assert!(balance > 10_000.0, "naive balance {balance}");
    }

    #[test]
    fn dilution_math() {
        assert_eq!(dilutions(10.0, 10.0), (1.0, 1.0));
        let (d, u) = dilutions(1.0, 50_000.0);
        assert_eq!(d, 1.0);
        assert!((u - 2.0e-5).abs() < 1e-12);
        let (d, u) = dilutions(100.0, 10.0);
        assert_eq!(u, 1.0);
        assert!((d - 0.1).abs() < 1e-12);
    }
}
