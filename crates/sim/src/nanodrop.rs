//! Concentration measurement (nanodrop spectrophotometry).

use crate::pool::Pool;
use dna_seq::rng::DetRng;

/// A concentration-measurement instrument with multiplicative noise.
///
/// §6.4.2 measures pool concentrations via nanodrop before mixing; §6.4.2
/// also notes "more precise concentration measurements" as an upgrade path,
/// so the noise level is a parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nanodrop {
    /// Relative standard deviation of a measurement (e.g. `0.02` = 2%).
    pub relative_error: f64,
}

impl Nanodrop {
    /// A typical benchtop instrument: ~3% relative error.
    pub fn benchtop() -> Nanodrop {
        Nanodrop {
            relative_error: 0.03,
        }
    }

    /// A perfect instrument (for differential testing).
    pub fn ideal() -> Nanodrop {
        Nanodrop {
            relative_error: 0.0,
        }
    }

    /// Measures total molecule count of a pool, with noise.
    pub fn measure_total(&self, pool: &Pool, rng: &mut DetRng) -> f64 {
        let truth = pool.total_copies();
        if self.relative_error == 0.0 {
            truth
        } else {
            truth * rng.lognormal(0.0, self.relative_error)
        }
    }

    /// Measures mean copies per distinct oligo — total concentration divided
    /// by the *known* design count (the operator knows how many distinct
    /// oligos were ordered: "8850 for amplified Alice pool and 45 for IDT
    /// update pool", §6.4.2).
    pub fn measure_per_oligo(&self, pool: &Pool, design_count: usize, rng: &mut DetRng) -> f64 {
        assert!(design_count > 0, "design count must be positive");
        self.measure_total(pool, rng) / design_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Pool {
        let mut p = Pool::new();
        p.add("ACGTACGTACGT".parse().unwrap(), 1000.0, None);
        p.add("TGCATGCATGCA".parse().unwrap(), 3000.0, None);
        p
    }

    #[test]
    fn ideal_measures_exactly() {
        let mut rng = DetRng::seed_from_u64(1);
        assert_eq!(Nanodrop::ideal().measure_total(&pool(), &mut rng), 4000.0);
        assert_eq!(
            Nanodrop::ideal().measure_per_oligo(&pool(), 2, &mut rng),
            2000.0
        );
    }

    #[test]
    fn noisy_measurement_is_unbiased_and_bounded() {
        let nd = Nanodrop::benchtop();
        let mut rng = DetRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..2000 {
            let m = nd.measure_total(&pool(), &mut rng);
            assert!(m > 4000.0 * 0.8 && m < 4000.0 * 1.25);
            sum += m;
        }
        let mean = sum / 2000.0;
        assert!((mean / 4000.0 - 1.0).abs() < 0.01, "mean {mean}");
    }
}
