//! Wetlab simulator for DNA storage.
//!
//! The paper's evaluation is a wetlab experiment; this crate replaces every
//! chemical process with a calibrated, fully deterministic simulator that
//! exercises the same code paths and failure modes (see DESIGN.md §2 for the
//! substitution table):
//!
//! - [`Pool`] — a test tube: species (distinct sequences) with fractional
//!   copy counts,
//! - [`TubeRack`] — per-partition tubes for a sharded store: writes mix
//!   into one tube in place, retrievals pipette only the addressed tubes
//!   into a reaction,
//! - [`SynthesisVendor`] — commercial synthesis with per-molecule copy-count
//!   skew and per-vendor concentration scales (the IDT preset is 50000× the
//!   Twist preset, §6.4.1),
//! - [`PcrReaction`]/[`PcrProtocol`] — cycle-level PCR with a
//!   mismatch/temperature annealing model, finite primer budgets,
//!   touchdown schedules, multiplexing, and **index overwrite on
//!   mispriming** — the mechanism behind the paper's false positives (§3.2:
//!   "PCR may overwrite their index to the desired index"),
//! - [`Sequencer`] — reads sampled ∝ abundance through an
//!   insertion/deletion/substitution channel; NGS and Nanopore run models
//!   for the §7.4 latency analysis,
//! - [`Nanodrop`] — concentration measurement with multiplicative noise,
//! - [`mixing`] — the two §6.4.2 protocols (Measure-then-Amplify and
//!   Amplify-then-Measure) that reconcile a 50000× vendor concentration gap.
//!
//! # Examples
//!
//! ```
//! use dna_seq::rng::DetRng;
//! use dna_sim::{Pool, SynthesisVendor, Molecule};
//!
//! let designs = vec![Molecule::untagged("ACGTACGTACGTACGTACGTACGTACGT".parse().unwrap())];
//! let mut rng = DetRng::seed_from_u64(1);
//! let pool = SynthesisVendor::twist().synthesize(&designs, &mut rng);
//! assert_eq!(pool.distinct(), 1);
//! assert!(pool.total_copies() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anneal;
mod fastpath;
mod molecule;
mod nanodrop;
mod pcr;
mod pool;
mod rack;
mod sequencing;
mod synthesis;

pub mod mixing;
pub mod stats;

pub use anneal::{AnnealModel, BindingSite};
pub use molecule::{Molecule, StrandTag};
pub use nanodrop::Nanodrop;
pub use pcr::{
    MultiplexOutcome, MultiplexPcrReaction, PcrOutcome, PcrPrimer, PcrProtocol, PcrReaction,
    PrimerChannel,
};
pub use pool::{Pool, Species};
pub use rack::{TubeId, TubeRack};
pub use sequencing::{IdsChannel, NanoporeModel, NgsRunModel, Read, Sequencer, SequencerScratch};
pub use stats::WetlabStats;
pub use synthesis::SynthesisVendor;
