//! Commercial DNA synthesis vendor models.
//!
//! Substitution note (DESIGN.md §2): the paper had files synthesized by
//! Twist BioScience and update patches by IDT; the IDT pool arrived *50000×
//! more concentrated* (§6.4.1), which is what makes the §6.4.2 mixing
//! protocols necessary. The vendor model reproduces the two observable
//! properties that matter: per-molecule copy-count skew (Fig. 9a shows
//! uniformity "within 2×") and the gross concentration scale.

use crate::molecule::Molecule;
use crate::pool::Pool;
use dna_seq::rng::DetRng;
use dna_seq::{Base, DnaSeq};

/// A synthesis vendor: turns molecule designs into a physical pool.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisVendor {
    /// Vendor name (for reports).
    pub name: String,
    /// Mean physical copies per designed molecule.
    pub copies_per_molecule: f64,
    /// Log-normal sigma of per-molecule copy skew. The default 0.17 keeps
    /// ~99% of molecules within 2× of each other, matching Fig. 9a.
    pub copy_skew_sigma: f64,
    /// Per-base substitution rate during synthesis (error molecules are
    /// emitted as separate low-abundance species). Zero by default; raised
    /// in failure-injection tests.
    pub error_rate: f64,
    /// Cost in dollars per synthesized base (per design, not per copy) —
    /// used by the §7.5 update-cost comparison.
    pub cost_per_base: f64,
}

impl SynthesisVendor {
    /// The main-pool vendor preset (Twist-like): baseline concentration.
    pub fn twist() -> SynthesisVendor {
        SynthesisVendor {
            name: "twist".to_string(),
            copies_per_molecule: 1.0e6,
            copy_skew_sigma: 0.17,
            error_rate: 0.0,
            cost_per_base: 0.07,
        }
    }

    /// The small-batch vendor preset (IDT-like): 50000× the Twist
    /// concentration (§6.4.1), cheaper for tiny pools.
    pub fn idt() -> SynthesisVendor {
        SynthesisVendor {
            name: "idt".to_string(),
            copies_per_molecule: 5.0e10,
            copy_skew_sigma: 0.17,
            error_rate: 0.0,
            cost_per_base: 0.05,
        }
    }

    /// Synthesizes `designs` into a pool. Per-molecule copy counts are
    /// log-normally skewed around [`SynthesisVendor::copies_per_molecule`];
    /// if [`SynthesisVendor::error_rate`] is nonzero, a fraction of each
    /// design's copies is emitted as single-substitution mutant species.
    pub fn synthesize(&self, designs: &[Molecule], rng: &mut DetRng) -> Pool {
        let mut pool = Pool::new();
        for design in designs {
            let copies = self.copies_per_molecule * rng.lognormal(0.0, self.copy_skew_sigma);
            if self.error_rate > 0.0 && !design.seq.is_empty() {
                // Expected fraction of copies with ≥1 synthesis error.
                let clean_frac = (1.0 - self.error_rate).powi(design.seq.len() as i32);
                pool.add(design.seq.clone(), copies * clean_frac, design.tag);
                // Emit a handful of representative mutant species sharing the
                // erroneous mass.
                let error_mass = copies * (1.0 - clean_frac);
                let mutants = 3.min(design.seq.len());
                for _ in 0..mutants {
                    let pos = rng.gen_range(design.seq.len());
                    let mut bases: Vec<Base> = design.seq.iter().collect();
                    let old = bases[pos];
                    let mut new = Base::from_code(rng.gen_range(4) as u8);
                    if new == old {
                        new = Base::from_code((old.code() + 1) & 0b11);
                    }
                    bases[pos] = new;
                    pool.add(
                        DnaSeq::from_bases(bases),
                        error_mass / mutants as f64,
                        design.tag,
                    );
                }
            } else {
                pool.add(design.seq.clone(), copies, design.tag);
            }
        }
        pool
    }

    /// Synthesis cost for a set of designs (charged per designed base —
    /// §5.1: "DNA synthesis is the most expensive process in DNA storage").
    pub fn synthesis_cost(&self, design_count: usize, strand_len: usize) -> f64 {
        self.cost_per_base * design_count as f64 * strand_len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecule::StrandTag;

    fn designs(n: usize) -> Vec<Molecule> {
        (0..n)
            .map(|i| {
                // Encode i in the first bases so every design is distinct.
                let mut seq = DnaSeq::new();
                for j in 0..10 {
                    seq.push(Base::from_code(((i >> (2 * j)) & 3) as u8));
                }
                seq.extend((0..30).map(|j| Base::from_code((j % 4) as u8)));
                Molecule::new(seq, StrandTag::new(0, i as u64, 0, 0))
            })
            .collect()
    }

    #[test]
    fn copy_counts_skew_within_two_x() {
        // Fig. 9a: "all molecules are represented fairly uniformly ...
        // within 2x".
        let vendor = SynthesisVendor::twist();
        let mut rng = DetRng::seed_from_u64(5);
        let pool = vendor.synthesize(&designs(500), &mut rng);
        assert_eq!(pool.distinct(), 500);
        let mean = pool.mean_abundance();
        let mut within = 0usize;
        for (_, s) in pool.iter() {
            if s.abundance > mean / 2.0 && s.abundance < mean * 2.0 {
                within += 1;
            }
        }
        assert!(within >= 495, "only {within}/500 within 2x of mean");
    }

    #[test]
    fn idt_is_50000x_twist() {
        let ratio = SynthesisVendor::idt().copies_per_molecule
            / SynthesisVendor::twist().copies_per_molecule;
        assert_eq!(ratio, 50_000.0);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let vendor = SynthesisVendor::twist();
        let a = vendor.synthesize(&designs(10), &mut DetRng::seed_from_u64(9));
        let b = vendor.synthesize(&designs(10), &mut DetRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn synthesis_errors_spawn_mutants() {
        let mut vendor = SynthesisVendor::twist();
        vendor.error_rate = 0.01;
        let mut rng = DetRng::seed_from_u64(11);
        let pool = vendor.synthesize(&designs(5), &mut rng);
        assert!(pool.distinct() > 5, "mutant species expected");
        // clean species still dominate
        let d = designs(5);
        for m in &d {
            let clean = pool.get(&m.seq).unwrap().abundance;
            assert!(clean > 0.5 * vendor.copies_per_molecule);
        }
    }

    #[test]
    fn cost_scales_with_designs_and_length() {
        let vendor = SynthesisVendor::twist();
        let one = vendor.synthesis_cost(15, 150);
        let partition = vendor.synthesis_cost(8805, 150);
        assert!((partition / one - 587.0).abs() < 1.0);
    }
}
