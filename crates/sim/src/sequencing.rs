//! Sequencing: read sampling through an IDS error channel, plus run models
//! for the §7.4 latency analysis.

use crate::molecule::StrandTag;
use crate::pool::Pool;
use crate::stats;
use dna_seq::rng::DetRng;
use dna_seq::{Base, DnaSeq};
use std::cell::RefCell;

/// One sequencer read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Read {
    /// The (noisy) read sequence.
    pub seq: DnaSeq,
    /// Ground truth of the molecule the read came from — for measurement
    /// only, never consumed by decoding.
    pub truth: Option<StrandTag>,
}

/// Insertion/deletion/substitution channel with independent per-base rates.
///
/// Defaults follow typical Illumina short-read error profiles; Nanopore
/// presets are an order of magnitude noisier (§5: nanopore-based
/// technologies are one motivation for updatable storage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdsChannel {
    /// Per-base substitution probability.
    pub sub_rate: f64,
    /// Per-position insertion probability.
    pub ins_rate: f64,
    /// Per-base deletion probability.
    pub del_rate: f64,
}

impl IdsChannel {
    /// Illumina-like: 0.4% substitutions, light indels.
    pub fn illumina() -> IdsChannel {
        IdsChannel {
            sub_rate: 0.004,
            ins_rate: 0.0005,
            del_rate: 0.001,
        }
    }

    /// Nanopore-like: several percent of every error type.
    pub fn nanopore() -> IdsChannel {
        IdsChannel {
            sub_rate: 0.03,
            ins_rate: 0.02,
            del_rate: 0.03,
        }
    }

    /// A noiseless channel (for pipeline unit tests).
    pub fn noiseless() -> IdsChannel {
        IdsChannel {
            sub_rate: 0.0,
            ins_rate: 0.0,
            del_rate: 0.0,
        }
    }

    /// Passes `seq` through the channel.
    pub fn corrupt(&self, seq: &DnaSeq, rng: &mut DetRng) -> DnaSeq {
        let mut out = DnaSeq::with_capacity(seq.len() + 4);
        for b in seq.iter() {
            if rng.gen_bool(self.ins_rate) {
                out.push(Base::from_code(rng.gen_range(4) as u8));
            }
            if rng.gen_bool(self.del_rate) {
                continue;
            }
            if rng.gen_bool(self.sub_rate) {
                let mut nb = Base::from_code(rng.gen_range(4) as u8);
                if nb == b {
                    nb = Base::from_code((b.code() + 1) & 0b11);
                }
                out.push(nb);
            } else {
                out.push(b);
            }
        }
        out
    }
}

/// Reusable sampling state for [`Sequencer::sequence_into`]: the
/// cumulative-weight table over a pool's species, keyed by the pool's
/// [`Pool::epoch`] so it is rebuilt only when the pool's content actually
/// changed. Repeated draws from an unchanged pool (coalesced rounds, cached
/// tubes) skip the `O(species)` weight pass entirely.
#[derive(Debug, Clone, Default)]
pub struct SequencerScratch {
    /// Epoch of the pool `cum`/`total` were built from.
    epoch: Option<u64>,
    /// Cumulative abundance per species, in pool iteration order.
    cum: Vec<f64>,
    /// Total abundance (last entry of `cum`).
    total: f64,
}

impl SequencerScratch {
    /// A fresh, empty scratch.
    pub fn new() -> SequencerScratch {
        SequencerScratch::default()
    }
}

thread_local! {
    /// Per-thread scratch backing the allocating [`Sequencer::sequence`]
    /// convenience wrapper, so even legacy call sites reuse the weight
    /// table across draws on an unchanged pool.
    static THREAD_SCRATCH: RefCell<SequencerScratch> = RefCell::new(SequencerScratch::new());
}

/// A sequencer: samples reads ∝ abundance and applies the channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sequencer {
    /// The error channel applied to every read.
    pub channel: IdsChannel,
}

impl Sequencer {
    /// A sequencer with the given channel.
    pub fn new(channel: IdsChannel) -> Sequencer {
        Sequencer { channel }
    }

    /// Draws `num_reads` reads from `pool`, each from a species chosen with
    /// probability proportional to abundance ("the sequencing cost is always
    /// proportional to the size of the sequencing output", §7.3).
    ///
    /// Convenience wrapper over [`Sequencer::sequence_into`] that allocates
    /// the read vector (sampling state is still reused via a thread-local
    /// scratch).
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty but reads were requested.
    pub fn sequence(&self, pool: &Pool, num_reads: usize, rng: &mut DetRng) -> Vec<Read> {
        let mut reads = Vec::with_capacity(num_reads);
        THREAD_SCRATCH
            .with(|s| self.sequence_into(pool, num_reads, rng, &mut s.borrow_mut(), &mut reads));
        reads
    }

    /// Streaming form of [`Sequencer::sequence`]: appends `num_reads` reads
    /// to `out`, reusing `scratch`'s cumulative-weight table when the pool
    /// is unchanged since the previous call (epoch match). Draw-for-draw
    /// identical to `sequence` — same RNG consumption, same reads.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty but reads were requested.
    pub fn sequence_into(
        &self,
        pool: &Pool,
        num_reads: usize,
        rng: &mut DetRng,
        scratch: &mut SequencerScratch,
        out: &mut Vec<Read>,
    ) {
        if num_reads == 0 {
            return;
        }
        assert!(!pool.is_empty(), "cannot sequence an empty pool");
        // Entry refs must be re-collected per call (they borrow the pool),
        // but the cumulative weights — the O(n) float pass — are reusable:
        // an equal epoch guarantees identical content, hence an identical
        // table.
        let entries: Vec<(&DnaSeq, &crate::pool::Species)> = pool.iter().collect();
        if scratch.epoch == Some(pool.epoch()) {
            stats::record_scratch_reuse(1);
        } else {
            scratch.cum.clear();
            scratch.cum.reserve(entries.len());
            let mut total = 0.0;
            for (_, s) in &entries {
                total += s.abundance;
                scratch.cum.push(total);
            }
            scratch.total = total;
            scratch.epoch = Some(pool.epoch());
        }
        assert!(scratch.total > 0.0, "pool has zero total abundance");
        out.reserve(num_reads);
        for _ in 0..num_reads {
            let x = rng.next_f64() * scratch.total;
            let i = scratch
                .cum
                .partition_point(|&c| c < x)
                .min(entries.len() - 1);
            let (seq, species) = entries[i];
            out.push(Read {
                seq: self.channel.corrupt(seq, rng),
                truth: species.tag,
            });
        }
        stats::record_reads_materialized(num_reads as u64);
        stats::flush_to_global();
    }
}

/// Fixed-run next-generation sequencing model (§7.4: "The duration of a
/// single NGS run is fixed by design ... one run of Illumina MiSeq can only
/// produce around 1GB of user data").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NgsRunModel {
    /// Usable bytes of output per run.
    pub bytes_per_run: f64,
    /// Wall-clock hours per run.
    pub hours_per_run: f64,
}

impl NgsRunModel {
    /// MiSeq-like: 1 GB per run, ~24 h.
    pub fn miseq() -> NgsRunModel {
        NgsRunModel {
            bytes_per_run: 1.0e9,
            hours_per_run: 24.0,
        }
    }

    /// Runs needed to sequence `output_bytes` of demanded output.
    pub fn runs_needed(&self, output_bytes: f64) -> f64 {
        (output_bytes / self.bytes_per_run).ceil().max(1.0)
    }

    /// Total latency in hours for `output_bytes`.
    pub fn latency_hours(&self, output_bytes: f64) -> f64 {
        self.runs_needed(output_bytes) * self.hours_per_run
    }
}

/// Streaming Nanopore model (§7.4: "runtime of a single sequencing run is
/// always output-size-dependent ... the sequencing can be stopped once the
/// data is successfully decoded").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NanoporeModel {
    /// Usable output bytes per hour.
    pub bytes_per_hour: f64,
}

impl NanoporeModel {
    /// MinION-like throughput.
    pub fn minion() -> NanoporeModel {
        NanoporeModel {
            bytes_per_hour: 1.5e8,
        }
    }

    /// Latency to stream `output_bytes` — strictly linear, so block access
    /// reduces it by exactly the selectivity factor.
    pub fn latency_hours(&self, output_bytes: f64) -> f64 {
        output_bytes / self.bytes_per_hour
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecule::StrandTag;
    use dna_seq::distance::levenshtein;

    fn pool_two_species() -> Pool {
        let mut pool = Pool::new();
        pool.add(
            "AAAACCCCGGGGTTTTAAAACCCCGGGGTTTT".parse().unwrap(),
            900.0,
            Some(StrandTag::new(0, 1, 0, 0)),
        );
        pool.add(
            "TTTTGGGGCCCCAAAATTTTGGGGCCCCAAAA".parse().unwrap(),
            100.0,
            Some(StrandTag::new(0, 2, 0, 0)),
        );
        pool
    }

    #[test]
    fn reads_sample_proportionally() {
        let seq = Sequencer::new(IdsChannel::noiseless());
        let mut rng = DetRng::seed_from_u64(3);
        let reads = seq.sequence(&pool_two_species(), 10_000, &mut rng);
        let unit1 = reads.iter().filter(|r| r.truth.unwrap().unit == 1).count();
        let frac = unit1 as f64 / 10_000.0;
        assert!(
            (frac - 0.9).abs() < 0.02,
            "unit1 fraction {frac}, want ~0.9"
        );
    }

    #[test]
    fn noiseless_channel_is_identity() {
        let mut rng = DetRng::seed_from_u64(4);
        let s: DnaSeq = "ACGGTTAACC".parse().unwrap();
        assert_eq!(IdsChannel::noiseless().corrupt(&s, &mut rng), s);
    }

    #[test]
    fn channel_error_rates_are_calibrated() {
        let mut rng = DetRng::seed_from_u64(5);
        let ch = IdsChannel::illumina();
        let s = DnaSeq::from_bases((0..150).map(|i| Base::from_code((i % 4) as u8)));
        let trials = 2000;
        let mut total_edit = 0usize;
        for _ in 0..trials {
            let noisy = ch.corrupt(&s, &mut rng);
            total_edit += levenshtein(s.as_slice(), noisy.as_slice());
        }
        let mean_edit = total_edit as f64 / trials as f64;
        let expected = 150.0 * (ch.sub_rate + ch.ins_rate + ch.del_rate);
        assert!(
            (mean_edit - expected).abs() < expected * 0.25 + 0.1,
            "mean edit {mean_edit}, expected ~{expected}"
        );
    }

    #[test]
    fn nanopore_channel_is_much_noisier() {
        let mut rng = DetRng::seed_from_u64(6);
        let s = DnaSeq::from_bases((0..150).map(|i| Base::from_code((i % 4) as u8)));
        let mut illumina = 0usize;
        let mut nanopore = 0usize;
        for _ in 0..300 {
            illumina += levenshtein(
                s.as_slice(),
                IdsChannel::illumina().corrupt(&s, &mut rng).as_slice(),
            );
            nanopore += levenshtein(
                s.as_slice(),
                IdsChannel::nanopore().corrupt(&s, &mut rng).as_slice(),
            );
        }
        assert!(nanopore > 5 * illumina);
    }

    #[test]
    fn sequencing_is_deterministic() {
        let seq = Sequencer::new(IdsChannel::illumina());
        let a = seq.sequence(&pool_two_species(), 100, &mut DetRng::seed_from_u64(7));
        let b = seq.sequence(&pool_two_species(), 100, &mut DetRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn sequence_into_matches_sequence_and_reuses_scratch() {
        let seq = Sequencer::new(IdsChannel::illumina());
        let pool = pool_two_species();
        let baseline = seq.sequence(&pool, 200, &mut DetRng::seed_from_u64(9));
        // Two batches from one RNG through one scratch == one big batch.
        let mut rng = DetRng::seed_from_u64(9);
        let mut scratch = SequencerScratch::new();
        let mut out = Vec::new();
        let before = crate::stats::thread_totals();
        seq.sequence_into(&pool, 120, &mut rng, &mut scratch, &mut out);
        seq.sequence_into(&pool, 80, &mut rng, &mut scratch, &mut out);
        assert_eq!(out, baseline);
        let d = crate::stats::thread_totals().delta_since(&before);
        assert_eq!(d.reads_materialized, 200);
        assert_eq!(d.scratch_reuses, 1, "second batch must reuse the table");
        // Mutating the pool invalidates the scratch.
        let mut changed = pool.clone();
        changed.add(
            "ACGTACGTACGTACGTACGTACGTACGTACGT".parse().unwrap(),
            50.0,
            None,
        );
        let direct = seq.sequence(&changed, 50, &mut DetRng::seed_from_u64(10));
        let mut via = Vec::new();
        seq.sequence_into(
            &changed,
            50,
            &mut DetRng::seed_from_u64(10),
            &mut scratch,
            &mut via,
        );
        assert_eq!(via, direct);
    }

    #[test]
    fn ngs_run_model_quantizes() {
        let m = NgsRunModel::miseq();
        assert_eq!(m.runs_needed(1.0), 1.0);
        assert_eq!(m.runs_needed(1.0e9), 1.0);
        assert_eq!(m.runs_needed(1.0e9 + 1.0), 2.0);
        // §7.4: "Sequencing a partition of 1TB would therefore require ~1000 runs"
        assert_eq!(m.runs_needed(1.0e12), 1000.0);
        assert_eq!(m.latency_hours(1.0e12), 24_000.0);
    }

    #[test]
    fn nanopore_latency_is_linear() {
        let m = NanoporeModel::minion();
        let one = m.latency_hours(1.0e9);
        let block = m.latency_hours(1.0e9 / 141.0);
        assert!((one / block - 141.0).abs() < 1e-9);
    }

    #[test]
    fn empty_request_returns_no_reads() {
        let seq = Sequencer::new(IdsChannel::noiseless());
        let mut rng = DetRng::seed_from_u64(8);
        assert!(seq.sequence(&pool_two_species(), 0, &mut rng).is_empty());
    }
}
