//! Cycle-level PCR simulation.
//!
//! Each cycle, every species can be copied by any forward primer that binds
//! its 5' region together with the reverse primer binding its 3' region.
//! Three mechanisms drive the paper's observed behaviour:
//!
//! 1. **Exponential amplification** of perfectly-matched templates;
//! 2. **Index overwrite on mispriming** (§3.2, §8.1): when a primer binds a
//!    near-matching site (edit distance 1..=max), the *product* carries the
//!    primer's sequence as its new prefix — so a neighbour block's strand
//!    becomes indistinguishable, by address, from the target, and amplifies
//!    at full efficiency from then on;
//! 3. **Finite primer budgets**: every new copy consumes one forward and
//!    one reverse primer molecule, producing the familiar plateau and making
//!    leftover-primer carryover (§7.2: "18% of reads were discarded as they
//!    were amplified by the leftover main primers") a simple initial
//!    condition rather than a special case.

use crate::anneal::{AnnealModel, BindingSite};
use crate::pool::Pool;
use dna_seq::DnaSeq;
use std::collections::BTreeMap;

/// A primer participating in a reaction, with a finite molecule budget.
#[derive(Debug, Clone, PartialEq)]
pub struct PcrPrimer {
    /// The primer sequence (for forward primers, matched against strand 5'
    /// prefixes; for the reverse primer, against the reverse complement).
    pub seq: DnaSeq,
    /// Available molecules. Use [`f64::INFINITY`] for "primer excess".
    pub budget: f64,
}

impl PcrPrimer {
    /// A primer with the given molecule budget.
    pub fn with_budget(seq: DnaSeq, budget: f64) -> PcrPrimer {
        PcrPrimer { seq, budget }
    }

    /// A primer in effective excess (never depletes).
    pub fn unlimited(seq: DnaSeq) -> PcrPrimer {
        PcrPrimer {
            seq,
            budget: f64::INFINITY,
        }
    }
}

/// The thermal protocol: one annealing temperature per cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct PcrProtocol {
    /// Annealing temperature (°C) for each cycle.
    pub temps: Vec<f64>,
    /// The annealing model.
    pub anneal: AnnealModel,
}

impl PcrProtocol {
    /// Constant-temperature protocol.
    pub fn standard(cycles: usize, temp: f64) -> PcrProtocol {
        PcrProtocol {
            temps: vec![temp; cycles],
            anneal: AnnealModel::calibrated(),
        }
    }

    /// Touchdown protocol: 1 °C decrease per cycle from `start` down to
    /// `end`, then `plateau_cycles` more at `end` (§6.5: "a decrease of 1°C
    /// per annealing step in each cycle, starting at 65°C, for 10 cycles,
    /// before amplification at 55°C ... for another 18 cycles").
    pub fn touchdown(start: f64, end: f64, plateau_cycles: usize) -> PcrProtocol {
        assert!(start >= end, "touchdown must cool down");
        let mut temps = Vec::new();
        let mut t = start;
        while t > end {
            temps.push(t);
            t -= 1.0;
        }
        temps.extend(std::iter::repeat_n(end, plateau_cycles));
        PcrProtocol {
            temps,
            anneal: AnnealModel::calibrated(),
        }
    }

    /// The paper's block-access protocol: touchdown 65→55 (10 cycles) plus
    /// 18 cycles at 55 °C.
    pub fn paper_block_access() -> PcrProtocol {
        PcrProtocol::touchdown(65.0, 55.0, 18)
    }

    /// The paper's plain amplification protocol: 15 cycles at 55 °C
    /// (§6.4.2).
    pub fn paper_amplification() -> PcrProtocol {
        PcrProtocol::standard(15, 55.0)
    }

    /// Number of cycles.
    pub fn cycles(&self) -> usize {
        self.temps.len()
    }
}

/// A configured reaction: forward primer set (singleton for simple PCR,
/// several for multiplex, §6.5), one reverse primer, and a protocol.
#[derive(Debug, Clone)]
pub struct PcrReaction {
    /// Forward primers (possibly elongated, possibly leftover carryover).
    pub forward_primers: Vec<PcrPrimer>,
    /// The reverse primer.
    pub reverse_primer: PcrPrimer,
    /// Thermal protocol.
    pub protocol: PcrProtocol,
}

/// Result of running a reaction.
#[derive(Debug, Clone)]
pub struct PcrOutcome {
    /// The amplified pool (input species plus any mispriming products).
    pub pool: Pool,
    /// Forward-primer molecules consumed, per primer.
    pub fwd_consumed: Vec<f64>,
    /// Reverse-primer molecules consumed.
    pub rev_consumed: f64,
    /// Number of distinct mispriming product species created.
    pub misprime_species: usize,
}

/// Per-species cached binding geometry.
struct BindingInfo {
    /// Binding geometry of each forward primer at this species' 5' site.
    fwd_site: Vec<Option<BindingSite>>,
    /// Binding geometry of the reverse primer at the 3' site (via reverse
    /// complement).
    rev_site: Option<BindingSite>,
}

impl PcrReaction {
    /// Runs the reaction on `input`, returning the amplified pool and
    /// consumption statistics. Deterministic (expected-value dynamics).
    pub fn run(&self, input: &Pool) -> PcrOutcome {
        let anneal = &self.protocol.anneal;
        let mut pool = input.clone();
        let mut info: BTreeMap<DnaSeq, BindingInfo> = BTreeMap::new();
        let mut fwd_left: Vec<f64> = self.forward_primers.iter().map(|p| p.budget).collect();
        let mut rev_left = self.reverse_primer.budget;
        let mut fwd_consumed = vec![0.0; self.forward_primers.len()];
        let mut rev_consumed = 0.0;
        let mut misprime_species = 0usize;

        for &temp in &self.protocol.temps {
            // Pass 1: compute desired contributions.
            // (species_seq, primer_idx, copies, product_seq_if_misprimed)
            let mut contributions: Vec<(DnaSeq, usize, f64, Option<DnaSeq>)> = Vec::new();
            let mut fwd_demand = vec![0.0; self.forward_primers.len()];
            let mut rev_demand = 0.0;
            for (seq, species) in pool.iter() {
                if species.abundance <= 0.0 {
                    continue;
                }
                let entry = info.entry(seq.clone()).or_insert_with(|| BindingInfo {
                    fwd_site: self
                        .forward_primers
                        .iter()
                        .map(|p| anneal.binding_site(&p.seq, seq))
                        .collect(),
                    rev_site: {
                        let rc = seq.reverse_complement();
                        anneal.binding_site(&self.reverse_primer.seq, &rc)
                    },
                });
                let p_rev = match entry.rev_site {
                    Some(s) => anneal.binding_probability(&self.reverse_primer.seq, s, temp),
                    None => 0.0,
                };
                if p_rev <= 0.0 {
                    continue;
                }
                for (pi, primer) in self.forward_primers.iter().enumerate() {
                    let Some(site) = entry.fwd_site[pi] else {
                        continue;
                    };
                    let d = site.dist;
                    let p_fwd = anneal.binding_probability(&primer.seq, site, temp);
                    if p_fwd <= 0.0 {
                        continue;
                    }
                    // Per-cycle duplex yield is limited by the weaker primer:
                    // each strand of the duplex is primed independently, so
                    // overall efficiency tracks min(p_fwd, p_rev), the
                    // standard per-cycle efficiency model.
                    let copies = species.abundance * p_fwd.min(p_rev);
                    if copies <= 0.0 {
                        continue;
                    }
                    let product = if d == 0 {
                        None // faithful copy of the template
                    } else {
                        // Index overwrite: the product starts with the primer
                        // itself, then continues with the template past the
                        // primer-length mark.
                        let mut ns = primer.seq.clone();
                        if primer.seq.len() < seq.len() {
                            ns.extend_from_slice(&seq.as_slice()[primer.seq.len()..]);
                        }
                        Some(ns)
                    };
                    fwd_demand[pi] += copies;
                    rev_demand += copies;
                    contributions.push((seq.clone(), pi, copies, product));
                }
            }
            if contributions.is_empty() {
                continue;
            }
            // Pass 2: scale by primer budgets and apply.
            let rev_factor = if rev_demand > rev_left {
                rev_left / rev_demand
            } else {
                1.0
            };
            let fwd_factor: Vec<f64> = fwd_demand
                .iter()
                .zip(&fwd_left)
                .map(|(&d, &left)| if d > left { left / d } else { 1.0 })
                .collect();
            let mut additions: Vec<(DnaSeq, f64, Option<crate::StrandTag>)> = Vec::new();
            for (seq, pi, copies, product) in contributions {
                let actual = copies * fwd_factor[pi].min(rev_factor);
                if actual <= 0.0 {
                    continue;
                }
                fwd_consumed[pi] += actual;
                fwd_left[pi] -= actual;
                rev_consumed += actual;
                rev_left -= actual;
                match product {
                    None => additions.push((seq, actual, None)),
                    Some(product_seq) => {
                        let tag = pool.get(&seq).and_then(|s| s.tag).map(|mut t| {
                            t.prefix_overwritten = true;
                            t
                        });
                        if pool.get(&product_seq).is_none()
                            && !additions.iter().any(|(s, _, _)| *s == product_seq)
                        {
                            misprime_species += 1;
                        }
                        additions.push((product_seq, actual, tag));
                    }
                }
            }
            for (seq, copies, tag) in additions {
                match tag {
                    Some(t) => pool.add(seq, copies, Some(t)),
                    None => {
                        let existing = pool.get(&seq).and_then(|s| s.tag);
                        pool.add(seq, copies, existing);
                    }
                }
            }
            fwd_left = fwd_left.iter().map(|&x| x.max(0.0)).collect();
            rev_left = rev_left.max(0.0);
        }

        PcrOutcome {
            pool,
            fwd_consumed,
            rev_consumed,
            misprime_species,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecule::StrandTag;
    use dna_seq::Base;

    fn balanced(n: usize, phase: usize) -> DnaSeq {
        DnaSeq::from_bases((0..n).map(|i| Base::from_code(((i + phase) % 4) as u8)))
    }

    /// fwd(20) + payload + rc(rev(20)) strand around the given payload.
    fn strand(fwd: &DnaSeq, payload: &DnaSeq, rev: &DnaSeq) -> DnaSeq {
        fwd.concat(payload).concat(&rev.reverse_complement())
    }

    fn fwd() -> DnaSeq {
        "AACCGGTTAACCGGTTAACC".parse().unwrap()
    }

    fn rev() -> DnaSeq {
        "AAGGCCTTAAGGCCTTAAGG".parse().unwrap()
    }

    #[test]
    fn matched_template_amplifies_exponentially() {
        let mut pool = Pool::new();
        let s = strand(&fwd(), &balanced(60, 0), &rev());
        pool.add(s.clone(), 100.0, Some(StrandTag::new(0, 1, 0, 0)));
        let rxn = PcrReaction {
            forward_primers: vec![PcrPrimer::unlimited(fwd())],
            reverse_primer: PcrPrimer::unlimited(rev()),
            protocol: PcrProtocol::standard(10, 55.0),
        };
        let out = rxn.run(&pool);
        let final_ab = out.pool.get(&s).unwrap().abundance;
        // 10 cycles at ~0.6+ efficiency: at least 2^6 = 64x growth.
        assert!(final_ab > 100.0 * 64.0, "only {final_ab}");
        assert_eq!(out.misprime_species, 0);
    }

    #[test]
    fn unrelated_template_does_not_amplify() {
        let mut pool = Pool::new();
        let target = strand(&fwd(), &balanced(60, 0), &rev());
        let other_fwd = balanced(20, 1);
        let other = strand(&other_fwd, &balanced(60, 2), &rev());
        pool.add(target.clone(), 100.0, None);
        pool.add(other.clone(), 100.0, None);
        let rxn = PcrReaction {
            forward_primers: vec![PcrPrimer::unlimited(fwd())],
            reverse_primer: PcrPrimer::unlimited(rev()),
            protocol: PcrProtocol::standard(12, 55.0),
        };
        let out = rxn.run(&pool);
        let t = out.pool.get(&target).unwrap().abundance;
        let o = out.pool.get(&other).unwrap().abundance;
        assert!(
            t / o > 1000.0,
            "selectivity too weak: target {t}, other {o}"
        );
        assert_eq!(o, 100.0, "unrelated strand must not grow");
    }

    #[test]
    fn primer_budget_caps_growth() {
        let mut pool = Pool::new();
        let s = strand(&fwd(), &balanced(60, 0), &rev());
        pool.add(s.clone(), 100.0, None);
        let rxn = PcrReaction {
            forward_primers: vec![PcrPrimer::with_budget(fwd(), 5_000.0)],
            reverse_primer: PcrPrimer::unlimited(rev()),
            protocol: PcrProtocol::standard(20, 55.0),
        };
        let out = rxn.run(&pool);
        let final_ab = out.pool.get(&s).unwrap().abundance;
        assert!(
            final_ab <= 100.0 + 5_000.0 + 1e-6,
            "budget violated: {final_ab}"
        );
        assert!(final_ab > 5_000.0 * 0.99, "budget should be ~exhausted");
        assert!((out.fwd_consumed[0] - 5_000.0).abs() < 1.0);
    }

    #[test]
    fn conservation_budget_equals_new_copies() {
        let mut pool = Pool::new();
        let s = strand(&fwd(), &balanced(60, 0), &rev());
        pool.add(s.clone(), 50.0, None);
        let rxn = PcrReaction {
            forward_primers: vec![PcrPrimer::unlimited(fwd())],
            reverse_primer: PcrPrimer::unlimited(rev()),
            protocol: PcrProtocol::standard(8, 55.0),
        };
        let out = rxn.run(&pool);
        let grown = out.pool.total_copies() - pool.total_copies();
        assert!((grown - out.fwd_consumed[0]).abs() < 1e-6);
        assert!((grown - out.rev_consumed).abs() < 1e-6);
    }

    #[test]
    fn mispriming_overwrites_prefix_and_then_amplifies() {
        // Elongated primer = fwd + 10-base extension. A neighbour template
        // whose extension differs by 2 edits should yield a product carrying
        // the TARGET's prefix but the NEIGHBOUR's payload.
        let ext_target: DnaSeq = "ACAGTCTGAC".parse().unwrap();
        let ext_near: DnaSeq = "ACAGTCGTAC".parse().unwrap(); // 2 edits away
        let elongated = fwd().concat(&ext_target);
        let payload_t = balanced(50, 0);
        let payload_n = balanced(50, 2);
        let target = fwd()
            .concat(&ext_target)
            .concat(&payload_t)
            .concat(&rev().reverse_complement());
        let near = fwd()
            .concat(&ext_near)
            .concat(&payload_n)
            .concat(&rev().reverse_complement());
        let mut pool = Pool::new();
        pool.add(target.clone(), 100.0, Some(StrandTag::new(0, 1, 0, 0)));
        pool.add(near.clone(), 100.0, Some(StrandTag::new(0, 2, 0, 0)));
        let rxn = PcrReaction {
            forward_primers: vec![PcrPrimer::unlimited(elongated.clone())],
            reverse_primer: PcrPrimer::unlimited(rev()),
            protocol: PcrProtocol::standard(15, 55.0),
        };
        let out = rxn.run(&pool);
        assert!(out.misprime_species >= 1, "expected mispriming products");
        // The misprimed product: elongated primer + near's payload tail.
        let mut product = elongated.clone();
        product.extend_from_slice(&near.as_slice()[elongated.len()..]);
        let ms = out.pool.get(&product).expect("misprime product exists");
        assert!(ms.tag.unwrap().prefix_overwritten);
        assert_eq!(ms.tag.unwrap().unit, 2, "payload provenance preserved");
        // It must amplify far beyond its source (index now matches primer).
        assert!(ms.abundance > 10.0 * out.pool.get(&near).unwrap().abundance);
        // But target still dominates.
        let t = out.pool.get(&target).unwrap().abundance;
        assert!(t > ms.abundance, "target {t} vs misprime {}", ms.abundance);
    }

    #[test]
    fn touchdown_reduces_mispriming_vs_flat_protocol() {
        let ext_target: DnaSeq = "ACAGTCTGAC".parse().unwrap();
        let ext_near: DnaSeq = "ACAGTCGTAC".parse().unwrap();
        let elongated = fwd().concat(&ext_target);
        let target = fwd()
            .concat(&ext_target)
            .concat(&balanced(50, 0))
            .concat(&rev().reverse_complement());
        let near = fwd()
            .concat(&ext_near)
            .concat(&balanced(50, 2))
            .concat(&rev().reverse_complement());
        let mut pool = Pool::new();
        pool.add(target.clone(), 100.0, Some(StrandTag::new(0, 1, 0, 0)));
        pool.add(near.clone(), 100.0, Some(StrandTag::new(0, 2, 0, 0)));

        let run = |protocol: PcrProtocol| {
            let rxn = PcrReaction {
                forward_primers: vec![PcrPrimer::unlimited(elongated.clone())],
                reverse_primer: PcrPrimer::unlimited(rev()),
                protocol,
            };
            let out = rxn.run(&pool);
            let wrong: f64 = out
                .pool
                .iter()
                .filter(|(_, s)| {
                    s.tag
                        .map(|t| t.unit == 2 && t.prefix_overwritten)
                        .unwrap_or(false)
                })
                .map(|(_, s)| s.abundance)
                .sum();
            let right = out.pool.get(&target).unwrap().abundance;
            wrong / right
        };
        // Same total cycle count: 28 flat vs 10 touchdown + 18 flat.
        let flat = run(PcrProtocol::standard(28, 55.0));
        let td = run(PcrProtocol::paper_block_access());
        assert!(
            td < flat,
            "touchdown misprime ratio {td:.4} should beat flat {flat:.4}"
        );
    }

    #[test]
    fn multiplex_amplifies_all_targets() {
        // §6.5: "the last utilized an equal mix of all three for multiplexed
        // amplification".
        let exts: Vec<DnaSeq> = vec![
            "ACAGTCTGAC".parse().unwrap(),
            "TGTCAGACTG".parse().unwrap(),
            "CATGCATGCA".parse().unwrap(),
        ];
        let mut pool = Pool::new();
        let mut strands = Vec::new();
        for (i, ext) in exts.iter().enumerate() {
            let s = fwd()
                .concat(ext)
                .concat(&balanced(50, i))
                .concat(&rev().reverse_complement());
            pool.add(s.clone(), 100.0, Some(StrandTag::new(0, i as u64, 0, 0)));
            strands.push(s);
        }
        // a fourth, unrelated block
        let other = fwd()
            .concat(&"GACTGACTGA".parse::<DnaSeq>().unwrap())
            .concat(&balanced(50, 3))
            .concat(&rev().reverse_complement());
        pool.add(other.clone(), 100.0, Some(StrandTag::new(0, 99, 0, 0)));

        let rxn = PcrReaction {
            forward_primers: exts
                .iter()
                .map(|e| PcrPrimer::unlimited(fwd().concat(e)))
                .collect(),
            reverse_primer: PcrPrimer::unlimited(rev()),
            protocol: PcrProtocol::paper_block_access(),
        };
        let out = rxn.run(&pool);
        let o = out.pool.get(&other).unwrap().abundance;
        for (i, s) in strands.iter().enumerate() {
            let t = out.pool.get(s).unwrap().abundance;
            assert!(t / o > 100.0, "multiplex target {i} too weak: {t} vs {o}");
        }
    }

    #[test]
    fn touchdown_protocol_shape() {
        let p = PcrProtocol::paper_block_access();
        assert_eq!(p.cycles(), 28); // 10 touchdown (65..56) + 18 at 55
        assert_eq!(p.temps[0], 65.0);
        assert_eq!(p.temps[9], 56.0);
        assert_eq!(p.temps[10], 55.0);
        assert_eq!(*p.temps.last().unwrap(), 55.0);
    }
}
