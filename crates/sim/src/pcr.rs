//! Cycle-level PCR simulation.
//!
//! Each cycle, every species can be copied by any forward primer that binds
//! its 5' region together with the reverse primer binding its 3' region.
//! Three mechanisms drive the paper's observed behaviour:
//!
//! 1. **Exponential amplification** of perfectly-matched templates;
//! 2. **Index overwrite on mispriming** (§3.2, §8.1): when a primer binds a
//!    near-matching site (edit distance 1..=max), the *product* carries the
//!    primer's sequence as its new prefix — so a neighbour block's strand
//!    becomes indistinguishable, by address, from the target, and amplifies
//!    at full efficiency from then on;
//! 3. **Finite primer budgets**: every new copy consumes one forward and
//!    one reverse primer molecule, producing the familiar plateau and making
//!    leftover-primer carryover (§7.2: "18% of reads were discarded as they
//!    were amplified by the leftover main primers") a simple initial
//!    condition rather than a special case.

use crate::anneal::{AnnealModel, BindingSite};
use crate::fastpath::{self, ModelCache, Orientation};
use crate::molecule::StrandTag;
use crate::pool::Pool;
use crate::stats;
use dna_seq::DnaSeq;
use std::collections::{BTreeMap, HashMap};

/// A primer participating in a reaction, with a finite molecule budget.
#[derive(Debug, Clone, PartialEq)]
pub struct PcrPrimer {
    /// The primer sequence (for forward primers, matched against strand 5'
    /// prefixes; for the reverse primer, against the reverse complement).
    pub seq: DnaSeq,
    /// Available molecules. Use [`f64::INFINITY`] for "primer excess".
    pub budget: f64,
}

impl PcrPrimer {
    /// A primer with the given molecule budget.
    pub fn with_budget(seq: DnaSeq, budget: f64) -> PcrPrimer {
        PcrPrimer { seq, budget }
    }

    /// A primer in effective excess (never depletes).
    pub fn unlimited(seq: DnaSeq) -> PcrPrimer {
        PcrPrimer {
            seq,
            budget: f64::INFINITY,
        }
    }
}

/// The thermal protocol: one annealing temperature per cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct PcrProtocol {
    /// Annealing temperature (°C) for each cycle.
    pub temps: Vec<f64>,
    /// The annealing model.
    pub anneal: AnnealModel,
}

impl PcrProtocol {
    /// Constant-temperature protocol.
    pub fn standard(cycles: usize, temp: f64) -> PcrProtocol {
        PcrProtocol {
            temps: vec![temp; cycles],
            anneal: AnnealModel::calibrated(),
        }
    }

    /// Touchdown protocol: 1 °C decrease per cycle from `start` down to
    /// `end`, then `plateau_cycles` more at `end` (§6.5: "a decrease of 1°C
    /// per annealing step in each cycle, starting at 65°C, for 10 cycles,
    /// before amplification at 55°C ... for another 18 cycles").
    pub fn touchdown(start: f64, end: f64, plateau_cycles: usize) -> PcrProtocol {
        assert!(start >= end, "touchdown must cool down");
        let mut temps = Vec::new();
        let mut t = start;
        while t > end {
            temps.push(t);
            t -= 1.0;
        }
        temps.extend(std::iter::repeat_n(end, plateau_cycles));
        PcrProtocol {
            temps,
            anneal: AnnealModel::calibrated(),
        }
    }

    /// The paper's block-access protocol: touchdown 65→55 (10 cycles) plus
    /// 18 cycles at 55 °C.
    pub fn paper_block_access() -> PcrProtocol {
        PcrProtocol::touchdown(65.0, 55.0, 18)
    }

    /// The paper's plain amplification protocol: 15 cycles at 55 °C
    /// (§6.4.2).
    pub fn paper_amplification() -> PcrProtocol {
        PcrProtocol::standard(15, 55.0)
    }

    /// Number of cycles.
    pub fn cycles(&self) -> usize {
        self.temps.len()
    }
}

/// A configured reaction: forward primer set (singleton for simple PCR,
/// several for multiplex, §6.5), one reverse primer, and a protocol.
#[derive(Debug, Clone)]
pub struct PcrReaction {
    /// Forward primers (possibly elongated, possibly leftover carryover).
    pub forward_primers: Vec<PcrPrimer>,
    /// The reverse primer.
    pub reverse_primer: PcrPrimer,
    /// Thermal protocol.
    pub protocol: PcrProtocol,
}

/// One primer pair's worth of reagents inside a multiplex tube: any number
/// of (possibly elongated) forward primers plus the pair's reverse primer,
/// each with its own molecule budget.
#[derive(Debug, Clone)]
pub struct PrimerChannel {
    /// Forward primers of this pair (elongated per targeted leaf).
    pub forward_primers: Vec<PcrPrimer>,
    /// The pair's reverse primer.
    pub reverse_primer: PcrPrimer,
}

/// A multiplexed reaction: several primer *pairs* share one tube (Yazdi et
/// al.'s multiplexed primer pools; §6.5's three-primer mix is the
/// single-pair special case). Every forward primer can act on every
/// template and every reverse primer competes for 3' sites, so
/// cross-amplification between channels is modeled by the same
/// [`AnnealModel`] that drives mispriming in simple reactions.
#[derive(Debug, Clone)]
pub struct MultiplexPcrReaction {
    /// The primer pairs sharing the tube.
    pub channels: Vec<PrimerChannel>,
    /// Thermal protocol (one schedule for the whole tube — which is why
    /// multiplexed pairs must sit in one Tm window).
    pub protocol: PcrProtocol,
}

/// Result of running a multiplex reaction.
#[derive(Debug, Clone)]
pub struct MultiplexOutcome {
    /// The amplified pool (input species plus any mispriming products).
    pub pool: Pool,
    /// Forward-primer molecules consumed, per channel, per primer.
    pub fwd_consumed: Vec<Vec<f64>>,
    /// Reverse-primer molecules consumed, per channel.
    pub rev_consumed: Vec<f64>,
    /// Number of distinct mispriming product species created.
    pub misprime_species: usize,
}

/// Result of running a reaction.
#[derive(Debug, Clone)]
pub struct PcrOutcome {
    /// The amplified pool (input species plus any mispriming products).
    pub pool: Pool,
    /// Forward-primer molecules consumed, per primer.
    pub fwd_consumed: Vec<f64>,
    /// Reverse-primer molecules consumed.
    pub rev_consumed: f64,
    /// Number of distinct mispriming product species created.
    pub misprime_species: usize,
}

/// Per-species cached binding geometry (multiplex form: one slot per
/// flattened forward primer and one per channel's reverse primer). Used by
/// the reference engine; the fast path keeps sparse per-species lists
/// instead (see [`SpeciesBind`]).
struct BindingInfo {
    /// Binding geometry of each forward primer at this species' 5' site.
    fwd_site: Vec<Option<BindingSite>>,
    /// Binding geometry of each channel's reverse primer at the 3' site
    /// (via reverse complement).
    rev_site: Vec<Option<BindingSite>>,
}

/// Sparse binding lists for one species on the fast path: only the primers
/// that actually bind, in ascending primer order (so iteration matches the
/// reference engine's dense scan exactly).
struct SpeciesBind {
    /// `(flattened forward index, site)` for every binding forward primer.
    fwd: Vec<(u32, BindingSite)>,
    /// `(channel index, site)` for every binding reverse primer.
    rev: Vec<(u32, BindingSite)>,
}

impl SpeciesBind {
    fn compute(mc: &mut ModelCache, seq: &DnaSeq, fwd_ids: &[u32], rev_ids: &[u32]) -> SpeciesBind {
        SpeciesBind {
            fwd: fwd_ids
                .iter()
                .enumerate()
                .filter_map(|(fi, &id)| {
                    mc.site(seq, id, Orientation::Forward)
                        .map(|s| (fi as u32, s))
                })
                .collect(),
            rev: rev_ids
                .iter()
                .enumerate()
                .filter_map(|(ri, &id)| {
                    mc.site(seq, id, Orientation::Reverse)
                        .map(|s| (ri as u32, s))
                })
                .collect(),
        }
    }
}

impl PcrReaction {
    /// Runs the reaction on `input`, returning the amplified pool and
    /// consumption statistics. Deterministic (expected-value dynamics).
    ///
    /// Implemented as a single-channel [`MultiplexPcrReaction`] — the
    /// multiplex engine with one primer pair reproduces the simple-PCR
    /// dynamics exactly.
    pub fn run(&self, input: &Pool) -> PcrOutcome {
        Self::narrow(self.as_multiplex().run(input))
    }

    /// Reference engine (dense scan, no caches): the oracle the fast path
    /// is pinned against by `tests/fastpath_equiv.rs` and the
    /// `wetlab_hotpath` bench baseline. Produces bit-identical results to
    /// [`PcrReaction::run`], just slower.
    pub fn run_reference(&self, input: &Pool) -> PcrOutcome {
        Self::narrow(self.as_multiplex().run_reference(input))
    }

    fn as_multiplex(&self) -> MultiplexPcrReaction {
        MultiplexPcrReaction {
            channels: vec![PrimerChannel {
                forward_primers: self.forward_primers.clone(),
                reverse_primer: self.reverse_primer.clone(),
            }],
            protocol: self.protocol.clone(),
        }
    }

    fn narrow(out: MultiplexOutcome) -> PcrOutcome {
        PcrOutcome {
            pool: out.pool,
            fwd_consumed: out.fwd_consumed.into_iter().next().unwrap_or_default(),
            rev_consumed: out.rev_consumed.first().copied().unwrap_or(0.0),
            misprime_species: out.misprime_species,
        }
    }
}

impl MultiplexPcrReaction {
    /// Runs the multiplexed reaction on `input`. Deterministic
    /// (expected-value dynamics, like [`PcrReaction::run`]).
    ///
    /// Every cycle, each template is primed at its 3' site by the *best
    /// binding* reverse primer in the tube (mutually distant pairs mean at
    /// most one binds in practice) and at its 5' site by every forward
    /// primer whose annealing probability is non-zero — including other
    /// channels' primers, which is exactly the cross-amplification risk
    /// multiplexing introduces. Budgets are tracked per primer, so one
    /// channel plateauing never silently throttles another.
    ///
    /// This is the fast path: species are prefiltered through the k-mer
    /// annealing index (see `fastpath`), binding geometry and probabilities
    /// are served from thread-local caches that survive across cycles and
    /// rounds, contributions reference species by index instead of cloned
    /// sequences, and per-cycle updates touch only the amplified species —
    /// the output pool is the input plus a sparse delta. Results are
    /// bit-identical to [`MultiplexPcrReaction::run_reference`] (pinned by
    /// `tests/fastpath_equiv.rs`).
    pub fn run(&self, input: &Pool) -> MultiplexOutcome {
        let forwards: Vec<(usize, &PcrPrimer)> = self
            .channels
            .iter()
            .enumerate()
            .flat_map(|(ci, ch)| ch.forward_primers.iter().map(move |p| (ci, p)))
            .collect();
        let reverses: Vec<&PcrPrimer> = self.channels.iter().map(|ch| &ch.reverse_primer).collect();

        let out = fastpath::with_model_cache(&self.protocol.anneal, |mc| {
            self.run_cached(input, &forwards, &reverses, mc)
        });
        stats::flush_to_global();
        out
    }

    /// The fast engine body, running against one thread-local model cache.
    fn run_cached(
        &self,
        input: &Pool,
        forwards: &[(usize, &PcrPrimer)],
        reverses: &[&PcrPrimer],
        mc: &mut ModelCache,
    ) -> MultiplexOutcome {
        let fwd_ids: Vec<u32> = forwards
            .iter()
            .map(|(_, p)| mc.intern_primer(&p.seq))
            .collect();
        let rev_ids: Vec<u32> = reverses.iter().map(|p| mc.intern_primer(&p.seq)).collect();

        // Indexed working state: one slot per species (input species first,
        // mispriming products appended as they are created). `order` keeps
        // the indices sorted by sequence so every cycle scans species in
        // exactly the reference engine's `BTreeMap` order — float
        // accumulation order, and therefore every bit of the result, is
        // preserved.
        let n0 = input.distinct();
        let mut seqs: Vec<DnaSeq> = Vec::with_capacity(n0);
        let mut ab: Vec<f64> = Vec::with_capacity(n0);
        let mut tags: Vec<Option<StrandTag>> = Vec::with_capacity(n0);
        for (seq, sp) in input.iter() {
            seqs.push(seq.clone());
            ab.push(sp.abundance);
            tags.push(sp.tag);
        }
        let mut present: Vec<bool> = vec![true; n0];
        let mut changed: Vec<bool> = vec![false; n0];
        let mut order: Vec<u32> = (0..n0 as u32).collect();
        let mut bind: Vec<Option<SpeciesBind>> = (0..n0).map(|_| None).collect();
        // (template index, flattened forward index) → product species index.
        let mut product_memo: HashMap<(u32, u32), u32> = HashMap::new();

        let mut fwd_left: Vec<f64> = forwards.iter().map(|(_, p)| p.budget).collect();
        let mut rev_left: Vec<f64> = reverses.iter().map(|p| p.budget).collect();
        let mut fwd_used = vec![0.0; forwards.len()];
        let mut rev_used = vec![0.0; reverses.len()];
        let mut misprime_species = 0usize;

        // Reused per-cycle buffers.
        let mut contributions: Vec<(u32, u32, u32, f64, bool)> = Vec::new();
        let mut additions: Vec<(u32, f64, Option<StrandTag>)> = Vec::new();
        let mut added_now: Vec<u32> = Vec::new();
        let mut fwd_demand = vec![0.0; forwards.len()];
        let mut rev_demand = vec![0.0; reverses.len()];

        for &temp in &self.protocol.temps {
            // Pass 1: desired contributions, touching only species with at
            // least one binding forward and reverse primer.
            contributions.clear();
            fwd_demand.fill(0.0);
            rev_demand.fill(0.0);
            for &si in &order {
                let i = si as usize;
                if !present[i] || ab[i] <= 0.0 {
                    continue;
                }
                let b = bind[i]
                    .get_or_insert_with(|| SpeciesBind::compute(mc, &seqs[i], &fwd_ids, &rev_ids));
                // The template's 3' site goes to the best-binding reverse
                // primer this cycle (ties → lowest channel, deterministic).
                let mut best_rev: Option<(u32, f64)> = None;
                for &(ri, site) in &b.rev {
                    let p = mc.probability(rev_ids[ri as usize], site, temp);
                    if p > 0.0 && best_rev.is_none_or(|(_, bp)| p > bp) {
                        best_rev = Some((ri, p));
                    }
                }
                let Some((ri, p_rev)) = best_rev else {
                    continue;
                };
                for &(fi, site) in &b.fwd {
                    let p_fwd = mc.probability(fwd_ids[fi as usize], site, temp);
                    if p_fwd <= 0.0 {
                        continue;
                    }
                    // Per-cycle duplex yield is limited by the weaker primer:
                    // each strand of the duplex is primed independently, so
                    // overall efficiency tracks min(p_fwd, p_rev), the
                    // standard per-cycle efficiency model.
                    let copies = ab[i] * p_fwd.min(p_rev);
                    if copies <= 0.0 {
                        continue;
                    }
                    fwd_demand[fi as usize] += copies;
                    rev_demand[ri as usize] += copies;
                    // dist > 0 ⇒ index overwrite: the product carries the
                    // primer as its new prefix (materialized in pass 2).
                    contributions.push((si, fi, ri, copies, site.dist != 0));
                }
            }
            if contributions.is_empty() {
                continue;
            }
            // Pass 2: scale by primer budgets and apply.
            let rev_factor: Vec<f64> = rev_demand
                .iter()
                .zip(&rev_left)
                .map(|(&d, &left)| if d > left { left / d } else { 1.0 })
                .collect();
            let fwd_factor: Vec<f64> = fwd_demand
                .iter()
                .zip(&fwd_left)
                .map(|(&d, &left)| if d > left { left / d } else { 1.0 })
                .collect();
            additions.clear();
            added_now.clear();
            for &(si, fi, ri, copies, mispriming) in &contributions {
                let actual = copies * fwd_factor[fi as usize].min(rev_factor[ri as usize]);
                if actual <= 0.0 {
                    continue;
                }
                fwd_used[fi as usize] += actual;
                fwd_left[fi as usize] -= actual;
                rev_used[ri as usize] += actual;
                rev_left[ri as usize] -= actual;
                if !mispriming {
                    // Faithful copy of an existing species.
                    additions.push((si, actual, None));
                    added_now.push(si);
                    continue;
                }
                let pi = match product_memo.get(&(si, fi)) {
                    Some(&pi) => pi,
                    None => {
                        let primer = &forwards[fi as usize].1.seq;
                        let template = &seqs[si as usize];
                        let mut ns = primer.clone();
                        if primer.len() < template.len() {
                            ns.extend_from_slice(&template.as_slice()[primer.len()..]);
                        }
                        let pi = match order.binary_search_by(|&j| seqs[j as usize].cmp(&ns)) {
                            Ok(pos) => order[pos],
                            Err(pos) => {
                                let idx = seqs.len() as u32;
                                seqs.push(ns);
                                ab.push(0.0);
                                tags.push(None);
                                present.push(false);
                                changed.push(false);
                                bind.push(None);
                                order.insert(pos, idx);
                                idx
                            }
                        };
                        product_memo.insert((si, fi), pi);
                        pi
                    }
                };
                let tag = tags[si as usize].map(|mut t| {
                    t.prefix_overwritten = true;
                    t
                });
                if !present[pi as usize] && !added_now.contains(&pi) {
                    misprime_species += 1;
                }
                additions.push((pi, actual, tag));
                added_now.push(pi);
            }
            for &(idx, actual, tag) in &additions {
                let i = idx as usize;
                if present[i] {
                    // Merge keeps the existing tag, like `Pool::add`.
                    ab[i] += actual;
                } else {
                    present[i] = true;
                    ab[i] = actual;
                    tags[i] = tag;
                }
                changed[i] = true;
            }
            for left in fwd_left.iter_mut().chain(rev_left.iter_mut()) {
                *left = left.max(0.0);
            }
        }

        // Copy-on-write output: the input pool plus the sparse delta of
        // amplified species and new products.
        let mut pool = input.clone();
        for i in 0..seqs.len() {
            if changed[i] && present[i] {
                pool.set_species(seqs[i].clone(), ab[i], tags[i]);
            }
        }

        // Un-flatten per-channel consumption.
        let mut fwd_consumed: Vec<Vec<f64>> = self
            .channels
            .iter()
            .map(|ch| Vec::with_capacity(ch.forward_primers.len()))
            .collect();
        for ((ci, _), used) in forwards.iter().zip(&fwd_used) {
            fwd_consumed[*ci].push(*used);
        }
        MultiplexOutcome {
            pool,
            fwd_consumed,
            rev_consumed: rev_used,
            misprime_species,
        }
    }

    /// Reference engine: the original dense per-cycle scan with no caches
    /// and no prefilter. Kept as the oracle for the golden-equivalence
    /// suite and as the microbench baseline — [`MultiplexPcrReaction::run`]
    /// must produce bit-identical pools, budgets and misprime counts.
    pub fn run_reference(&self, input: &Pool) -> MultiplexOutcome {
        let anneal = &self.protocol.anneal;
        // Flatten forwards, remembering each primer's channel.
        let forwards: Vec<(usize, &PcrPrimer)> = self
            .channels
            .iter()
            .enumerate()
            .flat_map(|(ci, ch)| ch.forward_primers.iter().map(move |p| (ci, p)))
            .collect();
        let reverses: Vec<&PcrPrimer> = self.channels.iter().map(|ch| &ch.reverse_primer).collect();

        let mut pool = input.clone();
        let mut info: BTreeMap<DnaSeq, BindingInfo> = BTreeMap::new();
        let mut fwd_left: Vec<f64> = forwards.iter().map(|(_, p)| p.budget).collect();
        let mut rev_left: Vec<f64> = reverses.iter().map(|p| p.budget).collect();
        let mut fwd_used = vec![0.0; forwards.len()];
        let mut rev_used = vec![0.0; reverses.len()];
        let mut misprime_species = 0usize;

        for &temp in &self.protocol.temps {
            // Pass 1: compute desired contributions.
            // (species_seq, fwd_idx, rev_idx, copies, product_seq_if_misprimed)
            let mut contributions: Vec<(DnaSeq, usize, usize, f64, Option<DnaSeq>)> = Vec::new();
            let mut fwd_demand = vec![0.0; forwards.len()];
            let mut rev_demand = vec![0.0; reverses.len()];
            for (seq, species) in pool.iter() {
                if species.abundance <= 0.0 {
                    continue;
                }
                let entry = info.entry(seq.clone()).or_insert_with(|| BindingInfo {
                    fwd_site: forwards
                        .iter()
                        .map(|(_, p)| anneal.binding_site(&p.seq, seq))
                        .collect(),
                    rev_site: {
                        let rc = seq.reverse_complement();
                        reverses
                            .iter()
                            .map(|p| anneal.binding_site(&p.seq, &rc))
                            .collect()
                    },
                });
                // The template's 3' site goes to the best-binding reverse
                // primer this cycle (ties → lowest channel, deterministic).
                let mut best_rev: Option<(usize, f64)> = None;
                for (ri, site) in entry.rev_site.iter().enumerate() {
                    let Some(s) = site else { continue };
                    let p = anneal.binding_probability(&reverses[ri].seq, *s, temp);
                    if p > 0.0 && best_rev.is_none_or(|(_, bp)| p > bp) {
                        best_rev = Some((ri, p));
                    }
                }
                let Some((ri, p_rev)) = best_rev else {
                    continue;
                };
                for (fi, (_, primer)) in forwards.iter().enumerate() {
                    let Some(site) = entry.fwd_site[fi] else {
                        continue;
                    };
                    let d = site.dist;
                    let p_fwd = anneal.binding_probability(&primer.seq, site, temp);
                    if p_fwd <= 0.0 {
                        continue;
                    }
                    // Per-cycle duplex yield is limited by the weaker primer:
                    // each strand of the duplex is primed independently, so
                    // overall efficiency tracks min(p_fwd, p_rev), the
                    // standard per-cycle efficiency model.
                    let copies = species.abundance * p_fwd.min(p_rev);
                    if copies <= 0.0 {
                        continue;
                    }
                    let product = if d == 0 {
                        None // faithful copy of the template
                    } else {
                        // Index overwrite: the product starts with the primer
                        // itself, then continues with the template past the
                        // primer-length mark.
                        let mut ns = primer.seq.clone();
                        if primer.seq.len() < seq.len() {
                            ns.extend_from_slice(&seq.as_slice()[primer.seq.len()..]);
                        }
                        Some(ns)
                    };
                    fwd_demand[fi] += copies;
                    rev_demand[ri] += copies;
                    contributions.push((seq.clone(), fi, ri, copies, product));
                }
            }
            if contributions.is_empty() {
                continue;
            }
            // Pass 2: scale by primer budgets and apply.
            let rev_factor: Vec<f64> = rev_demand
                .iter()
                .zip(&rev_left)
                .map(|(&d, &left)| if d > left { left / d } else { 1.0 })
                .collect();
            let fwd_factor: Vec<f64> = fwd_demand
                .iter()
                .zip(&fwd_left)
                .map(|(&d, &left)| if d > left { left / d } else { 1.0 })
                .collect();
            let mut additions: Vec<(DnaSeq, f64, Option<crate::StrandTag>)> = Vec::new();
            for (seq, fi, ri, copies, product) in contributions {
                let actual = copies * fwd_factor[fi].min(rev_factor[ri]);
                if actual <= 0.0 {
                    continue;
                }
                fwd_used[fi] += actual;
                fwd_left[fi] -= actual;
                rev_used[ri] += actual;
                rev_left[ri] -= actual;
                match product {
                    None => additions.push((seq, actual, None)),
                    Some(product_seq) => {
                        let tag = pool.get(&seq).and_then(|s| s.tag).map(|mut t| {
                            t.prefix_overwritten = true;
                            t
                        });
                        if pool.get(&product_seq).is_none()
                            && !additions.iter().any(|(s, _, _)| *s == product_seq)
                        {
                            misprime_species += 1;
                        }
                        additions.push((product_seq, actual, tag));
                    }
                }
            }
            for (seq, copies, tag) in additions {
                match tag {
                    Some(t) => pool.add(seq, copies, Some(t)),
                    None => {
                        let existing = pool.get(&seq).and_then(|s| s.tag);
                        pool.add(seq, copies, existing);
                    }
                }
            }
            for left in fwd_left.iter_mut().chain(rev_left.iter_mut()) {
                *left = left.max(0.0);
            }
        }

        // Un-flatten per-channel consumption.
        let mut fwd_consumed: Vec<Vec<f64>> = self
            .channels
            .iter()
            .map(|ch| Vec::with_capacity(ch.forward_primers.len()))
            .collect();
        for ((ci, _), used) in forwards.iter().zip(&fwd_used) {
            fwd_consumed[*ci].push(*used);
        }
        MultiplexOutcome {
            pool,
            fwd_consumed,
            rev_consumed: rev_used,
            misprime_species,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecule::StrandTag;
    use dna_seq::Base;

    fn balanced(n: usize, phase: usize) -> DnaSeq {
        DnaSeq::from_bases((0..n).map(|i| Base::from_code(((i + phase) % 4) as u8)))
    }

    /// fwd(20) + payload + rc(rev(20)) strand around the given payload.
    fn strand(fwd: &DnaSeq, payload: &DnaSeq, rev: &DnaSeq) -> DnaSeq {
        fwd.concat(payload).concat(&rev.reverse_complement())
    }

    fn fwd() -> DnaSeq {
        "AACCGGTTAACCGGTTAACC".parse().unwrap()
    }

    fn rev() -> DnaSeq {
        "AAGGCCTTAAGGCCTTAAGG".parse().unwrap()
    }

    #[test]
    fn matched_template_amplifies_exponentially() {
        let mut pool = Pool::new();
        let s = strand(&fwd(), &balanced(60, 0), &rev());
        pool.add(s.clone(), 100.0, Some(StrandTag::new(0, 1, 0, 0)));
        let rxn = PcrReaction {
            forward_primers: vec![PcrPrimer::unlimited(fwd())],
            reverse_primer: PcrPrimer::unlimited(rev()),
            protocol: PcrProtocol::standard(10, 55.0),
        };
        let out = rxn.run(&pool);
        let final_ab = out.pool.get(&s).unwrap().abundance;
        // 10 cycles at ~0.6+ efficiency: at least 2^6 = 64x growth.
        assert!(final_ab > 100.0 * 64.0, "only {final_ab}");
        assert_eq!(out.misprime_species, 0);
    }

    #[test]
    fn unrelated_template_does_not_amplify() {
        let mut pool = Pool::new();
        let target = strand(&fwd(), &balanced(60, 0), &rev());
        let other_fwd = balanced(20, 1);
        let other = strand(&other_fwd, &balanced(60, 2), &rev());
        pool.add(target.clone(), 100.0, None);
        pool.add(other.clone(), 100.0, None);
        let rxn = PcrReaction {
            forward_primers: vec![PcrPrimer::unlimited(fwd())],
            reverse_primer: PcrPrimer::unlimited(rev()),
            protocol: PcrProtocol::standard(12, 55.0),
        };
        let out = rxn.run(&pool);
        let t = out.pool.get(&target).unwrap().abundance;
        let o = out.pool.get(&other).unwrap().abundance;
        assert!(
            t / o > 1000.0,
            "selectivity too weak: target {t}, other {o}"
        );
        assert_eq!(o, 100.0, "unrelated strand must not grow");
    }

    #[test]
    fn primer_budget_caps_growth() {
        let mut pool = Pool::new();
        let s = strand(&fwd(), &balanced(60, 0), &rev());
        pool.add(s.clone(), 100.0, None);
        let rxn = PcrReaction {
            forward_primers: vec![PcrPrimer::with_budget(fwd(), 5_000.0)],
            reverse_primer: PcrPrimer::unlimited(rev()),
            protocol: PcrProtocol::standard(20, 55.0),
        };
        let out = rxn.run(&pool);
        let final_ab = out.pool.get(&s).unwrap().abundance;
        assert!(
            final_ab <= 100.0 + 5_000.0 + 1e-6,
            "budget violated: {final_ab}"
        );
        assert!(final_ab > 5_000.0 * 0.99, "budget should be ~exhausted");
        assert!((out.fwd_consumed[0] - 5_000.0).abs() < 1.0);
    }

    #[test]
    fn conservation_budget_equals_new_copies() {
        let mut pool = Pool::new();
        let s = strand(&fwd(), &balanced(60, 0), &rev());
        pool.add(s.clone(), 50.0, None);
        let rxn = PcrReaction {
            forward_primers: vec![PcrPrimer::unlimited(fwd())],
            reverse_primer: PcrPrimer::unlimited(rev()),
            protocol: PcrProtocol::standard(8, 55.0),
        };
        let out = rxn.run(&pool);
        let grown = out.pool.total_copies() - pool.total_copies();
        assert!((grown - out.fwd_consumed[0]).abs() < 1e-6);
        assert!((grown - out.rev_consumed).abs() < 1e-6);
    }

    #[test]
    fn mispriming_overwrites_prefix_and_then_amplifies() {
        // Elongated primer = fwd + 10-base extension. A neighbour template
        // whose extension differs by 2 edits should yield a product carrying
        // the TARGET's prefix but the NEIGHBOUR's payload.
        let ext_target: DnaSeq = "ACAGTCTGAC".parse().unwrap();
        let ext_near: DnaSeq = "ACAGTCGTAC".parse().unwrap(); // 2 edits away
        let elongated = fwd().concat(&ext_target);
        let payload_t = balanced(50, 0);
        let payload_n = balanced(50, 2);
        let target = fwd()
            .concat(&ext_target)
            .concat(&payload_t)
            .concat(&rev().reverse_complement());
        let near = fwd()
            .concat(&ext_near)
            .concat(&payload_n)
            .concat(&rev().reverse_complement());
        let mut pool = Pool::new();
        pool.add(target.clone(), 100.0, Some(StrandTag::new(0, 1, 0, 0)));
        pool.add(near.clone(), 100.0, Some(StrandTag::new(0, 2, 0, 0)));
        let rxn = PcrReaction {
            forward_primers: vec![PcrPrimer::unlimited(elongated.clone())],
            reverse_primer: PcrPrimer::unlimited(rev()),
            protocol: PcrProtocol::standard(15, 55.0),
        };
        let out = rxn.run(&pool);
        assert!(out.misprime_species >= 1, "expected mispriming products");
        // The misprimed product: elongated primer + near's payload tail.
        let mut product = elongated.clone();
        product.extend_from_slice(&near.as_slice()[elongated.len()..]);
        let ms = out.pool.get(&product).expect("misprime product exists");
        assert!(ms.tag.unwrap().prefix_overwritten);
        assert_eq!(ms.tag.unwrap().unit, 2, "payload provenance preserved");
        // It must amplify far beyond its source (index now matches primer).
        assert!(ms.abundance > 10.0 * out.pool.get(&near).unwrap().abundance);
        // But target still dominates.
        let t = out.pool.get(&target).unwrap().abundance;
        assert!(t > ms.abundance, "target {t} vs misprime {}", ms.abundance);
    }

    #[test]
    fn touchdown_reduces_mispriming_vs_flat_protocol() {
        let ext_target: DnaSeq = "ACAGTCTGAC".parse().unwrap();
        let ext_near: DnaSeq = "ACAGTCGTAC".parse().unwrap();
        let elongated = fwd().concat(&ext_target);
        let target = fwd()
            .concat(&ext_target)
            .concat(&balanced(50, 0))
            .concat(&rev().reverse_complement());
        let near = fwd()
            .concat(&ext_near)
            .concat(&balanced(50, 2))
            .concat(&rev().reverse_complement());
        let mut pool = Pool::new();
        pool.add(target.clone(), 100.0, Some(StrandTag::new(0, 1, 0, 0)));
        pool.add(near.clone(), 100.0, Some(StrandTag::new(0, 2, 0, 0)));

        let run = |protocol: PcrProtocol| {
            let rxn = PcrReaction {
                forward_primers: vec![PcrPrimer::unlimited(elongated.clone())],
                reverse_primer: PcrPrimer::unlimited(rev()),
                protocol,
            };
            let out = rxn.run(&pool);
            let wrong: f64 = out
                .pool
                .iter()
                .filter(|(_, s)| {
                    s.tag
                        .map(|t| t.unit == 2 && t.prefix_overwritten)
                        .unwrap_or(false)
                })
                .map(|(_, s)| s.abundance)
                .sum();
            let right = out.pool.get(&target).unwrap().abundance;
            wrong / right
        };
        // Same total cycle count: 28 flat vs 10 touchdown + 18 flat.
        let flat = run(PcrProtocol::standard(28, 55.0));
        let td = run(PcrProtocol::paper_block_access());
        assert!(
            td < flat,
            "touchdown misprime ratio {td:.4} should beat flat {flat:.4}"
        );
    }

    #[test]
    fn multiplex_amplifies_all_targets() {
        // §6.5: "the last utilized an equal mix of all three for multiplexed
        // amplification".
        let exts: Vec<DnaSeq> = vec![
            "ACAGTCTGAC".parse().unwrap(),
            "TGTCAGACTG".parse().unwrap(),
            "CATGCATGCA".parse().unwrap(),
        ];
        let mut pool = Pool::new();
        let mut strands = Vec::new();
        for (i, ext) in exts.iter().enumerate() {
            let s = fwd()
                .concat(ext)
                .concat(&balanced(50, i))
                .concat(&rev().reverse_complement());
            pool.add(s.clone(), 100.0, Some(StrandTag::new(0, i as u64, 0, 0)));
            strands.push(s);
        }
        // a fourth, unrelated block
        let other = fwd()
            .concat(&"GACTGACTGA".parse::<DnaSeq>().unwrap())
            .concat(&balanced(50, 3))
            .concat(&rev().reverse_complement());
        pool.add(other.clone(), 100.0, Some(StrandTag::new(0, 99, 0, 0)));

        let rxn = PcrReaction {
            forward_primers: exts
                .iter()
                .map(|e| PcrPrimer::unlimited(fwd().concat(e)))
                .collect(),
            reverse_primer: PcrPrimer::unlimited(rev()),
            protocol: PcrProtocol::paper_block_access(),
        };
        let out = rxn.run(&pool);
        let o = out.pool.get(&other).unwrap().abundance;
        for (i, s) in strands.iter().enumerate() {
            let t = out.pool.get(s).unwrap().abundance;
            assert!(t / o > 100.0, "multiplex target {i} too weak: {t} vs {o}");
        }
    }

    #[test]
    fn multiplex_pairs_amplify_their_own_partitions() {
        // Two partitions with mutually distant primer pairs in one tube:
        // each pair's target grows; a third partition with no primers in
        // the tube stays flat.
        let fwd_b: DnaSeq = "CAGTGACTCAGTGACTCAGT".parse().unwrap();
        let rev_b: DnaSeq = "GTCAGTCAGTCAGTCAGTCA".parse().unwrap();
        let fwd_c: DnaSeq = "TGACTGACTGACTGACTGAC".parse().unwrap();
        let rev_c: DnaSeq = "ACTGACTGACTGACTGACTG".parse().unwrap();
        let sa = strand(&fwd(), &balanced(60, 0), &rev());
        let sb = fwd_b
            .concat(&balanced(60, 1))
            .concat(&rev_b.reverse_complement());
        let sc = fwd_c
            .concat(&balanced(60, 2))
            .concat(&rev_c.reverse_complement());
        let mut pool = Pool::new();
        pool.add(sa.clone(), 100.0, Some(StrandTag::new(0, 1, 0, 0)));
        pool.add(sb.clone(), 100.0, Some(StrandTag::new(1, 2, 0, 0)));
        pool.add(sc.clone(), 100.0, Some(StrandTag::new(2, 3, 0, 0)));
        let rxn = MultiplexPcrReaction {
            channels: vec![
                PrimerChannel {
                    forward_primers: vec![PcrPrimer::unlimited(fwd())],
                    reverse_primer: PcrPrimer::unlimited(rev()),
                },
                PrimerChannel {
                    forward_primers: vec![PcrPrimer::unlimited(fwd_b.clone())],
                    reverse_primer: PcrPrimer::unlimited(rev_b.clone()),
                },
            ],
            protocol: PcrProtocol::standard(12, 55.0),
        };
        let out = rxn.run(&pool);
        let a = out.pool.get(&sa).unwrap().abundance;
        let b = out.pool.get(&sb).unwrap().abundance;
        let c = out.pool.get(&sc).unwrap().abundance;
        assert!(a > 100.0 * 50.0, "channel A target too weak: {a}");
        assert!(b > 100.0 * 50.0, "channel B target too weak: {b}");
        assert_eq!(c, 100.0, "untargeted partition must not grow");
        // Per-channel accounting: both channels consumed primers.
        assert!(out.fwd_consumed[0][0] > 0.0);
        assert!(out.fwd_consumed[1][0] > 0.0);
        assert!(out.rev_consumed[0] > 0.0);
        assert!(out.rev_consumed[1] > 0.0);
    }

    #[test]
    fn per_channel_budget_caps_only_its_own_pair() {
        let fwd_b: DnaSeq = "CAGTGACTCAGTGACTCAGT".parse().unwrap();
        let rev_b: DnaSeq = "GTCAGTCAGTCAGTCAGTCA".parse().unwrap();
        let sa = strand(&fwd(), &balanced(60, 0), &rev());
        let sb = fwd_b
            .concat(&balanced(60, 1))
            .concat(&rev_b.reverse_complement());
        let mut pool = Pool::new();
        pool.add(sa.clone(), 100.0, None);
        pool.add(sb.clone(), 100.0, None);
        let rxn = MultiplexPcrReaction {
            channels: vec![
                PrimerChannel {
                    forward_primers: vec![PcrPrimer::with_budget(fwd(), 2_000.0)],
                    reverse_primer: PcrPrimer::unlimited(rev()),
                },
                PrimerChannel {
                    forward_primers: vec![PcrPrimer::unlimited(fwd_b.clone())],
                    reverse_primer: PcrPrimer::unlimited(rev_b.clone()),
                },
            ],
            protocol: PcrProtocol::standard(20, 55.0),
        };
        let out = rxn.run(&pool);
        let a = out.pool.get(&sa).unwrap().abundance;
        let b = out.pool.get(&sb).unwrap().abundance;
        assert!(a <= 100.0 + 2_000.0 + 1e-6, "budget violated: {a}");
        assert!(
            b > 100.0 * 1000.0,
            "unbudgeted channel should keep growing: {b}"
        );
    }

    #[test]
    fn single_channel_multiplex_matches_simple_reaction() {
        // The multiplex engine with one pair must reproduce PcrReaction
        // exactly (PcrReaction::run delegates, so this guards the mapping).
        let mut pool = Pool::new();
        let s = strand(&fwd(), &balanced(60, 0), &rev());
        pool.add(s.clone(), 100.0, None);
        let simple = PcrReaction {
            forward_primers: vec![PcrPrimer::with_budget(fwd(), 50_000.0)],
            reverse_primer: PcrPrimer::with_budget(rev(), 60_000.0),
            protocol: PcrProtocol::paper_block_access(),
        };
        let multi = MultiplexPcrReaction {
            channels: vec![PrimerChannel {
                forward_primers: simple.forward_primers.clone(),
                reverse_primer: simple.reverse_primer.clone(),
            }],
            protocol: simple.protocol.clone(),
        };
        let a = simple.run(&pool);
        let b = multi.run(&pool);
        assert_eq!(a.pool, b.pool);
        assert_eq!(a.fwd_consumed, b.fwd_consumed[0]);
        assert_eq!(a.rev_consumed, b.rev_consumed[0]);
    }

    #[test]
    fn touchdown_protocol_shape() {
        let p = PcrProtocol::paper_block_access();
        assert_eq!(p.cycles(), 28); // 10 touchdown (65..56) + 18 at 55
        assert_eq!(p.temps[0], 65.0);
        assert_eq!(p.temps[9], 56.0);
        assert_eq!(p.temps[10], 55.0);
        assert_eq!(*p.temps.last().unwrap(), 55.0);
    }
}
