//! Simulator work counters (`WetlabStats`).
//!
//! The fast path (k-mer annealing prefilter, binding caches, sequencing and
//! decode scratch reuse) changes *how much work* the simulator does without
//! changing any observable result. These counters make that work visible:
//! tests assert the prefilter actually skips species (no silent fallback to
//! a full scan), and the serving layer exports them per process so operators
//! can see simulator effort behind each request mix.
//!
//! Two banks are kept:
//!
//! - **thread-local totals** — monotone per-thread counters, cheap plain
//!   adds on the hot path; tests capture before/after deltas on the current
//!   thread without interference from concurrently running tests;
//! - **process-global totals** — relaxed atomics, updated by bulk flush at
//!   the end of each simulator entry point (`MultiplexPcrReaction::run`,
//!   `Sequencer::sequence*`, decode calls), read by `ServerStats`.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of counters in [`WetlabStats`].
pub const WETLAB_COUNTERS: usize = 6;

/// A snapshot of simulator work counters.
///
/// All counters are monotone totals; subtract two snapshots to measure a
/// region of work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WetlabStats {
    /// (species, primer, orientation) pairs whose binding geometry was
    /// computed with a full `binding_site` alignment scan.
    pub species_scanned: u64,
    /// Pairs rejected by the k-mer prefilter without running the alignment
    /// scan (the prefilter proves no window within `max_edit` exists).
    pub species_skipped: u64,
    /// Pairs answered from the cross-cycle/cross-round binding cache.
    pub binding_cache_hits: u64,
    /// Fresh annealing-model evaluations (`binding_site` alignments plus
    /// memo-missing `binding_probability` computations).
    pub anneal_calls: u64,
    /// Reads drawn from pools by the sequencer.
    pub reads_materialized: u64,
    /// Times a reusable scratch (sequencer cumulative-weight table, decode
    /// arena) was reused instead of rebuilt.
    pub scratch_reuses: u64,
}

impl WetlabStats {
    fn from_array(a: [u64; WETLAB_COUNTERS]) -> WetlabStats {
        WetlabStats {
            species_scanned: a[0],
            species_skipped: a[1],
            binding_cache_hits: a[2],
            anneal_calls: a[3],
            reads_materialized: a[4],
            scratch_reuses: a[5],
        }
    }

    /// Counter-wise saturating difference (`self - earlier`).
    pub fn delta_since(&self, earlier: &WetlabStats) -> WetlabStats {
        WetlabStats {
            species_scanned: self.species_scanned.saturating_sub(earlier.species_scanned),
            species_skipped: self.species_skipped.saturating_sub(earlier.species_skipped),
            binding_cache_hits: self
                .binding_cache_hits
                .saturating_sub(earlier.binding_cache_hits),
            anneal_calls: self.anneal_calls.saturating_sub(earlier.anneal_calls),
            reads_materialized: self
                .reads_materialized
                .saturating_sub(earlier.reads_materialized),
            scratch_reuses: self.scratch_reuses.saturating_sub(earlier.scratch_reuses),
        }
    }
}

const SCANNED: usize = 0;
const SKIPPED: usize = 1;
const CACHE_HITS: usize = 2;
const ANNEAL: usize = 3;
const READS: usize = 4;
const SCRATCH: usize = 5;

thread_local! {
    /// Per-thread monotone totals plus the portion already flushed to the
    /// global bank.
    static LOCAL: Cell<[u64; WETLAB_COUNTERS]> = const { Cell::new([0; WETLAB_COUNTERS]) };
    static FLUSHED: Cell<[u64; WETLAB_COUNTERS]> = const { Cell::new([0; WETLAB_COUNTERS]) };
}

static GLOBAL: [AtomicU64; WETLAB_COUNTERS] = [const { AtomicU64::new(0) }; WETLAB_COUNTERS];

#[inline]
fn bump(idx: usize, by: u64) {
    LOCAL.with(|l| {
        let mut a = l.get();
        a[idx] += by;
        l.set(a);
    });
}

pub(crate) fn record_species_scanned(by: u64) {
    bump(SCANNED, by);
}

pub(crate) fn record_species_skipped(by: u64) {
    bump(SKIPPED, by);
}

pub(crate) fn record_binding_cache_hits(by: u64) {
    bump(CACHE_HITS, by);
}

pub(crate) fn record_anneal_calls(by: u64) {
    bump(ANNEAL, by);
}

pub(crate) fn record_reads_materialized(by: u64) {
    bump(READS, by);
}

/// Records that a reusable scratch was reused instead of rebuilt.
///
/// Public because downstream pipeline stages (decode arenas) report their
/// reuse through the same bank.
pub fn record_scratch_reuse(by: u64) {
    bump(SCRATCH, by);
}

/// Flushes this thread's unflushed counts into the process-global bank.
///
/// Called at the end of each simulator entry point; downstream crates that
/// record through this module (e.g. decode scratch) should call it when a
/// unit of work completes so serving snapshots stay fresh.
pub fn flush_to_global() {
    let local = LOCAL.with(Cell::get);
    let flushed = FLUSHED.with(Cell::get);
    for i in 0..WETLAB_COUNTERS {
        let d = local[i] - flushed[i];
        if d > 0 {
            GLOBAL[i].fetch_add(d, Ordering::Relaxed);
        }
    }
    FLUSHED.with(|f| f.set(local));
}

/// This thread's monotone totals (including unflushed counts). Tests diff
/// two calls around a region of work.
pub fn thread_totals() -> WetlabStats {
    WetlabStats::from_array(LOCAL.with(Cell::get))
}

/// Process-global totals (flushed counts from all threads).
pub fn global_totals() -> WetlabStats {
    let mut a = [0u64; WETLAB_COUNTERS];
    for (slot, g) in a.iter_mut().zip(&GLOBAL) {
        *slot = g.load(Ordering::Relaxed);
    }
    WetlabStats::from_array(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_totals_are_monotone_and_flush_reaches_global() {
        let before_thread = thread_totals();
        let before_global = global_totals();
        record_species_scanned(3);
        record_species_skipped(10);
        record_scratch_reuse(1);
        let d = thread_totals().delta_since(&before_thread);
        assert_eq!(d.species_scanned, 3);
        assert_eq!(d.species_skipped, 10);
        assert_eq!(d.scratch_reuses, 1);
        // Flushing publishes the delta to the global bank (other threads may
        // add concurrently, so only lower bounds hold).
        flush_to_global();
        flush_to_global(); // idempotent: second flush has nothing new
        let g = global_totals().delta_since(&before_global);
        assert!(g.species_scanned >= 3);
        assert!(g.species_skipped >= 10);
        assert!(g.scratch_reuses >= 1);
    }

    #[test]
    fn delta_since_subtracts_counterwise() {
        let a = WetlabStats {
            species_scanned: 10,
            species_skipped: 20,
            binding_cache_hits: 5,
            anneal_calls: 7,
            reads_materialized: 100,
            scratch_reuses: 2,
        };
        let b = WetlabStats {
            species_scanned: 4,
            species_skipped: 20,
            binding_cache_hits: 1,
            anneal_calls: 2,
            reads_materialized: 40,
            scratch_reuses: 0,
        };
        let d = a.delta_since(&b);
        assert_eq!(d.species_scanned, 6);
        assert_eq!(d.species_skipped, 0);
        assert_eq!(d.binding_cache_hits, 4);
        assert_eq!(d.anneal_calls, 5);
        assert_eq!(d.reads_materialized, 60);
        assert_eq!(d.scratch_reuses, 2);
    }
}
