//! A rack of per-partition tubes: the physical model behind a sharded
//! store.
//!
//! The monolithic view of DNA storage keeps one archival tube holding
//! every partition's strands; each retrieval then amplifies against the
//! whole archive, and each write re-mixes the whole tube. Physically,
//! though, partitions are *independently addressable units with their own
//! primer pair* — nothing forces them to share a tube, and random-access
//! DNA systems (Yazdi et al. 2015) model per-address reactions as fully
//! independent. A [`TubeRack`] encodes that independence: one [`Pool`] per
//! tube id, so
//!
//! - a write to partition A touches only tube A ([`TubeRack::mix_in`],
//!   in-place via [`Pool::mix_in`]),
//! - a retrieval of partitions `{A, B}` pipettes aliquots of exactly
//!   those tubes into one reaction ([`TubeRack::reaction_tube`]), and
//! - unrelated tubes can be processed concurrently by the layer above
//!   (the block store wraps each tube in its own shard lock).
//!
//! The shared DedicatedLog partition is *deliberately* still one tube:
//! every DedicatedLog read needs the whole log (§5.3), so the log tube is
//! the one explicitly shared cross-shard resource, identified by whatever
//! id the caller assigns it.

use crate::molecule::StrandTag;
use crate::pool::Pool;
use std::collections::BTreeMap;

/// Identifies one tube in a [`TubeRack`] (the block store uses its
/// partition tag).
pub type TubeId = u32;

/// A set of independently addressable tubes, keyed by [`TubeId`].
///
/// Deterministic iteration order (backed by a `BTreeMap`), like [`Pool`]
/// itself.
///
/// # Examples
///
/// ```
/// use dna_sim::TubeRack;
///
/// let mut rack = TubeRack::new();
/// rack.tube_mut(0).add("ACGT".parse().unwrap(), 100.0, None);
/// rack.tube_mut(1).add("TTTT".parse().unwrap(), 50.0, None);
/// let reaction = rack.reaction_tube([0, 1]);
/// assert_eq!(reaction.distinct(), 2);
/// assert_eq!(rack.total_copies(), 150.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TubeRack {
    tubes: BTreeMap<TubeId, Pool>,
}

impl TubeRack {
    /// An empty rack.
    pub fn new() -> TubeRack {
        TubeRack::default()
    }

    /// Number of tubes in the rack (empty tubes included).
    pub fn num_tubes(&self) -> usize {
        self.tubes.len()
    }

    /// Borrows a tube, or `None` if `id` was never created.
    pub fn tube(&self, id: TubeId) -> Option<&Pool> {
        self.tubes.get(&id)
    }

    /// Borrows a tube mutably, creating an empty one on first use.
    pub fn tube_mut(&mut self, id: TubeId) -> &mut Pool {
        self.tubes.entry(id).or_default()
    }

    /// Places `pool` in the rack as tube `id`, replacing any previous
    /// contents.
    pub fn insert(&mut self, id: TubeId, pool: Pool) {
        self.tubes.insert(id, pool);
    }

    /// Mixes `addition` into tube `id` in place (creating the tube if
    /// needed) — the per-shard write path: no other tube is touched.
    pub fn mix_in(&mut self, id: TubeId, addition: &Pool, self_scale: f64, other_scale: f64) {
        self.tube_mut(id).mix_in(addition, self_scale, other_scale);
    }

    /// Retires species from tube `id` by ground-truth tag predicate (see
    /// [`Pool::retire_where`]). Returns the number of species removed; a
    /// missing tube retires nothing.
    pub fn retire_where(&mut self, id: TubeId, pred: impl FnMut(&StrandTag) -> bool) -> usize {
        match self.tubes.get_mut(&id) {
            Some(tube) => tube.retire_where(pred),
            None => 0,
        }
    }

    /// Pipettes the named tubes together into one reaction tube (undiluted
    /// aliquots; duplicate ids contribute once). The rack itself is not
    /// consumed — aliquoting leaves the archival tubes in place.
    pub fn reaction_tube(&self, ids: impl IntoIterator<Item = TubeId>) -> Pool {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Pool::new();
        for id in ids {
            if seen.insert(id) {
                if let Some(tube) = self.tubes.get(&id) {
                    out.mix_in(tube, 1.0, 1.0);
                }
            }
        }
        out
    }

    /// Every tube poured together — the monolithic single-pool view, for
    /// inspection and for migrating a rack back to a one-tube store.
    pub fn merged(&self) -> Pool {
        self.reaction_tube(self.tubes.keys().copied())
    }

    /// Total copies across every tube.
    pub fn total_copies(&self) -> f64 {
        self.tubes.values().map(Pool::total_copies).sum()
    }

    /// Iterates `(id, tube)` in ascending tube-id order.
    pub fn iter(&self) -> impl Iterator<Item = (TubeId, &Pool)> {
        self.tubes.iter().map(|(&id, tube)| (id, tube))
    }
}

impl FromIterator<(TubeId, Pool)> for TubeRack {
    fn from_iter<I: IntoIterator<Item = (TubeId, Pool)>>(iter: I) -> TubeRack {
        TubeRack {
            tubes: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(text: &str) -> dna_seq::DnaSeq {
        text.parse().unwrap()
    }

    #[test]
    fn tubes_are_independent() {
        let mut rack = TubeRack::new();
        rack.tube_mut(3).add(seq("AAAA"), 10.0, None);
        rack.tube_mut(7).add(seq("CCCC"), 20.0, None);
        let mut patch = Pool::new();
        patch.add(seq("GGGG"), 5.0, None);
        rack.mix_in(3, &patch, 1.0, 1.0);
        assert_eq!(rack.tube(3).unwrap().distinct(), 2);
        assert_eq!(rack.tube(7).unwrap().distinct(), 1, "tube 7 untouched");
        assert_eq!(rack.total_copies(), 35.0);
        assert_eq!(rack.num_tubes(), 2);
    }

    #[test]
    fn reaction_tube_pools_selected_aliquots_once() {
        let mut rack = TubeRack::new();
        rack.tube_mut(0).add(seq("AAAA"), 10.0, None);
        rack.tube_mut(1).add(seq("CCCC"), 20.0, None);
        rack.tube_mut(2).add(seq("GGGG"), 40.0, None);
        let rxn = rack.reaction_tube([0, 2, 0]);
        assert_eq!(rxn.distinct(), 2);
        assert_eq!(rxn.total_copies(), 50.0, "duplicate id aliquots once");
        // Missing tubes contribute nothing.
        assert!(rack.reaction_tube([9]).is_empty());
        // The archival tubes are unchanged by aliquoting.
        assert_eq!(rack.tube(0).unwrap().total_copies(), 10.0);
    }

    #[test]
    fn merged_is_the_monolithic_view() {
        let mut rack = TubeRack::new();
        rack.tube_mut(0).add(seq("AAAA"), 10.0, None);
        rack.tube_mut(1).add(seq("AAAA"), 5.0, None);
        rack.tube_mut(1).add(seq("TTTT"), 1.0, None);
        let merged = rack.merged();
        assert_eq!(merged.get(&seq("AAAA")).unwrap().abundance, 15.0);
        assert_eq!(merged.distinct(), 2);
    }

    #[test]
    fn retire_where_targets_one_tube() {
        use crate::molecule::StrandTag;
        let mut rack = TubeRack::new();
        rack.tube_mut(0)
            .add(seq("AAAA"), 10.0, Some(StrandTag::new(0, 1, 1, 0)));
        rack.tube_mut(1)
            .add(seq("CCCC"), 10.0, Some(StrandTag::new(1, 1, 1, 0)));
        assert_eq!(rack.retire_where(0, |t| t.version > 0), 1);
        assert_eq!(rack.tube(0).unwrap().distinct(), 0);
        assert_eq!(rack.tube(1).unwrap().distinct(), 1, "other tube kept");
        assert_eq!(rack.retire_where(42, |_| true), 0, "missing tube");
    }
}
