//! The annealing fast path: k-mer prefilter + cross-round binding caches.
//!
//! PCR cost is dominated by `O(species × primers × cycles)` calls into
//! [`AnnealModel::binding_site`] — a banded alignment of every primer
//! against every species' 5' region (and, via reverse complement, its 3'
//! region). Almost all of those alignments conclude "no binding": an
//! archival tube holds thousands of species and a reaction targets a
//! handful. This module removes that work in three layers, none of which
//! changes any observable result:
//!
//! 1. **k-mer piece prefilter** (pigeonhole seeding). Split a primer into
//!    `max_edit + 1` contiguous pieces. Any alignment with ≤ `max_edit`
//!    edits damages at most `max_edit` pieces (a substitution or deletion
//!    consumes one primer position; an insertion only shifts positions), so
//!    at least one piece survives *edit-free* — it appears **exactly**,
//!    contiguously, in the site, and its start position is displaced from
//!    its primer offset by at most `max_edit` (the net indel drift). So: if
//!    no piece of the primer occurs verbatim in the species prefix within
//!    `± max_edit` of its primer offset, `binding_site` is guaranteed to
//!    return `None` and is never called. Pieces are packed 2-bit k-mers
//!    (same representation as `dna_seq::kmer`) compared against a cached
//!    positional k-mer table of the species prefix.
//! 2. **Binding-site cache** keyed by (species sequence, primer,
//!    orientation), thread-local, surviving across cycles *and* across
//!    reaction rounds — re-amplifying the same tube never re-aligns.
//! 3. **Probability memo** keyed by (primer, site geometry, temperature
//!    bits): `binding_probability` depends on the primer only through its
//!    melting temperature, so each (distance, 3'-distance, temperature)
//!    triple is computed once per primer.
//!
//! All three are pure-function memos: cached values equal what the model
//! would compute, so results are bit-identical regardless of cache state
//! (pinned by `tests/fastpath_equiv.rs`). Caches are thread-local — no
//! locks, no lock-rank interactions with the store — and self-limit their
//! footprint by clearing when over capacity.

use crate::anneal::{AnnealModel, BindingSite};
use crate::stats;
use dna_seq::DnaSeq;
use std::cell::RefCell;
use std::collections::HashMap;

/// Species entries kept per model cache before the species map is cleared.
const MAX_SPECIES_ENTRIES: usize = 8192;
/// Probability-memo entries kept before the memo is cleared.
const MAX_PROB_ENTRIES: usize = 65536;

/// Which strand region a primer is tested against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Orientation {
    /// Primer vs the species' 5' prefix.
    Forward,
    /// Primer vs the reverse complement's 5' prefix (the species' 3' end).
    Reverse,
}

/// An interned primer with its precomputed prefilter pieces.
struct PrimerEntry {
    seq: DnaSeq,
    /// `(primer_offset, piece_len, packed_piece)`; empty when the primer is
    /// too short (or a piece too long) to prefilter — then every species is
    /// a candidate.
    pieces: Vec<(usize, u8, u64)>,
}

/// Positional packed k-mers over a sequence prefix, for one k.
#[derive(Default)]
struct PrefixKmers {
    /// `vals[p]` = packed `seq[p..p + k]`; computed for the prefix
    /// `seq[..covered]`.
    covered: usize,
    vals: Vec<u64>,
}

impl PrefixKmers {
    /// Ensures `vals` covers windows inside `seq[..needed_end]` (clamped to
    /// the sequence length).
    fn ensure(&mut self, seq: &DnaSeq, k: usize, needed_end: usize) {
        let end = needed_end.min(seq.len());
        if end <= self.covered {
            return;
        }
        debug_assert!((1..=32).contains(&k));
        let mask = if k == 32 {
            u64::MAX
        } else {
            (1u64 << (2 * k)) - 1
        };
        self.vals.clear();
        let mut acc = 0u64;
        for (i, b) in seq.as_slice()[..end].iter().enumerate() {
            acc = ((acc << 2) | u64::from(b.code())) & mask;
            if i + 1 >= k {
                self.vals.push(acc);
            }
        }
        self.covered = end;
    }
}

/// Cached per-species data: reverse complement, positional prefix k-mers
/// (per k, per orientation), and resolved binding sites per primer.
struct SpeciesEntry {
    rc: DnaSeq,
    fwd_kmers: HashMap<u8, PrefixKmers>,
    rc_kmers: HashMap<u8, PrefixKmers>,
    /// Binding-site results keyed by interned primer id.
    fwd_sites: HashMap<u32, Option<BindingSite>>,
    rc_sites: HashMap<u32, Option<BindingSite>>,
}

/// Caches for one [`AnnealModel`] (results depend on the model's
/// calibration, so each distinct model gets its own bank).
pub(crate) struct ModelCache {
    model: AnnealModel,
    primer_ids: HashMap<DnaSeq, u32>,
    primers: Vec<PrimerEntry>,
    species: HashMap<DnaSeq, SpeciesEntry>,
    /// (primer_id, dist, three_prime_dist, temp bits) → probability.
    prob_memo: HashMap<(u32, u8, u8, u64), f64>,
}

impl ModelCache {
    fn new(model: AnnealModel) -> ModelCache {
        ModelCache {
            model,
            primer_ids: HashMap::new(),
            primers: Vec::new(),
            species: HashMap::new(),
            prob_memo: HashMap::new(),
        }
    }

    /// Interns a primer, precomputing its prefilter pieces.
    pub(crate) fn intern_primer(&mut self, seq: &DnaSeq) -> u32 {
        if let Some(&id) = self.primer_ids.get(seq) {
            return id;
        }
        let id = self.primers.len() as u32;
        self.primer_ids.insert(seq.clone(), id);
        self.primers.push(PrimerEntry {
            seq: seq.clone(),
            pieces: split_pieces(seq, self.model.max_edit),
        });
        id
    }

    /// Binding geometry of primer `id` against `seq` in the given
    /// orientation — cached, prefiltered.
    pub(crate) fn site(
        &mut self,
        seq: &DnaSeq,
        id: u32,
        orientation: Orientation,
    ) -> Option<BindingSite> {
        if self.species.len() >= MAX_SPECIES_ENTRIES && !self.species.contains_key(seq) {
            self.species.clear();
        }
        let entry = self.species.entry(seq.clone()).or_insert_with(|| {
            let rc = seq.reverse_complement();
            SpeciesEntry {
                rc,
                fwd_kmers: HashMap::new(),
                rc_kmers: HashMap::new(),
                fwd_sites: HashMap::new(),
                rc_sites: HashMap::new(),
            }
        });
        let (sites, kmers, target): (_, _, &DnaSeq) = match orientation {
            Orientation::Forward => (&mut entry.fwd_sites, &mut entry.fwd_kmers, seq),
            Orientation::Reverse => (&mut entry.rc_sites, &mut entry.rc_kmers, &entry.rc),
        };
        if let Some(&cached) = sites.get(&id) {
            stats::record_binding_cache_hits(1);
            return cached;
        }
        let primer = &self.primers[id as usize];
        let max_edit = self.model.max_edit;
        let result = if !primer.pieces.is_empty() && !piece_match(kmers, target, primer, max_edit) {
            // Pigeonhole guarantee: no edit-free piece within the ±max_edit
            // band ⇒ no window within max_edit edits ⇒ binding_site is None.
            stats::record_species_skipped(1);
            None
        } else {
            stats::record_species_scanned(1);
            stats::record_anneal_calls(1);
            self.model.binding_site(&primer.seq, target)
        };
        sites.insert(id, result);
        result
    }

    /// Memoized [`AnnealModel::binding_probability`].
    pub(crate) fn probability(&mut self, id: u32, site: BindingSite, temp: f64) -> f64 {
        let key = (
            id,
            site.dist as u8,
            site.three_prime_dist as u8,
            temp.to_bits(),
        );
        if let Some(&p) = self.prob_memo.get(&key) {
            return p;
        }
        if self.prob_memo.len() >= MAX_PROB_ENTRIES {
            self.prob_memo.clear();
        }
        stats::record_anneal_calls(1);
        let p = self
            .model
            .binding_probability(&self.primers[id as usize].seq, site, temp);
        self.prob_memo.insert(key, p);
        p
    }
}

/// Splits `primer` into `max_edit + 1` contiguous pieces (lengths as even
/// as possible, longer pieces first), packed for exact-match testing.
/// Returns an empty vec — prefilter disabled — when any piece would be
/// empty or longer than 32 bases.
fn split_pieces(primer: &DnaSeq, max_edit: usize) -> Vec<(usize, u8, u64)> {
    let n = primer.len();
    let parts = max_edit + 1;
    if n < parts {
        return Vec::new();
    }
    let base = n / parts;
    let rem = n % parts;
    if base + usize::from(rem > 0) > 32 {
        return Vec::new();
    }
    let mut pieces = Vec::with_capacity(parts);
    let mut off = 0usize;
    for j in 0..parts {
        let len = base + usize::from(j < rem);
        let mut packed = 0u64;
        for b in &primer.as_slice()[off..off + len] {
            packed = (packed << 2) | u64::from(b.code());
        }
        pieces.push((off, len as u8, packed));
        off += len;
    }
    pieces
}

/// Does any primer piece occur verbatim in `target`'s prefix within
/// `± max_edit` of its primer offset?
fn piece_match(
    kmers: &mut HashMap<u8, PrefixKmers>,
    target: &DnaSeq,
    primer: &PrimerEntry,
    max_edit: usize,
) -> bool {
    for &(off, k, packed) in &primer.pieces {
        let ku = usize::from(k);
        let table = kmers.entry(k).or_default();
        table.ensure(target, ku, off + max_edit + ku);
        let lo = off.saturating_sub(max_edit);
        let hi = off + max_edit;
        for p in lo..=hi {
            if table.vals.get(p) == Some(&packed) {
                return true;
            }
        }
    }
    false
}

thread_local! {
    static CACHE: RefCell<Vec<ModelCache>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with this thread's cache bank for `model` (created on first
/// use).
pub(crate) fn with_model_cache<R>(model: &AnnealModel, f: impl FnOnce(&mut ModelCache) -> R) -> R {
    CACHE.with(|cell| {
        let mut banks = cell.borrow_mut();
        let idx = match banks.iter().position(|b| b.model == *model) {
            Some(i) => i,
            None => {
                banks.push(ModelCache::new(*model));
                banks.len() - 1
            }
        };
        f(&mut banks[idx])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_seq::Base;

    fn balanced(n: usize, phase: usize) -> DnaSeq {
        DnaSeq::from_bases((0..n).map(|i| Base::from_code(((i + phase) % 4) as u8)))
    }

    /// The prefilter must never skip a pair the model would accept: for a
    /// grid of primers and sites (including engineered near-misses), a
    /// piece-test failure implies `binding_site` is `None`.
    #[test]
    fn prefilter_never_skips_a_binding_site() {
        let model = AnnealModel::calibrated();
        let mut primers: Vec<DnaSeq> = vec![
            balanced(20, 0),
            balanced(20, 1),
            balanced(31, 2),
            "AACCGGTTAACCGGTTAACC".parse().unwrap(),
        ];
        // Mutated copies of a primer: up to max_edit+2 edits.
        let base: DnaSeq = "ACGTTGCAACGTTGCAACGT".parse().unwrap();
        primers.push(base.clone());
        let mut sites: Vec<DnaSeq> = Vec::new();
        for edits in 0..=model.max_edit + 2 {
            let mut bases: Vec<Base> = base.as_slice().to_vec();
            for e in 0..edits {
                let pos = (e * 7 + 3) % bases.len();
                bases[pos] = Base::from_code((bases[pos].code() + 1) & 0b11);
            }
            let mut site = DnaSeq::from_bases(bases);
            site.extend_from_slice(balanced(40, edits).as_slice());
            sites.push(site);
        }
        // Deletion / insertion variants.
        let mut del: Vec<Base> = base.as_slice().to_vec();
        del.remove(5);
        let mut ds = DnaSeq::from_bases(del);
        ds.extend_from_slice(balanced(40, 1).as_slice());
        sites.push(ds);
        let mut ins: Vec<Base> = base.as_slice().to_vec();
        ins.insert(9, Base::from_code(2));
        let mut is_ = DnaSeq::from_bases(ins);
        is_.extend_from_slice(balanced(40, 2).as_slice());
        sites.push(is_);
        sites.push(balanced(60, 3));
        sites.push(balanced(8, 0)); // shorter than the primers

        for primer in &primers {
            let pieces = split_pieces(primer, model.max_edit);
            assert!(!pieces.is_empty(), "test primers should be splittable");
            let entry = PrimerEntry {
                seq: primer.clone(),
                pieces,
            };
            for site in &sites {
                let mut kmers = HashMap::new();
                let candidate = piece_match(&mut kmers, site, &entry, model.max_edit);
                let bound = model.binding_site(primer, site);
                if bound.is_some() {
                    assert!(
                        candidate,
                        "prefilter skipped a binding pair: primer {primer} site {site}"
                    );
                }
            }
        }
    }

    #[test]
    fn pieces_partition_the_primer() {
        let primer = balanced(20, 0);
        let pieces = split_pieces(&primer, 4);
        assert_eq!(pieces.len(), 5);
        let mut expect_off = 0;
        for &(off, k, _) in &pieces {
            assert_eq!(off, expect_off);
            expect_off += usize::from(k);
        }
        assert_eq!(expect_off, primer.len());
        // 31 bases into 5 pieces: 7,6,6,6,6.
        let lens: Vec<u8> = split_pieces(&balanced(31, 0), 4)
            .iter()
            .map(|&(_, k, _)| k)
            .collect();
        assert_eq!(lens, [7, 6, 6, 6, 6]);
        // Too short to split: prefilter disabled.
        assert!(split_pieces(&balanced(3, 0), 4).is_empty());
    }

    #[test]
    fn cache_results_match_model_and_count_hits() {
        let model = AnnealModel::calibrated();
        let primer = balanced(20, 0);
        let mut strand = primer.clone();
        strand.extend_from_slice(balanced(50, 1).as_slice());
        // Genuinely unrelated species (periodic shifts of `balanced` are
        // within max_edit of each other, so use a homopolymer).
        let other = DnaSeq::from_bases((0..70).map(|_| Base::from_code(3)));
        with_model_cache(&model, |mc| {
            let id = mc.intern_primer(&primer);
            let before = stats::thread_totals();
            let s1 = mc.site(&strand, id, Orientation::Forward);
            assert_eq!(s1, model.binding_site(&primer, &strand));
            let s2 = mc.site(&strand, id, Orientation::Forward);
            assert_eq!(s2, s1);
            let d = stats::thread_totals().delta_since(&before);
            assert_eq!(d.binding_cache_hits, 1);
            assert_eq!(d.species_scanned, 1);
            // A non-candidate species is skipped without an alignment.
            let before = stats::thread_totals();
            assert_eq!(mc.site(&other, id, Orientation::Forward), None);
            assert_eq!(model.binding_site(&primer, &other), None);
            let d = stats::thread_totals().delta_since(&before);
            assert_eq!(d.species_skipped, 1);
            assert_eq!(d.species_scanned, 0);
            // Probability memo returns the exact model value.
            let site = s1.unwrap();
            let p1 = mc.probability(id, site, 55.0);
            assert_eq!(p1, model.binding_probability(&primer, site, 55.0));
            assert_eq!(mc.probability(id, site, 55.0), p1);
        });
    }
}
