//! Molecules and their ground-truth tags.

use dna_seq::DnaSeq;

/// Ground-truth provenance of a synthesized strand.
///
/// Tags ride along through synthesis, PCR and sequencing purely for
/// *measurement* (e.g. Fig. 9's reads-per-block histograms); the decoding
/// pipeline never sees them. A misprimed PCR product keeps the tag of the
/// template it copied — its payload still belongs to the original block even
/// though its prefix now claims otherwise, which is exactly the §8.1 false
/// positive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrandTag {
    /// Partition (file) id.
    pub partition: u32,
    /// Encoding-unit / block id within the partition.
    pub unit: u64,
    /// Version slot: 0 = original data, 1.. = updates.
    pub version: u8,
    /// Molecule column within the encoding unit.
    pub column: u8,
    /// Set when PCR overwrote this strand's prefix with a primer that did
    /// not match it exactly (mispriming product).
    pub prefix_overwritten: bool,
}

impl StrandTag {
    /// Creates a tag for an original synthesized strand.
    pub fn new(partition: u32, unit: u64, version: u8, column: u8) -> StrandTag {
        StrandTag {
            partition,
            unit,
            version,
            column,
            prefix_overwritten: false,
        }
    }
}

/// A designed DNA molecule: sequence plus optional ground-truth tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Molecule {
    /// The strand sequence (5'→3').
    pub seq: DnaSeq,
    /// Ground-truth tag, if tracked.
    pub tag: Option<StrandTag>,
}

impl Molecule {
    /// Creates a tagged molecule.
    pub fn new(seq: DnaSeq, tag: StrandTag) -> Molecule {
        Molecule {
            seq,
            tag: Some(tag),
        }
    }

    /// Creates a molecule without ground-truth tracking.
    pub fn untagged(seq: DnaSeq) -> Molecule {
        Molecule { seq, tag: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_construction() {
        let t = StrandTag::new(13, 531, 0, 7);
        assert_eq!(t.partition, 13);
        assert_eq!(t.unit, 531);
        assert!(!t.prefix_overwritten);
    }

    #[test]
    fn molecule_constructors() {
        let seq: DnaSeq = "ACGT".parse().unwrap();
        let m = Molecule::untagged(seq.clone());
        assert!(m.tag.is_none());
        let t = Molecule::new(seq, StrandTag::new(1, 2, 3, 4));
        assert_eq!(t.tag.unwrap().unit, 2);
    }
}
