//! Golden-equivalence suite for the wetlab fast path.
//!
//! The k-mer annealing prefilter, the per-pool binding cache, and the
//! sparse amplification bookkeeping are pure work-avoidance: `run` must
//! produce **bit-identical** results to the retained dense engine
//! `run_reference` — same species set, same f64 abundances (same
//! accumulation order, so exact equality, not approximate), same consumed
//! primer budgets, same misprime accounting. Likewise the sequencer's
//! epoch-keyed scratch must never change a single read.

use dna_seq::rng::DetRng;
use dna_seq::{Base, DnaSeq};
use dna_sim::{
    IdsChannel, MultiplexPcrReaction, PcrPrimer, PcrProtocol, PcrReaction, Pool, PrimerChannel,
    Sequencer, SequencerScratch, StrandTag,
};
use proptest::prelude::*;

fn fwd_primer(phase: usize) -> DnaSeq {
    DnaSeq::from_bases((0..20).map(|i| Base::from_code(((i + phase) % 4) as u8)))
}

fn rev_primer() -> DnaSeq {
    "AAGGCCTTAAGGCCTTAAGG".parse().unwrap()
}

/// A template strand: forward region (possibly mutated), payload encoding
/// `payload_phase`, filler, reverse-complemented reverse site.
fn template(fwd_phase: usize, payload_phase: usize, mutate_at: Option<usize>) -> DnaSeq {
    let mut s = fwd_primer(fwd_phase);
    if let Some(pos) = mutate_at {
        let bases: Vec<Base> = s
            .iter()
            .enumerate()
            .map(|(i, b)| {
                if i == pos {
                    Base::from_code((b.code() + 1) % 4)
                } else {
                    b
                }
            })
            .collect();
        s = DnaSeq::from_bases(bases);
    }
    for j in 0..10 {
        s.push(Base::from_code(((payload_phase >> (2 * j)) & 3) as u8));
    }
    for i in 0..40 {
        s.push(Base::from_code(((i * 3) % 4) as u8));
    }
    s.extend(rev_primer().reverse_complement().iter());
    s
}

/// A decoy species sharing no annealing-viable site with any primer: a
/// long homopolymer, far beyond `max_edit` from every primer window.
fn decoy(code: u8, len: usize) -> DnaSeq {
    DnaSeq::from_bases((0..len).map(|_| Base::from_code(code)))
}

fn assert_outcomes_identical(
    fast: &dna_sim::MultiplexOutcome,
    reference: &dna_sim::MultiplexOutcome,
) {
    // Pool equality is content-exact: same species, same f64 bits by Eq on
    // the ordered species map (epochs are excluded from PartialEq).
    assert_eq!(fast.pool, reference.pool, "pool contents diverged");
    assert_eq!(
        fast.fwd_consumed, reference.fwd_consumed,
        "forward budgets diverged"
    );
    assert_eq!(
        fast.rev_consumed, reference.rev_consumed,
        "reverse budgets diverged"
    );
    assert_eq!(
        fast.misprime_species, reference.misprime_species,
        "misprime accounting diverged"
    );
}

#[test]
fn single_reaction_matches_reference_engine() {
    let mut pool = Pool::new();
    pool.add(
        template(0, 1, None),
        500.0,
        Some(StrandTag::new(1, 1, 0, 0)),
    );
    pool.add(template(0, 2, None), 120.0, None);
    // A near-miss template (2 edits into the primer region): must still
    // bind, through the prefilter's positional piece test.
    pool.add(template(0, 3, Some(7)), 80.0, None);
    // Decoys the prefilter should skip without touching the model.
    pool.add(decoy(3, 90), 1000.0, None);
    pool.add(decoy(1, 70), 400.0, None);

    let rxn = PcrReaction {
        forward_primers: vec![PcrPrimer::with_budget(fwd_primer(0), 40_000.0)],
        reverse_primer: PcrPrimer::with_budget(rev_primer(), 40_000.0),
        protocol: PcrProtocol::paper_block_access(),
    };
    let fast = rxn.run(&pool);
    let reference = rxn.run_reference(&pool);
    assert_eq!(fast.pool, reference.pool);
    assert_eq!(fast.fwd_consumed, reference.fwd_consumed);
    assert_eq!(fast.rev_consumed, reference.rev_consumed);
    assert_eq!(fast.misprime_species, reference.misprime_species);
}

#[test]
fn prefilter_actually_skips_species() {
    // Guard against a silently disabled prefilter: with decoys in the
    // pool, the skip counter must move — the speedup is real, not a full
    // scan wearing a fast-path label.
    let mut pool = Pool::new();
    pool.add(template(0, 1, None), 500.0, None);
    for code in 0..4u8 {
        pool.add(decoy(code, 80 + code as usize), 100.0, None);
    }
    let rxn = PcrReaction {
        forward_primers: vec![PcrPrimer::with_budget(fwd_primer(0), 10_000.0)],
        reverse_primer: PcrPrimer::with_budget(rev_primer(), 10_000.0),
        protocol: PcrProtocol::paper_block_access(),
    };
    let before = dna_sim::stats::thread_totals();
    let _ = rxn.run(&pool);
    let delta = dna_sim::stats::thread_totals().delta_since(&before);
    assert!(
        delta.species_skipped > 0,
        "prefilter skipped nothing: {delta:?}"
    );
    // Homopolymer decoys (period-1) can never share a positioned piece
    // with the period-4 forward primer or the reverse primer, so at least
    // the 4 decoys × first cycle are skipped before any annealing work.
    assert!(delta.species_scanned > 0, "nothing scanned: {delta:?}");
}

#[test]
fn multiplex_two_channels_match_reference() {
    let mut pool = Pool::new();
    pool.add(
        template(0, 1, None),
        300.0,
        Some(StrandTag::new(1, 1, 0, 0)),
    );
    pool.add(
        template(1, 2, None),
        250.0,
        Some(StrandTag::new(1, 2, 0, 0)),
    );
    pool.add(template(0, 3, Some(4)), 90.0, None);
    pool.add(decoy(2, 85), 700.0, None);

    let rxn = MultiplexPcrReaction {
        channels: vec![
            PrimerChannel {
                forward_primers: vec![PcrPrimer::with_budget(fwd_primer(0), 20_000.0)],
                reverse_primer: PcrPrimer::with_budget(rev_primer(), 20_000.0),
            },
            PrimerChannel {
                forward_primers: vec![PcrPrimer::with_budget(fwd_primer(1), 15_000.0)],
                reverse_primer: PcrPrimer::with_budget(rev_primer(), 15_000.0),
            },
        ],
        protocol: PcrProtocol::paper_block_access(),
    };
    assert_outcomes_identical(&rxn.run(&pool), &rxn.run_reference(&pool));
}

#[test]
fn chained_reactions_share_caches_without_drift() {
    // Round-over-round equivalence: the binding cache and probability memo
    // survive across reactions on the same thread; results must stay
    // bit-identical to fresh reference runs at every round.
    let mut pool = Pool::new();
    pool.add(template(0, 1, None), 400.0, None);
    pool.add(template(0, 2, Some(11)), 150.0, None);
    pool.add(decoy(0, 75), 300.0, None);
    let rxn = PcrReaction {
        forward_primers: vec![PcrPrimer::with_budget(fwd_primer(0), 30_000.0)],
        reverse_primer: PcrPrimer::with_budget(rev_primer(), 30_000.0),
        protocol: PcrProtocol::standard(6, 58.0),
    };
    let mut current = pool;
    for round in 0..3 {
        let fast = rxn.run(&current);
        let reference = rxn.run_reference(&current);
        assert_eq!(fast.pool, reference.pool, "round {round} pool diverged");
        assert_eq!(fast.fwd_consumed, reference.fwd_consumed, "round {round}");
        assert_eq!(fast.rev_consumed, reference.rev_consumed, "round {round}");
        assert_eq!(fast.misprime_species, reference.misprime_species);
        // Feed the product forward — mutated pools exercise cache
        // invalidation by content, not by identity.
        current = fast.pool.scaled(0.5);
    }
    let before = dna_sim::stats::thread_totals();
    let _ = rxn.run(&current);
    let delta = dna_sim::stats::thread_totals().delta_since(&before);
    assert!(
        delta.binding_cache_hits > 0,
        "chained rounds never hit the binding cache: {delta:?}"
    );
}

#[test]
fn touchdown_temperatures_hit_probability_memo_identically() {
    // Touchdown schedules sweep temperatures, exercising the (site, temp)
    // probability memo across distinct keys.
    let mut pool = Pool::new();
    pool.add(template(0, 1, None), 200.0, None);
    pool.add(template(0, 4, Some(2)), 140.0, None);
    let rxn = PcrReaction {
        forward_primers: vec![PcrPrimer::with_budget(fwd_primer(0), 25_000.0)],
        reverse_primer: PcrPrimer::with_budget(rev_primer(), 25_000.0),
        protocol: PcrProtocol::touchdown(68.0, 55.0, 4),
    };
    let fast = rxn.run(&pool);
    let reference = rxn.run_reference(&pool);
    assert_eq!(fast.pool, reference.pool);
    assert_eq!(fast.fwd_consumed, reference.fwd_consumed);
    assert_eq!(fast.rev_consumed, reference.rev_consumed);
}

#[test]
fn sequencing_with_scratch_is_read_identical() {
    let mut pool = Pool::new();
    for i in 0..6 {
        pool.add(template(0, i, None), 50.0 * (i + 1) as f64, None);
    }
    let seq = Sequencer::new(IdsChannel::nanopore());
    let baseline = seq.sequence(&pool, 300, &mut DetRng::seed_from_u64(42));
    // Same pool, same seed, explicit scratch reused across three batches.
    let mut rng = DetRng::seed_from_u64(42);
    let mut scratch = SequencerScratch::new();
    let mut streamed = Vec::new();
    for batch in [100usize, 150, 50] {
        seq.sequence_into(&pool, batch, &mut rng, &mut scratch, &mut streamed);
    }
    assert_eq!(streamed, baseline);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized pools/budgets/cycles: the fast engine is bit-identical
    /// to the dense reference under arbitrary mixes of binding templates,
    /// near-miss mutants, and unbindable decoys.
    #[test]
    fn random_pools_match_reference(
        abundances in prop::collection::vec(1.0f64..5_000.0, 1..6),
        // 0..20 mutates that primer position; 20 means "no mutation".
        mutate in prop::collection::vec(0usize..21, 1..6),
        budget in 500.0f64..200_000.0,
        cycles in 1usize..8,
        temp in 50.0f64..68.0,
        decoys in 0usize..3,
    ) {
        let mut pool = Pool::new();
        for (i, (&ab, &m)) in abundances.iter().zip(mutate.iter().cycle()).enumerate() {
            pool.add(template(0, i, (m < 20).then_some(m)), ab, None);
        }
        for d in 0..decoys {
            pool.add(decoy((d % 4) as u8, 60 + 7 * d), 100.0 + d as f64, None);
        }
        let rxn = PcrReaction {
            forward_primers: vec![PcrPrimer::with_budget(fwd_primer(0), budget)],
            reverse_primer: PcrPrimer::with_budget(rev_primer(), budget),
            protocol: PcrProtocol::standard(cycles, temp),
        };
        let fast = rxn.run(&pool);
        let reference = rxn.run_reference(&pool);
        prop_assert_eq!(&fast.pool, &reference.pool);
        prop_assert_eq!(&fast.fwd_consumed, &reference.fwd_consumed);
        prop_assert!(fast.rev_consumed == reference.rev_consumed);
        prop_assert_eq!(fast.misprime_species, reference.misprime_species);
    }

    /// The sequencer scratch path returns the same reads for any split of
    /// one draw sequence into batches.
    #[test]
    fn sequencer_batching_invariant(seed in any::<u64>(), split in 1usize..199) {
        let mut pool = Pool::new();
        for i in 0..4 {
            pool.add(template(0, i, None), 30.0 * (i + 1) as f64, None);
        }
        let seq = Sequencer::new(IdsChannel::illumina());
        let baseline = seq.sequence(&pool, 200, &mut DetRng::seed_from_u64(seed));
        let mut rng = DetRng::seed_from_u64(seed);
        let mut scratch = SequencerScratch::new();
        let mut streamed = Vec::new();
        seq.sequence_into(&pool, split, &mut rng, &mut scratch, &mut streamed);
        seq.sequence_into(&pool, 200 - split, &mut rng, &mut scratch, &mut streamed);
        prop_assert_eq!(streamed, baseline);
    }
}
