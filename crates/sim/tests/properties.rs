//! Property-based tests for the wetlab simulator's invariants.

use dna_seq::rng::DetRng;
use dna_seq::{Base, DnaSeq};
use dna_sim::{IdsChannel, PcrPrimer, PcrProtocol, PcrReaction, Pool, Sequencer, StrandTag};
use proptest::prelude::*;

fn strand(fwd_phase: usize, payload_phase: usize) -> DnaSeq {
    let mut s = DnaSeq::new();
    // 20-base forward region.
    for i in 0..20 {
        s.push(Base::from_code(((i + fwd_phase) % 4) as u8));
    }
    // payload encoding the phase.
    for j in 0..10 {
        s.push(Base::from_code(((payload_phase >> (2 * j)) & 3) as u8));
    }
    for i in 0..40 {
        s.push(Base::from_code((i % 4) as u8));
    }
    // reverse site.
    let rev: DnaSeq = "AAGGCCTTAAGGCCTTAAGG".parse().unwrap();
    s.extend(rev.reverse_complement().iter());
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mass conservation: every new copy consumes exactly one forward and
    /// one reverse primer molecule, for arbitrary budgets and cycles.
    #[test]
    fn pcr_mass_conservation(
        budget in 1_000.0f64..1.0e7,
        cycles in 1usize..20,
        initial in 10.0f64..1.0e4,
    ) {
        let fwd: DnaSeq = "AACCGGTTAACCGGTTAACC".parse().unwrap();
        let rev: DnaSeq = "AAGGCCTTAAGGCCTTAAGG".parse().unwrap();
        let mut pool = Pool::new();
        let mut s = fwd.clone();
        for i in 0..60 { s.push(Base::from_code((i % 4) as u8)); }
        s.extend(rev.reverse_complement().iter());
        pool.add(s, initial, Some(StrandTag::new(0, 0, 0, 0)));
        let rxn = PcrReaction {
            forward_primers: vec![PcrPrimer::with_budget(fwd, budget)],
            reverse_primer: PcrPrimer::with_budget(rev, budget),
            protocol: PcrProtocol::standard(cycles, 55.0),
        };
        let out = rxn.run(&pool);
        let grown = out.pool.total_copies() - pool.total_copies();
        prop_assert!((grown - out.fwd_consumed[0]).abs() < 1e-6 * grown.max(1.0));
        prop_assert!((grown - out.rev_consumed).abs() < 1e-6 * grown.max(1.0));
        prop_assert!(out.fwd_consumed[0] <= budget * (1.0 + 1e-9));
        prop_assert!(out.pool.total_copies() >= pool.total_copies());
    }

    /// Pool mixing is linear: total of the mix equals the weighted totals.
    #[test]
    fn pool_mixing_linear(
        a_ab in prop::collection::vec(0.0f64..1e6, 1..8),
        b_ab in prop::collection::vec(0.0f64..1e6, 1..8),
        sa in 0.0f64..2.0,
        sb in 0.0f64..2.0,
    ) {
        let mut a = Pool::new();
        for (i, &x) in a_ab.iter().enumerate() {
            a.add(strand(0, i), x, None);
        }
        let mut b = Pool::new();
        for (i, &x) in b_ab.iter().enumerate() {
            b.add(strand(1, 100 + i), x, None);
        }
        let mix = a.mixed_with(&b, sa, sb);
        let expected = a.total_copies() * sa + b.total_copies() * sb;
        prop_assert!((mix.total_copies() - expected).abs() < 1e-6 * expected.max(1.0));
    }

    /// The sequencer returns exactly the requested number of reads and
    /// every read's truth tag comes from the pool.
    #[test]
    fn sequencer_read_counts(seed in any::<u64>(), n in 1usize..500) {
        let mut pool = Pool::new();
        for i in 0..5 {
            pool.add(strand(0, i), 100.0 * (i + 1) as f64, Some(StrandTag::new(0, i as u64, 0, 0)));
        }
        let mut rng = DetRng::seed_from_u64(seed);
        let reads = Sequencer::new(IdsChannel::illumina()).sequence(&pool, n, &mut rng);
        prop_assert_eq!(reads.len(), n);
        for r in &reads {
            let t = r.truth.unwrap();
            prop_assert!(t.unit < 5);
        }
    }

    /// The IDS channel never changes length by more than the number of
    /// events and preserves content for zero rates.
    #[test]
    fn ids_channel_sane(seed in any::<u64>(), len in 10usize..200) {
        let mut rng = DetRng::seed_from_u64(seed);
        let s = DnaSeq::from_bases((0..len).map(|_| Base::from_code(rng.gen_range(4) as u8)));
        let clean = IdsChannel::noiseless().corrupt(&s, &mut rng);
        prop_assert_eq!(clean, s.clone());
        let noisy = IdsChannel::nanopore().corrupt(&s, &mut rng);
        prop_assert!(noisy.len() >= len / 2 && noisy.len() <= len * 2);
    }

    /// Touchdown protocols cool monotonically to the plateau.
    #[test]
    fn touchdown_monotone(start in 60.0f64..72.0, plateau in 1usize..30) {
        let p = PcrProtocol::touchdown(start, 55.0, plateau);
        for w in p.temps.windows(2) {
            prop_assert!(w[1] <= w[0]);
        }
        prop_assert_eq!(*p.temps.last().unwrap(), 55.0);
        prop_assert!(p.temps.iter().all(|&t| t >= 55.0 && t <= start));
    }
}
