//! Property-based tests for the codec layer.

use dna_codec::{intra, PayloadCodec, Randomizer, StrandGeometry};
use dna_seq::{Base, DnaSeq};
use proptest::prelude::*;

proptest! {
    /// The randomizer is an involution on arbitrary payloads.
    #[test]
    fn randomizer_involution(seed in any::<u64>(), data in prop::collection::vec(any::<u8>(), 0..300)) {
        let r = Randomizer::new(seed);
        let mut buf = data.clone();
        r.apply(&mut buf);
        r.apply(&mut buf);
        prop_assert_eq!(buf, data);
    }

    /// Payload codec round-trips arbitrary byte payloads.
    #[test]
    fn payload_round_trip(seed in any::<u64>(), data in prop::collection::vec(any::<u8>(), 0..128)) {
        let codec = PayloadCodec::new(seed);
        let bases = codec.encode(&data);
        prop_assert_eq!(bases.len(), data.len() * 4);
        prop_assert_eq!(codec.decode(&bases), data);
    }

    /// Randomized payloads stay statistically PCR-friendly even for
    /// pathological inputs (all-zero, all-ones, repeating).
    #[test]
    fn randomization_tames_pathological_payloads(seed in any::<u64>(), byte in any::<u8>()) {
        let codec = PayloadCodec::new(seed);
        let bases = codec.encode(&[byte; 24]);
        prop_assert!(bases.max_homopolymer() <= 10, "run {}", bases.max_homopolymer());
        let gc = bases.gc_fraction();
        prop_assert!((0.2..=0.8).contains(&gc), "gc {gc}");
    }

    /// Intra-unit addresses are a bijection over their width.
    #[test]
    fn intra_bijective(width in 1usize..=4, frac in 0.0f64..1.0) {
        let cap = intra::capacity(width);
        let addr = ((cap - 1) as f64 * frac) as usize;
        let seq = intra::encode(addr, width).unwrap();
        prop_assert_eq!(seq.len(), width);
        prop_assert_eq!(intra::decode(&seq), addr);
    }

    /// Strand assembly/parsing round-trips any field content.
    #[test]
    fn strand_assembly_round_trip(
        fwd_codes in prop::collection::vec(0u8..4, 20),
        idx_codes in prop::collection::vec(0u8..4, 10),
        ver in 0u8..4,
        intra_addr in 0usize..15,
        payload_codes in prop::collection::vec(0u8..4, 96),
        rev_codes in prop::collection::vec(0u8..4, 20),
    ) {
        let g = StrandGeometry::paper_default();
        let seq = |codes: &[u8]| DnaSeq::from_bases(codes.iter().map(|&c| Base::from_code(c)));
        let fwd = seq(&fwd_codes);
        let idx = seq(&idx_codes);
        let payload = seq(&payload_codes);
        let rev = seq(&rev_codes);
        let intra_seq = intra::encode(intra_addr, 2).unwrap();
        let strand = g
            .assemble(&fwd, &idx, Base::from_code(ver), &intra_seq, &payload, &rev)
            .unwrap();
        prop_assert_eq!(strand.len(), 150);
        let fields = g.parse(&strand).unwrap();
        prop_assert_eq!(fields.fwd_primer, fwd);
        prop_assert_eq!(fields.unit_index, idx);
        prop_assert_eq!(fields.version, Base::from_code(ver));
        prop_assert_eq!(intra::decode(&fields.intra_index), intra_addr);
        prop_assert_eq!(fields.payload, payload);
        prop_assert_eq!(fields.rev_primer, rev);
    }

    /// Per-column codecs never collide across coordinates for the same seed.
    #[test]
    fn column_codecs_distinct(seed in any::<u64>(), unit in 0u64..1024, ver in 0u8..4, col in 0u8..15) {
        let here = PayloadCodec::for_column(seed, unit, ver, col);
        let neighbor = PayloadCodec::for_column(seed, unit, ver, (col + 1) % 15);
        let probe = vec![0u8; 16];
        prop_assert_ne!(here.encode(&probe), neighbor.encode(&probe));
    }
}
