//! Binary ↔ DNA codecs for the block-storage stack.
//!
//! The paper (§2.1.1) uses **unconstrained coding** for payloads: a simple
//! 2-bits-per-base mapping at maximum information density, preceded by
//! seeded *data randomization* so that long homopolymers become improbable
//! and GC content balances on average, with outer Reed-Solomon ECC handling
//! all residual error types. Internal addresses, by contrast, use the
//! *constrained* sparse coding implemented in the `dna-index` crate.
//!
//! This crate provides:
//!
//! - [`Randomizer`] — the seeded, self-inverse byte randomizer (§4.4 stores
//!   its seed as partition metadata, because the same randomization also
//!   improves read clustering),
//! - [`PayloadCodec`] — randomize + 2-bit pack into bases, and back,
//! - [`StrandGeometry`] / strand assembly — the molecule layout of Fig. 1a
//!   and §6.2/§6.3: `[fwd primer | sync A | unit index | version base |
//!   intra-unit index | payload | rev primer]`, 150 bases in the paper's
//!   configuration,
//! - [`intra`] — the dense 2-base intra-unit address code (Fig. 1c, orange).
//!
//! # Examples
//!
//! ```
//! use dna_codec::{PayloadCodec, StrandGeometry};
//!
//! let codec = PayloadCodec::new(0xA11CE);
//! let data = b"hello DNA block storage!"; // 24 bytes = one molecule payload
//! let bases = codec.encode(data);
//! assert_eq!(bases.len(), 96); // 2 bits/base
//! assert_eq!(codec.decode(&bases), data.to_vec());
//!
//! let geom = StrandGeometry::paper_default();
//! assert_eq!(geom.strand_len(), 150);
//! assert_eq!(geom.payload_bytes(), 24);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod layout;
mod payload;
mod randomizer;

pub mod intra;

pub use error::CodecError;
pub use layout::{StrandFields, StrandGeometry};
pub use payload::PayloadCodec;
pub use randomizer::Randomizer;
