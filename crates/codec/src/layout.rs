//! Strand geometry and assembly (Fig. 1a + §6.2/§6.3).

use crate::CodecError;
use dna_seq::{Base, DnaSeq};

/// The field layout of a synthesized DNA strand.
///
/// ```text
/// | fwd primer | sync | unit index | version | intra index | payload | rev primer |
/// |     20     |  1   |     10     |    1    |      2      |   96    |     20     |  = 150
/// ```
///
/// - *sync*: one `A` after the forward primer, "a point of synchronization"
///   (§6.2, following Organick et al.),
/// - *unit index*: the sparse PCR-navigable address of the encoding unit
///   (yellow in Fig. 1), produced by `dna-index`,
/// - *version*: one base supporting updates (§6.3); data and its updates
///   "only differ in the last base" of the prefix (§6.4),
/// - *intra index*: dense base-4 address of the molecule inside its unit
///   (orange in Fig. 1),
/// - *payload*: unconstrained-coded data or ECC bases.
///
/// The elongated forward primer of §6.5 is
/// `fwd primer + sync + unit index` = 20+1+10 = **31 bases**, exactly the
/// primer length used in the paper's wetlab runs.
///
/// # Examples
///
/// ```
/// use dna_codec::StrandGeometry;
///
/// let geom = StrandGeometry::paper_default();
/// assert_eq!(geom.strand_len(), 150);
/// assert_eq!(geom.elongated_primer_len(), 31);
/// assert_eq!(geom.payload_bytes(), 24);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrandGeometry {
    /// Length of each main primer (paper: 20).
    pub primer_len: usize,
    /// Length of the synchronization spacer after the forward primer
    /// (paper: 1, a single `A`).
    pub sync_len: usize,
    /// Length of the sparse unit index (paper: 10 for 1024 leaves).
    pub unit_index_len: usize,
    /// Length of the version field for updates (paper: 1).
    pub version_len: usize,
    /// Length of the dense intra-unit index (paper: 2).
    pub intra_index_len: usize,
    /// Number of payload bases (paper: 96 = 24 bytes).
    pub payload_len: usize,
}

impl StrandGeometry {
    /// The exact configuration of the paper's wetlab evaluation (§6.2/§6.3):
    /// 150-base strands, 20-base primers, 1 sync base, 10-base sparse unit
    /// index, 1 version base, 2-base intra index, 96-base payload.
    pub fn paper_default() -> StrandGeometry {
        StrandGeometry {
            primer_len: 20,
            sync_len: 1,
            unit_index_len: 10,
            version_len: 1,
            intra_index_len: 2,
            payload_len: 96,
        }
    }

    /// Total strand length in bases.
    pub fn strand_len(&self) -> usize {
        2 * self.primer_len
            + self.sync_len
            + self.unit_index_len
            + self.version_len
            + self.intra_index_len
            + self.payload_len
    }

    /// Payload capacity in whole bytes (2 bits/base).
    pub fn payload_bytes(&self) -> usize {
        self.payload_len / 4
    }

    /// Length of a fully elongated forward primer:
    /// `primer + sync + unit index` (paper: 31).
    pub fn elongated_primer_len(&self) -> usize {
        self.primer_len + self.sync_len + self.unit_index_len
    }

    /// Offset of the unit-index field from the strand's 5' end.
    pub fn unit_index_offset(&self) -> usize {
        self.primer_len + self.sync_len
    }

    /// Offset of the version base.
    pub fn version_offset(&self) -> usize {
        self.unit_index_offset() + self.unit_index_len
    }

    /// Offset of the intra-unit index.
    pub fn intra_index_offset(&self) -> usize {
        self.version_offset() + self.version_len
    }

    /// Offset of the payload.
    pub fn payload_offset(&self) -> usize {
        self.intra_index_offset() + self.intra_index_len
    }

    /// Assembles a full strand from its fields.
    ///
    /// `rev_primer` is given as the primer sequence itself; it is stored at
    /// the strand's 3' end as the reverse complement (the reverse primer
    /// anneals to the sense strand's tail).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::LengthMismatch`] if any field length differs
    /// from the geometry.
    pub fn assemble(
        &self,
        fwd_primer: &DnaSeq,
        unit_index: &DnaSeq,
        version: Base,
        intra_index: &DnaSeq,
        payload: &DnaSeq,
        rev_primer: &DnaSeq,
    ) -> Result<DnaSeq, CodecError> {
        check_len("forward primer", fwd_primer, self.primer_len)?;
        check_len("unit index", unit_index, self.unit_index_len)?;
        check_len("intra index", intra_index, self.intra_index_len)?;
        check_len("payload", payload, self.payload_len)?;
        check_len("reverse primer", rev_primer, self.primer_len)?;
        let mut strand = DnaSeq::with_capacity(self.strand_len());
        strand.extend(fwd_primer.iter());
        for _ in 0..self.sync_len {
            strand.push(Base::A);
        }
        strand.extend(unit_index.iter());
        for _ in 0..self.version_len {
            strand.push(version);
        }
        strand.extend(intra_index.iter());
        strand.extend(payload.iter());
        strand.extend(rev_primer.reverse_complement().iter());
        debug_assert_eq!(strand.len(), self.strand_len());
        Ok(strand)
    }

    /// Splits an exact-length strand back into fields (noiseless parsing;
    /// the recovery pipeline handles noisy reads separately).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::LengthMismatch`] if the strand length differs
    /// from the geometry.
    pub fn parse(&self, strand: &DnaSeq) -> Result<StrandFields, CodecError> {
        check_len("strand", strand, self.strand_len())?;
        let unit_index = strand.subseq(self.unit_index_offset()..self.version_offset());
        let version = strand[self.version_offset()];
        let intra_index = strand.subseq(self.intra_index_offset()..self.payload_offset());
        let payload =
            strand.subseq(self.payload_offset()..self.payload_offset() + self.payload_len);
        Ok(StrandFields {
            fwd_primer: strand.prefix(self.primer_len),
            unit_index,
            version,
            intra_index,
            payload,
            rev_primer: strand
                .subseq(self.strand_len() - self.primer_len..self.strand_len())
                .reverse_complement(),
        })
    }

    /// The strand's *address prefix* — everything an elongated primer can
    /// cover: `fwd primer + sync + unit index` (+ optionally the version
    /// base with [`StrandGeometry::prefix_with_version`]).
    pub fn address_prefix(&self, strand: &DnaSeq) -> DnaSeq {
        strand.prefix(self.elongated_primer_len())
    }

    /// The address prefix including the version base.
    pub fn prefix_with_version(&self, strand: &DnaSeq) -> DnaSeq {
        strand.prefix(self.elongated_primer_len() + self.version_len)
    }
}

fn check_len(component: &'static str, seq: &DnaSeq, expected: usize) -> Result<(), CodecError> {
    if seq.len() != expected {
        Err(CodecError::LengthMismatch {
            component,
            expected,
            got: seq.len(),
        })
    } else {
        Ok(())
    }
}

/// The parsed fields of a strand, as produced by [`StrandGeometry::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrandFields {
    /// The forward (5') primer.
    pub fwd_primer: DnaSeq,
    /// The sparse unit index.
    pub unit_index: DnaSeq,
    /// The version base (original data vs update slots).
    pub version: Base,
    /// The dense intra-unit index.
    pub intra_index: DnaSeq,
    /// The payload bases.
    pub payload: DnaSeq,
    /// The reverse primer (as primer sequence, already re-complemented).
    pub rev_primer: DnaSeq,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_seq::Base;

    fn seq_of(base: Base, n: usize) -> DnaSeq {
        DnaSeq::from_bases(std::iter::repeat_n(base, n))
    }

    fn balanced(n: usize) -> DnaSeq {
        DnaSeq::from_bases((0..n).map(|i| Base::from_code((i % 4) as u8)))
    }

    #[test]
    fn paper_geometry_adds_up() {
        let g = StrandGeometry::paper_default();
        assert_eq!(g.strand_len(), 150);
        assert_eq!(g.payload_bytes(), 24);
        assert_eq!(g.elongated_primer_len(), 31);
        // §6.2: 40 primer bases + 1 sync leaves 109 for addresses + payload
        assert_eq!(g.strand_len() - 2 * g.primer_len - g.sync_len, 109);
    }

    #[test]
    fn assemble_parse_round_trip() {
        let g = StrandGeometry::paper_default();
        let fwd = balanced(20);
        let rev = seq_of(Base::G, 20);
        let unit = balanced(10);
        let intra: DnaSeq = "AC".parse().unwrap();
        let payload = balanced(96);
        let strand = g
            .assemble(&fwd, &unit, Base::T, &intra, &payload, &rev)
            .unwrap();
        assert_eq!(strand.len(), 150);
        let fields = g.parse(&strand).unwrap();
        assert_eq!(fields.fwd_primer, fwd);
        assert_eq!(fields.unit_index, unit);
        assert_eq!(fields.version, Base::T);
        assert_eq!(fields.intra_index, intra);
        assert_eq!(fields.payload, payload);
        assert_eq!(fields.rev_primer, rev);
    }

    #[test]
    fn sync_base_is_a() {
        let g = StrandGeometry::paper_default();
        let strand = g
            .assemble(
                &balanced(20),
                &balanced(10),
                Base::A,
                &balanced(2),
                &balanced(96),
                &balanced(20),
            )
            .unwrap();
        assert_eq!(strand[20], Base::A);
    }

    #[test]
    fn wrong_lengths_are_rejected() {
        let g = StrandGeometry::paper_default();
        let err = g
            .assemble(
                &balanced(19), // too short
                &balanced(10),
                Base::A,
                &balanced(2),
                &balanced(96),
                &balanced(20),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            CodecError::LengthMismatch {
                component: "forward primer",
                expected: 20,
                got: 19
            }
        ));
        assert!(g.parse(&balanced(149)).is_err());
    }

    #[test]
    fn elongated_prefix_includes_index() {
        let g = StrandGeometry::paper_default();
        let fwd = balanced(20);
        let unit = balanced(10);
        let strand = g
            .assemble(
                &fwd,
                &unit,
                Base::C,
                &balanced(2),
                &balanced(96),
                &balanced(20),
            )
            .unwrap();
        let prefix = g.address_prefix(&strand);
        assert_eq!(prefix.len(), 31);
        assert!(prefix.starts_with(&fwd));
        assert!(prefix.ends_with(&unit));
        let with_v = g.prefix_with_version(&strand);
        assert_eq!(with_v.len(), 32);
        assert_eq!(with_v.last(), Some(Base::C));
    }

    #[test]
    fn reverse_primer_is_reverse_complemented_on_strand() {
        let g = StrandGeometry::paper_default();
        let rev: DnaSeq = "ACGTACGTACGTACGTACGT".parse().unwrap();
        let strand = g
            .assemble(
                &balanced(20),
                &balanced(10),
                Base::A,
                &balanced(2),
                &balanced(96),
                &rev,
            )
            .unwrap();
        let tail = strand.subseq(130..150);
        assert_eq!(tail, rev.reverse_complement());
    }
}
