//! Dense intra-unit addressing (Fig. 1c, orange field).
//!
//! Molecules inside one encoding unit are distinguished **in software**, not
//! chemically, so the densest base-4 positional code is best (§4.3: "the
//! basic addressing scheme provides the best information density for that
//! part of the address space"). The paper uses two bases — "from AA to GG,
//! which is enough to distinguish between 15 molecules" (§6.3) — i.e. plain
//! base-4 counting with the canonical digit order A<C<G<T.

use crate::CodecError;
use dna_seq::{Base, DnaSeq};

/// Number of addresses representable with `width` bases.
pub fn capacity(width: usize) -> usize {
    4usize.saturating_pow(width as u32)
}

/// Encodes `address` as `width` base-4 digits, most significant first.
///
/// # Errors
///
/// Returns [`CodecError::AddressOutOfRange`] if `address >= 4^width`.
///
/// # Examples
///
/// ```
/// use dna_codec::intra;
/// assert_eq!(intra::encode(0, 2).unwrap().to_string(), "AA");
/// assert_eq!(intra::encode(1, 2).unwrap().to_string(), "AC");
/// assert_eq!(intra::encode(10, 2).unwrap().to_string(), "GG");
/// assert_eq!(intra::encode(14, 2).unwrap().to_string(), "TG");
/// ```
pub fn encode(address: usize, width: usize) -> Result<DnaSeq, CodecError> {
    let cap = capacity(width);
    if address >= cap {
        return Err(CodecError::AddressOutOfRange {
            address,
            capacity: cap,
        });
    }
    let mut seq = DnaSeq::with_capacity(width);
    for i in (0..width).rev() {
        let digit = (address >> (2 * i)) & 0b11;
        seq.push(Base::from_code(digit as u8));
    }
    Ok(seq)
}

/// Decodes a base-4 positional address.
pub fn decode(seq: &DnaSeq) -> usize {
    seq.iter()
        .fold(0usize, |acc, b| (acc << 2) | usize::from(b.code()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_two_base_addresses() {
        for addr in 0..16 {
            let seq = encode(addr, 2).unwrap();
            assert_eq!(seq.len(), 2);
            assert_eq!(decode(&seq), addr);
        }
    }

    #[test]
    fn fifteen_molecules_fit_in_two_bases() {
        // §6.3: two bases distinguish the 15 molecules of an RS(15,11) unit.
        assert!(capacity(2) >= 15);
        let addrs: Vec<String> = (0..15).map(|a| encode(a, 2).unwrap().to_string()).collect();
        assert_eq!(addrs[0], "AA");
        assert_eq!(addrs[14], "TG");
        // all distinct
        let mut dedup = addrs.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 15);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(matches!(
            encode(16, 2),
            Err(CodecError::AddressOutOfRange {
                address: 16,
                capacity: 16
            })
        ));
        assert!(encode(63, 3).is_ok());
        assert!(encode(64, 3).is_err());
    }

    #[test]
    fn ordering_is_lexicographic() {
        // base-4 counting must sort like the tree's canonical edge order
        let mut seqs: Vec<DnaSeq> = (0..16).map(|a| encode(a, 2).unwrap()).collect();
        let sorted = seqs.clone();
        seqs.sort();
        assert_eq!(seqs, sorted);
    }
}
