//! Seeded, self-inverse data randomization.

use dna_seq::rng::DetRng;

/// XORs data with a seeded keystream.
///
/// Randomization is the enabler of unconstrained coding (§2.1.1): after
/// XOR-ing with a pseudo-random keystream, long homopolymers occur with low
/// probability and GC content is balanced on average, so payloads can be
/// packed at the full 2 bits/base. The transform is an involution — applying
/// it twice restores the input — so the same object serves as encoder and
/// decoder. The seed is partition metadata (§4.4).
///
/// # Examples
///
/// ```
/// use dna_codec::Randomizer;
///
/// let r = Randomizer::new(7);
/// let mut data = *b"AAAAAAAAAAAAAAAA";
/// r.apply(&mut data);
/// assert_ne!(&data, b"AAAAAAAAAAAAAAAA");
/// r.apply(&mut data);
/// assert_eq!(&data, b"AAAAAAAAAAAAAAAA");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Randomizer {
    seed: u64,
}

impl Randomizer {
    /// Creates a randomizer with the given keystream seed.
    pub fn new(seed: u64) -> Randomizer {
        Randomizer { seed }
    }

    /// The keystream seed (stored as partition metadata).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// XORs `data` in place with the keystream. Involution.
    pub fn apply(&self, data: &mut [u8]) {
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut i = 0;
        while i < data.len() {
            let word = rng.next_u64().to_le_bytes();
            for &k in word.iter().take((data.len() - i).min(8)) {
                data[i] ^= k;
                i += 1;
            }
        }
    }

    /// Convenience: returns a randomized copy.
    pub fn to_randomized(&self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply(&mut out);
        out
    }

    /// Generates `n` keystream bytes directly (used for the "random padding"
    /// of encoding units, §6.2).
    pub fn keystream(&self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        self.apply(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn involution_on_various_lengths() {
        let r = Randomizer::new(0x1234);
        for len in [0usize, 1, 7, 8, 9, 24, 64, 257] {
            let original: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
            let mut data = original.clone();
            r.apply(&mut data);
            if len >= 8 {
                assert_ne!(data, original, "len {len} should change");
            }
            r.apply(&mut data);
            assert_eq!(data, original, "len {len} must round-trip");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Randomizer::new(1).keystream(32);
        let b = Randomizer::new(2).keystream(32);
        assert_ne!(a, b);
    }

    #[test]
    fn keystream_is_deterministic() {
        assert_eq!(
            Randomizer::new(9).keystream(16),
            Randomizer::new(9).keystream(16)
        );
    }

    #[test]
    fn randomization_breaks_homopolymers() {
        // An all-zero payload maps to poly-A without randomization; with it,
        // the resulting base stream should have no catastrophic runs.
        let r = Randomizer::new(42);
        let data = r.keystream(24); // what an all-zero payload becomes
        let seq = dna_seq::DnaSeq::from_packed_bytes(&data, 96);
        assert!(
            seq.max_homopolymer() <= 8,
            "randomized payload should avoid long homopolymers, got {}",
            seq.max_homopolymer()
        );
        let gc = seq.gc_fraction();
        assert!((0.3..=0.7).contains(&gc), "gc {gc} should be near balanced");
    }
}
