//! Codec error types.

use std::error::Error;
use std::fmt;

/// Errors produced while assembling or parsing strands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A strand component had the wrong length for the configured geometry.
    LengthMismatch {
        /// Which component was wrong (e.g. `"payload"`).
        component: &'static str,
        /// Expected length in bases.
        expected: usize,
        /// Actual length in bases.
        got: usize,
    },
    /// An intra-unit address was out of range for its width.
    AddressOutOfRange {
        /// The offending address.
        address: usize,
        /// Maximum representable + 1.
        capacity: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::LengthMismatch {
                component,
                expected,
                got,
            } => write!(
                f,
                "{component} length mismatch: expected {expected} bases, got {got}"
            ),
            CodecError::AddressOutOfRange { address, capacity } => {
                write!(f, "address {address} out of range for capacity {capacity}")
            }
        }
    }
}

impl Error for CodecError {}
