//! Payload encoding: randomize, then pack 2 bits per base.

use crate::Randomizer;
use dna_seq::DnaSeq;

/// Encodes binary payloads into DNA at the maximum density of 2 bits/base,
/// with seeded randomization (§2.1.1 "unconstrained coding").
///
/// # Examples
///
/// ```
/// use dna_codec::PayloadCodec;
///
/// let codec = PayloadCodec::new(99);
/// let bases = codec.encode(&[0u8; 24]);
/// assert_eq!(bases.len(), 96);
/// // randomization prevents the all-A strand the raw zeros would produce
/// assert!(bases.max_homopolymer() < 10);
/// assert_eq!(codec.decode(&bases), vec![0u8; 24]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadCodec {
    randomizer: Randomizer,
}

impl PayloadCodec {
    /// Creates a codec whose randomizer uses `seed`.
    pub fn new(seed: u64) -> PayloadCodec {
        PayloadCodec {
            randomizer: Randomizer::new(seed),
        }
    }

    /// Derives the codec for one molecule of a partition: every
    /// `(unit, version, column)` gets an independent keystream from the
    /// partition's payload seed. Both the encoder (block store) and the
    /// decoder (pipeline) derive the same codec after parsing the strand's
    /// address fields.
    pub fn for_column(partition_seed: u64, unit: u64, version: u8, column: u8) -> PayloadCodec {
        // SplitMix-style mixing of the coordinates into the seed.
        let mut x = partition_seed
            ^ unit.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (u64::from(version) << 56)
            ^ (u64::from(column) << 48);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        PayloadCodec::new(x ^ (x >> 31))
    }

    /// The underlying randomizer.
    pub fn randomizer(&self) -> &Randomizer {
        &self.randomizer
    }

    /// Encodes `data` into `4·len(data)` bases... i.e. 4 bases per byte.
    pub fn encode(&self, data: &[u8]) -> DnaSeq {
        let randomized = self.randomizer.to_randomized(data);
        DnaSeq::from_packed_bytes(&randomized, randomized.len() * 4)
    }

    /// Decodes bases back into bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bases.len()` is not a multiple of 4 (payloads are always
    /// whole bytes in this stack).
    pub fn decode(&self, bases: &DnaSeq) -> Vec<u8> {
        assert!(
            bases.len().is_multiple_of(4),
            "payload base count {} not a whole number of bytes",
            bases.len()
        );
        let mut bytes = bases.to_packed_bytes();
        self.randomizer.apply(&mut bytes);
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_payloads() {
        let codec = PayloadCodec::new(0xBEEF);
        for len in [0usize, 1, 24, 100] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
            let bases = codec.encode(&data);
            assert_eq!(bases.len(), len * 4);
            assert_eq!(codec.decode(&bases), data);
        }
    }

    #[test]
    fn different_seeds_give_different_strands() {
        let a = PayloadCodec::new(1).encode(b"same bytes");
        let b = PayloadCodec::new(2).encode(b"same bytes");
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "whole number of bytes")]
    fn decode_rejects_partial_bytes() {
        let codec = PayloadCodec::new(3);
        let bases: DnaSeq = "ACGTA".parse().unwrap();
        codec.decode(&bases);
    }

    #[test]
    fn per_column_codecs_are_independent_and_reproducible() {
        let a = PayloadCodec::for_column(7, 531, 0, 3);
        let a2 = PayloadCodec::for_column(7, 531, 0, 3);
        assert_eq!(a, a2);
        for other in [
            PayloadCodec::for_column(7, 531, 0, 4),
            PayloadCodec::for_column(7, 531, 1, 3),
            PayloadCodec::for_column(7, 532, 0, 3),
            PayloadCodec::for_column(8, 531, 0, 3),
        ] {
            assert_ne!(a.encode(b"xxxxxxxx"), other.encode(b"xxxxxxxx"));
        }
    }
}
