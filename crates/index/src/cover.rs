//! Prefix covers for contiguous leaf ranges (§3.1).
//!
//! "Any contiguous byte-range can be statically mapped to a contiguous
//! index-range and vice versa, just like in block storage. A contiguous
//! index-range, in return, can be precisely described with a few prefixes,
//! or less precisely with their longest common prefix."
//!
//! [`IndexTree::cover_range`] computes the minimal set of aligned subtrees
//! (CIDR-style) whose leaves are exactly `[lo, hi]`;
//! [`IndexTree::common_prefix_cover`] computes the single-PCR alternative
//! with its over-amplification factor.

use crate::tree::{IndexTree, LeafId};
use dna_seq::DnaSeq;

/// One aligned subtree in a prefix cover: all `4^(depth − path.len())`
/// leaves below the node at `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverNode {
    /// Child-rank path from the root.
    pub path: Vec<u8>,
    /// First leaf under this node.
    pub first_leaf: LeafId,
    /// Number of leaves under this node.
    pub leaf_count: u64,
}

impl CoverNode {
    /// The DNA prefix that addresses this node in `tree` (the variable part
    /// of a partially elongated primer).
    pub fn prefix(&self, tree: &IndexTree) -> DnaSeq {
        tree.node_prefix(&self.path)
    }
}

impl IndexTree {
    /// Minimal set of aligned subtrees covering exactly the leaves
    /// `lo..=hi`. Retrieving the range takes one PCR per cover node (or one
    /// multiplex PCR with all prefixes at once, §6.5).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi` is out of range.
    pub fn cover_range(&self, lo: LeafId, hi: LeafId) -> Vec<CoverNode> {
        assert!(lo <= hi, "empty range: {lo} > {hi}");
        assert!(hi.0 < self.num_leaves(), "{hi} out of range");
        let mut out = Vec::new();
        let mut cur = lo.0;
        let end = hi.0;
        while cur <= end {
            // Largest aligned block starting at cur that fits within [cur, end].
            // Size of the subtree at path length `level` is 4^(depth-level).
            let mut level = self.depth(); // levels consumed from root; leaf = depth
            while level > 0 {
                let size = 1u64 << (2 * (self.depth() - (level - 1)));
                if cur.is_multiple_of(size) && cur + size - 1 <= end {
                    level -= 1;
                } else {
                    break;
                }
            }
            let size = 1u64 << (2 * (self.depth() - level));
            let path: Vec<u8> = (0..level)
                .rev()
                .map(|i| ((cur >> (2 * (self.depth() - level + i))) & 0b11) as u8)
                .collect();
            out.push(CoverNode {
                path,
                first_leaf: LeafId(cur),
                leaf_count: size,
            });
            match cur.checked_add(size) {
                Some(next) => cur = next,
                None => break,
            }
        }
        out
    }

    /// The longest-common-prefix cover of `lo..=hi`: a single node whose
    /// subtree contains the whole range, plus the *over-amplification
    /// factor* — how many times more leaves the subtree holds than the range
    /// (§3.1: prefix `A` covers `AAA..AGT` but also drags in `AT*`).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi` is out of range.
    pub fn common_prefix_cover(&self, lo: LeafId, hi: LeafId) -> (CoverNode, f64) {
        assert!(lo <= hi, "empty range: {lo} > {hi}");
        assert!(hi.0 < self.num_leaves(), "{hi} out of range");
        // Common prefix length in ranks.
        let mut level = 0usize;
        while level < self.depth() {
            let shift = 2 * (self.depth() - level - 1);
            if (lo.0 >> shift) != (hi.0 >> shift) {
                break;
            }
            level += 1;
        }
        let path: Vec<u8> = (0..level)
            .rev()
            .map(|i| ((lo.0 >> (2 * (self.depth() - level + i))) & 0b11) as u8)
            .collect();
        let node = CoverNode {
            path: path.clone(),
            first_leaf: self.first_leaf_under(&path),
            leaf_count: self.leaves_under(level),
        };
        let wanted = hi.0 - lo.0 + 1;
        let factor = node.leaf_count as f64 / wanted as f64;
        (node, factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves_of_cover(tree: &IndexTree, cover: &[CoverNode]) -> Vec<u64> {
        let mut all = Vec::new();
        for node in cover {
            let _ = tree; // prefix validity checked elsewhere
            for l in 0..node.leaf_count {
                all.push(node.first_leaf.0 + l);
            }
        }
        all
    }

    #[test]
    fn paper_example_aaa_to_agt() {
        // §3.1: "range AAA to AGT can be precisely described with the
        // following set of prefixes: AA, AC, AG" (dense tree, depth 3).
        let tree = IndexTree::dense(3);
        // AAA = leaf 0; AGT = ranks A=0,G=2,T=3 → 0*16+2*4+3 = 11.
        let cover = tree.cover_range(LeafId(0), LeafId(11));
        let prefixes: Vec<String> = cover.iter().map(|c| c.prefix(&tree).to_string()).collect();
        assert_eq!(prefixes, vec!["AA", "AC", "AG"]);
        // And the longest common prefix is "A", over-covering by 16/12.
        let (node, factor) = tree.common_prefix_cover(LeafId(0), LeafId(11));
        assert_eq!(node.prefix(&tree).to_string(), "A");
        assert!((factor - 16.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn cover_is_exact_partition_of_range() {
        let tree = IndexTree::new(9, 4); // 256 leaves
        for (lo, hi) in [
            (0u64, 255u64),
            (3, 200),
            (17, 17),
            (64, 127),
            (1, 254),
            (100, 103),
        ] {
            let cover = tree.cover_range(LeafId(lo), LeafId(hi));
            let mut leaves = leaves_of_cover(&tree, &cover);
            leaves.sort_unstable();
            let expected: Vec<u64> = (lo..=hi).collect();
            assert_eq!(leaves, expected, "range {lo}..={hi}");
        }
    }

    #[test]
    fn aligned_subtree_covers_with_one_node() {
        let tree = IndexTree::new(10, 4);
        let cover = tree.cover_range(LeafId(64), LeafId(127)); // one depth-1 node... 64 leaves
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].leaf_count, 64);
        assert_eq!(cover[0].path.len(), 1);
        // whole tree
        let cover = tree.cover_range(LeafId(0), LeafId(255));
        assert_eq!(cover.len(), 1);
        assert!(cover[0].path.is_empty());
        assert_eq!(cover[0].prefix(&tree), dna_seq::DnaSeq::new());
    }

    #[test]
    fn worst_case_cover_size_is_bounded() {
        // A maximally unaligned range in a quaternary tree needs at most
        // 3·depth nodes (3 per level on each side).
        let tree = IndexTree::new(11, 5);
        let cover = tree.cover_range(LeafId(1), LeafId(1022));
        assert!(cover.len() <= 3 * 2 * 5, "cover size {}", cover.len());
        let mut leaves = leaves_of_cover(&tree, &cover);
        leaves.sort_unstable();
        assert_eq!(leaves.len() as u64, 1022);
        assert_eq!(leaves[0], 1);
        assert_eq!(*leaves.last().unwrap(), 1022);
    }

    #[test]
    fn single_leaf_cover_is_full_depth() {
        let tree = IndexTree::new(12, 5);
        let cover = tree.cover_range(LeafId(531), LeafId(531));
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].leaf_count, 1);
        assert_eq!(cover[0].path.len(), 5);
        assert_eq!(cover[0].prefix(&tree), tree.leaf_index(LeafId(531)));
    }

    #[test]
    fn common_prefix_cover_contains_range() {
        let tree = IndexTree::new(13, 5);
        let (node, factor) = tree.common_prefix_cover(LeafId(100), LeafId(140));
        assert!(node.first_leaf.0 <= 100);
        assert!(node.first_leaf.0 + node.leaf_count > 140);
        assert!(factor >= 1.0);
        // identical endpoints → exact leaf, factor 1
        let (node, factor) = tree.common_prefix_cover(LeafId(77), LeafId(77));
        assert_eq!(node.leaf_count, 1);
        assert_eq!(factor, 1.0);
    }

    #[test]
    fn sparse_cover_prefixes_are_pcr_friendly() {
        let tree = IndexTree::new(14, 5);
        for node in tree.cover_range(LeafId(5), LeafId(900)) {
            let p = node.prefix(&tree);
            if p.len() >= 2 {
                assert!(p.max_homopolymer() <= 2);
                assert!(
                    dna_seq::analysis::max_prefix_gc_deviation(&p, 2) <= 0.25 + 1e-9,
                    "prefix {p} unbalanced"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_panics() {
        IndexTree::new(1, 3).cover_range(LeafId(5), LeafId(4));
    }
}
