//! Quantitative analysis of index trees: the distance and balance
//! properties §4.3 claims, plus the edit-distance neighbourhoods that
//! predict mispriming (§8.1).

use crate::tree::{IndexTree, LeafId};
use dna_seq::analysis::max_prefix_gc_deviation;
use dna_seq::distance::{hamming, levenshtein_bounded};

/// Summary statistics over a set of pairwise distances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceStats {
    /// Smallest observed distance.
    pub min: usize,
    /// Mean distance.
    pub mean: f64,
    /// Largest observed distance.
    pub max: usize,
    /// Number of pairs measured.
    pub pairs: usize,
}

impl std::fmt::Display for DistanceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {} / mean {:.2} / max {} over {} pairs",
            self.min, self.mean, self.max, self.pairs
        )
    }
}

/// Pairwise Hamming distance statistics across all leaf indexes (or the
/// first `sample` leaves for big trees).
///
/// §4.3 claims the sparse construction "increases the average Hamming
/// distance between two indexes of the same length by at least 2x" relative
/// to the dense baseline; the `abl_sparse` experiment verifies this.
pub fn pairwise_hamming_stats(tree: &IndexTree, sample: usize) -> DistanceStats {
    let n = (tree.num_leaves() as usize).min(sample);
    let indexes: Vec<_> = (0..n as u64).map(|i| tree.leaf_index(LeafId(i))).collect();
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut total = 0usize;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = hamming(indexes[i].as_slice(), indexes[j].as_slice());
            min = min.min(d);
            max = max.max(d);
            total += d;
            pairs += 1;
        }
    }
    DistanceStats {
        min: if pairs == 0 { 0 } else { min },
        mean: if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        },
        max,
        pairs,
    }
}

/// Hamming distance statistics restricted to sibling leaves (children of a
/// common parent). The sparse construction guarantees `min ≥ 2`.
pub fn sibling_hamming_stats(tree: &IndexTree) -> DistanceStats {
    let parents = tree.num_leaves() / 4;
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut total = 0usize;
    let mut pairs = 0usize;
    for p in 0..parents {
        let leaves: Vec<_> = (0..4).map(|r| tree.leaf_index(LeafId(p * 4 + r))).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                let d = hamming(leaves[i].as_slice(), leaves[j].as_slice());
                min = min.min(d);
                max = max.max(d);
                total += d;
                pairs += 1;
            }
        }
    }
    DistanceStats {
        min: if pairs == 0 { 0 } else { min },
        mean: if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        },
        max,
        pairs,
    }
}

/// All leaves whose index lies within edit distance `radius` of `target`'s
/// index (excluding `target` itself), with their distances.
///
/// §8.1: "The incorrectly amplified strands largely had indexes that were
/// very close to the indexes of our target block in edit distance ... usually
/// 2 or 3 ... The ease of decoding a block mostly relates to the number of
/// other indexes within this edit distance radius." This function is the
/// static predictor of that risk.
pub fn edit_neighborhood(tree: &IndexTree, target: LeafId, radius: usize) -> Vec<(LeafId, usize)> {
    let t = tree.leaf_index(target);
    let mut out = Vec::new();
    for leaf in tree.leaves() {
        if leaf == target {
            continue;
        }
        let idx = tree.leaf_index(leaf);
        if let Some(d) = levenshtein_bounded(t.as_slice(), idx.as_slice(), radius) {
            out.push((leaf, d));
        }
    }
    out.sort_by_key(|&(l, d)| (d, l.0));
    out
}

/// Aggregate PCR-friendliness metrics over all leaf indexes of a tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexQuality {
    /// Worst homopolymer run across all leaf indexes.
    pub max_homopolymer: usize,
    /// Worst GC deviation from 50% over all prefixes (length ≥ 2) of all
    /// indexes.
    pub max_gc_deviation: f64,
    /// Fraction of leaves whose full index is exactly 50% GC.
    pub perfectly_balanced_fraction: f64,
}

/// Computes [`IndexQuality`] (over the first `sample` leaves for big trees).
pub fn index_quality(tree: &IndexTree, sample: usize) -> IndexQuality {
    let n = (tree.num_leaves() as usize).min(sample);
    let mut max_h = 0usize;
    let mut max_dev: f64 = 0.0;
    let mut balanced = 0usize;
    for i in 0..n as u64 {
        let idx = tree.leaf_index(LeafId(i));
        max_h = max_h.max(idx.max_homopolymer());
        max_dev = max_dev.max(max_prefix_gc_deviation(&idx, 2));
        if idx.gc_count() * 2 == idx.len() {
            balanced += 1;
        }
    }
    IndexQuality {
        max_homopolymer: max_h,
        max_gc_deviation: max_dev,
        perfectly_balanced_fraction: if n == 0 {
            0.0
        } else {
            balanced as f64 / n as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_doubles_mean_distance_over_dense() {
        // §4.3's headline claim, at wetlab scale (1024 leaves, sampled).
        let sparse = IndexTree::new(0x5EED, 5);
        let dense = IndexTree::dense(5);
        let s = pairwise_hamming_stats(&sparse, 128);
        let d = pairwise_hamming_stats(&dense, 128);
        assert!(
            s.mean >= 2.0 * d.mean,
            "sparse mean {} should be ≥ 2× dense mean {}",
            s.mean,
            d.mean
        );
    }

    #[test]
    fn sibling_minimums() {
        let sparse = IndexTree::new(0x5EED, 5);
        let dense = IndexTree::dense(5);
        assert_eq!(sibling_hamming_stats(&dense).min, 1);
        assert!(sibling_hamming_stats(&sparse).min >= 2);
    }

    #[test]
    fn edit_neighborhood_is_sorted_and_excludes_target() {
        let tree = IndexTree::new(3, 4);
        let nb = edit_neighborhood(&tree, LeafId(10), 3);
        assert!(nb.iter().all(|&(l, _)| l != LeafId(10)));
        assert!(nb.windows(2).all(|w| w[0].1 <= w[1].1));
        for &(_, d) in &nb {
            assert!((1..=3).contains(&d));
        }
    }

    #[test]
    fn sparse_has_fewer_close_neighbors_than_dense() {
        let sparse = IndexTree::new(21, 4);
        let dense = IndexTree::dense(4);
        let mut sparse_close = 0usize;
        let mut dense_close = 0usize;
        for leaf in (0..256u64).step_by(16).map(LeafId) {
            sparse_close += edit_neighborhood(&sparse, leaf, 1).len();
            dense_close += edit_neighborhood(&dense, leaf, 1).len();
        }
        assert!(
            sparse_close < dense_close,
            "sparse {sparse_close} should have fewer radius-1 neighbours than dense {dense_close}"
        );
    }

    #[test]
    fn quality_metrics_match_construction_guarantees() {
        let sparse = IndexTree::new(1001, 5);
        let q = index_quality(&sparse, 1024);
        assert!(q.max_homopolymer <= 2);
        assert!(q.max_gc_deviation <= 0.25 + 1e-9);
        assert_eq!(q.perfectly_balanced_fraction, 1.0);

        let dense = IndexTree::dense(5);
        let qd = index_quality(&dense, 1024);
        assert_eq!(qd.max_homopolymer, 5); // AAAAA exists
        assert!(qd.max_gc_deviation >= 0.5 - 1e-9); // GGGGG prefix is 100% GC
        assert!(qd.perfectly_balanced_fraction < 0.5);
    }

    #[test]
    fn display_formats() {
        let tree = IndexTree::new(5, 3);
        let s = pairwise_hamming_stats(&tree, 16);
        let text = s.to_string();
        assert!(text.contains("pairs"));
    }
}
