//! PCR-navigable index trees (§4 of the paper).
//!
//! A partition's internal address space is a depth-`L` quaternary prefix
//! tree. Prior work enumerates leaves densely (`AAA…A` to `TTT…T`) for
//! maximum information density, but those indexes are useless as PCR primer
//! extensions: unbalanced GC, long homopolymers, Hamming distance 1 between
//! siblings. The paper's construction (§4.3, Fig. 5) fixes this at a small
//! density cost:
//!
//! 1. **Randomize** the edge order of every node, derived from a stored seed
//!    (nothing else needs to be persisted, §4.4);
//! 2. **Sparsify** by inserting one extra base after every edge, chosen from
//!    the *opposite GC class* of the preceding base and assigned to maximize
//!    sibling Hamming distance (ties broken randomly).
//!
//! The result guarantees, for *every* prefix of *every* leaf index:
//! near-perfect GC balance, homopolymer runs ≤ 2, and sibling distance ≥ 2 —
//! making any prefix of any index usable as a primer elongation.
//!
//! [`IndexTree`] implements both the sparse construction and the dense
//! baseline (for ablations), [`CoverNode`]/[`IndexTree::cover_range`]
//! computes the §3.1 prefix covers that turn contiguous block ranges into a
//! small set of PCR reactions, and [`analysis`] quantifies the
//! distance/balance properties reported by the paper.
//!
//! # Examples
//!
//! ```
//! use dna_index::{IndexTree, LeafId};
//!
//! // The paper's wetlab tree: depth 5 → 1024 leaves, 10-base sparse indexes.
//! let tree = IndexTree::new(0xA11CE, 5);
//! assert_eq!(tree.num_leaves(), 1024);
//! let idx = tree.leaf_index(LeafId(531));
//! assert_eq!(idx.len(), 10);
//! assert_eq!(tree.parse_index(&idx), Some(LeafId(531)));
//! // Every prefix is GC-balanced and homopolymer-free by construction.
//! assert!(idx.max_homopolymer() <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cover;
mod tree;

pub mod analysis;

pub use cover::CoverNode;
pub use tree::{IndexStyle, IndexTree, LeafId};
