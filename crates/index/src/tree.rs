//! The index-tree construction of §4.3 (Fig. 5).

use dna_seq::rng::DetRng;
use dna_seq::{Base, DnaSeq};

/// Logical address of a leaf (block slot) within a partition's index tree.
///
/// Leaves are numbered `0..4^depth` in the *randomized* tree order: leaf 0 is
/// the leftmost path after edge randomization (Fig. 5b: "the leftmost path
/// becomes CG and is assigned address 00").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LeafId(pub u64);

impl std::fmt::Display for LeafId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "leaf#{}", self.0)
    }
}

/// Which index encoding a tree uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexStyle {
    /// The paper's construction: randomized edges + GC-alternating
    /// separator bases. Index length = `2·depth`.
    Sparse,
    /// The maximum-density baseline of prior work: identity edge order, no
    /// separators. Index length = `depth`. Not PCR-compatible; kept for
    /// ablations.
    Dense,
}

/// A PCR-navigable (or dense baseline) index tree.
///
/// The tree is never materialized: every node's edge permutation and
/// separator assignment are re-derived from the seed and the node's path, so
/// the only persistent metadata is the seed itself (§4.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexTree {
    seed: u64,
    depth: usize,
    style: IndexStyle,
}

/// Per-node layout: edge base for each child rank, separator base after each
/// edge.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeLayout {
    /// `edges[rank]` is the base labelling the edge to child `rank`.
    pub edges: [Base; 4],
    /// `seps[rank]` is the sparsity base inserted after `edges[rank]`.
    pub seps: [Base; 4],
}

impl IndexTree {
    /// Creates the paper's sparse tree with `4^depth` leaves.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0 or greater than 26 (4²⁶ leaves ≈ 4.5·10¹⁵ —
    /// beyond any practical partition).
    pub fn new(seed: u64, depth: usize) -> IndexTree {
        assert!((1..=26).contains(&depth), "depth must be in 1..=26");
        IndexTree {
            seed,
            depth,
            style: IndexStyle::Sparse,
        }
    }

    /// Creates the dense baseline tree (prior work, for ablations).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0 or greater than 26.
    pub fn dense(depth: usize) -> IndexTree {
        assert!((1..=26).contains(&depth), "depth must be in 1..=26");
        IndexTree {
            seed: 0,
            depth,
            style: IndexStyle::Dense,
        }
    }

    /// The randomization seed (partition metadata).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Tree depth (number of branching levels).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The index encoding style.
    pub fn style(&self) -> IndexStyle {
        self.style
    }

    /// Number of leaves, `4^depth`.
    pub fn num_leaves(&self) -> u64 {
        1u64 << (2 * self.depth)
    }

    /// Length in bases of a full leaf index.
    pub fn index_len(&self) -> usize {
        match self.style {
            IndexStyle::Sparse => 2 * self.depth,
            IndexStyle::Dense => self.depth,
        }
    }

    /// Length in bases of an index prefix covering the first `levels`
    /// branching levels.
    pub fn prefix_len(&self, levels: usize) -> usize {
        match self.style {
            IndexStyle::Sparse => 2 * levels,
            IndexStyle::Dense => levels,
        }
    }

    /// Splits a leaf id into per-level child ranks, most significant first.
    pub(crate) fn ranks_of(&self, leaf: LeafId) -> Vec<u8> {
        assert!(leaf.0 < self.num_leaves(), "{leaf} out of range");
        (0..self.depth)
            .rev()
            .map(|level| ((leaf.0 >> (2 * level)) & 0b11) as u8)
            .collect()
    }

    pub(crate) fn leaf_of_ranks(&self, ranks: &[u8]) -> LeafId {
        debug_assert_eq!(ranks.len(), self.depth);
        LeafId(
            ranks
                .iter()
                .fold(0u64, |acc, &r| (acc << 2) | u64::from(r & 0b11)),
        )
    }

    /// Derives the deterministic layout of the node reached by `path`
    /// (child ranks from the root; empty = root).
    pub(crate) fn node_layout(&self, path: &[u8]) -> NodeLayout {
        match self.style {
            IndexStyle::Dense => NodeLayout {
                edges: Base::ALL,
                // Dense trees have no separators; the value is unused.
                seps: Base::ALL,
            },
            IndexStyle::Sparse => {
                let mut rng = self.node_rng(path);
                // (1) Randomize edge order (Fig. 5b).
                let mut edges = Base::ALL;
                rng.shuffle(&mut edges);
                // (2) Separators: opposite GC class of the preceding edge
                // base, assigned to maximize sibling Hamming distance — the
                // two weak-edged children get {C, G} in random order, the two
                // strong-edged children get {A, T} in random order (Fig. 5c).
                let mut weak_seps = [Base::C, Base::G];
                let mut strong_seps = [Base::A, Base::T];
                rng.shuffle(&mut weak_seps);
                rng.shuffle(&mut strong_seps);
                let mut seps = [Base::A; 4];
                let mut wi = 0;
                let mut si = 0;
                for rank in 0..4 {
                    if edges[rank].is_gc() {
                        seps[rank] = strong_seps[si];
                        si += 1;
                    } else {
                        seps[rank] = weak_seps[wi];
                        wi += 1;
                    }
                }
                NodeLayout { edges, seps }
            }
        }
    }

    fn node_rng(&self, path: &[u8]) -> DetRng {
        // Unique id per node: interior of a quaternary heap numbering.
        let mut id = 1u64;
        for &r in path {
            id = (id << 2) | u64::from(r & 0b11);
        }
        DetRng::seed_from_u64(self.seed).derive(id)
    }

    /// Encodes a leaf id into its DNA index.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// use dna_index::{IndexTree, LeafId};
    /// let tree = IndexTree::new(7, 5);
    /// let idx = tree.leaf_index(LeafId(0));
    /// assert_eq!(idx.len(), 10);
    /// ```
    pub fn leaf_index(&self, leaf: LeafId) -> DnaSeq {
        let ranks = self.ranks_of(leaf);
        let mut seq = DnaSeq::with_capacity(self.index_len());
        let mut path: Vec<u8> = Vec::with_capacity(self.depth);
        for &rank in &ranks {
            let layout = self.node_layout(&path);
            seq.push(layout.edges[rank as usize]);
            if self.style == IndexStyle::Sparse {
                seq.push(layout.seps[rank as usize]);
            }
            path.push(rank);
        }
        seq
    }

    /// The index prefix of `leaf` covering its first `levels` branching
    /// levels — the variable part of a *partially elongated* primer
    /// (Fig. 4: "the primer can be elongated fully ... or partially").
    ///
    /// # Panics
    ///
    /// Panics if `levels > depth` or `leaf` is out of range.
    pub fn leaf_prefix(&self, leaf: LeafId, levels: usize) -> DnaSeq {
        assert!(
            levels <= self.depth,
            "levels {levels} > depth {}",
            self.depth
        );
        let full = self.leaf_index(leaf);
        full.prefix(self.prefix_len(levels))
    }

    /// Decodes a full-length DNA index back to its leaf, checking every edge
    /// *and* separator base. Returns `None` for anything that is not exactly
    /// a leaf index of this tree.
    pub fn parse_index(&self, seq: &DnaSeq) -> Option<LeafId> {
        if seq.len() != self.index_len() {
            return None;
        }
        let mut path: Vec<u8> = Vec::with_capacity(self.depth);
        let mut pos = 0usize;
        for _ in 0..self.depth {
            let layout = self.node_layout(&path);
            let edge = seq.get(pos)?;
            let rank = layout.edges.iter().position(|&b| b == edge)? as u8;
            pos += 1;
            if self.style == IndexStyle::Sparse {
                let sep = seq.get(pos)?;
                if sep != layout.seps[rank as usize] {
                    return None;
                }
                pos += 1;
            }
            path.push(rank);
        }
        Some(self.leaf_of_ranks(&path))
    }

    /// Decodes leniently: edges must match, separator mismatches are
    /// tolerated (useful when upstream consensus left a residual error in a
    /// separator position — the edge bases alone determine the leaf).
    pub fn parse_index_lenient(&self, seq: &DnaSeq) -> Option<LeafId> {
        if seq.len() != self.index_len() {
            return None;
        }
        let mut path: Vec<u8> = Vec::with_capacity(self.depth);
        let step = match self.style {
            IndexStyle::Sparse => 2,
            IndexStyle::Dense => 1,
        };
        for level in 0..self.depth {
            let layout = self.node_layout(&path);
            let edge = seq.get(level * step)?;
            let rank = layout.edges.iter().position(|&b| b == edge)? as u8;
            path.push(rank);
        }
        Some(self.leaf_of_ranks(&path))
    }

    /// The DNA prefix addressing an interior node given its child-rank path.
    /// An empty path addresses the root (empty prefix = plain main primer).
    ///
    /// # Panics
    ///
    /// Panics if the path is longer than the depth or contains ranks ≥ 4.
    pub fn node_prefix(&self, path: &[u8]) -> DnaSeq {
        assert!(path.len() <= self.depth, "path deeper than tree");
        let mut seq = DnaSeq::with_capacity(self.prefix_len(path.len()));
        let mut walk: Vec<u8> = Vec::with_capacity(path.len());
        for &rank in path {
            assert!(rank < 4, "child rank must be < 4");
            let layout = self.node_layout(&walk);
            seq.push(layout.edges[rank as usize]);
            if self.style == IndexStyle::Sparse {
                seq.push(layout.seps[rank as usize]);
            }
            walk.push(rank);
        }
        seq
    }

    /// First leaf under the node at `path`.
    pub fn first_leaf_under(&self, path: &[u8]) -> LeafId {
        let mut id = 0u64;
        for &r in path {
            id = (id << 2) | u64::from(r & 0b11);
        }
        LeafId(id << (2 * (self.depth - path.len())))
    }

    /// Number of leaves under a node at depth `path_len`.
    pub fn leaves_under(&self, path_len: usize) -> u64 {
        1u64 << (2 * (self.depth - path_len))
    }

    /// Iterates over all leaf ids (careful with large depths).
    pub fn leaves(&self) -> impl Iterator<Item = LeafId> {
        (0..self.num_leaves()).map(LeafId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_seq::analysis::max_prefix_gc_deviation;
    use dna_seq::distance::hamming;

    #[test]
    fn paper_dimensions() {
        let tree = IndexTree::new(1, 5);
        assert_eq!(tree.num_leaves(), 1024);
        assert_eq!(tree.index_len(), 10);
        let dense = IndexTree::dense(5);
        assert_eq!(dense.index_len(), 5);
        assert_eq!(dense.num_leaves(), 1024);
    }

    #[test]
    fn encode_parse_round_trip_all_leaves() {
        let tree = IndexTree::new(0xFEED, 4);
        for leaf in tree.leaves() {
            let idx = tree.leaf_index(leaf);
            assert_eq!(idx.len(), 8);
            assert_eq!(tree.parse_index(&idx), Some(leaf), "{leaf}");
            assert_eq!(tree.parse_index_lenient(&idx), Some(leaf));
        }
    }

    #[test]
    fn dense_tree_is_plain_base4() {
        let tree = IndexTree::dense(3);
        assert_eq!(tree.leaf_index(LeafId(0)).to_string(), "AAA");
        assert_eq!(tree.leaf_index(LeafId(1)).to_string(), "AAC");
        assert_eq!(tree.leaf_index(LeafId(63)).to_string(), "TTT");
        assert_eq!(
            tree.parse_index(&"GCA".parse().unwrap()),
            Some(LeafId(2 * 16 + 4))
        );
    }

    #[test]
    fn all_indexes_are_distinct() {
        let tree = IndexTree::new(42, 5);
        let mut seen = std::collections::HashSet::new();
        for leaf in tree.leaves() {
            assert!(
                seen.insert(tree.leaf_index(leaf).to_string()),
                "dup at {leaf}"
            );
        }
        assert_eq!(seen.len(), 1024);
    }

    #[test]
    fn sparse_invariants_hold_for_every_leaf() {
        // §4.3 guarantees: homopolymers ≤ 2 and near-perfect GC balance in
        // every prefix of every index.
        let tree = IndexTree::new(0xBADC0FFE, 5);
        for leaf in tree.leaves() {
            let idx = tree.leaf_index(leaf);
            assert!(idx.max_homopolymer() <= 2, "{leaf}: {idx}");
            // Even-length prefixes are exactly balanced; odd ones deviate by
            // at most 1/len. Checking from length 2 up:
            let dev = max_prefix_gc_deviation(&idx, 2);
            assert!(dev <= 0.25 + 1e-9, "{leaf}: {idx} dev {dev}");
            // Perfect balance overall:
            assert_eq!(idx.gc_count() * 2, idx.len(), "{leaf}: {idx}");
        }
    }

    #[test]
    fn sibling_hamming_distance_at_least_two() {
        // §4.3: sparsification doubles the minimum sibling distance (1 → 2).
        let tree = IndexTree::new(7, 5);
        for parent in 0..256u64 {
            let leaves: Vec<DnaSeq> = (0..4)
                .map(|r| tree.leaf_index(LeafId(parent * 4 + r)))
                .collect();
            for i in 0..4 {
                for j in (i + 1)..4 {
                    let d = hamming(leaves[i].as_slice(), leaves[j].as_slice());
                    assert!(d >= 2, "siblings {i},{j} under {parent}: {d}");
                }
            }
        }
    }

    #[test]
    fn separator_follows_opposite_gc_class_rule() {
        let tree = IndexTree::new(99, 5);
        for leaf in tree.leaves().step_by(7) {
            let idx = tree.leaf_index(leaf);
            let bases = idx.as_slice();
            for pair in bases.chunks(2) {
                assert_ne!(
                    pair[0].is_gc(),
                    pair[1].is_gc(),
                    "separator must flip GC class: {idx}"
                );
            }
        }
    }

    #[test]
    fn paper_example_shape_distance_improvement() {
        // Fig. 5: dense siblings AA vs CA have Hamming 1; their sparse
        // equivalents have distance ≥ 3... we verify the *guarantee*: any two
        // leaves whose dense indexes differ in one position get sparse
        // indexes at distance ≥ 2.
        let dense = IndexTree::dense(2);
        let sparse = IndexTree::new(123, 2);
        for a in 0..16u64 {
            for b in (a + 1)..16 {
                let dd = hamming(
                    dense.leaf_index(LeafId(a)).as_slice(),
                    dense.leaf_index(LeafId(b)).as_slice(),
                );
                let ds = hamming(
                    sparse.leaf_index(LeafId(a)).as_slice(),
                    sparse.leaf_index(LeafId(b)).as_slice(),
                );
                if dd == 1 {
                    assert!(ds >= 2, "{a} vs {b}: dense {dd}, sparse {ds}");
                }
            }
        }
    }

    #[test]
    fn different_seeds_give_different_trees() {
        // §4.4: different partitions use different seeds so their trees are
        // "vastly different".
        let a = IndexTree::new(1, 5);
        let b = IndexTree::new(2, 5);
        let differing = a
            .leaves()
            .filter(|&l| a.leaf_index(l) != b.leaf_index(l))
            .count();
        assert!(differing > 900, "only {differing}/1024 differ");
    }

    #[test]
    fn same_seed_reproduces_tree_exactly() {
        let a = IndexTree::new(555, 5);
        let b = IndexTree::new(555, 5);
        for leaf in a.leaves().step_by(13) {
            assert_eq!(a.leaf_index(leaf), b.leaf_index(leaf));
        }
    }

    #[test]
    fn prefixes_nest_correctly() {
        let tree = IndexTree::new(31337, 5);
        let leaf = LeafId(531);
        let full = tree.leaf_index(leaf);
        for levels in 0..=5 {
            let p = tree.leaf_prefix(leaf, levels);
            assert_eq!(p.len(), 2 * levels);
            assert!(full.starts_with(&p), "level {levels}");
        }
    }

    #[test]
    fn node_prefix_matches_leaf_prefix() {
        let tree = IndexTree::new(777, 4);
        let leaf = LeafId(0b11_01_10_00); // ranks [3,1,2,0]
        let ranks = [3u8, 1, 2, 0];
        for l in 0..=4usize {
            assert_eq!(tree.node_prefix(&ranks[..l]), tree.leaf_prefix(leaf, l));
        }
        assert_eq!(tree.first_leaf_under(&ranks[..2]), LeafId(0b11_01_00_00));
        assert_eq!(tree.leaves_under(2), 16);
    }

    #[test]
    fn parse_rejects_corrupted_separator_strict_but_not_lenient() {
        let tree = IndexTree::new(2024, 5);
        let leaf = LeafId(144);
        let mut idx = tree.leaf_index(leaf);
        // Corrupt a separator (odd position) to a base of the same GC class
        // as... any different base; the edge at even positions stays intact.
        let pos = 3;
        let orig = idx[pos];
        let replacement = Base::ALL.iter().copied().find(|&b| b != orig).unwrap();
        let mut v: Vec<Base> = idx.iter().collect();
        v[pos] = replacement;
        idx = DnaSeq::from_bases(v);
        assert_eq!(tree.parse_index(&idx), None);
        assert_eq!(tree.parse_index_lenient(&idx), Some(leaf));
    }

    #[test]
    fn wrong_length_rejected() {
        let tree = IndexTree::new(5, 5);
        assert_eq!(tree.parse_index(&"ACGT".parse().unwrap()), None);
        assert_eq!(tree.parse_index_lenient(&DnaSeq::new()), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn leaf_out_of_range_panics() {
        let tree = IndexTree::new(5, 2);
        tree.leaf_index(LeafId(16));
    }
}
