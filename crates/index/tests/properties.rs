//! Property-based tests for the §4.3 index-tree invariants: these must hold
//! for EVERY seed, not just the ones unit tests happen to pick.

use dna_index::{IndexTree, LeafId};
use dna_seq::analysis::max_prefix_gc_deviation;
use dna_seq::distance::hamming;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encode/parse is a bijection for arbitrary seeds and depths.
    #[test]
    fn leaf_index_bijective(seed in any::<u64>(), depth in 1usize..=5, leaf_frac in 0.0f64..1.0) {
        let tree = IndexTree::new(seed, depth);
        let leaf = LeafId(((tree.num_leaves() - 1) as f64 * leaf_frac) as u64);
        let idx = tree.leaf_index(leaf);
        prop_assert_eq!(idx.len(), 2 * depth);
        prop_assert_eq!(tree.parse_index(&idx), Some(leaf));
    }

    /// GC balance and homopolymer caps hold for every prefix of every index,
    /// for every seed (§4.2's elongation requirement).
    #[test]
    fn sparse_invariants_for_all_seeds(seed in any::<u64>(), leaf in 0u64..1024) {
        let tree = IndexTree::new(seed, 5);
        let idx = tree.leaf_index(LeafId(leaf));
        prop_assert!(idx.max_homopolymer() <= 2);
        prop_assert!(max_prefix_gc_deviation(&idx, 2) <= 0.25 + 1e-9);
        prop_assert_eq!(idx.gc_count() * 2, idx.len());
        // Separators alternate GC class with their edge base.
        for pair in idx.as_slice().chunks(2) {
            prop_assert_ne!(pair[0].is_gc(), pair[1].is_gc());
        }
    }

    /// Sibling Hamming distance ≥ 2 for every seed and parent.
    #[test]
    fn sibling_distance_always_at_least_two(seed in any::<u64>(), parent in 0u64..256) {
        let tree = IndexTree::new(seed, 5);
        let leaves: Vec<_> = (0..4).map(|r| tree.leaf_index(LeafId(parent * 4 + r))).collect();
        for i in 0..4 {
            for j in (i+1)..4 {
                prop_assert!(hamming(leaves[i].as_slice(), leaves[j].as_slice()) >= 2);
            }
        }
    }

    /// Prefix covers partition ranges exactly, for arbitrary ranges.
    #[test]
    fn cover_partitions_range(seed in any::<u64>(), a in 0u64..256, b in 0u64..256) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let tree = IndexTree::new(seed, 4);
        let cover = tree.cover_range(LeafId(lo), LeafId(hi));
        let mut leaves: Vec<u64> = Vec::new();
        for node in &cover {
            for l in 0..node.leaf_count {
                leaves.push(node.first_leaf.0 + l);
            }
        }
        leaves.sort_unstable();
        let expected: Vec<u64> = (lo..=hi).collect();
        prop_assert_eq!(leaves, expected);
        // Each cover node's prefix must reproduce via node_prefix/leaf_prefix
        for node in &cover {
            let p = node.prefix(&tree);
            let leaf_p = tree.leaf_prefix(node.first_leaf, node.path.len());
            prop_assert_eq!(p, leaf_p);
        }
    }

    /// Common-prefix cover always contains the range and its factor is ≥ 1.
    #[test]
    fn common_prefix_contains_range(seed in any::<u64>(), a in 0u64..1024, b in 0u64..1024) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let tree = IndexTree::new(seed, 5);
        let (node, factor) = tree.common_prefix_cover(LeafId(lo), LeafId(hi));
        prop_assert!(node.first_leaf.0 <= lo);
        prop_assert!(node.first_leaf.0 + node.leaf_count > hi);
        prop_assert!(factor >= 1.0);
        // factor is exact
        prop_assert!((factor - node.leaf_count as f64 / (hi - lo + 1) as f64).abs() < 1e-12);
    }

    /// Lenient parsing tolerates any single separator corruption.
    #[test]
    fn lenient_parse_survives_separator_noise(
        seed in any::<u64>(),
        leaf in 0u64..1024,
        sep_pos in 0usize..5,
        repl in 0u8..4,
    ) {
        let tree = IndexTree::new(seed, 5);
        let idx = tree.leaf_index(LeafId(leaf));
        let mut v: Vec<dna_seq::Base> = idx.iter().collect();
        v[sep_pos * 2 + 1] = dna_seq::Base::from_code(repl); // corrupt separator only
        let noisy = dna_seq::DnaSeq::from_bases(v);
        prop_assert_eq!(tree.parse_index_lenient(&noisy), Some(LeafId(leaf)));
    }
}
