//! Durability properties: snapshot → journal replay → resumed store.
//!
//! The acceptance bar for the persist subsystem (ROADMAP item 1):
//!
//! 1. **Recovery equivalence** — a store reopened from its image + journal
//!    is *byte-identical* to the one that wrote them: same logical images
//!    (the §5.4 digital oracle), same tube contents, same epochs, same RNG
//!    streams — on all three update layouts, with checkpoints landing at
//!    arbitrary points in the history.
//! 2. **Serving equivalence** — a [`StoreServer`] resumed on the recovered
//!    store serves the exact oracle bytes, and the [`ServerStats`]
//!    identities (`reads_served == cache_hits + cache_misses`,
//!    `stale_serves == 0`) survive recover-and-resume.
//! 3. **Format stability** — the on-disk image and journal encodings are
//!    pinned by golden checksums; any layout change must bump
//!    [`dna_block_store::persist::FORMAT_VERSION`] and add a migration
//!    note (the CI format gate runs these tests).

use dna_block_store::persist::{open_or_recover_store, Journal, JournalRecord, FORMAT_VERSION};
use dna_block_store::{
    checksum64, BlockStore, PartitionConfig, PartitionId, ServerConfig, StoreServer, UpdateLayout,
    BLOCK_SIZE,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

const LAYOUTS: [UpdateLayout; 3] = [
    UpdateLayout::Interleaved { update_slots: 3 },
    UpdateLayout::TwoStacks,
    UpdateLayout::DedicatedLog,
];

const BLOCKS: u64 = 4;

/// A unique scratch directory per test case (removed on success; leftovers
/// from failed runs land under the system temp dir).
fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dna-persist-{}-{tag}-{n}", std::process::id()))
}

fn layout_tag(layout: UpdateLayout) -> &'static str {
    match layout {
        UpdateLayout::Interleaved { .. } => "interleaved",
        UpdateLayout::TwoStacks => "twostacks",
        UpdateLayout::DedicatedLog => "log",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Property 1 + 2: build a durable store, run a random update history
    /// with a checkpoint landing at a random point, reopen — the recovered
    /// store's captured image must equal the original's exactly (logical
    /// oracle, tubes, epochs, RNG streams), and a resumed server must
    /// serve the oracle bytes with clean stats.
    #[test]
    fn recovered_store_is_byte_identical(
        seed in 0u64..1_000,
        // (block, edit position, edit byte) — applied as updates.
        ops in prop::collection::vec(
            (0u64..BLOCKS, 0usize..BLOCK_SIZE, any::<u8>()),
            1..7,
        ),
        checkpoint_at in 0usize..7,
    ) {
        for layout in LAYOUTS {
            let dir = scratch(layout_tag(layout));
            let mut oracle;
            let original_image;
            {
                let mut store = open_or_recover_store(&dir, seed).unwrap();
                store
                    .set_log_partition_config(PartitionConfig::small(
                        seed ^ 0x31,
                        2,
                        UpdateLayout::paper_default(),
                    ))
                    .unwrap();
                let pid = store
                    .create_partition(PartitionConfig::small(seed ^ 0x32, 3, layout))
                    .unwrap();
                oracle = dna_block_store::workload::deterministic_text(
                    BLOCKS as usize * BLOCK_SIZE,
                    seed ^ 0x33,
                );
                store.write_file(pid, &oracle).unwrap();
                for (i, &(block, pos, byte)) in ops.iter().enumerate() {
                    if i == checkpoint_at {
                        // A snapshot mid-history: recovery must combine it
                        // with the journal suffix.
                        store.checkpoint().unwrap();
                    }
                    let off = block as usize * BLOCK_SIZE;
                    oracle[off + pos] = byte;
                    store
                        .update_block(pid, block, &oracle[off..off + BLOCK_SIZE])
                        .unwrap();
                }
                original_image = store.capture_image();
            } // drop without a final checkpoint: reopen must replay the journal

            let recovered = open_or_recover_store(&dir, seed).unwrap();
            // The strongest possible equivalence: every persisted facet of
            // the store — oracle, tube species and abundances, bookkeeping,
            // epochs, RNG state, primer allocation — is byte-identical.
            prop_assert_eq!(
                recovered.capture_image(),
                original_image,
                "{}: recovery must reproduce the store exactly",
                layout
            );

            // A resumed server serves the oracle through the wetlab path.
            let server =
                StoreServer::new(recovered, ServerConfig::paper_default());
            let pid = PartitionId(0);
            for b in 0..BLOCKS {
                let off = b as usize * BLOCK_SIZE;
                let out = server.read_block(pid, b).unwrap();
                prop_assert_eq!(
                    &out.block.data[..],
                    &oracle[off..off + BLOCK_SIZE],
                    "{}: recovered read of block {}",
                    layout,
                    b
                );
            }
            let stats = server.stats();
            prop_assert_eq!(stats.reads_served, stats.cache_hits + stats.cache_misses);
            prop_assert_eq!(stats.stale_serves, 0);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Satellite: the `ServerStats` identities survive recover-and-resume
/// under a cold/warm read mix with interleaved updates — the oracle is
/// reseeded from recovered state, so a stale cache can never be blamed on
/// recovery.
#[test]
fn server_stats_identities_survive_recovery() {
    let dir = scratch("stats");
    let seed = 0xD00D;
    let mut data;
    {
        let store = open_or_recover_store(&dir, seed).unwrap();
        let pid = store
            .create_partition(PartitionConfig::small(
                seed ^ 0x32,
                3,
                UpdateLayout::Interleaved { update_slots: 3 },
            ))
            .unwrap();
        data = dna_block_store::workload::deterministic_text(BLOCKS as usize * BLOCK_SIZE, seed);
        store.write_file(pid, &data).unwrap();
        data[0] = !data[0];
        store.update_block(pid, 0, &data[..BLOCK_SIZE]).unwrap();
    } // crash-equivalent drop: journal holds the update

    let server = StoreServer::open_or_recover(&dir, seed, ServerConfig::paper_default()).unwrap();
    let pid = PartitionId(0);
    // Cold reads, warm re-reads, an update, and a post-update re-read.
    for b in 0..BLOCKS {
        let out = server.read_block(pid, b).unwrap();
        assert_eq!(
            &out.block.data[..],
            &data[b as usize * BLOCK_SIZE..(b as usize + 1) * BLOCK_SIZE]
        );
    }
    for b in 0..BLOCKS {
        let out = server.read_block(pid, b).unwrap();
        assert!(out.from_cache, "warm re-read of block {b} must hit");
    }
    data[BLOCK_SIZE] = !data[BLOCK_SIZE];
    server
        .update_block(pid, 1, &data[BLOCK_SIZE..2 * BLOCK_SIZE])
        .unwrap();
    let post = server.read_block(pid, 1).unwrap();
    assert_eq!(&post.block.data[..], &data[BLOCK_SIZE..2 * BLOCK_SIZE]);

    let stats = server.stats();
    assert_eq!(
        stats.reads_served,
        stats.cache_hits + stats.cache_misses,
        "reads_served identity must hold after recover-and-resume"
    );
    assert_eq!(stats.stale_serves, 0, "no stale serve may follow recovery");
    assert_eq!(stats.reads_served, 2 * BLOCKS + 1);

    // The resumed state is itself recoverable. Server reads advance shard
    // RNG streams without journaling them (reads are not mutations), so a
    // checkpoint is required before image equality can be asserted.
    let store = server.into_store();
    store.checkpoint().unwrap();
    let final_image = store.capture_image();
    drop(store);
    let again = open_or_recover_store(&dir, seed).unwrap();
    assert_eq!(again.capture_image(), final_image);
    std::fs::remove_dir_all(&dir).ok();
}

/// Recovery refuses a journal from a different archive instead of
/// replaying it into the wrong store.
#[test]
fn recovery_rejects_foreign_journal() {
    let dir = scratch("foreign");
    {
        let store = open_or_recover_store(&dir, 1).unwrap();
        drop(store);
    }
    let err = open_or_recover_store(&dir, 2).unwrap_err();
    assert!(
        err.to_string().contains("seed"),
        "foreign archive must be detected, got: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// format golden pins
// ---------------------------------------------------------------------------

/// Golden checksum of a scripted store's encoded image. If this pin moves,
/// the on-disk image format (or the state that feeds it) changed: bump
/// `persist::FORMAT_VERSION` and add a migration note to the README's
/// "Durability & crash recovery" section, then update the pin.
#[test]
fn format_golden_pin_image() {
    assert_eq!(
        FORMAT_VERSION, 1,
        "FORMAT_VERSION moved: refresh both golden pins alongside the bump"
    );
    let mut store = BlockStore::new(7);
    store
        .set_log_partition_config(PartitionConfig::small(3, 2, UpdateLayout::paper_default()))
        .unwrap();
    let pid = store
        .create_partition(PartitionConfig::small(
            5,
            2,
            UpdateLayout::Interleaved { update_slots: 3 },
        ))
        .unwrap();
    let data = dna_block_store::workload::deterministic_text(2 * BLOCK_SIZE, 9);
    store.write_file(pid, &data).unwrap();
    let mut edit = data[..BLOCK_SIZE].to_vec();
    edit[17] ^= 0x5A;
    store.update_block(pid, 0, &edit).unwrap();
    let encoded = store.capture_image().encode();
    assert_eq!(
        checksum64(&encoded),
        GOLDEN_IMAGE_CHECKSUM,
        "encoded store image changed ({} bytes, checksum {:#018x}): this is \
         an on-disk format change — bump persist::FORMAT_VERSION, document \
         the migration, and refresh this pin",
        encoded.len(),
        checksum64(&encoded)
    );
}

/// Golden checksum of a journal file holding one record of every kind.
/// Same contract as [`format_golden_pin_image`].
#[test]
fn format_golden_pin_journal() {
    let dir = scratch("golden-journal");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("golden.journal");
    let config = PartitionConfig::small(11, 2, UpdateLayout::TwoStacks);
    let mut journal = Journal::create(&path, 0xFEED).unwrap();
    for record in [
        JournalRecord::CreatePartition { pid: 0, config },
        JournalRecord::CreateLogPartition { pid: 1, config },
        JournalRecord::WriteFile {
            pid: 0,
            first_block: 2,
            data: vec![0xAB; 300],
            epoch: 1,
        },
        JournalRecord::Update {
            pid: 0,
            block: 2,
            content: vec![0xCD; BLOCK_SIZE],
            epoch: 2,
        },
        JournalRecord::Compact { pid: 0, epoch: 3 },
        JournalRecord::CompactLog { epoch: 4 },
        JournalRecord::SetLogConfig { config },
    ] {
        journal.append(&record).unwrap();
    }
    drop(journal);
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(
        checksum64(&bytes),
        GOLDEN_JOURNAL_CHECKSUM,
        "encoded journal changed ({} bytes, checksum {:#018x}): this is \
         an on-disk format change — bump persist::FORMAT_VERSION, document \
         the migration, and refresh this pin",
        bytes.len(),
        checksum64(&bytes)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Pinned by `format_golden_pin_image`.
const GOLDEN_IMAGE_CHECKSUM: u64 = 0xd8e5_8a81_82b0_45ee;
/// Pinned by `format_golden_pin_journal`.
const GOLDEN_JOURNAL_CHECKSUM: u64 = 0xa2e1_6dee_9772_de44;

/// The recovered oracle helper used by several tests: all logical blocks
/// of partition 0, concatenated.
#[allow(dead_code)]
fn oracle_of(store: &BlockStore) -> BTreeMap<u64, Vec<u8>> {
    store
        .logical_contents()
        .into_iter()
        .filter(|((pid, _), _)| *pid == PartitionId(0))
        .map(|((_, block), image)| (block, image.data.clone()))
        .collect()
}
