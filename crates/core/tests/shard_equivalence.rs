//! Equivalence properties for the sharded store.
//!
//! The refactor from one monolithic pool/lock to per-partition shards
//! must be *semantically invisible*: the correctness anchor is the §5.4
//! digital front-end (the monolithic store's semantics — original bytes
//! plus every committed patch, in order), and the planner's round
//! arithmetic. Two properties pin it:
//!
//! 1. **Oracle equivalence** — under arbitrary interleavings of updates,
//!    sequential reads, batched reads and compactions, every wetlab read
//!    returns byte-identical images to the digital oracle, and every
//!    batch executes exactly the round count its plan predicted, on all
//!    three update layouts.
//! 2. **Serial/concurrent equivalence** — the same per-shard operation
//!    scripts executed sequentially on one store and concurrently (one
//!    thread per shard) on another produce byte-identical read outcomes,
//!    identical wetlab statistics, and identical final logical images:
//!    per-shard determinism is independent of cross-shard interleaving.
//!
//! Wetlab reads are expensive, so case counts are small; the seeds still
//! vary layouts, targets and edit bytes.

use dna_block_store::{
    BlockStore, PartitionConfig, PartitionId, ReadProtocolStats, UpdateLayout, BLOCK_SIZE,
};
use proptest::prelude::*;

const LAYOUTS: [UpdateLayout; 3] = [
    UpdateLayout::Interleaved { update_slots: 3 },
    UpdateLayout::TwoStacks,
    UpdateLayout::DedicatedLog,
];

const BLOCKS: u64 = 4;

fn build_store(seed: u64, layout: UpdateLayout) -> (BlockStore, PartitionId, Vec<u8>) {
    let mut store = BlockStore::new(seed);
    store
        .set_log_partition_config(PartitionConfig::small(
            seed ^ 0x31,
            2,
            UpdateLayout::paper_default(),
        ))
        .unwrap();
    let pid = store
        .create_partition(PartitionConfig::small(seed ^ 0x32, 3, layout))
        .unwrap();
    let data =
        dna_block_store::workload::deterministic_text(BLOCKS as usize * BLOCK_SIZE, seed ^ 0x33);
    store.write_file(pid, &data).unwrap();
    (store, pid, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Property 1: arbitrary read/update/batch/compaction interleavings
    /// stay byte-identical to the digital oracle, and batches execute the
    /// planned round count.
    #[test]
    fn sharded_store_matches_digital_oracle(
        seed in 0u64..1_000,
        // (op selector, block, edit position, edit byte); short enough
        // that no layout exhausts (the small shared log holds 15).
        ops in prop::collection::vec(
            (0u8..4, 0u64..BLOCKS, 0usize..BLOCK_SIZE, any::<u8>()),
            1..8,
        ),
    ) {
        for layout in LAYOUTS {
            let (store, pid, mut oracle) = build_store(seed, layout);
            let planner = dna_block_store::BatchPlanner::paper_default();
            for &(op, block, pos, byte) in &ops {
                let off = block as usize * BLOCK_SIZE;
                match op {
                    // Update: oracle and store move in lockstep.
                    0 | 1 => {
                        oracle[off + pos] = byte;
                        store
                            .update_block(pid, block, &oracle[off..off + BLOCK_SIZE])
                            .unwrap();
                    }
                    // Sequential wetlab read equals the oracle.
                    2 => {
                        let out = store.read_block(pid, block).unwrap();
                        prop_assert_eq!(
                            &out.block.data, &oracle[off..off + BLOCK_SIZE],
                            "{}: sequential read of block {}", layout, block
                        );
                    }
                    // Batched read: bytes equal the oracle AND the
                    // executed round count equals the plan's.
                    _ => {
                        let requests: Vec<(PartitionId, u64)> =
                            (0..BLOCKS).map(|b| (pid, b)).collect();
                        let plan = store.plan_batch(&requests, &planner).unwrap();
                        let batch = store
                            .read_blocks_batch_planned(&requests, &planner)
                            .unwrap();
                        prop_assert_eq!(
                            batch.stats.rounds, plan.num_rounds(),
                            "{}: executed rounds deviate from the plan", layout
                        );
                        for (b, outcome) in batch.outcomes.iter().enumerate() {
                            let off = b * BLOCK_SIZE;
                            prop_assert_eq!(
                                &outcome.as_ref().unwrap().block.data,
                                &oracle[off..off + BLOCK_SIZE],
                                "{}: batched read of block {}", layout, b
                            );
                        }
                    }
                }
            }
            // Compaction folds everything; bytes must survive the rebase
            // through the wetlab on every block.
            store.compact_partition(pid).unwrap();
            for b in 0..BLOCKS {
                let off = b as usize * BLOCK_SIZE;
                let out = store.read_block(pid, b).unwrap();
                prop_assert_eq!(
                    &out.block.data, &oracle[off..off + BLOCK_SIZE],
                    "{}: post-compaction read of block {}", layout, b
                );
                prop_assert_eq!(
                    &store.logical_block(pid, b).unwrap().data,
                    &oracle[off..off + BLOCK_SIZE]
                );
            }
        }
    }
}

/// One scripted per-shard operation for the serial/concurrent property.
#[derive(Debug, Clone, Copy)]
enum ShardOp {
    Update { block: u64, pos: usize, byte: u8 },
    Read { block: u64 },
    ReadRange,
    Compact,
}

/// Executes one shard's script against the store, returning every read
/// outcome (bytes + wetlab statistics) in script order.
fn run_script(
    store: &BlockStore,
    pid: PartitionId,
    data: &mut [u8],
    script: &[ShardOp],
) -> Vec<(Vec<u8>, ReadProtocolStats)> {
    let mut observed = Vec::new();
    for &op in script {
        match op {
            ShardOp::Update { block, pos, byte } => {
                let off = block as usize * BLOCK_SIZE;
                data[off + pos] = byte;
                store
                    .update_block(pid, block, &data[off..off + BLOCK_SIZE])
                    .unwrap();
            }
            ShardOp::Read { block } => {
                let out = store.read_block(pid, block).unwrap();
                observed.push((out.block.data.to_vec(), out.stats));
            }
            ShardOp::ReadRange => {
                let batch = store
                    .read_blocks_batch(&(0..BLOCKS).map(|b| (pid, b)).collect::<Vec<_>>())
                    .unwrap();
                for outcome in batch.outcomes {
                    let o = outcome.unwrap();
                    observed.push((o.block.data.to_vec(), o.stats));
                }
            }
            ShardOp::Compact => {
                store.compact_partition(pid).unwrap();
            }
        }
    }
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Property 2: per-shard scripts produce identical results whether the
    /// shards run one after another or all at once on separate threads —
    /// per-shard RNG streams and epochs make results a pure function of
    /// the shard's own operation order. (In-partition layouts only: the
    /// shared log is a deliberately cross-shard resource, so DedicatedLog
    /// results depend on cross-shard log order by design.)
    #[test]
    fn concurrent_shards_match_serial_execution(
        seed in 0u64..1_000,
        raw in prop::collection::vec(
            prop::collection::vec((0u8..5, 0u64..BLOCKS, 0usize..BLOCK_SIZE, any::<u8>()), 1..5),
            3..4, // 3 shards
        ),
    ) {
        let layouts = [
            UpdateLayout::Interleaved { update_slots: 3 },
            UpdateLayout::TwoStacks,
            UpdateLayout::Interleaved { update_slots: 2 },
        ];
        let scripts: Vec<Vec<ShardOp>> = raw
            .iter()
            .map(|shard_ops| {
                shard_ops
                    .iter()
                    .map(|&(op, block, pos, byte)| match op {
                        0 | 1 => ShardOp::Update { block, pos, byte },
                        2 => ShardOp::Read { block },
                        3 => ShardOp::ReadRange,
                        _ => ShardOp::Compact,
                    })
                    .collect()
            })
            .collect();

        // Build two identically-seeded stores with identical shards.
        let build = || {
            let store = BlockStore::new(seed);
            let mut pids = Vec::new();
            let mut datas = Vec::new();
            for (i, layout) in layouts.iter().enumerate() {
                let pid = store
                    .create_partition(PartitionConfig::small(
                        seed ^ (0x41 + i as u64),
                        3,
                        *layout,
                    ))
                    .unwrap();
                let data = dna_block_store::workload::deterministic_text(
                    BLOCKS as usize * BLOCK_SIZE,
                    seed ^ (0x51 + i as u64),
                );
                store.write_file(pid, &data).unwrap();
                pids.push(pid);
                datas.push(data);
            }
            (store, pids, datas)
        };

        // Serial: shard scripts back to back.
        let (serial_store, pids, mut datas) = build();
        let mut serial_results = Vec::new();
        for (i, script) in scripts.iter().enumerate() {
            serial_results.push(run_script(&serial_store, pids[i], &mut datas[i], script));
        }
        let serial_images: Vec<Vec<u8>> = pids
            .iter()
            .flat_map(|&pid| {
                (0..BLOCKS).map(move |b| (pid, b))
            })
            .map(|(pid, b)| serial_store.logical_block(pid, b).unwrap().data.to_vec())
            .collect();

        // Concurrent: one thread per shard, same scripts.
        let (conc_store, pids2, mut datas2) = build();
        prop_assert_eq!(&pids, &pids2);
        let conc_results: Vec<Vec<(Vec<u8>, ReadProtocolStats)>> =
            std::thread::scope(|scope| {
                let conc_store = &conc_store;
                let handles: Vec<_> = scripts
                    .iter()
                    .zip(pids2.iter().copied())
                    .zip(datas2.iter_mut())
                    .map(|((script, pid), data)| {
                        scope.spawn(move || run_script(conc_store, pid, data, script))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
        let conc_images: Vec<Vec<u8>> = pids2
            .iter()
            .flat_map(|&pid| (0..BLOCKS).map(move |b| (pid, b)))
            .map(|(pid, b)| conc_store.logical_block(pid, b).unwrap().data.to_vec())
            .collect();

        // Byte-identical reads, identical wetlab stats, identical final
        // images — shard by shard, op by op.
        prop_assert_eq!(serial_results, conc_results);
        prop_assert_eq!(serial_images, conc_images);
    }
}
