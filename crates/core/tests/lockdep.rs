//! Runtime lock-order enforcement (`dna_block_store::sync`).
//!
//! Debug builds: acquiring against the documented hierarchy —
//! directory → primer-alloc → data shards (ascending pid) → log shard →
//! service front → service sched — must panic deterministically, naming
//! *both* acquisition sites. A property test drives real store operations
//! (reads, updates, batches, compactions) from concurrent threads and
//! asserts the detector never trips on the store's own paths.
//!
//! Release builds: the wrappers must be zero-overhead passthroughs — same
//! size as the `std::sync` primitives, no tracking, no panics.

use dna_block_store::sync::{LockRank, RankedMutex, RankedRwLock};

#[cfg(debug_assertions)]
mod debug_detector {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "<non-string panic payload>".to_string())
    }

    #[test]
    fn data_shard_after_log_shard_panics_naming_both_sites() {
        let log = RankedMutex::new(LockRank::LOG_SHARD, "log-shard", ());
        let shard = RankedMutex::new(LockRank::shard(0), "data-shard", ());
        let held_line = line!() + 1;
        let _log_guard = log.lock().expect("log shard");
        let acquire_line = line!() + 2;
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _ = shard.lock();
        }))
        .expect_err("a data shard acquired while holding the log shard must panic");
        let msg = panic_message(err);
        assert!(msg.contains("lock-order violation"), "{msg}");
        assert!(msg.contains("`data-shard`"), "{msg}");
        assert!(msg.contains("`log-shard`"), "{msg}");
        assert!(
            msg.contains(&format!("lockdep.rs:{acquire_line}:")),
            "the offending acquisition site must be named: {msg}"
        );
        assert!(
            msg.contains(&format!("lockdep.rs:{held_line}:")),
            "the already-held lock's acquisition site must be named: {msg}"
        );
    }

    #[test]
    fn directory_after_shard_panics_naming_both_sites() {
        let directory = RankedRwLock::new(LockRank::DIRECTORY, "store-directory", ());
        let shard = RankedMutex::new(LockRank::shard(3), "data-shard", ());
        let held_line = line!() + 1;
        let _shard_guard = shard.lock().expect("data shard");
        let acquire_line = line!() + 2;
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _ = directory.read();
        }))
        .expect_err("the directory acquired while holding a shard must panic");
        let msg = panic_message(err);
        assert!(msg.contains("lock-order violation"), "{msg}");
        assert!(msg.contains("`store-directory`"), "{msg}");
        assert!(msg.contains("`data-shard`"), "{msg}");
        assert!(
            msg.contains(&format!("lockdep.rs:{acquire_line}:")),
            "{msg}"
        );
        assert!(msg.contains(&format!("lockdep.rs:{held_line}:")), "{msg}");
    }

    #[test]
    fn recursive_directory_read_is_a_violation() {
        // Equal rank is rejected: a re-entrant read() deadlocks against a
        // queued writer on some platforms, so the detector refuses it.
        let directory = RankedRwLock::new(LockRank::DIRECTORY, "store-directory", ());
        let _outer = directory.read().expect("directory");
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _ = directory.read();
        }))
        .expect_err("a recursive directory read must panic");
        assert!(panic_message(err).contains("lock-order violation"));
    }

    #[test]
    fn ascending_acquisition_is_clean() {
        let directory = RankedRwLock::new(LockRank::DIRECTORY, "store-directory", ());
        let alloc = RankedMutex::new(LockRank::PRIMER_ALLOC, "primer-alloc", ());
        let shard0 = RankedMutex::new(LockRank::shard(0), "data-shard", ());
        let shard1 = RankedMutex::new(LockRank::shard(1), "data-shard", ());
        let log = RankedMutex::new(LockRank::LOG_SHARD, "log-shard", ());
        let front = RankedMutex::new(LockRank::SERVICE_FRONT, "service-front", ());
        let sched = RankedMutex::new(LockRank::SERVICE_SCHED, "service-sched", ());

        let d = directory.read().expect("directory");
        let a = alloc.lock().expect("alloc");
        let s0 = shard0.lock().expect("shard 0");
        let s1 = shard1.lock().expect("shard 1");
        let l = log.lock().expect("log");
        let f = front.lock().expect("front");
        let s = sched.lock().expect("sched");

        // Out-of-order *release* is always fine; the held stack stays
        // consistent and lower ranks become acquirable again.
        drop(a);
        drop(l);
        drop(s);
        drop(f);
        drop(s1);
        drop(s0);
        drop(d);
        let _d = directory.write().expect("directory again");
        let _s0 = shard0.lock().expect("shard 0 again");
    }

    #[test]
    fn condvar_wait_keeps_the_rank_held() {
        use std::sync::Condvar;
        use std::time::Duration;

        let front = RankedMutex::new(LockRank::SERVICE_FRONT, "service-front", ());
        let sched = RankedMutex::new(LockRank::SERVICE_SCHED, "service-sched", 0u32);
        let cv = Condvar::new();

        let guard = sched.lock().expect("sched");
        let (guard, timed_out) = guard
            .wait_timeout_on(&cv, Duration::from_millis(1))
            .expect("sched after wait");
        assert!(timed_out.timed_out());
        // The scheduler lock was logically held across the wait: a
        // lower-ranked acquisition must still be a violation.
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _ = front.lock();
        }))
        .expect_err("front acquired while sched is held across a wait must panic");
        assert!(panic_message(err).contains("lock-order violation"));
        drop(guard);
        let _front = front.lock().expect("front after release");
    }

    #[test]
    fn notified_wait_keeps_the_rank_held() {
        // The untimed variant under a (possibly spurious) notification:
        // the rank must survive the park-notify-resume cycle, so the
        // Window leader's arrivals waits stay visible to the detector.
        use std::sync::Condvar;

        let front = RankedMutex::new(LockRank::SERVICE_FRONT, "service-front", ());
        let sched = RankedMutex::new(LockRank::SERVICE_SCHED, "service-sched", false);
        let cv = Condvar::new();

        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                let mut guard = sched.lock().expect("sched");
                while !*guard {
                    guard = guard.wait_on(&cv).expect("sched after wait");
                }
                // Resumed with the scheduler rank still held: going down
                // the hierarchy must still trip the detector.
                let err = catch_unwind(AssertUnwindSafe(|| {
                    let _ = front.lock();
                }))
                .expect_err("front under sched held across wait_on must panic");
                assert!(panic_message(err).contains("lock-order violation"));
            });
            // Storm of wakeups that find the predicate still false: each
            // one is a spurious resume the waiter must absorb by re-parking
            // with its rank intact.
            for _ in 0..16 {
                cv.notify_all();
                std::thread::yield_now();
            }
            *sched.lock().expect("sched from notifier") = true;
            cv.notify_all();
            waiter.join().expect("waiter clean");
        });
    }
}

/// Concurrent store operations never trip the detector: the store's own
/// paths (sequential/batched wetlab reads, updates on all three layouts
/// via the shared log, partition and log compaction) all follow the
/// documented hierarchy. Any violation panics the worker thread, which
/// fails the join below.
#[cfg(debug_assertions)]
mod interleavings {
    use dna_block_store::{BlockStore, PartitionConfig, PartitionId, UpdateLayout, BLOCK_SIZE};
    use proptest::prelude::*;

    const BLOCKS: u64 = 4;

    fn build_store(seed: u64) -> (BlockStore, Vec<PartitionId>) {
        let mut store = BlockStore::new(seed);
        store
            .set_log_partition_config(PartitionConfig::small(
                seed ^ 0x31,
                2,
                UpdateLayout::paper_default(),
            ))
            .expect("log partition config");
        let mut pids = Vec::new();
        let layouts = [
            UpdateLayout::Interleaved { update_slots: 3 },
            UpdateLayout::DedicatedLog,
        ];
        for (i, layout) in layouts.iter().enumerate() {
            let pid = store
                .create_partition(PartitionConfig::small(seed ^ (0x41 + i as u64), 3, *layout))
                .expect("create partition");
            let data = dna_block_store::workload::deterministic_text(
                BLOCKS as usize * BLOCK_SIZE,
                seed ^ (0x51 + i as u64),
            );
            store.write_file(pid, &data).expect("seed file");
            pids.push(pid);
        }
        (store, pids)
    }

    /// Run one thread's op script. Capacity errors (an exhausted shared
    /// log, concurrent compaction races) are expected under contention and
    /// ignored — the property under test is purely that no operation
    /// panics with a lock-order violation.
    fn run_ops(store: &BlockStore, pids: &[PartitionId], ops: &[(u8, u64, usize, u8)]) {
        for &(op, block, pos, byte) in ops {
            let pid = pids[pos % pids.len()];
            match op {
                0 | 1 => {
                    let mut data = vec![byte; BLOCK_SIZE];
                    data[pos % BLOCK_SIZE] = byte.wrapping_add(op);
                    let _ = store.update_block(pid, block, &data);
                }
                2 => {
                    let _ = store.read_block(pid, block);
                }
                3 => {
                    // Cross-shard batch: takes multiple shard locks in one
                    // operation (must be ascending-pid internally).
                    let requests: Vec<(PartitionId, u64)> = pids
                        .iter()
                        .flat_map(|&p| (0..BLOCKS).map(move |b| (p, b)))
                        .collect();
                    let _ = store.read_blocks_batch(&requests);
                }
                4 => {
                    let _ = store.compact_partition(pid);
                }
                _ => {
                    // Log compaction: log shard + every data shard with
                    // pending log entries.
                    let _ = store.compact_log();
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(2))]

        #[test]
        fn concurrent_ops_never_trip_the_detector(
            seed in 0u64..1_000,
            scripts in prop::collection::vec(
                prop::collection::vec(
                    (0u8..6, 0u64..BLOCKS, 0usize..BLOCK_SIZE, any::<u8>()),
                    1..6,
                ),
                2..3, // two concurrent threads
            ),
        ) {
            let (store, pids) = build_store(seed);
            std::thread::scope(|scope| {
                let handles: Vec<_> = scripts
                    .iter()
                    .map(|script| {
                        let store = &store;
                        let pids = &pids;
                        scope.spawn(move || run_ops(store, pids, script))
                    })
                    .collect();
                for handle in handles {
                    // A lock-order panic in a worker surfaces here.
                    handle.join().expect("no lock-order violation");
                }
            });
        }
    }
}

/// Release builds: the ranked wrappers are zero-overhead passthroughs.
#[cfg(not(debug_assertions))]
mod release_passthrough {
    use super::*;
    use std::mem::size_of;
    use std::sync::{Mutex, RwLock};

    #[test]
    fn wrappers_have_no_size_overhead() {
        assert_eq!(size_of::<RankedMutex<u64>>(), size_of::<Mutex<u64>>());
        assert_eq!(size_of::<RankedRwLock<u64>>(), size_of::<RwLock<u64>>());
    }

    #[test]
    fn out_of_order_acquisition_is_not_checked() {
        // No tracking in release: the reversed order that panics in debug
        // builds goes through untouched (single-threaded, so no deadlock).
        let log = RankedMutex::new(LockRank::LOG_SHARD, "log-shard", ());
        let shard = RankedMutex::new(LockRank::shard(0), "data-shard", ());
        let _log_guard = log.lock().expect("log shard");
        let _shard_guard = shard.lock().expect("data shard");
    }
}
