//! Property tests for the decoded-block cache: LRU behavior against a
//! reference model, and byte-equivalence of cache-enabled vs
//! cache-disabled serving under arbitrary read/update interleavings.

use dna_block_store::cache::{BlockCache, CacheKey};
use dna_block_store::{
    BatchWindow, Block, BlockStore, CachePolicy, PartitionConfig, PartitionId, ServerConfig,
    StoreServer, BLOCK_SIZE,
};
use proptest::prelude::*;

/// A straightforward reference LRU: `Vec` ordered least- to most-recently
/// used.
struct ModelLru {
    capacity: usize,
    entries: Vec<(CacheKey, u8)>,
}

impl ModelLru {
    fn new(capacity: usize) -> ModelLru {
        ModelLru {
            capacity,
            entries: Vec::new(),
        }
    }

    fn insert(&mut self, key: CacheKey, tag: u8) -> Option<CacheKey> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
            self.entries.remove(pos);
            self.entries.push((key, tag));
            return None;
        }
        let evicted = if self.entries.len() == self.capacity {
            Some(self.entries.remove(0).0)
        } else {
            None
        };
        self.entries.push((key, tag));
        evicted
    }

    fn get(&mut self, key: CacheKey) -> Option<u8> {
        let pos = self.entries.iter().position(|&(k, _)| k == key)?;
        let entry = self.entries.remove(pos);
        self.entries.push(entry);
        Some(entry.1)
    }

    fn invalidate(&mut self, key: CacheKey) -> bool {
        match self.entries.iter().position(|&(k, _)| k == key) {
            Some(pos) => {
                self.entries.remove(pos);
                true
            }
            None => false,
        }
    }

    fn keys(&self) -> Vec<CacheKey> {
        self.entries.iter().map(|&(k, _)| k).collect()
    }
}

fn tagged_block(tag: u8) -> Block {
    Block::from_bytes(&[tag; 8]).expect("tiny block fits")
}

proptest! {
    /// The cache agrees with the reference model on every observable —
    /// hit/miss, returned bytes, eviction victim, LRU order, and the
    /// capacity bound — after every operation of an arbitrary sequence.
    #[test]
    fn cache_matches_reference_lru_model(
        capacity in 0usize..6,
        raw_ops in prop::collection::vec(0u32..1000, 0..60),
    ) {
        let mut cache = BlockCache::new(capacity);
        let mut model = ModelLru::new(capacity);
        for (step, raw) in raw_ops.iter().enumerate() {
            // Decode one op from the raw draw: 8 keys x 3 op kinds.
            let key: CacheKey = (PartitionId((raw / 3 % 2) as usize), u64::from(raw / 6 % 4));
            let tag = (raw % 251) as u8;
            match raw % 3 {
                0 => {
                    let got = cache.get(&key).map(|b| b.data[0]);
                    prop_assert_eq!(got, model.get(key), "get at step {}", step);
                }
                1 => {
                    let evicted = cache.insert(key, tagged_block(tag));
                    prop_assert_eq!(evicted, model.insert(key, tag), "evict at step {}", step);
                }
                _ => {
                    prop_assert_eq!(
                        cache.invalidate(&key),
                        model.invalidate(key),
                        "invalidate at step {}",
                        step
                    );
                }
            }
            prop_assert!(cache.len() <= capacity, "capacity exceeded at step {}", step);
            prop_assert_eq!(cache.len(), model.entries.len());
            prop_assert_eq!(cache.keys_lru_order(), model.keys(), "LRU order at step {}", step);
        }
    }

    /// Invalidation removes exactly the named key: every other entry keeps
    /// its bytes and its position in the eviction order.
    #[test]
    fn invalidate_removes_exactly_the_updated_block(
        populate in prop::collection::vec(0u64..12, 1..12),
        victim in 0u64..12,
    ) {
        let mut cache = BlockCache::new(12);
        for &b in &populate {
            cache.insert((PartitionId(0), b), tagged_block(b as u8));
        }
        let before = cache.keys_lru_order();
        let was_present = cache.peek(&(PartitionId(0), victim)).is_some();
        prop_assert_eq!(cache.invalidate(&(PartitionId(0), victim)), was_present);
        let expected: Vec<CacheKey> = before
            .iter()
            .copied()
            .filter(|&(_, b)| b != victim)
            .collect();
        prop_assert_eq!(cache.keys_lru_order(), expected);
        for &(_, b) in &expected {
            prop_assert_eq!(
                cache.peek(&(PartitionId(0), b)).map(|blk| blk.data[0]),
                Some(b as u8)
            );
        }
    }
}

proptest! {
    // Wetlab-backed equivalence: keep the case count small — every case
    // drives two full PCR/sequencing/decode servers.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// A cache-enabled read sequence is byte-identical to the
    /// cache-disabled sequence under arbitrary read/update interleavings,
    /// and both agree with a digital shadow of the logical contents.
    #[test]
    fn cached_and_uncached_serving_are_byte_identical(
        seed in 400u64..500,
        raw_ops in prop::collection::vec(0u32..1000, 3..9),
    ) {
        let blocks = 3usize;
        let build = |cache_capacity: usize| {
            let config = ServerConfig {
                cache_capacity,
                cache_policy: CachePolicy::Invalidate,
                window: BatchWindow::Immediate,
                ..ServerConfig::paper_default()
            };
            let server = StoreServer::new(BlockStore::new(seed), config);
            let pid = server
                .create_partition(PartitionConfig::paper_default(seed ^ 0x77))
                .unwrap();
            let data = dna_block_store::workload::deterministic_text(blocks * BLOCK_SIZE, seed);
            server.write_file(pid, &data).unwrap();
            (server, pid, data)
        };
        let (cached, pid_c, mut shadow) = build(4);
        let (uncached, pid_u, _) = build(0);

        for (step, raw) in raw_ops.iter().enumerate() {
            let block = u64::from(raw / 4) % blocks as u64;
            let off = (raw / 16) as usize % (BLOCK_SIZE - 4);
            match raw % 4 {
                // Update: same edit applied to both servers and the shadow.
                0 => {
                    let lo = block as usize * BLOCK_SIZE;
                    shadow[lo + off..lo + off + 3].copy_from_slice(b"upd");
                    let content = &shadow[lo..lo + BLOCK_SIZE];
                    cached.update_block(pid_c, block, content).unwrap();
                    uncached.update_block(pid_u, block, content).unwrap();
                }
                // Range read over everything.
                1 => {
                    let a = cached.read_range(pid_c, 0, blocks as u64 - 1).unwrap();
                    let b = uncached.read_range(pid_u, 0, blocks as u64 - 1).unwrap();
                    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                        prop_assert_eq!(&x.block, &y.block, "step {} range block {}", step, i);
                        prop_assert_eq!(
                            &x.block.data[..],
                            &shadow[i * BLOCK_SIZE..(i + 1) * BLOCK_SIZE],
                            "step {} shadow range block {}",
                            step,
                            i
                        );
                    }
                }
                // Single-block read.
                _ => {
                    let a = cached.read_block(pid_c, block).unwrap();
                    let b = uncached.read_block(pid_u, block).unwrap();
                    prop_assert_eq!(&a.block, &b.block, "step {} block {}", step, block);
                    let lo = block as usize * BLOCK_SIZE;
                    prop_assert_eq!(
                        &a.block.data[..],
                        &shadow[lo..lo + BLOCK_SIZE],
                        "step {} shadow block {}",
                        step,
                        block
                    );
                }
            }
        }
        // The uncached server never hit; the cached one never served stale.
        let s_cached = cached.stats();
        let s_uncached = uncached.stats();
        prop_assert_eq!(s_uncached.cache_hits, 0);
        prop_assert_eq!(s_cached.stale_serves, 0);
        prop_assert_eq!(s_uncached.stale_serves, 0);
        prop_assert_eq!(
            s_cached.cache_hits + s_cached.cache_misses,
            s_cached.reads_served
        );
        // Fewer (or equal) wetlab rounds with the cache on, never more.
        prop_assert!(s_cached.rounds_executed <= s_uncached.rounds_executed);
    }
}
