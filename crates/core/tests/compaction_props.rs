//! Property tests for the compaction lifecycle: for arbitrary update
//! sequences over all three layouts, folding a partition (and the shared
//! log) must preserve every block's logical bytes through the full wetlab
//! read path and must never *increase* any block's analytical retrieval
//! scope.
//!
//! Wetlab reads are expensive, so the case count is small (the seeded
//! inputs still vary the layout, the update targets and the edit bytes);
//! the deterministic scenario suite covers the fixed acceptance
//! workloads.

use dna_block_store::{
    BlockStore, CompactionPolicy, Compactor, PartitionConfig, PartitionId, UpdateLayout, BLOCK_SIZE,
};
use proptest::prelude::*;

const LAYOUTS: [UpdateLayout; 3] = [
    UpdateLayout::Interleaved { update_slots: 3 },
    UpdateLayout::TwoStacks,
    UpdateLayout::DedicatedLog,
];

fn build_store(seed: u64, layout: UpdateLayout) -> (BlockStore, PartitionId, Vec<u8>) {
    let mut store = BlockStore::new(seed);
    store
        .set_log_partition_config(PartitionConfig::small(
            seed ^ 0x21,
            2,
            UpdateLayout::paper_default(),
        ))
        .unwrap();
    let pid = store
        .create_partition(PartitionConfig::small(seed ^ 0x22, 3, layout))
        .unwrap();
    let data = dna_block_store::workload::deterministic_text(4 * BLOCK_SIZE, seed ^ 0x23);
    store.write_file(pid, &data).unwrap();
    (store, pid, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn compact_preserves_bytes_and_never_raises_scope(
        seed in 0u64..1_000,
        // (target block, edit position, edit byte) per update; short enough
        // that no layout exhausts (the small shared log holds 15).
        ops in prop::collection::vec((0u64..4, 0usize..BLOCK_SIZE, any::<u8>()), 1..10),
    ) {
        for layout in LAYOUTS {
            let (store, pid, mut data) = build_store(seed, layout);
            for &(block, pos, byte) in &ops {
                let off = block as usize * BLOCK_SIZE;
                data[off + pos] = byte;
                store.update_block(pid, block, &data[off..off + BLOCK_SIZE]).unwrap();
            }
            let scope_before: Vec<u64> = (0..4u64)
                .map(|b| store.retrieval_scope_units(pid, b).unwrap())
                .collect();
            let oracle: Vec<Vec<u8>> = (0..4u64)
                .map(|b| store.logical_block(pid, b).unwrap().data.clone())
                .collect();

            // An always-fires compactor: every partition with updates and
            // the log (if populated) fold.
            let report = Compactor::new(CompactionPolicy::headroom_only(u64::MAX))
                .run(&store)
                .unwrap();
            prop_assert!(!report.is_empty(), "{}: at least one update folded", layout);
            prop_assert!(report.units_reclaimed >= ops.len() as u64);

            for b in 0..4u64 {
                let scope_after = store.retrieval_scope_units(pid, b).unwrap();
                prop_assert!(
                    scope_after <= scope_before[b as usize],
                    "{}: block {} scope grew {} -> {}",
                    layout, b, scope_before[b as usize], scope_after
                );
                // Updated blocks collapse to the minimal single-unit scope.
                prop_assert_eq!(scope_after, 1);
                let read = store.read_block(pid, b).unwrap();
                prop_assert_eq!(
                    &read.block.data, &oracle[b as usize],
                    "{}: block {} bytes changed across compaction", layout, b
                );
                prop_assert_eq!(read.patches_applied, 0);
            }
            // The digital oracle itself is untouched by compaction.
            for b in 0..4u64 {
                prop_assert_eq!(&store.logical_block(pid, b).unwrap().data, &oracle[b as usize]);
            }
        }
    }
}
