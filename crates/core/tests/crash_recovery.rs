//! Crash-injection harness: recovery from torn journals and aborted
//! snapshots.
//!
//! Two attack surfaces, per the durability design:
//!
//! * **Torn journal tails** — in-process sweep: a committed history's
//!   journal is truncated (and separately bit-flipped) at a spread of
//!   offsets; recovery must yield exactly a committed prefix of the
//!   pre-crash history (verified against per-epoch oracles) or fail
//!   detectably. It must never serve torn state.
//! * **Real aborts** — subprocess tests: a child process re-runs this test
//!   binary with crash injection armed ([`BlockStore::set_journal_crash_after_bytes`]
//!   mid-append, [`BlockStore::checkpoint_with_crash`] mid-snapshot) and
//!   dies via `std::process::abort` at a randomized file offset. The
//!   parent then recovers the directory the child left behind and verifies
//!   the committed-prefix property end-to-end through a resumed server.

use dna_block_store::persist::{open_or_recover_store, JOURNAL_HEADER_LEN};
use dna_block_store::{
    BlockStore, PartitionConfig, PartitionId, ServerConfig, StoreServer, UpdateLayout, BLOCK_SIZE,
};
use std::path::{Path, PathBuf};

const SEED: u64 = 0xC4A5;
const BLOCKS: u64 = 2;
const UPDATES: usize = 6;

/// Environment variables gating the subprocess child bodies. When unset
/// the child tests are no-ops, so a plain `cargo test` run is unaffected.
const ENV_DIR: &str = "DNA_CRASH_DIR";
const ENV_LIMIT: &str = "DNA_CRASH_LIMIT";
const ENV_MODE: &str = "DNA_CRASH_MODE";

fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dna-crash-{}-{tag}-{n}", std::process::id()))
}

/// The deterministic workload shared by every test here: one Interleaved
/// and one DedicatedLog partition, `UPDATES` alternating single-byte
/// updates. Returns the oracle: for each partition, the logical bytes
/// after each number of applied updates (index 0 = post-`write_file`).
fn oracle_states() -> Vec<Vec<Vec<u8>>> {
    let mut oracles = Vec::new();
    for p in 0..2u64 {
        let mut states = Vec::with_capacity(UPDATES / 2 + 1);
        let mut data = dna_block_store::workload::deterministic_text(
            BLOCKS as usize * BLOCK_SIZE,
            SEED ^ (0x40 + p),
        );
        states.push(data.clone());
        for i in (p as usize..UPDATES).step_by(2) {
            let off = (i as u64 % BLOCKS) as usize * BLOCK_SIZE;
            data[off + i] = 0x80 + i as u8;
            states.push(data.clone());
        }
        oracles.push(states);
    }
    oracles
}

/// Runs the deterministic workload against a durable store in `dir`.
/// `crash_limit` arms mid-append crash injection; `snapshot_crash` instead
/// runs a crashing checkpoint after the last update.
fn run_workload(dir: &Path, crash_limit: Option<u64>, snapshot_crash: Option<u64>) {
    let mut store = open_or_recover_store(dir, SEED).unwrap();
    // Armed before any mutation: creations, bulk writes and updates are
    // all fair game for the simulated crash.
    store.set_journal_crash_after_bytes(crash_limit);
    store
        .set_log_partition_config(PartitionConfig::small(
            SEED ^ 0x31,
            2,
            UpdateLayout::paper_default(),
        ))
        .unwrap();
    let mut pids = Vec::new();
    for (p, layout) in [
        UpdateLayout::Interleaved { update_slots: 4 },
        UpdateLayout::DedicatedLog,
    ]
    .into_iter()
    .enumerate()
    {
        let pid = store
            .create_partition(PartitionConfig::small(SEED ^ (0x50 + p as u64), 3, layout))
            .unwrap();
        let data = dna_block_store::workload::deterministic_text(
            BLOCKS as usize * BLOCK_SIZE,
            SEED ^ (0x40 + p as u64),
        );
        store.write_file(pid, &data).unwrap();
        pids.push(pid);
    }
    let mut oracles = oracle_states();
    for i in 0..UPDATES {
        let p = i % 2;
        let pid = pids[p];
        let data = &mut oracles[p][0];
        let off = (i as u64 % BLOCKS) as usize * BLOCK_SIZE;
        data[off + i] = 0x80 + i as u8;
        store
            .update_block(pid, i as u64 % BLOCKS, &data[off..off + BLOCK_SIZE])
            .unwrap();
    }
    if let Some(limit) = snapshot_crash {
        store.checkpoint_with_crash(Some(limit)).unwrap();
        unreachable!("snapshot crash injection must abort before returning");
    }
}

/// Checks the committed-prefix property on a recovered store: each
/// partition's logical contents must equal the oracle state for exactly
/// the number of updates its recovered epoch says were committed, and a
/// resumed server must serve those bytes with clean stats.
fn assert_committed_prefix(store: BlockStore) {
    let oracles = oracle_states();
    let pids: Vec<PartitionId> = store
        .partition_ids()
        .into_iter()
        .filter(|pid| Some(pid.0) != store.log_partition_id().map(|l| l.0))
        .collect();
    let mut expected: Vec<(PartitionId, Vec<u8>)> = Vec::new();
    for (p, &pid) in pids.iter().enumerate() {
        let epoch = store.shard_epoch(pid).unwrap();
        if epoch == 0 {
            continue; // created but nothing written: nothing to check
        }
        let applied = (epoch - 1) as usize;
        assert!(
            applied < oracles[p].len(),
            "partition {} recovered epoch {epoch} beyond the {}-update history",
            pid.0,
            oracles[p].len() - 1
        );
        let state = &oracles[p][applied];
        for b in 0..BLOCKS {
            let off = b as usize * BLOCK_SIZE;
            let got = store
                .logical_block(pid, b)
                .unwrap_or_else(|| panic!("partition {} lost block {b}", pid.0));
            assert_eq!(
                &got.data[..],
                &state[off..off + BLOCK_SIZE],
                "partition {} block {b} does not match its epoch-{epoch} oracle",
                pid.0
            );
        }
        expected.push((pid, state.clone()));
    }
    // Torn state must also never leak through the serving layer.
    let server = StoreServer::new(store, ServerConfig::paper_default());
    for (pid, state) in &expected {
        for b in 0..BLOCKS {
            let off = b as usize * BLOCK_SIZE;
            let out = server.read_block(*pid, b).unwrap();
            assert_eq!(&out.block.data[..], &state[off..off + BLOCK_SIZE]);
        }
    }
    let stats = server.stats();
    assert_eq!(stats.reads_served, stats.cache_hits + stats.cache_misses);
    assert_eq!(
        stats.stale_serves, 0,
        "recovery must never serve torn state"
    );
}

// ---------------------------------------------------------------------------
// in-process torn-file sweep
// ---------------------------------------------------------------------------

/// Truncates the journal at a spread of offsets; every truncation must
/// recover to a committed prefix (possibly empty) — never to torn state,
/// never to a panic.
#[test]
fn torn_journal_truncation_sweep() {
    let build_dir = scratch("truncate-build");
    run_workload(&build_dir, None, None);
    let journal = std::fs::read(build_dir.join("store.journal")).unwrap();
    let image = std::fs::read(build_dir.join("store.image")).unwrap();
    // CI archives a sample of both on-disk formats alongside the format
    // gate, so a format change always ships with inspectable artifacts.
    if let Ok(out) = std::env::var("DNA_PERSIST_ARTIFACT_DIR") {
        let out = PathBuf::from(out);
        std::fs::create_dir_all(&out).unwrap();
        std::fs::write(out.join("store.image"), &image).unwrap();
        std::fs::write(out.join("store.journal"), &journal).unwrap();
    }
    let len = journal.len() as u64;
    assert!(len > JOURNAL_HEADER_LEN, "workload must journal something");

    let span = len - JOURNAL_HEADER_LEN;
    let mut offsets: Vec<u64> = (0..24)
        .map(|i| JOURNAL_HEADER_LEN + (i * 977) % span)
        .collect();
    offsets.push(JOURNAL_HEADER_LEN); // empty journal
    offsets.push(len - 1); // one byte short of complete
    offsets.sort_unstable();
    offsets.dedup();

    for cut in offsets {
        let dir = scratch("truncate");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("store.image"), &image).unwrap();
        std::fs::write(dir.join("store.journal"), &journal[..cut as usize]).unwrap();
        let store = open_or_recover_store(&dir, SEED)
            .unwrap_or_else(|e| panic!("truncation at {cut} must stay recoverable: {e}"));
        assert_committed_prefix(store);
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&build_dir).ok();
}

/// Flips a byte at a spread of offsets; recovery must either fail
/// detectably (header damage) or recover a committed prefix (frame damage
/// ends the scan). It must never propagate the corruption.
#[test]
fn corrupt_journal_byte_flip_sweep() {
    let build_dir = scratch("flip-build");
    run_workload(&build_dir, None, None);
    let journal = std::fs::read(build_dir.join("store.journal")).unwrap();
    let image = std::fs::read(build_dir.join("store.image")).unwrap();
    let len = journal.len() as u64;

    for i in 0..20u64 {
        let at = (i * 769) % len;
        let dir = scratch("flip");
        std::fs::create_dir_all(&dir).unwrap();
        let mut bad = journal.clone();
        bad[at as usize] ^= 0x20;
        std::fs::write(dir.join("store.image"), &image).unwrap();
        std::fs::write(dir.join("store.journal"), &bad).unwrap();
        match open_or_recover_store(&dir, SEED) {
            Ok(store) => assert_committed_prefix(store),
            Err(e) => {
                // Only header damage may hard-fail: wrong magic, version
                // or seed is a wrong-file condition, not a torn tail.
                assert!(
                    at < JOURNAL_HEADER_LEN,
                    "flip at frame offset {at} must truncate, not error: {e}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&build_dir).ok();
}

/// A stale image tmp file (crash between tmp write and rename) is swept
/// away and never mistaken for an image.
#[test]
fn stale_image_tmp_is_ignored() {
    let dir = scratch("stale-tmp");
    run_workload(&dir, None, None);
    std::fs::write(dir.join("store.image.tmp"), b"torn snapshot garbage").unwrap();
    let store = open_or_recover_store(&dir, SEED).unwrap();
    assert_committed_prefix(store);
    assert!(
        !dir.join("store.image.tmp").exists(),
        "recovery must remove the stale tmp"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// subprocess crash injection
// ---------------------------------------------------------------------------

/// Child body for the subprocess tests: runs the workload with crash
/// injection armed per the environment, then exits normally if the
/// injection never fired. A no-op unless spawned by a parent test.
#[test]
fn crash_child() {
    let Ok(dir) = std::env::var(ENV_DIR) else {
        return;
    };
    let limit: u64 = std::env::var(ENV_LIMIT).unwrap().parse().unwrap();
    match std::env::var(ENV_MODE).unwrap().as_str() {
        "journal" => run_workload(Path::new(&dir), Some(limit), None),
        "snapshot" => run_workload(Path::new(&dir), None, Some(limit)),
        mode => panic!("unknown crash mode {mode}"),
    }
}

fn spawn_child(dir: &Path, mode: &str, limit: u64) -> std::process::ExitStatus {
    std::process::Command::new(std::env::current_exe().unwrap())
        .args(["--exact", "crash_child", "--nocapture"])
        .env(ENV_DIR, dir)
        .env(ENV_MODE, mode)
        .env(ENV_LIMIT, limit.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn crash child")
}

/// Aborts the child mid-journal-append at randomized offsets; the parent
/// recovers each directory and asserts the committed-prefix property.
#[test]
fn crash_mid_journal_append_recovers_committed_prefix() {
    // Learn the journal's final length from one clean run.
    let probe = scratch("probe");
    let status = spawn_child(&probe, "journal", u64::MAX);
    assert!(status.success(), "uninjected child run must succeed");
    let final_len = std::fs::metadata(probe.join("store.journal"))
        .unwrap()
        .len();
    std::fs::remove_dir_all(&probe).ok();
    assert!(final_len > JOURNAL_HEADER_LEN);

    let span = final_len - JOURNAL_HEADER_LEN;
    for i in 0..4u64 {
        let limit = JOURNAL_HEADER_LEN + 1 + (i * 1409) % (span - 1);
        let dir = scratch("abort-journal");
        let status = spawn_child(&dir, "journal", limit);
        assert!(
            !status.success(),
            "child armed at byte {limit} must die mid-append"
        );
        let torn_len = std::fs::metadata(dir.join("store.journal")).unwrap().len();
        assert!(torn_len <= limit, "no bytes may land past the crash point");
        let store = open_or_recover_store(&dir, SEED)
            .unwrap_or_else(|e| panic!("crash at byte {limit} must stay recoverable: {e}"));
        assert_committed_prefix(store);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Aborts the child mid-snapshot (during the image tmp write, before the
/// rename commit point). The journal still holds the full history, so
/// recovery must reproduce the complete pre-crash state.
#[test]
fn crash_mid_snapshot_recovers_full_history() {
    for limit in [1u64, 64, 700] {
        let dir = scratch("abort-snapshot");
        let status = spawn_child(&dir, "snapshot", limit);
        assert!(
            !status.success(),
            "child armed at image byte {limit} must die mid-snapshot"
        );
        let store = open_or_recover_store(&dir, SEED)
            .unwrap_or_else(|e| panic!("snapshot crash at {limit} must stay recoverable: {e}"));
        // The rename never happened: every update must survive via replay.
        let oracles = oracle_states();
        let pids = store.partition_ids();
        for (p, states) in oracles.iter().enumerate() {
            let pid = pids[p];
            let last = states.last().unwrap();
            for b in 0..BLOCKS {
                let off = b as usize * BLOCK_SIZE;
                assert_eq!(
                    &store.logical_block(pid, b).unwrap().data[..],
                    &last[off..off + BLOCK_SIZE],
                    "partition {p} block {b} lost a committed update to the snapshot crash"
                );
            }
        }
        assert_committed_prefix(store);
        std::fs::remove_dir_all(&dir).ok();
    }
}
