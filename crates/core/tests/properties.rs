//! Property-based tests for the block store's logical layers (no wetlab —
//! those paths are covered by the integration tests).

use dna_block_store::{
    capacity, checksum64, parse_pointer_block, pointer_block, unit_checksum_ok, Block, Partition,
    PartitionConfig, UpdatePatch, VersionSlot, BLOCK_SIZE,
};
use dna_primers::PrimerPair;
use proptest::prelude::*;

fn primers() -> PrimerPair {
    PrimerPair::new(
        "AACCGGTTAACCGGTTAACC".parse().unwrap(),
        "AAGGCCTTAAGGCCTTAAGG".parse().unwrap(),
    )
}

/// Builds a valid patch from raw generator values by clamping offsets into
/// the legal envelope (`del_start + del_len <= BLOCK_SIZE`,
/// `ins_pos <= BLOCK_SIZE - del_len`, insertion fits the wire format).
fn make_patch(del_start: u8, del_len_raw: u8, ins_pos_raw: u8, ins: Vec<u8>) -> UpdatePatch {
    let del_len = usize::from(del_len_raw).min(BLOCK_SIZE - usize::from(del_start)) as u8;
    let ins_pos = usize::from(ins_pos_raw)
        .min(BLOCK_SIZE - usize::from(del_len))
        .min(255) as u8;
    UpdatePatch::new(del_start, del_len, ins_pos, ins).expect("clamped patch is valid")
}

proptest! {
    /// diff ∘ apply is the identity for arbitrary same-length edits.
    #[test]
    fn patch_diff_apply_identity(
        old_bytes in prop::collection::vec(any::<u8>(), 0..=BLOCK_SIZE),
        edit_at in 0usize..BLOCK_SIZE,
        edit in prop::collection::vec(any::<u8>(), 0..100),
    ) {
        let old = Block::from_bytes(&old_bytes).unwrap();
        let mut new_data = old.data.clone();
        for (i, &b) in edit.iter().enumerate() {
            if edit_at + i < BLOCK_SIZE {
                new_data[edit_at + i] = b;
            }
        }
        let new = Block::from_bytes(&new_data).unwrap();
        if let Some(patch) = UpdatePatch::diff(&old, &new) {
            prop_assert_eq!(patch.apply(&old).unwrap(), new);
            // Wire format round-trips too.
            let wire = patch.to_block();
            let back = UpdatePatch::from_block(&wire).unwrap();
            prop_assert_eq!(back, patch);
        }
    }

    /// Applying any valid patch to a full-size block always succeeds and
    /// yields exactly BLOCK_SIZE bytes — and so does applying a second
    /// patch on top: apply-then-apply composition never escapes the
    /// fixed-size envelope, no matter how the two patches interact.
    #[test]
    fn patch_composition_stays_within_block_size(
        content in prop::collection::vec(any::<u8>(), BLOCK_SIZE),
        ds1 in any::<u8>(), dl1 in any::<u8>(), ip1 in any::<u8>(),
        ins1 in prop::collection::vec(any::<u8>(), 0..UpdatePatch::MAX_INSERT),
        ds2 in any::<u8>(), dl2 in any::<u8>(), ip2 in any::<u8>(),
        ins2 in prop::collection::vec(any::<u8>(), 0..UpdatePatch::MAX_INSERT),
    ) {
        let block = Block::from_bytes(&content).unwrap();
        let p1 = make_patch(ds1, dl1, ip1, ins1);
        let p2 = make_patch(ds2, dl2, ip2, ins2);
        let once = p1.apply(&block).expect("first application");
        prop_assert_eq!(once.data.len(), BLOCK_SIZE);
        let twice = p2.apply(&once).expect("second application");
        prop_assert_eq!(twice.data.len(), BLOCK_SIZE);
    }

    /// The §6.4 wire format round-trips every valid patch, and a
    /// serialized patch is never mistaken for an overflow pointer by the
    /// pointer-block parser in `partition.rs` — the two encodings share
    /// the version-slot address space and must never be confused.
    #[test]
    fn patch_wire_round_trips_and_never_parses_as_pointer(
        ds in any::<u8>(), dl in any::<u8>(), ip in any::<u8>(),
        ins in prop::collection::vec(any::<u8>(), 0..UpdatePatch::MAX_INSERT),
    ) {
        let patch = make_patch(ds, dl, ip, ins);
        let wire = patch.to_block();
        prop_assert_eq!(wire.data.len(), BLOCK_SIZE);
        prop_assert_eq!(UpdatePatch::from_block(&wire).unwrap(), patch);
        prop_assert_eq!(parse_pointer_block(&wire), None);
    }

    /// Pointer blocks round-trip every target leaf and are always rejected
    /// by the patch parser.
    #[test]
    fn pointer_blocks_round_trip_and_reject_patch_parse(target in any::<u64>()) {
        let wire = pointer_block(target);
        prop_assert_eq!(parse_pointer_block(&wire), Some(target));
        prop_assert!(UpdatePatch::from_block(&wire).is_err());
    }

    /// Unit serialization always verifies; any single corruption is caught.
    #[test]
    fn unit_checksum_catches_any_flip(
        content in prop::collection::vec(any::<u8>(), 0..=BLOCK_SIZE),
        flip_at in 0usize..264,
        flip_bit in 0u8..8,
    ) {
        let block = Block::from_bytes(&content).unwrap();
        let mut unit = block.to_unit_bytes();
        prop_assert!(unit_checksum_ok(&unit));
        unit[flip_at] ^= 1 << flip_bit;
        prop_assert!(!unit_checksum_ok(&unit));
        let recomputed = checksum64(&unit[..BLOCK_SIZE]).to_le_bytes();
        prop_assert_ne!(recomputed.as_slice(), &unit[BLOCK_SIZE..]);
    }

    /// Strand encodings are deterministic per (seed, leaf, slot) and
    /// distinct across leaves and slots.
    #[test]
    fn encode_unit_deterministic_and_distinct(
        seed in any::<u64>(),
        leaf in 0u64..1020,
        slot in 0u8..4,
    ) {
        let p = Partition::new(PartitionConfig::paper_default(seed), primers());
        let block = Block::from_bytes(b"prop content").unwrap();
        let a = p.encode_unit(leaf, VersionSlot(slot), &block);
        let b = p.encode_unit(leaf, VersionSlot(slot), &block);
        prop_assert_eq!(&a, &b);
        let other_leaf = p.encode_unit(leaf + 1, VersionSlot(slot), &block);
        prop_assert_ne!(&a, &other_leaf);
        let other_slot = p.encode_unit(leaf, VersionSlot((slot + 1) % 4), &block);
        prop_assert_ne!(&a, &other_slot);
        // All strands are exactly 150 bases and share the leaf's prefix.
        let prefix = p.elongated_primer(leaf);
        for m in &a {
            prop_assert_eq!(m.seq.len(), 150);
            prop_assert!(m.seq.starts_with(&prefix));
        }
    }

    /// Version-slot planning is total and ordered for the interleaved
    /// layout: every successive update gets a valid, previously unused
    /// (leaf, slot) address.
    #[test]
    fn update_placements_never_collide(seed in any::<u64>(), updates in 1usize..12) {
        let mut p = Partition::new(PartitionConfig::paper_default(seed), primers());
        p.encode_block(5, &Block::zeroed()).unwrap();
        let patch = UpdatePatch::identity();
        let mut seen = std::collections::HashSet::new();
        seen.insert((5u64, 0u8)); // the original
        for _ in 0..updates {
            let (placement, _) = p.encode_update(5, &patch).unwrap();
            prop_assert!(
                seen.insert((placement.leaf, placement.slot.0)),
                "duplicate address {:?}",
                placement
            );
        }
    }

    /// The capacity model is monotone and the two corner formulas agree at
    /// their boundary for any geometry.
    #[test]
    fn capacity_model_sane(strand in 60usize..400, primer in 10usize..40) {
        prop_assume!(strand > 2 * primer + 2);
        let sweep = capacity::sweep(strand, primer);
        prop_assert_eq!(sweep.len(), strand - 2 * primer + 1);
        for w in sweep.windows(2) {
            prop_assert!(w[1].bits_per_base <= w[0].bits_per_base);
        }
        for p in &sweep {
            prop_assert!(p.bits_per_base > 0.0);
            prop_assert!(p.capacity_log2_bytes.is_finite());
        }
    }
}
