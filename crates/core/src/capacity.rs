//! The Figure 3 capacity/density model (§3).
//!
//! For a strand of length `S` with two primers of length `P` (and no other
//! overheads, matching the paper's Fig. 3 setup), `S − 2P` bases remain for
//! index + data. With an index of length `L`:
//!
//! - each of the `4^L` addresses stores one molecule with `S − 2P − L`
//!   payload bases = `2(S − 2P − L)` bits;
//! - at `L = S − 2P` there is no payload, but *presence* of each possible
//!   molecule encodes one bit: capacity `4^L` bits ("the presence of a
//!   molecule is treated as 1, and the absence as 0");
//! - density divides total information bits by total bases synthesized
//!   (`4^L · S`).

/// One point of the Fig. 3 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityPoint {
    /// Index length in bases.
    pub index_len: usize,
    /// log2 of partition capacity in bytes.
    pub capacity_log2_bytes: f64,
    /// Information density in bits per base.
    pub bits_per_base: f64,
}

/// Computes capacity (log2 bytes) and density for one index length.
///
/// Returns `None` if the geometry leaves no room (`L > S − 2P`).
///
/// # Examples
///
/// ```
/// use dna_block_store::capacity::point;
///
/// // The paper's corner case: strand 150, primers 20, L = 110 → 2^217 B.
/// let p = point(150, 20, 110).unwrap();
/// assert!((p.capacity_log2_bytes - 217.0).abs() < 1e-9);
/// ```
pub fn point(strand_len: usize, primer_len: usize, index_len: usize) -> Option<CapacityPoint> {
    let usable = strand_len.checked_sub(2 * primer_len)?;
    if index_len > usable {
        return None;
    }
    let payload_bases = usable - index_len;
    // bits = 4^L · 2·payload (or 4^L presence bits when payload == 0)
    let log2_addresses = 2.0 * index_len as f64;
    let (log2_bits, total_bits_per_molecule) = if payload_bases == 0 {
        (log2_addresses, 1.0)
    } else {
        (
            log2_addresses + (2.0 * payload_bases as f64).log2(),
            2.0 * payload_bases as f64,
        )
    };
    Some(CapacityPoint {
        index_len,
        capacity_log2_bytes: log2_bits - 3.0,
        bits_per_base: total_bits_per_molecule / strand_len as f64,
    })
}

/// Full sweep over all feasible index lengths — one Fig. 3 curve.
pub fn sweep(strand_len: usize, primer_len: usize) -> Vec<CapacityPoint> {
    (0..=strand_len.saturating_sub(2 * primer_len))
        .filter_map(|l| point(strand_len, primer_len, l))
        .collect()
}

/// log2 bytes of "the world's data in 2023" (~120 ZB), the reference line
/// drawn in Fig. 3.
pub fn world_data_2023_log2_bytes() -> f64 {
    (120.0f64 * 1e21).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_index_gives_presence_bits() {
        // §3: "the maximum storage capacity of 2^217B is achieved when the
        // entire available portion of the strand is used for indexing ...
        // there are 4^110 = 2^220" addresses → 2^220 bits = 2^217 bytes.
        let p = point(150, 20, 110).unwrap();
        assert!((p.capacity_log2_bytes - 217.0).abs() < 1e-9);
        // density: one bit per 150-base strand
        assert!((p.bits_per_base - 1.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn zero_index_maximizes_density() {
        // §3: "the density is the highest when there is only one molecule
        // which requires no index at all".
        let p = point(150, 20, 0).unwrap();
        assert!((p.bits_per_base - 2.0 * 110.0 / 150.0).abs() < 1e-12);
        // capacity is a single molecule: 110 bases = 220 bits = 27.5 B
        assert!((p.capacity_log2_bytes - (220.0f64.log2() - 3.0)).abs() < 1e-9);
    }

    #[test]
    fn density_decreases_monotonically_with_index_len() {
        let curve = sweep(150, 20);
        assert_eq!(curve.len(), 111);
        for w in curve.windows(2) {
            assert!(w[1].bits_per_base <= w[0].bits_per_base);
        }
    }

    #[test]
    fn capacity_increases_monotonically_until_presence_corner() {
        let curve = sweep(150, 20);
        for w in curve[..curve.len() - 1].windows(2) {
            assert!(
                w[1].capacity_log2_bytes > w[0].capacity_log2_bytes,
                "capacity should grow with L: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn primer_30_curve_sits_below_primer_20() {
        // Fig. 3 dashed lines: 30-base primers lose capacity and density but
        // "still have enormous capacity".
        let c20 = sweep(150, 20);
        let c30 = sweep(150, 30);
        assert_eq!(c30.len(), 91);
        for p30 in &c30 {
            let p20 = &c20[p30.index_len];
            assert!(p30.bits_per_base <= p20.bits_per_base);
            assert!(p30.capacity_log2_bytes <= p20.capacity_log2_bytes);
        }
        // and still surpasses the world's data at large L
        let world = world_data_2023_log2_bytes();
        assert!(c30.last().unwrap().capacity_log2_bytes > world);
    }

    #[test]
    fn paper_wetlab_point_loses_three_percent() {
        // §4.3: using 10 index bases instead of 5 costs ~3% density on
        // 150-base strands. With primers 20 + 1 sync base the payload view:
        // 5 extra bases / (109+60?) — the paper states ~3%; here we check
        // the raw model: (110-5 vs 110-10) → 5/105 ≈ 4.8% of payload, i.e.
        // ~3% of the whole strand's density budget (2·5/2·110).
        let dense = point(150, 20, 5).unwrap();
        let sparse = point(150, 20, 10).unwrap();
        let loss = 1.0 - sparse.bits_per_base / dense.bits_per_base;
        assert!((0.02..0.06).contains(&loss), "density loss {loss}");
    }

    #[test]
    fn infeasible_geometries_return_none() {
        assert!(point(150, 80, 0).is_none()); // primers eat the strand
        assert!(point(150, 20, 111).is_none()); // index too long
    }
}
