//! Recovery: opening a durable store from whatever a crash left on disk.
//!
//! The protocol, in order:
//!
//! 1. Load the image if one exists (its checksum, format version and seed
//!    are all verified) and rebuild the store from it; otherwise start from
//!    an empty store with the requested seed.
//! 2. Scan the journal. A torn or corrupt tail frame — the signature of a
//!    crash mid-append — marks the end of the committed prefix; the file is
//!    truncated back to it. Header damage is a hard error: that is not a
//!    torn tail but the wrong file.
//! 3. Replay every scanned record. Records already covered by the image
//!    (epoch at or below the restored shard's) are skipped; each applied
//!    record must land exactly on its recorded epoch or recovery fails
//!    detectably — it never serves a state it cannot prove.
//! 4. Attach the journal and checkpoint: the replayed history is folded
//!    into a fresh image and the journal resets to its header. A crash
//!    *during* this checkpoint is also safe — the image write is atomic
//!    (tmp + rename), and the journal is only truncated after the rename.
//!
//! The same call also performs first-time initialization: with no files on
//! disk it produces an empty store, a header-only journal, and an initial
//! image.

use super::image::StoreImage;
use super::journal::{scan_journal, Journal};
use crate::store::BlockStore;
use crate::StoreError;
use std::path::{Path, PathBuf};

fn io(what: &str, e: std::io::Error) -> StoreError {
    StoreError::Persist(format!("{what}: {e}"))
}

/// File layout of a durable store directory: one image, one journal.
#[derive(Debug, Clone)]
pub struct PersistPaths {
    root: PathBuf,
}

impl PersistPaths {
    /// The layout rooted at `root`.
    pub fn new(root: &Path) -> PersistPaths {
        PersistPaths {
            root: root.to_path_buf(),
        }
    }

    /// The store image (snapshot) file.
    pub fn image(&self) -> PathBuf {
        self.root.join("store.image")
    }

    /// The write-ahead journal file.
    pub fn journal(&self) -> PathBuf {
        self.root.join("store.journal")
    }

    /// The directory both files live in.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

/// Opens the durable store rooted at `dir`, recovering from any crash:
/// latest valid image + committed journal suffix, torn tail truncated.
/// Creates the directory, an empty store, and fresh persistence files when
/// nothing exists yet. On return the store serves exactly the pre-crash
/// committed prefix and journals every new commit.
///
/// # Errors
///
/// [`StoreError::Persist`] when the on-disk state is unusable: corrupt or
/// version-mismatched image, journal from a different archive (seed
/// mismatch), a replay that diverges from its recorded epochs, or I/O
/// failure. Damage recovery *can* prove harmless — a torn journal tail, a
/// leftover temporary image — is repaired silently instead.
pub fn open_or_recover_store(dir: &Path, seed: u64) -> Result<BlockStore, StoreError> {
    std::fs::create_dir_all(dir).map_err(|e| io("create store directory", e))?;
    let paths = PersistPaths::new(dir);
    // A crash mid-snapshot can leave a temporary image behind; the real
    // image is only ever replaced by the atomic rename, so the leftover is
    // garbage by construction.
    let image_file = paths.image();
    let mut tmp_name = image_file.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = image_file.with_file_name(tmp_name);
    if tmp.exists() {
        std::fs::remove_file(&tmp).map_err(|e| io("remove stale image temp file", e))?;
    }
    let store = if image_file.exists() {
        let bytes = std::fs::read(&image_file).map_err(|e| io("read store image", e))?;
        let image = StoreImage::decode(&bytes)?;
        if image.seed != seed {
            return Err(StoreError::Persist(format!(
                "image belongs to archive seed {:#x}, expected {seed:#x}",
                image.seed
            )));
        }
        BlockStore::from_image(&image)?
    } else {
        BlockStore::new(seed)
    };
    let journal_path = paths.journal();
    let journal = if journal_path.exists() {
        let scan = scan_journal(&journal_path, seed)?;
        if scan.valid_len < scan.file_len {
            // Torn tail from a crash mid-append: cut it, keep the prefix.
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(&journal_path)
                .map_err(|e| io("open journal for truncation", e))?;
            file.set_len(scan.valid_len)
                .and_then(|()| file.sync_all())
                .map_err(|e| io("truncate torn journal tail", e))?;
        }
        // Replay with no journal attached yet, so replayed commits do not
        // re-journal themselves.
        for record in &scan.records {
            store.replay_record(record)?;
        }
        Journal::open_append(&journal_path, seed)?
    } else {
        Journal::create(&journal_path, seed)?
    };
    store.attach_durability(journal, paths);
    // Fold the replayed history into a fresh image and reset the journal
    // (this also writes the initial image on first open).
    store.checkpoint()?;
    Ok(store)
}
