//! Crash-safe durability: versioned store images plus an epoch-keyed
//! write-ahead journal (ROADMAP item 1).
//!
//! The store's whole state — per-shard tube pools, partition placement
//! metadata, update chains, commit epochs, live RNG streams — normally
//! lives in RAM. This module makes it outlive the process:
//!
//! * [`StoreImage`] is a versioned, checksummed binary serialization of
//!   the full store, written atomically (tmp file + fsync + rename + parent
//!   directory fsync) by [`write_image_atomic`]. A torn snapshot write can
//!   therefore never replace a good image.
//! * [`Journal`] is a write-ahead journal: every committed mutation —
//!   block writes, update commits, compactions — is appended as a
//!   length-prefixed, CRC-framed [`JournalRecord`] keyed by `(pid, epoch)`
//!   and fsync'd *after* the shard commit and *before* the client observes
//!   success. The per-shard commit epochs introduced with the sharded
//!   store double as journal sequence numbers.
//! * [`open_or_recover_store`] loads the latest valid image, replays the
//!   journal records strictly above each shard's snapshot epoch, truncates
//!   any torn tail record, checkpoints, and returns a store that serves
//!   byte-identically to the pre-crash committed prefix.
//!
//! The image stores only what cannot be re-derived: index trees, payload
//! seeds, and the primer library regenerate deterministically from the
//! persisted seeds (§4.4 — *"we only need to remember the seed"*), so the
//! image stays proportional to live state, not address-space size.
//!
//! Everything here is hand-rolled little-endian encoding guarded by the
//! store's FNV-1a [`checksum64`](crate::block::checksum64); no external
//! serialization dependency is involved, and [`FORMAT_VERSION`] gates
//! every file this module reads.

mod image;
mod journal;
mod recover;

pub use image::{write_image_atomic, write_image_atomic_with_crash, ShardImage, StoreImage};
pub use journal::{scan_journal, Journal, JournalRecord, JournalScan, JOURNAL_HEADER_LEN};
pub use recover::{open_or_recover_store, PersistPaths};

use crate::StoreError;
use dna_seq::DnaSeq;

/// Version of the on-disk image and journal formats. Any change to the
/// encoded layout — field order, widths, new record kinds — MUST bump this
/// constant and add a migration note to the README's "Durability & crash
/// recovery" section; the `format_golden_pin` test (and the CI format-gate
/// job running it) fails otherwise.
pub const FORMAT_VERSION: u32 = 1;

/// Little-endian byte-stream encoder shared by the image and journal
/// formats.
#[derive(Default)]
pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Enc {
        Enc::default()
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Length-prefixed raw bytes.
    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// A DNA sequence: base count + 2-bit-packed bases.
    pub(crate) fn seq(&mut self, v: &DnaSeq) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(&v.to_packed_bytes());
    }
}

/// Little-endian byte-stream decoder; every read is bounds-checked and
/// fails with [`StoreError::Persist`] on truncation.
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                StoreError::Persist(format!(
                    "truncated record: wanted {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len()
                ))
            })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn bytes(&mut self) -> Result<Vec<u8>, StoreError> {
        let len = self.len_prefix()?;
        Ok(self.take(len)?.to_vec())
    }

    pub(crate) fn seq(&mut self) -> Result<DnaSeq, StoreError> {
        // The prefix counts BASES, but the payload is 2-bit packed: only
        // div_ceil(bases, 4) bytes follow. Validating the base count
        // against the remaining byte budget (as `len_prefix` would)
        // spuriously rejects any sequence longer than ~the buffer tail —
        // e.g. the last species of a shard with no logical blocks after it.
        let bases = self.u64()?;
        let packed_len = bases.div_ceil(4);
        if packed_len > (self.buf.len() - self.pos) as u64 {
            return Err(StoreError::Persist(format!(
                "corrupt sequence length {bases} bases ({packed_len} packed bytes) \
                 exceeds remaining {} bytes",
                self.buf.len() - self.pos
            )));
        }
        let packed = self.take(packed_len as usize)?;
        Ok(DnaSeq::from_packed_bytes(packed, bases as usize))
    }

    /// A `u64` length prefix validated against the remaining buffer, so a
    /// corrupt length can never trigger a huge allocation.
    fn len_prefix(&mut self) -> Result<usize, StoreError> {
        let len = self.u64()?;
        if len > (self.buf.len() - self.pos) as u64 {
            return Err(StoreError::Persist(format!(
                "corrupt length prefix {len} exceeds remaining {} bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(len as usize)
    }

    /// Whether every byte has been consumed — decoding must account for
    /// the entire input or the format is out of sync.
    pub(crate) fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}
