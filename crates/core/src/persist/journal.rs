//! The write-ahead journal: epoch-keyed commit records between snapshots.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! magic "DNABSJNL" | u32 FORMAT_VERSION | u64 seed      (20-byte header)
//! { u32 payload_len | u64 fnv64(payload) | payload }*   (one frame per commit)
//! ```
//!
//! Every committed mutation appends one frame and fsyncs it *before* the
//! client observes success. Records carry the shard's post-commit epoch,
//! so recovery can replay exactly the records strictly above the
//! snapshot's epoch and assert that each replayed commit lands on the
//! recorded epoch. A crash mid-append leaves a torn final frame, which
//! [`scan_journal`] detects (length or checksum mismatch) and recovery
//! truncates — the committed prefix before it is always intact.

use super::image::{decode_config, encode_config};
use super::{Dec, Enc, FORMAT_VERSION};
use crate::block::checksum64;
use crate::partition::PartitionConfig;
use crate::StoreError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every journal file.
pub(crate) const JOURNAL_MAGIC: [u8; 8] = *b"DNABSJNL";

/// Length of the journal header: magic + format version + archive seed.
pub const JOURNAL_HEADER_LEN: u64 = 20;

fn io(what: &str, e: std::io::Error) -> StoreError {
    StoreError::Persist(format!("{what}: {e}"))
}

/// One committed mutation, as recorded in the journal.
///
/// Records that mutate a shard carry the shard's **post-commit epoch**;
/// recovery skips records at or below the restored shard's epoch and
/// asserts that replaying the rest reproduces each recorded epoch exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A data partition was created and received the next free primer
    /// pair. Partition ids are allocated densely in creation order, so
    /// replaying creations in journal order reproduces the ids.
    CreatePartition {
        /// The id the new partition received.
        pid: u64,
        /// The configuration it was created with.
        config: PartitionConfig,
    },
    /// The shared DedicatedLog partition was created.
    CreateLogPartition {
        /// The id the log partition received.
        pid: u64,
        /// The configuration it was created with.
        config: PartitionConfig,
    },
    /// A whole-file bulk write into `pid` starting at `first_block`.
    WriteFile {
        /// Target partition.
        pid: u64,
        /// First block of the contiguous write.
        first_block: u64,
        /// The raw file bytes, exactly as passed to the store.
        data: Vec<u8>,
        /// The shard's epoch after this commit.
        epoch: u64,
    },
    /// An update committed against block `block` of `pid` (any layout —
    /// for DedicatedLog the *target* shard's epoch is recorded; the log
    /// shard's own bookkeeping replays deterministically alongside).
    Update {
        /// Target partition.
        pid: u64,
        /// Updated block.
        block: u64,
        /// The full 256-byte post-update block image. Replay re-derives
        /// the patch by diffing against the pre-update logical image,
        /// which reproduces the original commit exactly.
        content: Vec<u8>,
        /// The target shard's epoch after this commit.
        epoch: u64,
    },
    /// A partition compaction committed (Interleaved / TwoStacks).
    Compact {
        /// Compacted partition.
        pid: u64,
        /// The shard's epoch after the compaction.
        epoch: u64,
    },
    /// The shared log was folded into its data partitions.
    CompactLog {
        /// The *log* shard's epoch after the fold.
        epoch: u64,
    },
    /// The DedicatedLog configuration template was replaced before the
    /// log partition existed. Without this record a configured-but-unused
    /// log config would silently revert to the default on recovery.
    SetLogConfig {
        /// The new template.
        config: PartitionConfig,
    },
}

impl JournalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            JournalRecord::CreatePartition { pid, config } => {
                e.u8(0);
                e.u64(*pid);
                encode_config(&mut e, config);
            }
            JournalRecord::CreateLogPartition { pid, config } => {
                e.u8(1);
                e.u64(*pid);
                encode_config(&mut e, config);
            }
            JournalRecord::WriteFile {
                pid,
                first_block,
                data,
                epoch,
            } => {
                e.u8(2);
                e.u64(*pid);
                e.u64(*first_block);
                e.bytes(data);
                e.u64(*epoch);
            }
            JournalRecord::Update {
                pid,
                block,
                content,
                epoch,
            } => {
                e.u8(3);
                e.u64(*pid);
                e.u64(*block);
                e.bytes(content);
                e.u64(*epoch);
            }
            JournalRecord::Compact { pid, epoch } => {
                e.u8(4);
                e.u64(*pid);
                e.u64(*epoch);
            }
            JournalRecord::CompactLog { epoch } => {
                e.u8(5);
                e.u64(*epoch);
            }
            JournalRecord::SetLogConfig { config } => {
                e.u8(6);
                encode_config(&mut e, config);
            }
        }
        e.buf
    }

    fn decode(bytes: &[u8]) -> Result<JournalRecord, StoreError> {
        let mut d = Dec::new(bytes);
        let record = match d.u8()? {
            0 => JournalRecord::CreatePartition {
                pid: d.u64()?,
                config: decode_config(&mut d)?,
            },
            1 => JournalRecord::CreateLogPartition {
                pid: d.u64()?,
                config: decode_config(&mut d)?,
            },
            2 => JournalRecord::WriteFile {
                pid: d.u64()?,
                first_block: d.u64()?,
                data: d.bytes()?,
                epoch: d.u64()?,
            },
            3 => JournalRecord::Update {
                pid: d.u64()?,
                block: d.u64()?,
                content: d.bytes()?,
                epoch: d.u64()?,
            },
            4 => JournalRecord::Compact {
                pid: d.u64()?,
                epoch: d.u64()?,
            },
            5 => JournalRecord::CompactLog { epoch: d.u64()? },
            6 => JournalRecord::SetLogConfig {
                config: decode_config(&mut d)?,
            },
            t => return Err(StoreError::Persist(format!("unknown record tag {t}"))),
        };
        if !d.finished() {
            return Err(StoreError::Persist(
                "trailing bytes after journal record".to_string(),
            ));
        }
        Ok(record)
    }
}

fn header_bytes(seed: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(JOURNAL_HEADER_LEN as usize);
    h.extend_from_slice(&JOURNAL_MAGIC);
    h.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    h.extend_from_slice(&seed.to_le_bytes());
    h
}

fn check_header(bytes: &[u8], expected_seed: u64) -> Result<(), StoreError> {
    if bytes.len() < JOURNAL_HEADER_LEN as usize {
        return Err(StoreError::Persist(format!(
            "journal too short for its header: {} bytes",
            bytes.len()
        )));
    }
    if bytes[..8] != JOURNAL_MAGIC {
        return Err(StoreError::Persist("bad journal magic".to_string()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(StoreError::Persist(format!(
            "journal format version {version}, this build reads {FORMAT_VERSION}; \
             migration required"
        )));
    }
    let seed = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    if seed != expected_seed {
        return Err(StoreError::Persist(format!(
            "journal belongs to archive seed {seed:#x}, expected {expected_seed:#x}"
        )));
    }
    Ok(())
}

/// Result of validating a journal file: the decodable committed prefix.
#[derive(Debug)]
pub struct JournalScan {
    /// Every intact record, in append order.
    pub records: Vec<JournalRecord>,
    /// Byte length of the valid prefix (header + intact frames). Anything
    /// past it is a torn or corrupt tail that recovery truncates.
    pub valid_len: u64,
    /// Total bytes in the file — `valid_len < file_len` means a torn tail
    /// was detected.
    pub file_len: u64,
}

/// Reads and validates a journal file, stopping at the first torn or
/// corrupt frame.
///
/// # Errors
///
/// [`StoreError::Persist`] when the *header* is unreadable, damaged, from
/// another format version, or from a different archive seed — those are
/// not torn tails but wrong-file conditions that recovery must surface. A
/// damaged frame, by contrast, terminates the scan normally with
/// `valid_len` marking the committed prefix.
pub fn scan_journal(path: &Path, expected_seed: u64) -> Result<JournalScan, StoreError> {
    let bytes = std::fs::read(path).map_err(|e| io("read journal", e))?;
    check_header(&bytes, expected_seed)?;
    let mut records = Vec::new();
    let mut pos = JOURNAL_HEADER_LEN as usize;
    let mut valid_len = pos as u64;
    while pos + 12 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let Some(end) = pos.checked_add(12).and_then(|p| p.checked_add(len)) else {
            break; // corrupt length: torn tail
        };
        if end > bytes.len() {
            break; // frame extends past EOF: torn tail
        }
        let recorded = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let payload = &bytes[pos + 12..end];
        if recorded != checksum64(payload) {
            break; // corrupt frame: torn tail
        }
        match JournalRecord::decode(payload) {
            Ok(record) => records.push(record),
            Err(_) => break, // undecodable payload: torn tail
        }
        pos = end;
        valid_len = pos as u64;
    }
    Ok(JournalScan {
        records,
        valid_len,
        file_len: bytes.len() as u64,
    })
}

/// An open write-ahead journal. Appends are framed, checksummed and
/// fsync'd one commit at a time.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Current byte length of the file (all appends go through us).
    written: u64,
    /// Testing-only crash injection: abort the process once the file
    /// would grow past this absolute byte offset, flushing the partial
    /// frame first to simulate a torn append.
    crash_after_bytes: Option<u64>,
}

impl Journal {
    /// Creates (truncating) a fresh journal containing only the header.
    ///
    /// # Errors
    ///
    /// [`StoreError::Persist`] on I/O failure.
    pub fn create(path: &Path, seed: u64) -> Result<Journal, StoreError> {
        let mut file = File::create(path).map_err(|e| io("create journal", e))?;
        let header = header_bytes(seed);
        file.write_all(&header)
            .and_then(|()| file.sync_all())
            .map_err(|e| io("write journal header", e))?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            written: JOURNAL_HEADER_LEN,
            crash_after_bytes: None,
        })
    }

    /// Opens an existing journal for appending, validating its header.
    /// The caller (recovery) must already have truncated any torn tail.
    ///
    /// # Errors
    ///
    /// [`StoreError::Persist`] on I/O failure or a header that does not
    /// match this archive.
    pub fn open_append(path: &Path, expected_seed: u64) -> Result<Journal, StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io("open journal", e))?;
        let mut header = vec![0u8; JOURNAL_HEADER_LEN as usize];
        file.read_exact(&mut header)
            .map_err(|e| io("read journal header", e))?;
        check_header(&header, expected_seed)?;
        let written = file
            .seek(SeekFrom::End(0))
            .map_err(|e| io("seek journal end", e))?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            written,
            crash_after_bytes: None,
        })
    }

    /// Appends one record frame and fsyncs it. On return the record is
    /// durable; only then may the commit be acknowledged.
    ///
    /// # Errors
    ///
    /// [`StoreError::Persist`] on I/O failure. The in-memory commit has
    /// already happened at that point; the caller surfaces the ambiguous
    /// durability to the client (standard write-ahead semantics).
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), StoreError> {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(payload.len() + 12);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&checksum64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if let Some(limit) = self.crash_after_bytes {
            if self.written + frame.len() as u64 > limit {
                // Simulated crash mid-append: persist the torn prefix,
                // then die without unwinding.
                let keep = limit.saturating_sub(self.written) as usize;
                let _ = self.file.write_all(&frame[..keep.min(frame.len())]);
                let _ = self.file.sync_all();
                std::process::abort();
            }
        }
        self.file
            .write_all(&frame)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io("append journal record", e))?;
        self.written += frame.len() as u64;
        Ok(())
    }

    /// Resets the journal to just its header after a successful snapshot
    /// (all journaled state is now in the image).
    ///
    /// # Errors
    ///
    /// [`StoreError::Persist`] on I/O failure.
    pub fn truncate_to_header(&mut self) -> Result<(), StoreError> {
        self.file
            .set_len(JOURNAL_HEADER_LEN)
            .and_then(|()| self.file.seek(SeekFrom::End(0)))
            .and_then(|_| self.file.sync_all())
            .map_err(|e| io("truncate journal", e))?;
        self.written = JOURNAL_HEADER_LEN;
        Ok(())
    }

    /// Current byte length of the journal file.
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Arms (or disarms) the crash-injection knob: once the file would
    /// grow past `limit` absolute bytes, the next append flushes a torn
    /// prefix and aborts the process. **Testing only.**
    pub fn set_crash_after_bytes(&mut self, limit: Option<u64>) {
        self.crash_after_bytes = limit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::UpdateLayout;

    fn sample_records() -> Vec<JournalRecord> {
        let config = PartitionConfig::small(9, 2, UpdateLayout::paper_default());
        vec![
            JournalRecord::CreatePartition { pid: 0, config },
            JournalRecord::CreateLogPartition { pid: 1, config },
            JournalRecord::WriteFile {
                pid: 0,
                first_block: 4,
                data: b"file contents".to_vec(),
                epoch: 1,
            },
            JournalRecord::Update {
                pid: 0,
                block: 4,
                content: vec![0x7F; 256],
                epoch: 2,
            },
            JournalRecord::Compact { pid: 0, epoch: 3 },
            JournalRecord::CompactLog { epoch: 9 },
        ]
    }

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dna-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn record_roundtrip() {
        for record in sample_records() {
            let decoded = JournalRecord::decode(&record.encode()).unwrap();
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn append_scan_roundtrip() {
        let path = tmp_path("roundtrip.journal");
        let mut journal = Journal::create(&path, 42).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        let scan = scan_journal(&path, 42).unwrap();
        assert_eq!(scan.records, sample_records());
        assert_eq!(scan.valid_len, scan.file_len, "no torn tail");
        assert_eq!(scan.valid_len, journal.bytes_written());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_cut_at_every_offset() {
        let path = tmp_path("torn.journal");
        let mut journal = Journal::create(&path, 7).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        let full = std::fs::read(&path).unwrap();
        let full_scan = scan_journal(&path, 7).unwrap();
        // Truncating anywhere must yield a prefix of the records, never
        // garbage or an error (the header stays intact here).
        for cut in (JOURNAL_HEADER_LEN as usize..full.len()).step_by(5) {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = scan_journal(&path, 7).unwrap();
            assert!(scan.records.len() <= full_scan.records.len());
            assert_eq!(
                scan.records,
                full_scan.records[..scan.records.len()],
                "cut at {cut}: scan must return a committed prefix"
            );
            assert!(scan.valid_len <= cut as u64);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_frame_stops_the_scan() {
        let path = tmp_path("corrupt.journal");
        let mut journal = Journal::create(&path, 7).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the third frame's payload.
        let mut pos = JOURNAL_HEADER_LEN as usize;
        for _ in 0..2 {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 12 + len;
        }
        bytes[pos + 13] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_journal(&path, 7).unwrap();
        assert_eq!(scan.records, sample_records()[..2]);
        assert!(scan.valid_len < scan.file_len);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_seed_or_version_is_an_error() {
        let path = tmp_path("header.journal");
        Journal::create(&path, 1).unwrap();
        assert!(scan_journal(&path, 2).is_err(), "seed mismatch");
        assert!(Journal::open_append(&path, 2).is_err());
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = scan_journal(&path, 1).unwrap_err();
        assert!(err.to_string().contains("migration required"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_to_header_then_reopen() {
        let path = tmp_path("truncate.journal");
        let mut journal = Journal::create(&path, 3).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        journal.truncate_to_header().unwrap();
        assert_eq!(journal.bytes_written(), JOURNAL_HEADER_LEN);
        // New appends after the truncation land cleanly.
        journal
            .append(&JournalRecord::CompactLog { epoch: 1 })
            .unwrap();
        drop(journal);
        let scan = scan_journal(&path, 3).unwrap();
        assert_eq!(scan.records, vec![JournalRecord::CompactLog { epoch: 1 }]);
        let reopened = Journal::open_append(&path, 3).unwrap();
        assert_eq!(reopened.bytes_written(), scan.file_len);
        std::fs::remove_file(&path).ok();
    }
}
