//! The versioned, checksummed store image and its atomic writer.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "DNABSIMG" | u32 FORMAT_VERSION | u64 body_len | body | u64 fnv64
//! ```
//!
//! The trailing checksum is [`checksum64`](crate::block::checksum64) over
//! every preceding byte (magic, version and length included), so a torn or
//! bit-flipped image is always detected. The body serializes the
//! [`StoreImage`] fields in declaration order; see the field docs for what
//! each shard carries. Derivable state — index trees, payload seeds, the
//! primer library — is *not* stored: it regenerates from the persisted
//! seeds (§4.4).

use super::{Dec, Enc, FORMAT_VERSION};
use crate::block::checksum64;
use crate::layout::UpdateLayout;
use crate::partition::{PartitionBookkeeping, PartitionConfig};
use crate::StoreError;
use dna_codec::StrandGeometry;
use dna_ecc::{UnitConfig, UnitField};
use dna_seq::DnaSeq;
use dna_sim::StrandTag;
use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

/// Magic bytes opening every store image file.
pub(crate) const IMAGE_MAGIC: [u8; 8] = *b"DNABSIMG";

/// A full serialization of one shard: partition metadata, write-state
/// bookkeeping, the wetlab tube contents, the digital oracle, and the
/// shard's commit epoch and live RNG stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardImage {
    /// Partition configuration (the tree and payload seed re-derive from
    /// `config.master_seed`).
    pub config: PartitionConfig,
    /// Forward primer of the shard's pair.
    pub forward: DnaSeq,
    /// Reverse primer of the shard's pair.
    pub reverse: DnaSeq,
    /// Write-state counters (chains, write counts, allocators).
    pub bookkeeping: PartitionBookkeeping,
    /// Tube contents: every species' sequence, abundance and ground-truth
    /// tag.
    pub species: Vec<(DnaSeq, f64, Option<StrandTag>)>,
    /// The digital front-end oracle: committed 256-byte block images.
    pub logical: Vec<(u64, Vec<u8>)>,
    /// Commit epoch — the journal sequence number for this shard.
    pub epoch: u64,
    /// Live Xoshiro256** state of the shard's wetlab RNG stream.
    pub rng_state: [u64; 4],
    /// DedicatedLog: next free log leaf.
    pub log_head: u64,
    /// DedicatedLog: next log entry sequence number.
    pub log_seq: u32,
}

/// A full serialization of the store: directory-level state plus one
/// [`ShardImage`] per partition (the shared log partition, when present,
/// is `shards[log_pid]`).
#[derive(Debug, Clone, PartialEq)]
pub struct StoreImage {
    /// Archive-level seed; the primer library regenerates from it.
    pub seed: u64,
    /// Sequencing coverage configured on the instruments.
    pub coverage: u64,
    /// Primer pairs handed out so far.
    pub handed_out: u64,
    /// Partition id of the shared DedicatedLog partition, if created.
    pub log_pid: Option<u64>,
    /// Configuration the log partition is (or will be) created with.
    pub log_config: PartitionConfig,
    /// One image per shard, in partition-id order.
    pub shards: Vec<ShardImage>,
}

fn encode_geometry(e: &mut Enc, g: &StrandGeometry) {
    e.u64(g.primer_len as u64);
    e.u64(g.sync_len as u64);
    e.u64(g.unit_index_len as u64);
    e.u64(g.version_len as u64);
    e.u64(g.intra_index_len as u64);
    e.u64(g.payload_len as u64);
}

fn decode_geometry(d: &mut Dec<'_>) -> Result<StrandGeometry, StoreError> {
    Ok(StrandGeometry {
        primer_len: d.u64()? as usize,
        sync_len: d.u64()? as usize,
        unit_index_len: d.u64()? as usize,
        version_len: d.u64()? as usize,
        intra_index_len: d.u64()? as usize,
        payload_len: d.u64()? as usize,
    })
}

fn encode_unit_config(e: &mut Enc, u: &UnitConfig) {
    e.u64(u.total_cols as u64);
    e.u64(u.data_cols as u64);
    e.u64(u.col_bytes as u64);
    e.u8(match u.field {
        UnitField::Gf16 => 0,
        UnitField::Gf256 => 1,
    });
}

fn decode_unit_config(d: &mut Dec<'_>) -> Result<UnitConfig, StoreError> {
    Ok(UnitConfig {
        total_cols: d.u64()? as usize,
        data_cols: d.u64()? as usize,
        col_bytes: d.u64()? as usize,
        field: match d.u8()? {
            0 => UnitField::Gf16,
            1 => UnitField::Gf256,
            t => return Err(StoreError::Persist(format!("unknown unit field tag {t}"))),
        },
    })
}

pub(crate) fn encode_config(e: &mut Enc, c: &PartitionConfig) {
    encode_geometry(e, &c.geometry);
    encode_unit_config(e, &c.unit);
    e.u64(c.tree_depth as u64);
    e.u64(c.master_seed);
    match c.layout {
        UpdateLayout::Interleaved { update_slots } => {
            e.u8(0);
            e.u8(update_slots);
        }
        UpdateLayout::TwoStacks => e.u8(1),
        UpdateLayout::DedicatedLog => e.u8(2),
    }
    e.u32(c.partition_tag);
}

pub(crate) fn decode_config(d: &mut Dec<'_>) -> Result<PartitionConfig, StoreError> {
    let geometry = decode_geometry(d)?;
    let unit = decode_unit_config(d)?;
    let tree_depth = d.u64()? as usize;
    let master_seed = d.u64()?;
    let layout = match d.u8()? {
        0 => UpdateLayout::Interleaved {
            update_slots: d.u8()?,
        },
        1 => UpdateLayout::TwoStacks,
        2 => UpdateLayout::DedicatedLog,
        t => return Err(StoreError::Persist(format!("unknown layout tag {t}"))),
    };
    let partition_tag = d.u32()?;
    Ok(PartitionConfig {
        geometry,
        unit,
        tree_depth,
        master_seed,
        layout,
        partition_tag,
    })
}

fn encode_tag(e: &mut Enc, tag: &Option<StrandTag>) {
    match tag {
        None => e.u8(0),
        Some(t) => {
            e.u8(1);
            e.u32(t.partition);
            e.u64(t.unit);
            e.u8(t.version);
            e.u8(t.column);
        }
    }
}

fn decode_tag(d: &mut Dec<'_>) -> Result<Option<StrandTag>, StoreError> {
    match d.u8()? {
        0 => Ok(None),
        1 => {
            let partition = d.u32()?;
            let unit = d.u64()?;
            let version = d.u8()?;
            let column = d.u8()?;
            Ok(Some(StrandTag::new(partition, unit, version, column)))
        }
        t => Err(StoreError::Persist(format!("unknown tag flag {t}"))),
    }
}

fn encode_shard(e: &mut Enc, s: &ShardImage) {
    encode_config(e, &s.config);
    e.seq(&s.forward);
    e.seq(&s.reverse);
    let bk = &s.bookkeeping;
    e.u64(bk.write_counts.len() as u64);
    for (&block, &writes) in &bk.write_counts {
        e.u64(block);
        e.u32(writes);
    }
    e.u64(bk.chains.len() as u64);
    for (&block, chain) in &bk.chains {
        e.u64(block);
        e.u64(chain.len() as u64);
        for &leaf in chain {
            e.u64(leaf);
        }
    }
    e.u64(bk.overflow_next);
    e.u64(bk.max_block_written);
    e.u64(bk.stack_updates);
    e.u64(s.species.len() as u64);
    for (seq, abundance, tag) in &s.species {
        e.seq(seq);
        e.f64(*abundance);
        encode_tag(e, tag);
    }
    e.u64(s.logical.len() as u64);
    for (block, data) in &s.logical {
        e.u64(*block);
        e.bytes(data);
    }
    e.u64(s.epoch);
    for w in s.rng_state {
        e.u64(w);
    }
    e.u64(s.log_head);
    e.u32(s.log_seq);
}

fn decode_shard(d: &mut Dec<'_>) -> Result<ShardImage, StoreError> {
    let config = decode_config(d)?;
    let forward = d.seq()?;
    let reverse = d.seq()?;
    let mut bookkeeping = PartitionBookkeeping::default();
    for _ in 0..d.u64()? {
        let block = d.u64()?;
        let writes = d.u32()?;
        bookkeeping.write_counts.insert(block, writes);
    }
    for _ in 0..d.u64()? {
        let block = d.u64()?;
        let len = d.u64()?;
        let mut chain = Vec::with_capacity(len.min(1 << 20) as usize);
        for _ in 0..len {
            chain.push(d.u64()?);
        }
        bookkeeping.chains.insert(block, chain);
    }
    bookkeeping.overflow_next = d.u64()?;
    bookkeeping.max_block_written = d.u64()?;
    bookkeeping.stack_updates = d.u64()?;
    let species_len = d.u64()?;
    let mut species = Vec::with_capacity(species_len.min(1 << 20) as usize);
    for _ in 0..species_len {
        let seq = d.seq()?;
        let abundance = d.f64()?;
        let tag = decode_tag(d)?;
        species.push((seq, abundance, tag));
    }
    let logical_len = d.u64()?;
    let mut logical = Vec::with_capacity(logical_len.min(1 << 20) as usize);
    for _ in 0..logical_len {
        let block = d.u64()?;
        let data = d.bytes()?;
        logical.push((block, data));
    }
    let epoch = d.u64()?;
    let mut rng_state = [0u64; 4];
    for w in &mut rng_state {
        *w = d.u64()?;
    }
    let log_head = d.u64()?;
    let log_seq = d.u32()?;
    Ok(ShardImage {
        config,
        forward,
        reverse,
        bookkeeping,
        species,
        logical,
        epoch,
        rng_state,
        log_head,
        log_seq,
    })
}

impl StoreImage {
    /// Serializes the image: magic, version, length-prefixed body, and a
    /// trailing FNV-1a checksum over everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Enc::new();
        body.u64(self.seed);
        body.u64(self.coverage);
        body.u64(self.handed_out);
        match self.log_pid {
            None => body.u8(0),
            Some(pid) => {
                body.u8(1);
                body.u64(pid);
            }
        }
        encode_config(&mut body, &self.log_config);
        body.u64(self.shards.len() as u64);
        for shard in &self.shards {
            encode_shard(&mut body, shard);
        }

        let mut out = Vec::with_capacity(body.buf.len() + 28);
        out.extend_from_slice(&IMAGE_MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(body.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&body.buf);
        let sum = checksum64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parses and validates an encoded image.
    ///
    /// # Errors
    ///
    /// [`StoreError::Persist`] on bad magic, a format-version mismatch
    /// (migration required), a length or checksum mismatch, or any decode
    /// failure — a damaged image is always *detected*, never half-loaded.
    pub fn decode(bytes: &[u8]) -> Result<StoreImage, StoreError> {
        if bytes.len() < 28 {
            return Err(StoreError::Persist(format!(
                "image too short: {} bytes",
                bytes.len()
            )));
        }
        if bytes[..8] != IMAGE_MAGIC {
            return Err(StoreError::Persist("bad image magic".to_string()));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(StoreError::Persist(format!(
                "image format version {version}, this build reads {FORMAT_VERSION}; \
                 migration required"
            )));
        }
        let body_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let expected_total = 20u64
            .checked_add(body_len)
            .and_then(|n| n.checked_add(8))
            .ok_or_else(|| StoreError::Persist("image length overflow".to_string()))?;
        if bytes.len() as u64 != expected_total {
            return Err(StoreError::Persist(format!(
                "image length {} does not match header ({expected_total})",
                bytes.len()
            )));
        }
        let sum_at = bytes.len() - 8;
        let recorded = u64::from_le_bytes(bytes[sum_at..].try_into().expect("8 bytes"));
        let actual = checksum64(&bytes[..sum_at]);
        if recorded != actual {
            return Err(StoreError::Persist(format!(
                "image checksum mismatch: recorded {recorded:#x}, computed {actual:#x}"
            )));
        }

        let mut d = Dec::new(&bytes[20..sum_at]);
        let seed = d.u64()?;
        let coverage = d.u64()?;
        let handed_out = d.u64()?;
        let log_pid = match d.u8()? {
            0 => None,
            1 => Some(d.u64()?),
            t => return Err(StoreError::Persist(format!("unknown log-pid flag {t}"))),
        };
        let log_config = decode_config(&mut d)?;
        let shard_count = d.u64()?;
        let mut shards = Vec::with_capacity(shard_count.min(1 << 20) as usize);
        for _ in 0..shard_count {
            shards.push(decode_shard(&mut d)?);
        }
        if !d.finished() {
            return Err(StoreError::Persist(
                "trailing bytes after image body".to_string(),
            ));
        }
        Ok(StoreImage {
            seed,
            coverage,
            handed_out,
            log_pid,
            log_config,
            shards,
        })
    }
}

/// Atomically replaces the image at `path` with `image`.
///
/// See [`write_image_atomic_with_crash`]; this is the production entry
/// point without the crash-injection knob.
///
/// # Errors
///
/// [`StoreError::Persist`] on any I/O failure; the previous image (if
/// any) is untouched in that case.
pub fn write_image_atomic(path: &Path, image: &StoreImage) -> Result<(), StoreError> {
    write_image_atomic_with_crash(path, image, None)
}

/// Atomically replaces the image at `path`: write to a sibling tmp file,
/// fsync it, rename over `path`, fsync the parent directory. A crash at
/// any point leaves either the old image or the new one, never a torn
/// file, because the rename is the single commit point.
///
/// `crash_after_bytes` is a **testing-only** fault-injection knob: when
/// the tmp file reaches that many bytes the process flushes the partial
/// prefix and calls [`std::process::abort`], simulating a crash mid-
/// snapshot. Production callers pass `None` (or use
/// [`write_image_atomic`]).
///
/// # Errors
///
/// [`StoreError::Persist`] on any I/O failure.
pub fn write_image_atomic_with_crash(
    path: &Path,
    image: &StoreImage,
    crash_after_bytes: Option<u64>,
) -> Result<(), StoreError> {
    let io = |what: &str, e: std::io::Error| StoreError::Persist(format!("{what}: {e}"));
    let bytes = image.encode();
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let mut f = File::create(&tmp).map_err(|e| io("create image tmp", e))?;
    if let Some(n) = crash_after_bytes {
        if n < bytes.len() as u64 {
            f.write_all(&bytes[..n as usize])
                .and_then(|()| f.sync_all())
                .map_err(|e| io("write image tmp (crash injection)", e))?;
            std::process::abort();
        }
    }
    f.write_all(&bytes).map_err(|e| io("write image tmp", e))?;
    f.sync_all().map_err(|e| io("fsync image tmp", e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io("rename image", e))?;
    if let Some(dir) = path.parent() {
        // Durability of the rename itself requires the directory fsync.
        File::open(dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| io("fsync image directory", e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> StoreImage {
        let mut config = PartitionConfig::small(9, 2, UpdateLayout::paper_default());
        config.partition_tag = 7;
        let mut bookkeeping = PartitionBookkeeping {
            overflow_next: 15,
            max_block_written: 3,
            stack_updates: 0,
            ..PartitionBookkeeping::default()
        };
        bookkeeping.write_counts.insert(0, 3);
        bookkeeping.write_counts.insert(3, 1);
        bookkeeping.chains.insert(0, vec![15, 14]);
        let forward: DnaSeq = "AACCGGTTAACCGGTTAACC".parse().unwrap();
        let reverse: DnaSeq = "AAGGCCTTAAGGCCTTAAGG".parse().unwrap();
        let shard = ShardImage {
            config,
            forward: forward.clone(),
            reverse,
            bookkeeping,
            species: vec![
                (forward.clone(), 1200.5, None),
                (forward, 3.25, Some(StrandTag::new(7, 14, 2, 11))),
            ],
            logical: vec![(0, vec![0xAB; 256]), (3, vec![0x11; 256])],
            epoch: 42,
            rng_state: [1, 2, 3, u64::MAX],
            log_head: 5,
            log_seq: 9,
        };
        StoreImage {
            seed: 0x5EED_CAFE,
            coverage: 12,
            handed_out: 2,
            log_pid: Some(1),
            log_config: PartitionConfig::paper_default(0x106),
            shards: vec![shard],
        }
    }

    #[test]
    fn image_roundtrip() {
        let image = sample_image();
        let decoded = StoreImage::decode(&image.encode()).unwrap();
        assert_eq!(decoded, image);
    }

    #[test]
    fn empty_image_roundtrip() {
        let image = StoreImage {
            seed: 1,
            coverage: 12,
            handed_out: 0,
            log_pid: None,
            log_config: PartitionConfig::paper_default(0x106),
            shards: Vec::new(),
        };
        assert_eq!(StoreImage::decode(&image.encode()).unwrap(), image);
    }

    #[test]
    fn corruption_is_detected_at_every_byte() {
        let bytes = sample_image().encode();
        // Flipping any byte must be caught by the checksum (or an earlier
        // structural check) — sample a spread of offsets for test budget.
        for i in (0..bytes.len()).step_by(17) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                StoreImage::decode(&bad).is_err(),
                "byte {i} flip went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = sample_image().encode();
        for len in (0..bytes.len()).step_by(13) {
            assert!(
                StoreImage::decode(&bytes[..len]).is_err(),
                "truncation to {len} went undetected"
            );
        }
    }

    #[test]
    fn version_mismatch_is_a_migration_error() {
        let mut bytes = sample_image().encode();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        // Fix up the checksum so only the version differs.
        let sum_at = bytes.len() - 8;
        let sum = checksum64(&bytes[..sum_at]);
        bytes[sum_at..].copy_from_slice(&sum.to_le_bytes());
        let err = StoreImage::decode(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("migration required"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn atomic_write_replaces_and_survives_reread() {
        let dir = std::env::temp_dir().join(format!("dna-image-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.img");
        let image = sample_image();
        write_image_atomic(&path, &image).unwrap();
        let reread = StoreImage::decode(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(reread, image);
        // Overwrite with a different image: the rename replaces in place.
        let mut second = image.clone();
        second.handed_out = 99;
        write_image_atomic(&path, &second).unwrap();
        let reread = StoreImage::decode(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(reread.handed_out, 99);
        std::fs::remove_dir_all(&dir).ok();
    }
}
