//! Cost and latency models (§7.1–§7.5).
//!
//! Every formula here is lifted directly from the paper's arithmetic, so
//! the bench harness can reproduce the headline numbers (141×, ~580×,
//! ~146×) from measured read fractions.

use dna_sim::{NanoporeModel, NgsRunModel};

/// Units of unwanted data sequenced per unit of wanted data, given the
/// fraction of useful reads (§7.1: 0.34% useful → "the baseline system has
/// to sequence 1/0.34% = 293x of unwanted data").
///
/// Returns `None` unless `useful_fraction` is a real fraction in `(0, 1]`
/// — a zero, negative, above-one or NaN input would otherwise leak
/// `inf`/`NaN` into every report built on top of it.
pub fn waste_factor(useful_fraction: f64) -> Option<f64> {
    if useful_fraction > 0.0 && useful_fraction <= 1.0 {
        Some(1.0 / useful_fraction - 1.0)
    } else {
        None
    }
}

/// Sequencing cost reduction between a baseline and an improved useful-read
/// fraction (§7.3: `(293 + 1)/(1.08 + 1) = 141`).
///
/// Returns `None` when either fraction is outside `(0, 1]` (see
/// [`waste_factor`]).
pub fn sequencing_cost_reduction(baseline_useful: f64, ours_useful: f64) -> Option<f64> {
    Some((waste_factor(baseline_useful)? + 1.0) / (waste_factor(ours_useful)? + 1.0))
}

/// Synthesis-cost reduction of a versioned update vs the naive
/// recreate-the-partition baseline (§7.5: "synthesizing the entire new
/// partition (8805 molecules), whereas in our system it requires the
/// synthesis of 15 molecules ... a reduction of approximately 580x").
///
/// Returns `None` when `patch_molecules` is zero — there is no such thing
/// as a zero-molecule patch, and dividing by it would report an infinite
/// reduction.
pub fn update_synthesis_reduction(partition_molecules: u64, patch_molecules: u64) -> Option<f64> {
    if patch_molecules == 0 {
        None
    } else {
        Some(partition_molecules as f64 / patch_molecules as f64)
    }
}

/// Sequencing-cost reduction for reading an updated block (§7.5: "our
/// system can perform the precise access that retrieves both data and
/// updates ... discarding only about 50% of reads and reducing the
/// sequencing cost for updated data by approximately 0.5·(8805/30) = 146x").
///
/// Returns `None` when `block_plus_update_molecules` is zero or
/// `ours_useful` is outside `(0, 1]`.
pub fn updated_read_reduction(
    partition_molecules: u64,
    block_plus_update_molecules: u64,
    ours_useful: f64,
) -> Option<f64> {
    if block_plus_update_molecules == 0 || !(ours_useful > 0.0 && ours_useful <= 1.0) {
        return None;
    }
    Some(ours_useful * partition_molecules as f64 / block_plus_update_molecules as f64)
}

/// Synthesis cost of a compaction pass: every rebased block re-synthesizes
/// one full encoding unit (the §7.5 15-molecule unit), charged per
/// designed base like any other small-batch synthesis.
pub fn compaction_synthesis_cost(
    rewritten_units: u64,
    strands_per_unit: u64,
    strand_len: u64,
    cost_per_base: f64,
) -> f64 {
    cost_per_base * (rewritten_units * strands_per_unit * strand_len) as f64
}

/// Hot-block reads needed to amortize a compaction's synthesis cost.
///
/// Compaction collapses a block's retrieval scope from
/// `scope_units_before` to 1 unit, so each subsequent read sequences
/// `(scope_units_before - 1) · strands_per_unit · coverage` fewer reads;
/// at `cost_per_read` dollars of sequencing each, the rewrite pays for
/// itself after this many reads. Returns `f64::INFINITY` when the scope
/// was already minimal (nothing to save).
pub fn compaction_break_even_reads(
    synthesis_cost: f64,
    scope_units_before: u64,
    strands_per_unit: u64,
    coverage: u64,
    cost_per_read: f64,
) -> f64 {
    let reads_saved_per_access = scope_units_before.saturating_sub(1) * strands_per_unit * coverage;
    if reads_saved_per_access == 0 {
        return f64::INFINITY;
    }
    synthesis_cost / (reads_saved_per_access as f64 * cost_per_read)
}

/// §7.4 latency comparison for one retrieval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyComparison {
    /// NGS runs needed to sequence the whole partition.
    pub ngs_runs_partition: f64,
    /// NGS runs needed for the block-precise access.
    pub ngs_runs_block: f64,
    /// Nanopore hours for the whole partition.
    pub nanopore_hours_partition: f64,
    /// Nanopore hours for the block-precise access.
    pub nanopore_hours_block: f64,
}

impl LatencyComparison {
    /// NGS latency reduction factor.
    pub fn ngs_reduction(&self) -> f64 {
        self.ngs_runs_partition / self.ngs_runs_block
    }

    /// Nanopore latency reduction factor (always the selectivity factor).
    pub fn nanopore_reduction(&self) -> f64 {
        self.nanopore_hours_partition / self.nanopore_hours_block
    }
}

/// Computes §7.4's latency comparison: sequencing a partition of
/// `partition_bytes` vs a precise block access that only needs
/// `1/selectivity` of that output.
pub fn latency_comparison(
    partition_bytes: f64,
    selectivity: f64,
    ngs: &NgsRunModel,
    nanopore: &NanoporeModel,
) -> LatencyComparison {
    assert!(selectivity >= 1.0);
    let block_bytes = partition_bytes / selectivity;
    LatencyComparison {
        ngs_runs_partition: ngs.runs_needed(partition_bytes),
        ngs_runs_block: ngs.runs_needed(block_bytes),
        nanopore_hours_partition: nanopore.latency_hours(partition_bytes),
        nanopore_hours_block: nanopore.latency_hours(block_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cost_reduction_reproduced() {
        // §7.1/§7.3: baseline 0.34% useful, ours 48% useful → ~141×.
        let baseline = 0.0034;
        let ours = 0.48;
        assert!((waste_factor(baseline).unwrap() - 293.1).abs() < 1.0);
        assert!((waste_factor(ours).unwrap() - 1.08).abs() < 0.01);
        let reduction = sequencing_cost_reduction(baseline, ours).unwrap();
        assert!(
            (reduction - 141.0).abs() < 1.5,
            "expected ≈141, got {reduction}"
        );
    }

    #[test]
    fn paper_update_costs_reproduced() {
        // §7.5.
        let synth = update_synthesis_reduction(8805, 15).unwrap();
        assert!((synth - 587.0).abs() < 1.0);
        let read = updated_read_reduction(8805, 30, 0.5).unwrap();
        assert!((read - 146.75).abs() < 1.0);
    }

    #[test]
    fn latency_matches_paper_examples() {
        // §7.4: 1 TB partition needs ~1000 MiSeq runs; block access at 141×
        // selectivity needs ~1000/141 ≈ 8.
        let cmp = latency_comparison(
            1.0e12,
            141.0,
            &NgsRunModel::miseq(),
            &NanoporeModel::minion(),
        );
        assert_eq!(cmp.ngs_runs_partition, 1000.0);
        assert_eq!(cmp.ngs_runs_block, 8.0);
        assert!((cmp.ngs_reduction() - 125.0).abs() < 1.0);
        // Nanopore reduction is exactly the selectivity.
        assert!((cmp.nanopore_reduction() - 141.0).abs() < 1e-9);
    }

    #[test]
    fn small_partition_ngs_cannot_improve() {
        // §7.4: "for small partition sizes that fit into a single
        // sequencing run, the reduction in the sequencing latency is
        // conceptually impossible".
        let cmp = latency_comparison(
            5.0e8,
            141.0,
            &NgsRunModel::miseq(),
            &NanoporeModel::minion(),
        );
        assert_eq!(cmp.ngs_reduction(), 1.0);
        assert!(cmp.nanopore_reduction() > 100.0);
    }

    #[test]
    fn invalid_fractions_are_rejected_not_infinite() {
        // The exact boundary: 0 is invalid, the smallest positive value and
        // 1.0 are both fine.
        assert_eq!(waste_factor(0.0), None);
        assert_eq!(waste_factor(1.0), Some(0.0));
        assert!(waste_factor(f64::MIN_POSITIVE).is_some());
        // Out-of-range and non-finite inputs.
        assert_eq!(waste_factor(-0.5), None);
        assert_eq!(waste_factor(1.5), None);
        assert_eq!(waste_factor(f64::NAN), None);
        assert_eq!(waste_factor(f64::INFINITY), None);
        // The guard propagates through the derived reductions.
        assert_eq!(sequencing_cost_reduction(0.0, 0.48), None);
        assert_eq!(sequencing_cost_reduction(0.0034, 0.0), None);
        assert!(sequencing_cost_reduction(0.0034, 0.48).is_some());
    }

    #[test]
    fn zero_molecule_inputs_are_rejected_not_infinite() {
        assert_eq!(update_synthesis_reduction(8805, 0), None);
        assert_eq!(update_synthesis_reduction(0, 15), Some(0.0));
        assert_eq!(updated_read_reduction(8805, 0, 0.5), None);
        assert_eq!(updated_read_reduction(8805, 30, 0.0), None);
        assert_eq!(updated_read_reduction(8805, 30, f64::NAN), None);
    }

    #[test]
    fn compaction_costs_scale_and_break_even() {
        // One rebased block = 15 molecules of 150 bases at IDT's $0.05/base.
        let one = compaction_synthesis_cost(1, 15, 150, 0.05);
        assert!((one - 112.5).abs() < 1e-9);
        assert_eq!(compaction_synthesis_cost(4, 15, 150, 0.05), 4.0 * one);
        // A block whose scope grew to 7 units saves 6*15*12 reads per
        // access; at $0.01/read the rewrite amortizes in ~10 reads.
        let be = compaction_break_even_reads(one, 7, 15, 12, 0.01);
        assert!((be - 112.5 / 10.8).abs() < 1e-9, "{be}");
        // Already-minimal scope: compaction can never pay for itself.
        assert_eq!(
            compaction_break_even_reads(one, 1, 15, 12, 0.01),
            f64::INFINITY
        );
    }
}
