//! An update-aware LRU cache over *decoded* blocks.
//!
//! The paper's read path pays real wetlab work — PCR, sequencing, and a
//! software decode — for every block retrieval. The rewritable-system line
//! of work (Yazdi et al. 2015) observes that archival DNA traffic is
//! read-mostly with hot spots, so a serving layer should never re-pay that
//! cost for a block it already decoded. [`BlockCache`] holds fully decoded
//! logical blocks (updates applied) keyed by `(partition, block)`, with a
//! capacity counted in blocks and deterministic least-recently-used
//! eviction.
//!
//! The cache is *update-aware* by construction: it has no link to the
//! wetlab, so the serving layer ([`crate::service::StoreServer`]) is
//! responsible for invalidating or refreshing the affected key whenever
//! [`crate::BlockStore::update_block`] commits — see
//! [`crate::service::CachePolicy`]. All operations are deterministic: the
//! same call sequence always leaves the same contents and eviction order,
//! which the stress and property suites rely on.

use crate::block::Block;
use crate::store::PartitionId;
use std::collections::BTreeMap;

/// Cache key: a block's global address.
pub type CacheKey = (PartitionId, u64);

#[derive(Debug, Clone)]
struct CacheEntry {
    block: Block,
    /// Logical timestamp of the last touch (insert or hit); the entry with
    /// the smallest stamp is the LRU victim.
    stamp: u64,
}

/// A deterministic LRU cache of decoded blocks, capacity counted in
/// blocks.
///
/// A `capacity` of `0` disables the cache entirely: every lookup misses
/// and every insert is dropped.
///
/// # Examples
///
/// ```
/// use dna_block_store::{cache::BlockCache, Block, PartitionId};
///
/// let mut cache = BlockCache::new(2);
/// let k0 = (PartitionId(0), 0u64);
/// let k1 = (PartitionId(0), 1u64);
/// let k2 = (PartitionId(0), 2u64);
/// cache.insert(k0, Block::from_bytes(b"zero").unwrap());
/// cache.insert(k1, Block::from_bytes(b"one").unwrap());
/// assert!(cache.get(&k0).is_some()); // touch k0: k1 becomes LRU
/// let evicted = cache.insert(k2, Block::from_bytes(b"two").unwrap());
/// assert_eq!(evicted, Some(k1));     // capacity 2: LRU k1 evicted
/// assert_eq!(cache.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct BlockCache {
    capacity: usize,
    entries: BTreeMap<CacheKey, CacheEntry>,
    /// Recency index: stamp → key (stamps are unique), so the LRU victim
    /// is the first entry — O(log n) per touch instead of a full scan.
    order: BTreeMap<u64, CacheKey>,
    clock: u64,
}

impl BlockCache {
    /// Creates a cache holding at most `capacity` decoded blocks
    /// (`0` disables caching).
    pub fn new(capacity: usize) -> BlockCache {
        BlockCache {
            capacity,
            entries: BTreeMap::new(),
            order: BTreeMap::new(),
            clock: 0,
        }
    }

    /// The configured capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of blocks currently cached (always `<= capacity`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks a block up and — on a hit — marks it most recently used.
    pub fn get(&mut self, key: &CacheKey) -> Option<&Block> {
        self.clock += 1;
        let clock = self.clock;
        let order = &mut self.order;
        self.entries.get_mut(key).map(|e| {
            order.remove(&e.stamp);
            order.insert(clock, *key);
            e.stamp = clock;
            &e.block
        })
    }

    /// Looks a block up *without* touching its recency (inspection only).
    pub fn peek(&self, key: &CacheKey) -> Option<&Block> {
        self.entries.get(key).map(|e| &e.block)
    }

    /// Inserts (or replaces) a decoded block, marking it most recently
    /// used. Returns the key evicted to make room, if any. With capacity
    /// `0` the insert is dropped and nothing is evicted.
    pub fn insert(&mut self, key: CacheKey, block: Block) -> Option<CacheKey> {
        if self.capacity == 0 {
            return None;
        }
        self.clock += 1;
        let stamp = self.clock;
        let mut evicted = None;
        match self.entries.get(&key) {
            Some(existing) => {
                self.order.remove(&existing.stamp);
            }
            None if self.entries.len() == self.capacity => {
                let victim = self
                    .order
                    .pop_first()
                    .map(|(_, k)| k)
                    .expect("non-empty at capacity");
                self.entries.remove(&victim);
                evicted = Some(victim);
            }
            None => {}
        }
        self.order.insert(stamp, key);
        self.entries.insert(key, CacheEntry { block, stamp });
        evicted
    }

    /// Removes exactly `key` (the update-invalidation hook). Returns
    /// whether the key was present. No other entry is touched.
    pub fn invalidate(&mut self, key: &CacheKey) -> bool {
        match self.entries.remove(key) {
            Some(entry) => {
                self.order.remove(&entry.stamp);
                true
            }
            None => false,
        }
    }

    /// Drops every entry (recency clock keeps advancing, so later inserts
    /// still order after earlier ones).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }

    /// Current keys from least- to most-recently used — the exact eviction
    /// order future inserts will follow. Exposed for tests and stats.
    pub fn keys_lru_order(&self) -> Vec<CacheKey> {
        self.order.values().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u64) -> CacheKey {
        (PartitionId(0), b)
    }

    fn blk(tag: u8) -> Block {
        Block::from_bytes(&[tag; 16]).unwrap()
    }

    #[test]
    fn lru_eviction_follows_touch_order() {
        let mut c = BlockCache::new(3);
        for b in 0..3u8 {
            assert_eq!(c.insert(key(b.into()), blk(b)), None);
        }
        assert_eq!(c.keys_lru_order(), vec![key(0), key(1), key(2)]);
        // Touch 0: order becomes 1, 2, 0.
        assert!(c.get(&key(0)).is_some());
        assert_eq!(c.keys_lru_order(), vec![key(1), key(2), key(0)]);
        // Insert over capacity: 1 is the victim.
        assert_eq!(c.insert(key(3), blk(3)), Some(key(1)));
        assert_eq!(c.keys_lru_order(), vec![key(2), key(0), key(3)]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn replacing_an_entry_does_not_evict() {
        let mut c = BlockCache::new(2);
        c.insert(key(0), blk(1));
        c.insert(key(1), blk(2));
        assert_eq!(c.insert(key(0), blk(9)), None, "replacement, not growth");
        assert_eq!(c.peek(&key(0)).unwrap().data[0], 9);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn invalidate_removes_exactly_one_key() {
        let mut c = BlockCache::new(4);
        for b in 0..4u8 {
            c.insert(key(b.into()), blk(b));
        }
        assert!(c.invalidate(&key(2)));
        assert!(!c.invalidate(&key(2)), "already gone");
        assert_eq!(c.len(), 3);
        assert!(c.peek(&key(2)).is_none());
        for b in [0u64, 1, 3] {
            assert!(c.peek(&key(b)).is_some(), "block {b} untouched");
        }
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = BlockCache::new(0);
        assert_eq!(c.insert(key(0), blk(1)), None);
        assert!(c.get(&key(0)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn peek_does_not_disturb_recency() {
        let mut c = BlockCache::new(2);
        c.insert(key(0), blk(0));
        c.insert(key(1), blk(1));
        assert!(c.peek(&key(0)).is_some());
        // 0 is still LRU despite the peek.
        assert_eq!(c.insert(key(2), blk(2)), Some(key(0)));
    }
}
