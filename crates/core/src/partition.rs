//! Partitions: one primer pair, an internally blocked address space.

use crate::block::Block;
use crate::layout::UpdateLayout;
use crate::update::UpdatePatch;
use crate::StoreError;
use dna_codec::{intra, PayloadCodec, StrandGeometry};
use dna_ecc::{EncodingUnit, UnitConfig};
use dna_index::{IndexTree, LeafId};
use dna_pipeline::BlockDecodeConfig;
use dna_primers::PrimerPair;
use dna_seq::rng::DetRng;
use dna_seq::{Base, DnaSeq};
use dna_sim::{Molecule, StrandTag};
use std::collections::BTreeMap;

/// A version slot within a block's address: 0 is the original data, 1..
/// are updates (§5.3: "the original object as ACGTA, the first update as
/// ACGTC, second update as ACGTG").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct VersionSlot(pub u8);

impl VersionSlot {
    /// The version base encoding this slot (slot i → i-th base).
    pub fn base(self) -> Base {
        Base::from_code(self.0)
    }

    /// Slot of a version base.
    pub fn from_base(b: Base) -> VersionSlot {
        VersionSlot(b.code())
    }
}

/// Static configuration of a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionConfig {
    /// Strand geometry (paper: 150-base strands).
    pub geometry: StrandGeometry,
    /// Encoding-unit geometry (paper: RS(15,11) over GF(16)).
    pub unit: UnitConfig,
    /// Index-tree depth (paper: 5 → 1024 leaves).
    pub tree_depth: usize,
    /// Master seed; the tree seed and payload-randomizer seed derive from
    /// it (§4.4: only seeds are stored as metadata).
    pub master_seed: u64,
    /// Update placement policy.
    pub layout: UpdateLayout,
    /// Ground-truth tag for simulator provenance (file number).
    pub partition_tag: u32,
}

impl PartitionConfig {
    /// The paper's wetlab configuration.
    pub fn paper_default(master_seed: u64) -> PartitionConfig {
        PartitionConfig {
            geometry: StrandGeometry::paper_default(),
            unit: UnitConfig::paper_default(),
            tree_depth: 5,
            master_seed,
            layout: UpdateLayout::paper_default(),
            partition_tag: 0,
        }
    }

    /// A reduced address space: `tree_depth` levels (`4^depth` leaves) with
    /// a matching sparse unit index (2 bases per level); everything else as
    /// the paper wetlab. Small partitions reach update-slot exhaustion
    /// within a test budget, which is what the compaction scenarios, bench
    /// and example drive.
    pub fn small(master_seed: u64, tree_depth: usize, layout: UpdateLayout) -> PartitionConfig {
        let mut config = PartitionConfig::paper_default(master_seed);
        config.geometry.unit_index_len = 2 * tree_depth;
        config.tree_depth = tree_depth;
        config.layout = layout;
        config
    }
}

/// Where one write (original or update) lands in the address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdatePlacement {
    /// Leaf holding the unit.
    pub leaf: u64,
    /// Version slot at that leaf.
    pub slot: VersionSlot,
    /// Pointer units that must be synthesized alongside:
    /// `(leaf, slot, target_leaf)`.
    pub pointers: Vec<(u64, VersionSlot, u64)>,
}

/// Summary of a partition-wide update reclaim
/// ([`Partition::reclaim_updates`]): everything the store needs to retire
/// stale molecules and re-synthesize fresh base units.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReclaimedUpdates {
    /// Blocks whose patch chains were folded, with the write count each
    /// carried before the reclaim (`writes >= 2`).
    pub rebased_blocks: Vec<(u64, u32)>,
    /// Overflow / stack leaves returned to the free region, in ascending
    /// order. Every molecule addressed at these leaves is now stale.
    pub freed_leaves: Vec<u64>,
}

/// The write-state counters a store image must carry for one partition:
/// everything [`Partition::new`] cannot re-derive from the config. The
/// index tree and payload seed regenerate from `master_seed` (§4.4 — only
/// seeds are metadata); these counters, by contrast, advance with every
/// write and exist nowhere else.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartitionBookkeeping {
    /// Per block: number of writes so far (1 = original only).
    pub write_counts: BTreeMap<u64, u32>,
    /// Per block: overflow chain leaves, in order.
    pub chains: BTreeMap<u64, Vec<u64>>,
    /// Next free overflow leaf.
    pub overflow_next: u64,
    /// Highest data block written.
    pub max_block_written: u64,
    /// TwoStacks: number of updates placed so far.
    pub stack_updates: u64,
}

/// A storage partition: one primer pair + PCR-navigable index tree +
/// versioned block address space.
#[derive(Debug, Clone)]
pub struct Partition {
    config: PartitionConfig,
    primers: PrimerPair,
    tree: IndexTree,
    payload_seed: u64,
    /// Per block: number of writes so far (1 = original only).
    write_counts: BTreeMap<u64, u32>,
    /// Per block: overflow chain leaves, in order.
    chains: BTreeMap<u64, Vec<u64>>,
    /// Next free overflow leaf (allocated downward from the top).
    overflow_next: u64,
    /// Highest data block written (collision guard for the overflow stack).
    max_block_written: u64,
    /// TwoStacks: number of updates placed so far.
    stack_updates: u64,
}

impl Partition {
    /// Creates a partition with the given config and main primer pair.
    pub fn new(config: PartitionConfig, primers: PrimerPair) -> Partition {
        let root = DetRng::seed_from_u64(config.master_seed);
        let mut tree_stream = root.derive(0);
        let mut payload_stream = root.derive(1);
        let tree = IndexTree::new(tree_stream.next_u64(), config.tree_depth);
        let payload_seed = payload_stream.next_u64();
        let overflow_next = tree.num_leaves() - 1;
        Partition {
            config,
            primers,
            tree,
            payload_seed,
            write_counts: BTreeMap::new(),
            chains: BTreeMap::new(),
            overflow_next,
            max_block_written: 0,
            stack_updates: 0,
        }
    }

    /// Rebuilds a partition from its config, primers, and the write-state
    /// counters captured by [`Partition::bookkeeping`]. The tree and
    /// payload seed are re-derived from `config.master_seed`, so the result
    /// is structurally identical to the partition the bookkeeping came
    /// from.
    pub fn restore(
        config: PartitionConfig,
        primers: PrimerPair,
        bookkeeping: PartitionBookkeeping,
    ) -> Partition {
        let mut p = Partition::new(config, primers);
        p.write_counts = bookkeeping.write_counts;
        p.chains = bookkeeping.chains;
        p.overflow_next = bookkeeping.overflow_next;
        p.max_block_written = bookkeeping.max_block_written;
        p.stack_updates = bookkeeping.stack_updates;
        p
    }

    /// Captures the write-state counters for a store image (see
    /// [`PartitionBookkeeping`]).
    pub fn bookkeeping(&self) -> PartitionBookkeeping {
        PartitionBookkeeping {
            write_counts: self.write_counts.clone(),
            chains: self.chains.clone(),
            overflow_next: self.overflow_next,
            max_block_written: self.max_block_written,
            stack_updates: self.stack_updates,
        }
    }

    /// The partition configuration.
    pub fn config(&self) -> &PartitionConfig {
        &self.config
    }

    /// The main primer pair.
    pub fn primers(&self) -> &PrimerPair {
        &self.primers
    }

    /// The index tree.
    pub fn tree(&self) -> &IndexTree {
        &self.tree
    }

    /// The payload-randomizer seed (partition metadata, §4.4).
    pub fn payload_seed(&self) -> u64 {
        self.payload_seed
    }

    /// Number of addressable leaves.
    pub fn num_leaves(&self) -> u64 {
        self.tree.num_leaves()
    }

    /// Number of writes (original + updates) recorded for `block`.
    pub fn writes_of(&self, block: u64) -> u32 {
        self.write_counts.get(&block).copied().unwrap_or(0)
    }

    /// Overflow chain leaves of `block`, if any.
    pub fn chain_of(&self, block: u64) -> &[u64] {
        self.chains.get(&block).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Molecules per encoding unit.
    pub fn strands_per_unit(&self) -> usize {
        self.config.unit.total_cols
    }

    // ----- addressing ------------------------------------------------------

    /// The zero-elongation scope primer: main forward primer + sync bases,
    /// the §3.1 empty prefix that amplifies every leaf of the partition.
    /// Per-leaf and per-range primers extend it with index bases.
    pub fn scope_primer(&self) -> DnaSeq {
        let mut p = self.primers.forward().clone();
        for _ in 0..self.config.geometry.sync_len {
            p.push(Base::A);
        }
        p
    }

    /// The fully elongated forward primer for a leaf: main primer + sync +
    /// 10-base sparse index (31 bases in the paper's geometry, §6.5).
    pub fn elongated_primer(&self, leaf: u64) -> DnaSeq {
        let mut p = self.scope_primer();
        p.extend(self.tree.leaf_index(LeafId(leaf)).iter());
        p
    }

    /// A version-scoped primer: elongated primer + version base (targets a
    /// single version slot).
    pub fn version_primer(&self, leaf: u64, slot: VersionSlot) -> DnaSeq {
        let mut p = self.elongated_primer(leaf);
        p.push(slot.base());
        p
    }

    /// Partially elongated primers covering the leaf range `lo..=hi`
    /// exactly (§3.1 prefix covers; one multiplex PCR retrieves the range).
    pub fn range_prefixes(&self, lo: u64, hi: u64) -> Vec<DnaSeq> {
        self.range_prefixes_weighted(lo, hi)
            .into_iter()
            .map(|(p, _)| p)
            .collect()
    }

    /// As [`Partition::range_prefixes`], with each prefix's covered leaf
    /// count — the weight its primer concentration should get in a
    /// multiplex reaction so that all covered leaves amplify evenly
    /// (§3.2's uniform-concentration requirement).
    pub fn range_prefixes_weighted(&self, lo: u64, hi: u64) -> Vec<(DnaSeq, f64)> {
        self.tree
            .cover_range(LeafId(lo), LeafId(hi))
            .into_iter()
            .map(|node| {
                let mut p = self.scope_primer();
                p.extend(node.prefix(&self.tree).iter());
                (p, node.leaf_count as f64)
            })
            .collect()
    }

    /// Number of updates placed in the TwoStacks update region.
    pub fn stack_update_count(&self) -> u64 {
        self.stack_updates
    }

    // ----- encoding --------------------------------------------------------

    /// Encodes one unit (a block or a patch) at `(leaf, slot)` into its
    /// strand set.
    pub fn encode_unit(&self, leaf: u64, slot: VersionSlot, content: &Block) -> Vec<Molecule> {
        let unit = EncodingUnit::new(self.config.unit);
        let columns = unit
            .encode(&content.to_unit_bytes())
            .expect("unit geometry is consistent");
        let geometry = &self.config.geometry;
        columns
            .iter()
            .enumerate()
            .map(|(col, bytes)| {
                // Unit geometry caps columns at total_cols (15 in the
                // paper); a config that overflowed u8 here would already
                // have broken the intra-index encoding below.
                let col_u8 = u8::try_from(col).expect("column index fits u8");
                let codec =
                    PayloadCodec::for_column(self.payload_seed, leaf, slot.base().code(), col_u8);
                let payload = codec.encode(bytes);
                let strand = geometry
                    .assemble(
                        self.primers.forward(),
                        &self.tree.leaf_index(LeafId(leaf)),
                        slot.base(),
                        &intra::encode(col, geometry.intra_index_len)
                            .expect("column fits intra index"),
                        &payload,
                        self.primers.reverse(),
                    )
                    .expect("strand geometry is consistent");
                Molecule::new(
                    strand,
                    StrandTag::new(self.config.partition_tag, leaf, slot.0, col_u8),
                )
            })
            .collect()
    }

    /// Writes the original content of `block`.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range blocks and double writes (blocks are
    /// write-once; changes go through updates).
    pub fn encode_block(
        &mut self,
        block: u64,
        content: &Block,
    ) -> Result<Vec<Molecule>, StoreError> {
        self.record_block_write(block)?;
        Ok(self.encode_unit(block, VersionSlot(0), content))
    }

    /// Commits the bookkeeping half of [`Partition::encode_block`] —
    /// validates the write and records it — without producing the strands.
    /// A sharded store uses this to *encode* a unit from an immutable
    /// partition snapshot (via [`Partition::encode_unit`], outside any
    /// lock) and then commit the write separately once the snapshot
    /// validates.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range blocks, blocks colliding with the overflow
    /// region, and double writes.
    pub fn record_block_write(&mut self, block: u64) -> Result<(), StoreError> {
        if block >= self.num_leaves() {
            return Err(StoreError::BlockOutOfRange {
                block,
                capacity: self.num_leaves(),
            });
        }
        if block >= self.overflow_next {
            return Err(StoreError::FileTooLarge {
                needed: block + 1,
                available: self.overflow_next,
            });
        }
        if self.writes_of(block) > 0 {
            return Err(StoreError::InvalidPatch(format!(
                "block {block} already written; use updates"
            )));
        }
        self.write_counts.insert(block, 1);
        self.max_block_written = self.max_block_written.max(block);
        Ok(())
    }

    /// Plans where the next update of `block` goes (see
    /// [`UpdateLayout`]). Advances no state; [`Partition::encode_update`]
    /// commits.
    ///
    /// # Errors
    ///
    /// Fails when the block was never written, the address space is
    /// exhausted, or the layout cannot accept updates here.
    pub fn plan_update(&self, block: u64) -> Result<UpdatePlacement, StoreError> {
        let writes = self.writes_of(block);
        if writes == 0 {
            return Err(StoreError::BlockNotWritten(block));
        }
        let update_index = writes; // 1-based: first update has index 1
        match self.config.layout {
            UpdateLayout::Interleaved { update_slots } => {
                let direct = u32::from(update_slots) - 1; // last slot = pointer
                if update_index <= direct {
                    // update_index <= direct = update_slots - 1 < 256.
                    let slot = u8::try_from(update_index).expect("direct slot index fits u8");
                    return Ok(UpdatePlacement {
                        leaf: block,
                        slot: VersionSlot(slot),
                        pointers: Vec::new(),
                    });
                }
                // Overflow chain: each chain leaf holds `update_slots`
                // patches (slots 0..update_slots) and one pointer slot.
                let per_leaf = u32::from(update_slots);
                let j = update_index - direct - 1; // 0-based overflow index
                let chain_idx = (j / per_leaf) as usize;
                // The remainder is < per_leaf = update_slots, itself a u8.
                let slot_in_leaf = u8::try_from(j % per_leaf).expect("in-leaf slot fits u8");
                let chain = self.chain_of(block);
                let mut pointers = Vec::new();
                let leaf = if chain_idx < chain.len() {
                    chain[chain_idx]
                } else {
                    // Allocate a new chain leaf and a pointer from the
                    // previous tail.
                    let new_leaf = self.overflow_next;
                    if new_leaf <= self.max_block_written {
                        return Err(StoreError::UpdateSlotsExhausted {
                            block,
                            layout: self.config.layout,
                            chain_len: chain.len(),
                            headroom: 0,
                        });
                    }
                    let pointer_slot = VersionSlot(update_slots);
                    let pointer_from = if chain_idx == 0 {
                        (block, pointer_slot)
                    } else {
                        (chain[chain_idx - 1], pointer_slot)
                    };
                    pointers.push((pointer_from.0, pointer_from.1, new_leaf));
                    new_leaf
                };
                Ok(UpdatePlacement {
                    leaf,
                    slot: VersionSlot(slot_in_leaf),
                    pointers,
                })
            }
            UpdateLayout::TwoStacks => {
                let leaf = self
                    .num_leaves()
                    .checked_sub(1 + self.stack_updates)
                    .filter(|&l| l > self.max_block_written)
                    .ok_or(StoreError::UpdateSlotsExhausted {
                        block,
                        layout: self.config.layout,
                        chain_len: self.chain_of(block).len(),
                        headroom: 0,
                    })?;
                Ok(UpdatePlacement {
                    leaf,
                    slot: VersionSlot(0),
                    pointers: Vec::new(),
                })
            }
            UpdateLayout::DedicatedLog => {
                // Updates do not live in data partitions under this layout;
                // the store routes them to the shared log partition.
                Err(StoreError::InvalidPatch(
                    "DedicatedLog places updates in the shared log partition".to_string(),
                ))
            }
        }
    }

    /// Encodes the next update of `block`, committing the placement.
    /// Returns the patch strands plus any pointer-unit strands.
    ///
    /// # Errors
    ///
    /// See [`Partition::plan_update`].
    pub fn encode_update(
        &mut self,
        block: u64,
        patch: &UpdatePatch,
    ) -> Result<(UpdatePlacement, Vec<Molecule>), StoreError> {
        let placement = self.plan_update(block)?;
        let molecules = self.encode_placement(&placement, patch);
        self.commit_placement(block, &placement);
        Ok((placement, molecules))
    }

    /// Encodes the strands a planned update placement will synthesize —
    /// the patch unit plus any pointer units — without committing
    /// anything. Pure with respect to the partition: a sharded store
    /// encodes from a snapshot while holding no locks, then commits via
    /// [`Partition::commit_placement`] once the snapshot validates.
    pub fn encode_placement(
        &self,
        placement: &UpdatePlacement,
        patch: &UpdatePatch,
    ) -> Vec<Molecule> {
        let mut molecules = self.encode_unit(placement.leaf, placement.slot, &patch.to_block());
        for &(ptr_leaf, ptr_slot, target) in &placement.pointers {
            let ptr_block = pointer_block(target);
            molecules.extend(self.encode_unit(ptr_leaf, ptr_slot, &ptr_block));
        }
        molecules
    }

    /// Commits a placement produced by [`Partition::plan_update`]: records
    /// the write, extends the overflow chain, and advances the allocator
    /// state the layout uses. This is the *single* mutation point for
    /// update bookkeeping — [`Partition::encode_update`] goes through it,
    /// and [`Partition::reclaim_updates`] is its inverse — so no caller
    /// ever re-derives the commit by re-matching on the layout.
    pub fn commit_placement(&mut self, block: u64, placement: &UpdatePlacement) {
        match self.config.layout {
            UpdateLayout::Interleaved { .. } => {
                if !placement.pointers.is_empty() {
                    self.chains.entry(block).or_default().push(placement.leaf);
                    self.overflow_next -= 1;
                }
            }
            UpdateLayout::TwoStacks => {
                self.stack_updates += 1;
                self.chains.entry(block).or_default().push(placement.leaf);
            }
            UpdateLayout::DedicatedLog => {
                unreachable!("DedicatedLog updates are placed in the shared log partition")
            }
        }
        *self.write_counts.entry(block).or_insert(0) += 1;
    }

    /// Registers an externally placed update (used by the store for the
    /// DedicatedLog layout, where patches live in the log partition).
    pub fn note_external_update(&mut self, block: u64) {
        *self.write_counts.entry(block).or_insert(0) += 1;
    }

    // ----- maintenance / compaction ----------------------------------------

    /// Predicts how many more updates can be placed before
    /// [`crate::StoreError::UpdateSlotsExhausted`], assuming no other block
    /// consumes shared overflow space in the meantime. Callers use this to
    /// schedule compaction *before* a write fails instead of probing with
    /// writes. Returns 0 for blocks that were never written;
    /// [`u64::MAX`] for the DedicatedLog layout, whose updates live in the
    /// shared log partition (see `BlockStore::update_headroom` for the
    /// store-level prediction that accounts for log capacity).
    pub fn update_headroom(&self, block: u64) -> u64 {
        let writes = self.writes_of(block);
        if writes == 0 {
            return 0;
        }
        let updates = u64::from(writes - 1);
        match self.config.layout {
            UpdateLayout::Interleaved { update_slots } => {
                let direct = u64::from(update_slots) - 1;
                let per_leaf = u64::from(update_slots);
                let direct_free = direct.saturating_sub(updates);
                let overflow_used = updates.saturating_sub(direct);
                let chain_cap = self.chain_of(block).len() as u64 * per_leaf;
                let in_chain_free = chain_cap.saturating_sub(overflow_used);
                let free_leaves = self.overflow_next.saturating_sub(self.max_block_written);
                direct_free + in_chain_free + free_leaves * per_leaf
            }
            UpdateLayout::TwoStacks => self
                .num_leaves()
                .saturating_sub(self.stack_updates)
                .saturating_sub(self.max_block_written + 1),
            UpdateLayout::DedicatedLog => u64::MAX,
        }
    }

    /// Length of the longest committed overflow chain (0 when no block has
    /// chained) — one of the signals a `CompactionPolicy` thresholds on.
    pub fn max_chain_len(&self) -> usize {
        self.chains.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Total updates recorded across all blocks (externally placed
    /// DedicatedLog updates included).
    pub fn total_updates(&self) -> u64 {
        self.write_counts
            .values()
            .map(|&w| u64::from(w.saturating_sub(1)))
            .sum()
    }

    /// Blocks carrying at least one update, with their write counts — the
    /// candidates a compaction pass will fold and rebase.
    pub fn updated_blocks(&self) -> Vec<(u64, u32)> {
        self.write_counts
            .iter()
            .filter(|&(_, &w)| w > 1)
            .map(|(&b, &w)| (b, w))
            .collect()
    }

    /// Folds all update bookkeeping back to the freshly-written state: every
    /// committed overflow chain is released, the overflow allocator returns
    /// to the top of the address space, the TwoStacks update region empties,
    /// and each written block's write count resets to 1 (original only).
    ///
    /// This is the partition half of compaction. The caller (the store's
    /// `compact_partition`) is responsible for the pool half: retiring the
    /// stale molecules at the returned leaves and re-synthesizing a fresh
    /// base unit — [`Partition::encode_unit`] at `VersionSlot(0)` — for
    /// every rebased block from its current logical image, so the DNA and
    /// the metadata agree again.
    pub fn reclaim_updates(&mut self) -> ReclaimedUpdates {
        let rebased_blocks = self.updated_blocks();
        let mut freed_leaves: Vec<u64> = self.chains.values().flatten().copied().collect();
        freed_leaves.sort_unstable();
        freed_leaves.dedup();
        self.chains.clear();
        self.overflow_next = self.tree.num_leaves() - 1;
        self.stack_updates = 0;
        for w in self.write_counts.values_mut() {
            *w = 1;
        }
        ReclaimedUpdates {
            rebased_blocks,
            freed_leaves,
        }
    }

    /// Erases *all* write state — every block becomes writable again. Only
    /// meaningful for the shared DedicatedLog partition, whose entries are
    /// wholesale superseded when the log is folded into rebased data blocks;
    /// the caller must retire the corresponding molecules from the pool.
    /// Returns the number of blocks cleared.
    pub fn reclaim_all(&mut self) -> usize {
        let cleared = self.write_counts.len();
        self.write_counts.clear();
        self.chains.clear();
        self.overflow_next = self.tree.num_leaves() - 1;
        self.max_block_written = 0;
        self.stack_updates = 0;
        cleared
    }

    /// The PCR prefixes needed to read `block` with all its updates in one
    /// round-trip: the block's elongated primer, plus chain-leaf primers
    /// for committed overflow, plus (TwoStacks) the update region's cover.
    pub fn read_scope(&self, block: u64) -> Vec<DnaSeq> {
        let mut scope = vec![self.elongated_primer(block)];
        match self.config.layout {
            UpdateLayout::Interleaved { .. } => {
                for &leaf in self.chain_of(block) {
                    scope.push(self.elongated_primer(leaf));
                }
            }
            UpdateLayout::TwoStacks => {
                if self.stack_updates > 0 {
                    let lo = self.num_leaves() - self.stack_updates;
                    let hi = self.num_leaves() - 1;
                    scope.extend(self.range_prefixes(lo, hi));
                }
            }
            UpdateLayout::DedicatedLog => {}
        }
        scope
    }

    /// The pipeline decode configuration for a unit at `leaf`.
    pub fn decode_config(&self, leaf: u64) -> BlockDecodeConfig {
        BlockDecodeConfig {
            geometry: self.config.geometry,
            unit: self.config.unit,
            payload_seed: self.payload_seed,
            unit_id: leaf,
            cluster: dna_pipeline::ClusterConfig::default(),
            filter_max_edit: 3,
            max_clusters: 0,
            // Deep enough that the true strand stays in the candidate list
            // even when chimera products from several misprimed foreign
            // units out-cluster it on the same address (the flood regime
            // of partial-prefix range PCR); the decoder's uniform-rank
            // passes then recover it without a combinatorial search.
            max_alternates: 4,
            // Room for the decoder's popcount-ordered flip search to cover
            // an equal-abundance impostor on every column (~2^15 for the
            // paper's 15-column units); clean decodes still exit on the
            // first attempt.
            max_decode_attempts: 65536,
            index_tail_tolerance: Some(1),
            version_allowlist: None,
        }
    }

    /// As [`Partition::decode_config`], restricted to the version slots the
    /// caller knows are live at `leaf`. The store uses this wherever its
    /// metadata is exact — freshly rebased base units, TwoStacks /
    /// DedicatedLog data blocks, stack leaves and log entries all hold only
    /// `VersionSlot(0)` — so wetlab noise claiming another version base can
    /// never be decoded into a phantom patch.
    pub fn decode_config_versions(&self, leaf: u64, slots: &[VersionSlot]) -> BlockDecodeConfig {
        let mut cfg = self.decode_config(leaf);
        cfg.version_allowlist = Some(slots.iter().map(|s| s.base()).collect());
        cfg
    }

    /// The version slots live at `leaf` according to the partition's
    /// update metadata — exactly the slots a decode of that leaf must
    /// recover, no more. Pinning decodes to this set makes the read paths
    /// sound in both directions: noise claiming a dead version base is
    /// never decoded into a phantom patch, and a live slot that fails to
    /// decode is a *hole in the patch chain* the read can refuse to paper
    /// over.
    pub fn live_version_slots(&self, leaf: u64) -> Vec<VersionSlot> {
        let UpdateLayout::Interleaved { update_slots } = self.config.layout else {
            // TwoStacks and DedicatedLog place everything at slot 0.
            return vec![VersionSlot(0)];
        };
        let direct = u32::from(update_slots) - 1;
        let per_leaf = u32::from(update_slots);
        // Committed chain leaf: patches fill slots 0.. in allocation
        // order; the pointer slot is live when a later chain leaf exists.
        for (&block, chain) in &self.chains {
            if let Some(i) = chain.iter().position(|&l| l == leaf) {
                let updates = self.writes_of(block).saturating_sub(1);
                let overflow_used = updates.saturating_sub(direct);
                let here = overflow_used
                    .saturating_sub(i as u32 * per_leaf)
                    .min(per_leaf);
                // here <= per_leaf = update_slots, a u8.
                let here = u8::try_from(here).expect("per-leaf patch count fits u8");
                let mut slots: Vec<VersionSlot> = (0..here).map(VersionSlot).collect();
                if i + 1 < chain.len() {
                    slots.push(VersionSlot(update_slots));
                }
                return slots;
            }
        }
        // Data leaf: the base, the direct update slots in use, and the
        // pointer slot once the block has overflowed.
        let updates = self.writes_of(leaf).saturating_sub(1);
        let mut slots = vec![VersionSlot(0)];
        // Capped at direct = update_slots - 1 < 256.
        slots.extend(
            (1..=updates.min(direct))
                .map(|s| VersionSlot(u8::try_from(s).expect("direct slot index fits u8"))),
        );
        if !self.chain_of(leaf).is_empty() {
            slots.push(VersionSlot(update_slots));
        }
        slots
    }
}

/// Encodes a pointer unit: an impossible patch header (`0xFF, 0xFF`) marks
/// the block as a pointer; bytes 4..12 hold the target leaf.
///
/// Public so integration/property tests can assert that the patch wire
/// format and the pointer encoding never collide.
pub fn pointer_block(target_leaf: u64) -> Block {
    let mut bytes = vec![0xFFu8, 0xFF, 0, 8];
    bytes.extend_from_slice(&target_leaf.to_le_bytes());
    Block::from_bytes(&bytes).expect("pointer block fits")
}

/// Parses a pointer unit, returning the target leaf (`None` when `block`
/// is not a pointer — e.g. any valid patch).
pub fn parse_pointer_block(block: &Block) -> Option<u64> {
    if block.data[0] == 0xFF && block.data[1] == 0xFF && block.data[3] == 8 {
        let mut le = [0u8; 8];
        le.copy_from_slice(&block.data[4..12]);
        Some(u64::from_le_bytes(le))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn primers() -> PrimerPair {
        PrimerPair::new(
            "AACCGGTTAACCGGTTAACC".parse().unwrap(),
            "AAGGCCTTAAGGCCTTAAGG".parse().unwrap(),
        )
    }

    fn partition() -> Partition {
        Partition::new(PartitionConfig::paper_default(77), primers())
    }

    #[test]
    fn paper_dimensions() {
        let p = partition();
        assert_eq!(p.num_leaves(), 1024);
        assert_eq!(p.strands_per_unit(), 15);
        assert_eq!(p.elongated_primer(531).len(), 31);
        assert_eq!(p.version_primer(531, VersionSlot(1)).len(), 32);
    }

    #[test]
    fn encode_block_produces_15_tagged_strands() {
        let mut p = partition();
        let mols = p
            .encode_block(531, &Block::from_bytes(b"paragraph text").unwrap())
            .unwrap();
        assert_eq!(mols.len(), 15);
        for (col, m) in mols.iter().enumerate() {
            assert_eq!(m.seq.len(), 150);
            let tag = m.tag.unwrap();
            assert_eq!(tag.unit, 531);
            assert_eq!(tag.version, 0);
            assert_eq!(tag.column, col as u8);
            // Strand starts with the elongated primer (address prefix).
            assert!(m.seq.starts_with(&p.elongated_primer(531)));
        }
    }

    #[test]
    fn double_write_rejected() {
        let mut p = partition();
        let b = Block::zeroed();
        p.encode_block(3, &b).unwrap();
        assert!(p.encode_block(3, &b).is_err());
    }

    #[test]
    fn updates_fill_direct_slots_then_chain() {
        let mut p = partition();
        p.encode_block(10, &Block::zeroed()).unwrap();
        let patch = UpdatePatch::new(0, 1, 0, b"x".to_vec()).unwrap();
        // Updates 1 and 2 are direct (version bases C and G).
        let (pl1, mols1) = p.encode_update(10, &patch).unwrap();
        assert_eq!((pl1.leaf, pl1.slot), (10, VersionSlot(1)));
        assert_eq!(mols1.len(), 15);
        let (pl2, _) = p.encode_update(10, &patch).unwrap();
        assert_eq!((pl2.leaf, pl2.slot), (10, VersionSlot(2)));
        // Update 3 overflows: pointer at slot 3 + patch in a chain leaf.
        let (pl3, mols3) = p.encode_update(10, &patch).unwrap();
        assert_eq!(pl3.leaf, 1023);
        assert_eq!(pl3.slot, VersionSlot(0));
        assert_eq!(pl3.pointers, vec![(10, VersionSlot(3), 1023)]);
        assert_eq!(mols3.len(), 30); // patch unit + pointer unit
        assert_eq!(p.chain_of(10), &[1023]);
        // Updates 4 and 5 fill the chain leaf's remaining slots.
        let (pl4, _) = p.encode_update(10, &patch).unwrap();
        assert_eq!((pl4.leaf, pl4.slot), (1023, VersionSlot(1)));
        let (pl5, _) = p.encode_update(10, &patch).unwrap();
        assert_eq!((pl5.leaf, pl5.slot), (1023, VersionSlot(2)));
        // Update 6 chains again.
        let (pl6, _) = p.encode_update(10, &patch).unwrap();
        assert_eq!(pl6.leaf, 1022);
        assert_eq!(pl6.pointers, vec![(1023, VersionSlot(3), 1022)]);
        assert_eq!(p.chain_of(10), &[1023, 1022]);
        assert_eq!(p.writes_of(10), 7);
    }

    #[test]
    fn read_scope_includes_chain_leaves() {
        let mut p = partition();
        p.encode_block(10, &Block::zeroed()).unwrap();
        let patch = UpdatePatch::identity();
        for _ in 0..4 {
            p.encode_update(10, &patch).unwrap();
        }
        let scope = p.read_scope(10);
        assert_eq!(scope.len(), 2);
        assert_eq!(scope[0], p.elongated_primer(10));
        assert_eq!(scope[1], p.elongated_primer(1023));
    }

    #[test]
    fn pointer_blocks_round_trip_and_cannot_be_patches() {
        let b = pointer_block(987654);
        assert_eq!(parse_pointer_block(&b), Some(987654));
        // The sentinel header is an impossible patch.
        assert!(UpdatePatch::from_block(&b).is_err());
        // Regular patches never parse as pointers.
        let patch = UpdatePatch::new(1, 2, 3, b"abc".to_vec()).unwrap();
        assert_eq!(parse_pointer_block(&patch.to_block()), None);
    }

    #[test]
    fn two_stacks_places_updates_from_the_top() {
        let cfg = PartitionConfig {
            layout: UpdateLayout::TwoStacks,
            ..PartitionConfig::paper_default(5)
        };
        let mut p = Partition::new(cfg, primers());
        p.encode_block(0, &Block::zeroed()).unwrap();
        p.encode_block(1, &Block::zeroed()).unwrap();
        let patch = UpdatePatch::identity();
        let (pl1, _) = p.encode_update(0, &patch).unwrap();
        assert_eq!(pl1.leaf, 1023);
        let (pl2, _) = p.encode_update(1, &patch).unwrap();
        assert_eq!(pl2.leaf, 1022);
        // Read scope covers the whole used update region.
        let scope = p.read_scope(0);
        assert!(scope.len() >= 2);
    }

    #[test]
    fn update_before_write_rejected() {
        let mut p = partition();
        assert_eq!(
            p.encode_update(5, &UpdatePatch::identity()),
            Err(StoreError::BlockNotWritten(5))
        );
    }

    fn small(layout: UpdateLayout) -> Partition {
        // 16 leaves: exhaustion within test budget.
        Partition::new(PartitionConfig::small(9, 2, layout), primers())
    }

    #[test]
    fn headroom_counts_down_to_exhaustion_interleaved() {
        let mut p = small(UpdateLayout::paper_default());
        assert_eq!(p.update_headroom(0), 0, "never written");
        for b in 0..4u64 {
            p.encode_block(b, &Block::zeroed()).unwrap();
        }
        // 2 direct slots + 12 free overflow leaves x 3 slots each.
        assert_eq!(p.update_headroom(0), 2 + 12 * 3);
        let patch = UpdatePatch::identity();
        let mut predicted = p.update_headroom(0);
        while predicted > 0 {
            p.encode_update(0, &patch).unwrap();
            let next = p.update_headroom(0);
            assert!(next < predicted, "headroom must strictly decrease");
            predicted = next;
        }
        let err = p.encode_update(0, &patch).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::UpdateSlotsExhausted {
                    block: 0,
                    layout: UpdateLayout::Interleaved { .. },
                    chain_len: 12,
                    headroom: 0,
                }
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn headroom_counts_down_to_exhaustion_two_stacks() {
        let mut p = small(UpdateLayout::TwoStacks);
        for b in 0..4u64 {
            p.encode_block(b, &Block::zeroed()).unwrap();
        }
        // Leaves 15 down to 4 are above the data high-water mark.
        assert_eq!(p.update_headroom(0), 12);
        let patch = UpdatePatch::identity();
        for expected in (0..12u64).rev() {
            p.encode_update(0, &patch).unwrap();
            assert_eq!(p.update_headroom(1), expected, "shared stack headroom");
        }
        assert!(matches!(
            p.encode_update(0, &patch),
            Err(StoreError::UpdateSlotsExhausted {
                block: 0,
                layout: UpdateLayout::TwoStacks,
                ..
            })
        ));
    }

    #[test]
    fn reclaim_updates_restores_fresh_capacity_and_read_scope() {
        let mut p = small(UpdateLayout::paper_default());
        for b in 0..4u64 {
            p.encode_block(b, &Block::zeroed()).unwrap();
        }
        let patch = UpdatePatch::identity();
        for _ in 0..8 {
            p.encode_update(0, &patch).unwrap();
        }
        p.encode_update(1, &patch).unwrap();
        assert_eq!(p.max_chain_len(), 2);
        assert_eq!(p.total_updates(), 9);
        assert_eq!(p.updated_blocks(), vec![(0, 9), (1, 2)]);

        let reclaimed = p.reclaim_updates();
        assert_eq!(reclaimed.rebased_blocks, vec![(0, 9), (1, 2)]);
        assert_eq!(reclaimed.freed_leaves, vec![14, 15]);
        // Bookkeeping is back to the freshly-written state...
        assert_eq!(p.writes_of(0), 1);
        assert_eq!(p.chain_of(0), &[] as &[u64]);
        assert_eq!(p.total_updates(), 0);
        assert_eq!(p.read_scope(0).len(), 1, "no chain leaves in scope");
        // ...and the full update capacity is available again.
        assert_eq!(p.update_headroom(0), 2 + 12 * 3);
        let (pl, _) = p.encode_update(0, &patch).unwrap();
        assert_eq!((pl.leaf, pl.slot), (0, VersionSlot(1)));
    }

    #[test]
    fn reclaim_all_resets_the_log_partition() {
        let mut p = small(UpdateLayout::paper_default());
        for b in 0..5u64 {
            p.encode_block(b, &Block::zeroed()).unwrap();
        }
        assert_eq!(p.reclaim_all(), 5);
        assert_eq!(p.writes_of(0), 0);
        // Every leaf is writable again, from the bottom.
        p.encode_block(0, &Block::zeroed()).unwrap();
    }

    #[test]
    fn slot_math_survives_the_255_boundary() {
        // update_slots at the u8 maximum: direct slots 1..=254, the pointer
        // at slot 255, chain leaves carrying 255 patches each. Only the
        // bookkeeping half runs — real strands stop at 4 version bases —
        // but none of the slot counters may truncate on the way.
        let cfg = PartitionConfig {
            layout: UpdateLayout::Interleaved { update_slots: 255 },
            ..PartitionConfig::paper_default(21)
        };
        let mut p = Partition::new(cfg, primers());
        p.record_block_write(0).unwrap();
        // Fill all 254 direct slots.
        for i in 1..=254u8 {
            let pl = p.plan_update(0).unwrap();
            assert_eq!((pl.leaf, pl.slot), (0, VersionSlot(i)));
            assert!(pl.pointers.is_empty());
            p.commit_placement(0, &pl);
        }
        assert_eq!(p.writes_of(0), 255);
        // Update 255 crosses into the first chain leaf; the pointer hangs
        // off the data leaf's slot 255 (the 255/256 boundary itself).
        let pl = p.plan_update(0).unwrap();
        assert_eq!((pl.leaf, pl.slot), (1023, VersionSlot(0)));
        assert_eq!(pl.pointers, vec![(0, VersionSlot(255), 1023)]);
        p.commit_placement(0, &pl);
        // The chain leaf fills all 255 of its patch slots without wrapping.
        for s in 1..255u8 {
            let pl = p.plan_update(0).unwrap();
            assert_eq!((pl.leaf, pl.slot), (1023, VersionSlot(s)));
            p.commit_placement(0, &pl);
        }
        let live = p.live_version_slots(1023);
        assert_eq!(live.len(), 255);
        assert_eq!(live.last(), Some(&VersionSlot(254)));
        // Data leaf: base + 254 direct slots + the pointer slot.
        let live0 = p.live_version_slots(0);
        assert_eq!(live0.len(), 256);
        assert_eq!(live0.last(), Some(&VersionSlot(255)));
    }

    #[test]
    fn bookkeeping_roundtrip_restores_identical_state() {
        let mut p = small(UpdateLayout::paper_default());
        for b in 0..4u64 {
            p.encode_block(b, &Block::zeroed()).unwrap();
        }
        let patch = UpdatePatch::identity();
        for _ in 0..8 {
            p.encode_update(0, &patch).unwrap();
        }
        let restored = Partition::restore(*p.config(), p.primers().clone(), p.bookkeeping());
        assert_eq!(restored.bookkeeping(), p.bookkeeping());
        assert_eq!(restored.writes_of(0), p.writes_of(0));
        assert_eq!(restored.chain_of(0), p.chain_of(0));
        assert_eq!(restored.update_headroom(0), p.update_headroom(0));
        // The re-derived tree gives byte-identical addressing.
        assert_eq!(restored.elongated_primer(3), p.elongated_primer(3));
        // And the next planned update lands in the same place.
        assert_eq!(restored.plan_update(0), p.plan_update(0));
    }

    #[test]
    fn same_seed_reproduces_identical_strands() {
        let mut a = partition();
        let mut b = partition();
        let blk = Block::from_bytes(b"determinism").unwrap();
        assert_eq!(
            a.encode_block(7, &blk).unwrap(),
            b.encode_block(7, &blk).unwrap()
        );
    }

    #[test]
    fn different_seeds_give_different_trees_and_strands() {
        let mut a = Partition::new(PartitionConfig::paper_default(1), primers());
        let mut b = Partition::new(PartitionConfig::paper_default(2), primers());
        let blk = Block::zeroed();
        assert_ne!(
            a.encode_block(7, &blk).unwrap(),
            b.encode_block(7, &blk).unwrap()
        );
    }
}
