//! Fixed-size blocks and unit integrity.

use crate::StoreError;

/// User-visible block size in bytes (§6.1: "The binary size of each
/// encoding unit is 256 bytes, which is about the size of an average
/// paragraph of text").
pub const BLOCK_SIZE: usize = 256;

/// Bytes per encoding unit: block + 8 padding bytes (§6.2: "the entire
/// encoding unit contains 264 bytes, 256 are used for data and the
/// remaining 8 bytes are randomly padded"). We make the padding *useful*:
/// it carries a checksum of the block so the §8.1 candidate search can tell
/// a correct recovery from a silent miscorrection. Density is unchanged.
pub const UNIT_BYTES: usize = 264;

/// FNV-1a 64-bit checksum used in the unit padding.
pub fn checksum64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A fixed-size storage block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The block's 256 bytes.
    pub data: Vec<u8>,
}

impl Block {
    /// Builds a block from at most [`BLOCK_SIZE`] bytes, zero-padding to
    /// full size.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidPatch`]... no — returns an error if
    /// `data` exceeds the block size.
    pub fn from_bytes(data: &[u8]) -> Result<Block, StoreError> {
        if data.len() > BLOCK_SIZE {
            return Err(StoreError::InvalidPatch(format!(
                "block content {} exceeds {} bytes",
                data.len(),
                BLOCK_SIZE
            )));
        }
        let mut bytes = data.to_vec();
        bytes.resize(BLOCK_SIZE, 0);
        Ok(Block { data: bytes })
    }

    /// A zero-filled block.
    pub fn zeroed() -> Block {
        Block {
            data: vec![0; BLOCK_SIZE],
        }
    }

    /// Serializes the block into unit bytes: block data plus checksummed
    /// padding.
    pub fn to_unit_bytes(&self) -> Vec<u8> {
        let mut unit = self.data.clone();
        unit.extend_from_slice(&checksum64(&self.data).to_le_bytes());
        debug_assert_eq!(unit.len(), UNIT_BYTES);
        unit
    }

    /// Parses unit bytes back into a block, verifying the checksum.
    ///
    /// # Errors
    ///
    /// Returns an error if the length or checksum is wrong.
    pub fn from_unit_bytes(unit: &[u8]) -> Result<Block, StoreError> {
        if unit.len() != UNIT_BYTES {
            return Err(StoreError::DecodeFailed {
                block: 0,
                reason: format!("unit length {} != {UNIT_BYTES}", unit.len()),
            });
        }
        if !unit_checksum_ok(unit) {
            return Err(StoreError::DecodeFailed {
                block: 0,
                reason: "unit checksum mismatch".to_string(),
            });
        }
        Ok(Block {
            data: unit[..BLOCK_SIZE].to_vec(),
        })
    }
}

/// Validates unit bytes (length + checksum) — the validator handed to the
/// pipeline's §8.1 candidate search.
pub fn unit_checksum_ok(unit: &[u8]) -> bool {
    unit.len() == UNIT_BYTES && unit[BLOCK_SIZE..] == checksum64(&unit[..BLOCK_SIZE]).to_le_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_pads_to_size() {
        let b = Block::from_bytes(b"hello").unwrap();
        assert_eq!(b.data.len(), BLOCK_SIZE);
        assert_eq!(&b.data[..5], b"hello");
        assert!(b.data[5..].iter().all(|&x| x == 0));
    }

    #[test]
    fn oversized_rejected() {
        assert!(Block::from_bytes(&[0u8; 257]).is_err());
        assert!(Block::from_bytes(&[0u8; 256]).is_ok());
    }

    #[test]
    fn unit_round_trip_with_checksum() {
        let b = Block::from_bytes(b"some block content").unwrap();
        let unit = b.to_unit_bytes();
        assert_eq!(unit.len(), UNIT_BYTES);
        assert!(unit_checksum_ok(&unit));
        assert_eq!(Block::from_unit_bytes(&unit).unwrap(), b);
    }

    #[test]
    fn corrupted_unit_detected() {
        let b = Block::from_bytes(b"x").unwrap();
        let mut unit = b.to_unit_bytes();
        unit[17] ^= 1;
        assert!(!unit_checksum_ok(&unit));
        assert!(Block::from_unit_bytes(&unit).is_err());
        // corrupted checksum also detected
        let mut unit2 = b.to_unit_bytes();
        unit2[260] ^= 0x80;
        assert!(!unit_checksum_ok(&unit2));
    }

    #[test]
    fn checksum_is_stable() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(checksum64(&[]), 0xcbf2_9ce4_8422_2325);
        assert_ne!(checksum64(b"a"), checksum64(b"b"));
    }
}
