//! Retrieval planning: choosing elongation depth and prefix covers.
//!
//! §3.1/§4: a range can be fetched *precisely* (one primer per cover node,
//! multiplexed) or *approximately* (one partially elongated primer for the
//! longest common prefix, over-amplifying some neighbours). The planner
//! quantifies that trade-off so callers — and the `abl_elong` ablation —
//! can pick a point on the curve.

use crate::partition::Partition;
use dna_index::LeafId;
use dna_seq::DnaSeq;

/// A planned retrieval: the primers to synthesize/elongate and the expected
/// amplification scope.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrievalPlan {
    /// The elongated/partial primers to use (multiplexed in one reaction).
    pub primers: Vec<DnaSeq>,
    /// Leaves wanted by the caller.
    pub wanted_leaves: u64,
    /// Leaves the reaction will actually amplify.
    pub amplified_leaves: u64,
}

impl RetrievalPlan {
    /// Over-amplification factor: amplified / wanted (1.0 = perfectly
    /// precise).
    pub fn over_amplification(&self) -> f64 {
        self.amplified_leaves as f64 / self.wanted_leaves as f64
    }

    /// Expected useful-read fraction if every amplified leaf ends up at
    /// similar abundance (§3.2's concentration invariant).
    pub fn expected_useful_fraction(&self) -> f64 {
        self.wanted_leaves as f64 / self.amplified_leaves as f64
    }

    /// Extra primer bases to synthesize, relative to the bare main primer.
    pub fn elongation_bases(&self, main_primer_len: usize) -> usize {
        self.primers
            .iter()
            .map(|p| p.len().saturating_sub(main_primer_len))
            .sum()
    }
}

/// Plans a precise range retrieval: one primer per cover node (§3.1:
/// "range AAA to AGT can be precisely described with ... AA, AC, AG").
///
/// # Panics
///
/// Panics if the range is empty or out of bounds.
pub fn plan_precise(partition: &Partition, lo: u64, hi: u64) -> RetrievalPlan {
    let primers = partition.range_prefixes(lo, hi);
    RetrievalPlan {
        primers,
        wanted_leaves: hi - lo + 1,
        amplified_leaves: hi - lo + 1,
    }
}

/// Plans a single-primer retrieval using the longest common prefix
/// (possibly over-amplifying).
///
/// # Panics
///
/// Panics if the range is empty or out of bounds.
pub fn plan_common_prefix(partition: &Partition, lo: u64, hi: u64) -> RetrievalPlan {
    let (node, _) = partition.tree().common_prefix_cover(LeafId(lo), LeafId(hi));
    let mut primer = partition.scope_primer();
    primer.extend(node.prefix(partition.tree()).iter());
    RetrievalPlan {
        primers: vec![primer],
        wanted_leaves: hi - lo + 1,
        amplified_leaves: node.leaf_count,
    }
}

/// Plans a partial elongation of exactly `levels` tree levels around a
/// single block — the `abl_elong` sweep: level 0 is the bare main primer
/// (whole partition), level `depth` is the fully elongated primer (one
/// block).
///
/// # Panics
///
/// Panics if `levels` exceeds the tree depth or `block` is out of range.
pub fn plan_partial(partition: &Partition, block: u64, levels: usize) -> RetrievalPlan {
    let tree = partition.tree();
    let mut primer = partition.scope_primer();
    primer.extend(tree.leaf_prefix(LeafId(block), levels).iter());
    RetrievalPlan {
        primers: vec![primer],
        wanted_leaves: 1,
        amplified_leaves: tree.leaves_under(levels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionConfig;
    use dna_primers::PrimerPair;

    fn partition() -> Partition {
        Partition::new(
            PartitionConfig::paper_default(3),
            PrimerPair::new(
                "AACCGGTTAACCGGTTAACC".parse().unwrap(),
                "AAGGCCTTAAGGCCTTAAGG".parse().unwrap(),
            ),
        )
    }

    #[test]
    fn precise_plan_is_exact() {
        let p = partition();
        let plan = plan_precise(&p, 100, 163);
        assert_eq!(plan.wanted_leaves, 64);
        assert_eq!(plan.over_amplification(), 1.0);
        assert_eq!(plan.expected_useful_fraction(), 1.0);
        assert!(!plan.primers.is_empty());
    }

    #[test]
    fn common_prefix_plan_trades_precision_for_one_primer() {
        let p = partition();
        let plan = plan_common_prefix(&p, 100, 163);
        assert_eq!(plan.primers.len(), 1);
        assert!(plan.over_amplification() >= 1.0);
        // aligned 64-leaf range under one node → could still be 1.0; use an
        // unaligned range to force over-amplification
        let plan2 = plan_common_prefix(&p, 100, 200);
        assert!(plan2.over_amplification() > 1.0);
    }

    #[test]
    fn partial_elongation_sweep_narrows_scope() {
        let p = partition();
        let mut last = u64::MAX;
        for levels in 0..=5usize {
            let plan = plan_partial(&p, 531, levels);
            assert_eq!(plan.amplified_leaves, 1024 >> (2 * levels));
            assert!(plan.amplified_leaves < last || levels == 0);
            last = plan.amplified_leaves;
            // primer grows by 2 bases per level
            assert_eq!(plan.primers[0].len(), 21 + 2 * levels);
        }
        // Full elongation isolates exactly one block.
        assert_eq!(plan_partial(&p, 531, 5).amplified_leaves, 1);
    }

    #[test]
    fn elongation_base_accounting() {
        let p = partition();
        let plan = plan_partial(&p, 531, 5);
        assert_eq!(plan.elongation_bases(20), 11); // sync + 10 index bases
    }
}
