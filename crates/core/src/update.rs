//! Update patches (§6.4).
//!
//! "The first byte is an integer that identifies the first byte in the
//! block (encoding unit) where deletion needs to happen. The second byte is
//! a number that indicates how many bytes ... should be deleted, if any.
//! The third part contains an integer that identifies the position of where
//! an insertion should happen, after the deletion is applied. The rest is an
//! array of bytes that should be inserted."

use crate::block::{Block, BLOCK_SIZE};
use crate::StoreError;

/// A delete-then-insert patch against one 256-byte block.
///
/// Applying a patch keeps the block at fixed size: content shifts left on
/// deletion and right on insertion, and the result is truncated / zero-
/// padded back to [`BLOCK_SIZE`] (blocks are fixed-size by design; §5.4
/// notes updates could instead carry whole replacement blocks or arbitrary
/// application-specific encodings).
///
/// # Examples
///
/// ```
/// use dna_block_store::{Block, UpdatePatch};
///
/// let old = Block::from_bytes(b"the cat sat on the mat").unwrap();
/// let patch = UpdatePatch::new(4, 3, 4, b"dog".to_vec()).unwrap();
/// let new = patch.apply(&old).unwrap();
/// assert_eq!(&new.data[..22], b"the dog sat on the mat");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdatePatch {
    /// First byte to delete.
    pub del_start: u8,
    /// Number of bytes to delete.
    pub del_len: u8,
    /// Insertion position (after the deletion is applied).
    pub ins_pos: u8,
    /// Bytes to insert.
    pub ins_bytes: Vec<u8>,
}

impl UpdatePatch {
    /// Maximum insertion payload that fits a patch unit:
    /// block size minus the 3 header bytes and 1 length byte.
    pub const MAX_INSERT: usize = BLOCK_SIZE - 4;

    /// Creates a patch, validating offsets.
    ///
    /// # Errors
    ///
    /// Rejects patches whose deletion window or insertion point exceeds the
    /// block, or whose insertion payload cannot fit a patch unit.
    pub fn new(
        del_start: u8,
        del_len: u8,
        ins_pos: u8,
        ins_bytes: Vec<u8>,
    ) -> Result<UpdatePatch, StoreError> {
        if usize::from(del_start) + usize::from(del_len) > BLOCK_SIZE {
            return Err(StoreError::InvalidPatch(format!(
                "deletion {del_start}+{del_len} exceeds block size"
            )));
        }
        if usize::from(ins_pos) > BLOCK_SIZE - usize::from(del_len) {
            return Err(StoreError::InvalidPatch(format!(
                "insertion position {ins_pos} beyond post-deletion content"
            )));
        }
        if ins_bytes.len() > Self::MAX_INSERT {
            return Err(StoreError::InvalidPatch(format!(
                "insertion of {} bytes exceeds patch capacity {}",
                ins_bytes.len(),
                Self::MAX_INSERT
            )));
        }
        Ok(UpdatePatch {
            del_start,
            del_len,
            ins_pos,
            ins_bytes,
        })
    }

    /// The identity patch (no deletion, no insertion).
    pub fn identity() -> UpdatePatch {
        UpdatePatch {
            del_start: 0,
            del_len: 0,
            ins_pos: 0,
            ins_bytes: Vec::new(),
        }
    }

    /// Applies the patch to `block`, producing a new fixed-size block.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError::InvalidPatch`] if offsets do not fit (can
    /// only happen for hand-built patches on short logical content).
    pub fn apply(&self, block: &Block) -> Result<Block, StoreError> {
        let mut content = block.data.clone();
        let start = usize::from(self.del_start);
        let len = usize::from(self.del_len);
        content.drain(start..start + len);
        let pos = usize::from(self.ins_pos);
        if pos > content.len() {
            return Err(StoreError::InvalidPatch(format!(
                "insertion position {pos} beyond content length {}",
                content.len()
            )));
        }
        for (i, &b) in self.ins_bytes.iter().enumerate() {
            content.insert(pos + i, b);
        }
        content.resize(BLOCK_SIZE, 0);
        Block::from_bytes(&content)
    }

    /// Computes a minimal delete-then-insert patch transforming `old` into
    /// `new` (common-prefix / common-suffix trim). Returns `None` when the
    /// middle difference cannot be expressed in one patch (insertion too
    /// large) — the caller should then fall back to a whole-block replace
    /// chain.
    pub fn diff(old: &Block, new: &Block) -> Option<UpdatePatch> {
        if old == new {
            return Some(UpdatePatch::identity());
        }
        let a = &old.data;
        let b = &new.data;
        let mut prefix = 0usize;
        while prefix < a.len() && prefix < b.len() && a[prefix] == b[prefix] {
            prefix += 1;
        }
        let mut suffix = 0usize;
        while suffix < a.len() - prefix
            && suffix < b.len() - prefix
            && a[a.len() - 1 - suffix] == b[b.len() - 1 - suffix]
        {
            suffix += 1;
        }
        let ins = b[prefix..b.len() - suffix].to_vec();
        if ins.len() > Self::MAX_INSERT {
            return None;
        }
        // An edit whose window or offset exceeds the u8 wire fields cannot
        // be expressed in one patch: fall back instead of truncating.
        let (Ok(del_len), Ok(edit_pos)) = (
            u8::try_from(a.len() - prefix - suffix),
            u8::try_from(prefix),
        ) else {
            return None;
        };
        // Note: both blocks are BLOCK_SIZE so del_len == ins.len() here; the
        // general form still supports shifting edits on logical content.
        UpdatePatch::new(edit_pos, del_len, edit_pos, ins).ok()
    }

    /// Serializes into the §6.4 wire format:
    /// `[del_start, del_len, ins_pos, ins_len, ins_bytes...]`, zero-padded
    /// to [`BLOCK_SIZE`].
    ///
    /// # Panics
    ///
    /// Panics if a hand-built patch (the fields are public) carries more
    /// than [`UpdatePatch::MAX_INSERT`] insertion bytes — every patch from
    /// [`UpdatePatch::new`] / [`UpdatePatch::diff`] fits by construction.
    pub fn to_block(&self) -> Block {
        let mut bytes = Vec::with_capacity(BLOCK_SIZE);
        bytes.push(self.del_start);
        bytes.push(self.del_len);
        bytes.push(self.ins_pos);
        // The fields are public, so a hand-built patch can exceed what
        // `new` admits: fail loudly rather than truncate the length prefix
        // (a silently wrapped prefix would decode as a different patch).
        bytes.push(u8::try_from(self.ins_bytes.len()).expect("insertion exceeds MAX_INSERT"));
        bytes.extend_from_slice(&self.ins_bytes);
        Block::from_bytes(&bytes).expect("patch fits by construction")
    }

    /// Parses the §6.4 wire format.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidPatch`] on malformed input.
    pub fn from_block(block: &Block) -> Result<UpdatePatch, StoreError> {
        let bytes = &block.data;
        let ins_len = usize::from(bytes[3]);
        if 4 + ins_len > bytes.len() {
            return Err(StoreError::InvalidPatch(format!(
                "insertion length {ins_len} overruns patch block"
            )));
        }
        UpdatePatch::new(bytes[0], bytes[1], bytes[2], bytes[4..4 + ins_len].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_patch_is_noop() {
        let b = Block::from_bytes(b"unchanged").unwrap();
        assert_eq!(UpdatePatch::identity().apply(&b).unwrap(), b);
    }

    #[test]
    fn delete_then_insert() {
        let b = Block::from_bytes(b"abcdefgh").unwrap();
        // delete "cde" (3 bytes at 2), insert "XY" at position 2
        let p = UpdatePatch::new(2, 3, 2, b"XY".to_vec()).unwrap();
        let out = p.apply(&b).unwrap();
        assert_eq!(&out.data[..7], b"abXYfgh");
    }

    #[test]
    fn pure_insert_and_pure_delete() {
        let b = Block::from_bytes(b"hello world").unwrap();
        let ins = UpdatePatch::new(0, 0, 5, b",".to_vec()).unwrap();
        assert_eq!(&ins.apply(&b).unwrap().data[..12], b"hello, world");
        let del = UpdatePatch::new(5, 6, 0, Vec::new()).unwrap();
        assert_eq!(&del.apply(&b).unwrap().data[..5], b"hello");
    }

    #[test]
    fn validation_rejects_bad_offsets() {
        assert!(UpdatePatch::new(250, 10, 0, Vec::new()).is_err());
        assert!(UpdatePatch::new(0, 0, 0, vec![0; 253]).is_err());
        assert!(UpdatePatch::new(0, 0, 0, vec![0; 252]).is_ok());
    }

    #[test]
    fn diff_round_trips_arbitrary_edits() {
        let cases: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (
                b"the cat sat on the mat".to_vec(),
                b"the dog sat on the mat".to_vec(),
            ),
            (b"aaaa".to_vec(), b"aaaa".to_vec()),
            (b"hello".to_vec(), b"help".to_vec()),
            (vec![0; 200], vec![1; 200]),
            (
                b"prefix middle suffix".to_vec(),
                b"prefix MIDDLE suffix".to_vec(),
            ),
        ];
        for (old_raw, new_raw) in cases {
            let old = Block::from_bytes(&old_raw).unwrap();
            let new = Block::from_bytes(&new_raw).unwrap();
            let patch = UpdatePatch::diff(&old, &new)
                .unwrap_or_else(|| panic!("diff failed for {old_raw:?}"));
            assert_eq!(patch.apply(&old).unwrap(), new);
        }
    }

    #[test]
    fn diff_of_huge_change_falls_back() {
        let old = Block::from_bytes(&vec![0u8; 256]).unwrap();
        let new = Block::from_bytes(&(0..=255u8).collect::<Vec<_>>()).unwrap();
        // 256-byte replacement cannot fit in one patch (max 252 insert).
        assert!(UpdatePatch::diff(&old, &new).is_none());
    }

    #[test]
    fn wire_format_round_trip() {
        let p = UpdatePatch::new(10, 4, 12, b"patch body".to_vec()).unwrap();
        let blk = p.to_block();
        assert_eq!(UpdatePatch::from_block(&blk).unwrap(), p);
        // Wire layout spot check (§6.4: byte0 = deletion start, byte1 =
        // deletion count, byte2 = insertion position, then payload).
        assert_eq!(blk.data[0], 10);
        assert_eq!(blk.data[1], 4);
        assert_eq!(blk.data[2], 12);
        assert_eq!(blk.data[3], 10); // length prefix of the payload
        assert_eq!(&blk.data[4..14], b"patch body");
    }

    #[test]
    #[should_panic(expected = "insertion exceeds MAX_INSERT")]
    fn oversized_hand_built_patch_fails_loudly_not_silently() {
        // Before the sweep, `ins_bytes.len() as u8` wrapped 300 → 44 and
        // the wire block decoded as a different (valid-looking) patch.
        let p = UpdatePatch {
            del_start: 0,
            del_len: 0,
            ins_pos: 0,
            ins_bytes: vec![7; 300],
        };
        let _ = p.to_block();
    }

    #[test]
    fn patch_composition_applies_in_order() {
        let b0 = Block::from_bytes(b"version zero").unwrap();
        let p1 = UpdatePatch::diff(&b0, &Block::from_bytes(b"version one!").unwrap()).unwrap();
        let b1 = p1.apply(&b0).unwrap();
        let p2 = UpdatePatch::diff(&b1, &Block::from_bytes(b"version two.").unwrap()).unwrap();
        let b2 = p2.apply(&b1).unwrap();
        assert_eq!(&b2.data[..12], b"version two.");
    }
}
