//! Compaction: reclaiming update capacity by folding patch chains.
//!
//! Every update layout in §5.3 degrades monotonically as updates
//! accumulate: [`crate::UpdateLayout::retrieval_scope_units`] grows with
//! the chain / stack / log length, and once overflow leaves collide with
//! data (or the TwoStacks region fills, or the shared log runs out of
//! leaves) the partition becomes read-only —
//! [`crate::StoreError::UpdateSlotsExhausted`]. The paper's versioned
//! design assumes stale versions can eventually be *consolidated* by
//! re-synthesizing merged blocks, and the rewritable random-access line of
//! work (Yazdi et al. 2015) demonstrates block rewrite as the recovery
//! primitive. This module is that missing lifecycle step:
//!
//! 1. **Fold** — each updated block's patch chain is folded into its
//!    current logical image (the §5.4 digital front-end already maintains
//!    it; no wetlab read is needed).
//! 2. **Retire** — the stale version, overflow-chain, pointer and log
//!    molecules are withdrawn from the simulated pool
//!    ([`dna_sim::Pool::retire_where`]).
//! 3. **Rebase** — a fresh base unit is re-synthesized at `VersionSlot(0)`
//!    (IDT small-batch vendor, §6.4.2 concentration-matched mixing) and the
//!    partition's placement bookkeeping is reset through
//!    [`crate::Partition::reclaim_updates`].
//!
//! The result: full update headroom is restored and the block's retrieval
//! scope collapses back to one unit, so reads of previously hot blocks
//! sequence fewer reads than before. The price is synthesis — one full
//! encoding unit per rebased block — which
//! [`crate::cost::compaction_break_even_reads`] weighs against the
//! per-read sequencing savings.
//!
//! [`CompactionPolicy`] decides *when*: thresholds on chain length, stack
//! occupancy, log size, projected retrieval scope and remaining update
//! headroom. [`Compactor`] applies the policy across a whole
//! [`BlockStore`]; the serving layer
//! ([`crate::service::StoreServer`]) runs it between coalesced batches and
//! before updates that would otherwise exhaust their slots.

use crate::layout::UpdateLayout;
use crate::store::{BlockStore, PartitionId};
use crate::StoreError;

/// Thresholds deciding when a partition (or the shared log) is worth
/// compacting. A threshold of `0` disables that trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Compact a partition once any block's overflow chain reaches this
    /// many leaves (Interleaved: every chain hop is an extra PCR
    /// round-trip on the sequential path).
    pub max_chain_len: usize,
    /// Compact a partition once its TwoStacks update region holds this
    /// many units (every read of the partition amplifies the whole
    /// region).
    pub max_stack_updates: u64,
    /// Compact the shared DedicatedLog partition at this many entries
    /// (every read of *any* DedicatedLog block sequences the whole log).
    pub max_log_entries: u64,
    /// Compact once any updated block's projected
    /// [`crate::UpdateLayout::retrieval_scope_units`] reaches this many
    /// units.
    pub max_scope_units: u64,
    /// Compact once predicted update headroom
    /// ([`crate::BlockStore::update_headroom`]) falls below this many
    /// updates. With any value `>= 1`, a store that compacts before
    /// committing each update can never hit
    /// [`crate::StoreError::UpdateSlotsExhausted`].
    pub min_headroom: u64,
}

impl CompactionPolicy {
    /// Serving defaults: fold a chain at 2 hops, a stack or log at 24
    /// units, any block whose scope reaches 12 units, and always keep at
    /// least 2 updates of headroom.
    pub fn paper_default() -> CompactionPolicy {
        CompactionPolicy {
            max_chain_len: 2,
            max_stack_updates: 24,
            max_log_entries: 24,
            max_scope_units: 12,
            min_headroom: 2,
        }
    }

    /// Headroom-only policy: compact exactly when the next few updates
    /// would exhaust, never for read-cost reasons.
    pub fn headroom_only(min_headroom: u64) -> CompactionPolicy {
        CompactionPolicy {
            max_chain_len: 0,
            max_stack_updates: 0,
            max_log_entries: 0,
            max_scope_units: 0,
            min_headroom,
        }
    }
}

/// What one compaction pass did — the observable the scenario suite and
/// [`crate::ServerStats`] counters are built on.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompactionReport {
    /// Partitions whose bookkeeping was reset (the shared log counts as
    /// one).
    pub partitions_compacted: usize,
    /// Blocks whose patch chains were folded into a fresh base unit.
    pub blocks_rebased: usize,
    /// Stale encoding units removed from the addressable scope: patches,
    /// chain pointers, log entries and superseded base units.
    pub units_reclaimed: u64,
    /// Distinct molecular species retired from the simulated pool.
    pub species_retired: usize,
    /// Fresh base units synthesized (one per rebased block).
    pub rewrites_synthesized: u64,
    /// Dollar cost of the re-synthesis (IDT small-batch vendor, charged
    /// per designed base — §7.5's cost axis).
    pub synthesis_cost: f64,
    /// Every rebased block address, for cache refresh / invalidation in
    /// the serving layer.
    pub rebased: Vec<(PartitionId, u64)>,
}

impl CompactionReport {
    /// Whether the pass did nothing at all.
    pub fn is_empty(&self) -> bool {
        self.partitions_compacted == 0 && self.units_reclaimed == 0
    }

    /// Folds another report into this one (a store-wide pass is the merge
    /// of its per-partition passes).
    pub fn merge(&mut self, other: CompactionReport) {
        self.partitions_compacted += other.partitions_compacted;
        self.blocks_rebased += other.blocks_rebased;
        self.units_reclaimed += other.units_reclaimed;
        self.species_retired += other.species_retired;
        self.rewrites_synthesized += other.rewrites_synthesized;
        self.synthesis_cost += other.synthesis_cost;
        self.rebased.extend(other.rebased);
    }
}

/// Applies a [`CompactionPolicy`] across a whole store: scans every data
/// partition and the shared log, compacting the ones over threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Compactor {
    /// The thresholds this compactor enforces.
    pub policy: CompactionPolicy,
}

impl Compactor {
    /// A compactor enforcing `policy`.
    pub fn new(policy: CompactionPolicy) -> Compactor {
        Compactor { policy }
    }

    /// Whether `pid` is over any partition threshold. Partitions with no
    /// recorded updates are never worth compacting; DedicatedLog
    /// partitions defer to [`Compactor::should_compact_log`] (their
    /// patches live in the shared log).
    pub fn should_compact_partition(&self, store: &BlockStore, pid: PartitionId) -> bool {
        let Ok(partition) = store.partition(pid) else {
            return false;
        };
        if partition.total_updates() == 0 {
            return false;
        }
        let layout = partition.config().layout;
        if layout == UpdateLayout::DedicatedLog {
            return false;
        }
        let p = &self.policy;
        // Chain length is an Interleaved signal: each hop is an extra PCR
        // round-trip there. (TwoStacks tracks per-block stack leaves in the
        // same structure, but its read cost is the region size, thresholded
        // separately below.)
        if matches!(layout, UpdateLayout::Interleaved { .. })
            && p.max_chain_len > 0
            && partition.max_chain_len() >= p.max_chain_len
        {
            return true;
        }
        if layout == UpdateLayout::TwoStacks
            && p.max_stack_updates > 0
            && partition.stack_update_count() >= p.max_stack_updates
        {
            return true;
        }
        partition.updated_blocks().iter().any(|&(block, _)| {
            let over_scope = p.max_scope_units > 0
                && store
                    .retrieval_scope_units(pid, block)
                    .is_ok_and(|units| units >= p.max_scope_units);
            let starved = p.min_headroom > 0
                && store
                    .update_headroom(pid, block)
                    .is_ok_and(|headroom| headroom < p.min_headroom);
            over_scope || starved
        })
    }

    /// Whether the shared log is over its entry threshold or out of
    /// headroom.
    pub fn should_compact_log(&self, store: &BlockStore) -> bool {
        let entries = store.log_entries();
        if entries == 0 {
            return false;
        }
        (self.policy.max_log_entries > 0 && entries >= self.policy.max_log_entries)
            || (self.policy.min_headroom > 0 && store.log_headroom() < self.policy.min_headroom)
    }

    /// One maintenance pass: compacts every partition over threshold, then
    /// the shared log if it is over threshold. Returns the merged report
    /// (empty when nothing crossed a threshold).
    ///
    /// # Errors
    ///
    /// Propagates [`BlockStore::compact_partition`] /
    /// [`BlockStore::compact_log`] errors.
    pub fn run(&self, store: &BlockStore) -> Result<CompactionReport, StoreError> {
        let mut report = CompactionReport::default();
        for pid in store.partition_ids() {
            if self.should_compact_partition(store, pid) {
                report.merge(store.compact_partition(pid)?);
            }
        }
        if self.should_compact_log(store) {
            report.merge(store.compact_log()?);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BLOCK_SIZE;
    use crate::partition::PartitionConfig;
    use crate::workload::deterministic_text;

    fn small_store(seed: u64, layout: UpdateLayout) -> (BlockStore, PartitionId, Vec<u8>) {
        let mut store = BlockStore::new(seed);
        store
            .set_log_partition_config(PartitionConfig::small(
                seed ^ 0x106,
                2,
                UpdateLayout::paper_default(),
            ))
            .unwrap();
        let pid = store
            .create_partition(PartitionConfig::small(seed ^ 0x55, 2, layout))
            .unwrap();
        let data = deterministic_text(4 * BLOCK_SIZE, seed ^ 0x56);
        store.write_file(pid, &data).unwrap();
        (store, pid, data)
    }

    fn update(store: &mut BlockStore, pid: PartitionId, data: &mut [u8], block: u64, round: u8) {
        let off = block as usize * BLOCK_SIZE;
        data[off + usize::from(round % 8)] = b'a' + (round % 26);
        store
            .update_block(pid, block, &data[off..off + BLOCK_SIZE])
            .unwrap();
    }

    #[test]
    fn policy_triggers_on_chain_stack_and_log_growth() {
        let compactor = Compactor::new(CompactionPolicy {
            max_chain_len: 1,
            max_stack_updates: 3,
            max_log_entries: 3,
            max_scope_units: 0,
            min_headroom: 0,
        });
        // Interleaved: triggers once a chain forms (update 3 overflows).
        let (mut store, pid, mut data) = small_store(0xC0, UpdateLayout::paper_default());
        for round in 0..2 {
            update(&mut store, pid, &mut data, 0, round);
            assert!(!compactor.should_compact_partition(&store, pid));
        }
        update(&mut store, pid, &mut data, 0, 2);
        assert!(compactor.should_compact_partition(&store, pid));
        // TwoStacks: triggers at 3 stacked updates.
        let (mut store, pid, mut data) = small_store(0xC1, UpdateLayout::TwoStacks);
        for round in 0..3 {
            update(&mut store, pid, &mut data, 0, round);
        }
        assert!(compactor.should_compact_partition(&store, pid));
        // DedicatedLog: the partition never triggers, the log does.
        let (mut store, pid, mut data) = small_store(0xC2, UpdateLayout::DedicatedLog);
        for round in 0..3 {
            update(&mut store, pid, &mut data, 0, round);
        }
        assert!(!compactor.should_compact_partition(&store, pid));
        assert!(compactor.should_compact_log(&store));
    }

    #[test]
    fn run_compacts_over_threshold_and_reports_reclaims() {
        let (mut store, pid, mut data) = small_store(0xC3, UpdateLayout::paper_default());
        for round in 0..6 {
            update(&mut store, pid, &mut data, 0, round);
        }
        update(&mut store, pid, &mut data, 1, 0);
        let compactor = Compactor::new(CompactionPolicy::paper_default());
        assert!(compactor.should_compact_partition(&store, pid));
        let report = compactor.run(&store).unwrap();
        assert!(!report.is_empty());
        assert_eq!(report.partitions_compacted, 1);
        assert_eq!(report.blocks_rebased, 2);
        assert_eq!(report.rewrites_synthesized, 2);
        // Block 0: 6 patches + 2 pointers + 1 old base; block 1: 1 patch +
        // 1 old base.
        assert_eq!(report.units_reclaimed, 11);
        assert!(report.species_retired > 0);
        assert!(report.synthesis_cost > 0.0);
        assert_eq!(report.rebased, vec![(pid, 0), (pid, 1)]);
        // Idempotent: a second pass finds nothing over threshold.
        let again = compactor.run(&store).unwrap();
        assert!(again.is_empty(), "{again:?}");
        // Full headroom is back.
        assert_eq!(store.update_headroom(pid, 0).unwrap(), 2 + 12 * 3);
    }

    #[test]
    fn headroom_only_policy_ignores_read_cost_signals() {
        let (mut store, pid, mut data) = small_store(0xC4, UpdateLayout::paper_default());
        for round in 0..6 {
            update(&mut store, pid, &mut data, 0, round);
        }
        let lazy = Compactor::new(CompactionPolicy::headroom_only(2));
        assert!(
            !lazy.should_compact_partition(&store, pid),
            "plenty of headroom left"
        );
        let eager = Compactor::new(CompactionPolicy::headroom_only(u64::MAX));
        assert!(eager.should_compact_partition(&store, pid));
    }
}
